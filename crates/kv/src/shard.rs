//! Key-space shard routing.
//!
//! Sharded deployments run one independent LOT pipeline per key-space
//! shard (ROADMAP: "Sharded, wait-free parallel consensus"). This module
//! owns the routing function every layer must agree on — workload clients
//! deciding where a key's traffic lands, the `ShardEngine` in
//! `canopus-core` demultiplexing requests, and the chaos verdict grouping
//! committed logs per shard. The mapping is a pure hash of the key, so it
//! is identical across nodes, across restarts, and across processes with
//! no coordination.
//!
//! Routing rules:
//!
//! * Keyed ops (`Put`/`Get`) go to the shard owning the key.
//! * Synthetic aggregates carry no keys; they are routed by the *client's*
//!   id so one client's whole stream lands on one shard, preserving the
//!   client-FIFO property per shard.
//! * `MultiPut` touches one shard per distinct key owner; [`ShardRouter::
//!   split_multi`] partitions the writes and the lowest touched shard id
//!   is the transaction's *anchor* (the shard whose commit position fixes
//!   the transaction's place in the cross-shard order).

use std::collections::BTreeMap;

use bytes::Bytes;
use canopus_sim::NodeId;

use crate::op::{Key, Op};

/// Mixes a 64-bit value into a uniformly distributed hash
/// (splitmix64 finalizer — deterministic, dependency-free).
pub fn shard_hash(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Salt folded into client-id routing so client streams don't correlate
/// with the key-space mapping.
const CLIENT_SALT: u64 = 0xC11E_17A0_5EED_0001;

/// The deterministic key→shard map shared by clients, engines, and
/// checkers.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ShardRouter {
    shards: u16,
}

impl ShardRouter {
    /// A router over `shards` shards (at least 1).
    pub fn new(shards: u16) -> Self {
        ShardRouter {
            shards: shards.max(1),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> u16 {
        self.shards
    }

    /// The shard owning `key`.
    pub fn shard_of_key(&self, key: Key) -> u16 {
        (shard_hash(key) % u64::from(self.shards)) as u16
    }

    /// The shard a keyless (synthetic) stream from `client` is pinned to.
    pub fn shard_of_client(&self, client: NodeId) -> u16 {
        (shard_hash(u64::from(client.0) ^ CLIENT_SALT) % u64::from(self.shards)) as u16
    }

    /// The single shard handling `op` when issued by `client`, or `None`
    /// for a `MultiPut` spanning more than one shard (route those through
    /// [`ShardRouter::split_multi`]).
    pub fn shard_of(&self, client: NodeId, op: &Op) -> Option<u16> {
        match op {
            Op::Put { key, .. } | Op::Get { key } => Some(self.shard_of_key(*key)),
            Op::SyntheticWrite { .. } | Op::SyntheticRead { .. } => {
                Some(self.shard_of_client(client))
            }
            Op::MultiPut { puts } => {
                let mut it = puts.iter().map(|(k, _)| self.shard_of_key(*k));
                let first = it.next()?;
                it.all(|s| s == first).then_some(first)
            }
        }
    }

    /// Partitions a multi-key write by owning shard, preserving the
    /// client's key order within each shard. The map's first key is the
    /// transaction's anchor shard.
    pub fn split_multi(&self, puts: &[(Key, Bytes)]) -> BTreeMap<u16, Vec<(Key, Bytes)>> {
        let mut by_shard: BTreeMap<u16, Vec<(Key, Bytes)>> = BTreeMap::new();
        for (k, v) in puts {
            by_shard
                .entry(self.shard_of_key(*k))
                .or_default()
                .push((*k, v.clone()));
        }
        by_shard
    }

    /// The anchor shard of a multi-key write: the lowest touched shard id.
    pub fn anchor_of(&self, puts: &[(Key, Bytes)]) -> u16 {
        puts.iter()
            .map(|(k, _)| self.shard_of_key(*k))
            .min()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_pinned() {
        // Golden values: the key→shard map is part of the cross-process
        // contract, so the hash function must never drift silently.
        assert_eq!(shard_hash(0), 0xe220a8397b1dcdaf);
        assert_eq!(shard_hash(1), 0x910a2dec89025cc1);
        assert_eq!(shard_hash(0xdead_beef), 0x4adfb90f68c9eb9b);
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let r = ShardRouter::new(4);
        for key in 0..1000u64 {
            let s = r.shard_of_key(key);
            assert!(s < 4);
            assert_eq!(s, ShardRouter::new(4).shard_of_key(key), "restart-stable");
        }
    }

    #[test]
    fn keys_spread_across_shards() {
        let r = ShardRouter::new(4);
        let mut counts = [0u32; 4];
        for key in 0..10_000u64 {
            counts[r.shard_of_key(key) as usize] += 1;
        }
        for c in counts {
            // Uniform hash: each shard gets 2500 ± a generous tolerance.
            assert!((1800..=3200).contains(&c), "skewed shard: {counts:?}");
        }
    }

    #[test]
    fn synthetic_streams_pin_to_one_shard() {
        let r = ShardRouter::new(8);
        let client = NodeId(42);
        let w = Op::SyntheticWrite {
            count: 10,
            op_bytes: 16,
        };
        let rd = Op::SyntheticRead { count: 5 };
        assert_eq!(r.shard_of(client, &w), r.shard_of(client, &rd));
    }

    #[test]
    fn multi_put_splits_by_owner_with_anchor_first() {
        let r = ShardRouter::new(4);
        // Find two keys on different shards.
        let k0 = (0..).find(|k| r.shard_of_key(*k) == 0).unwrap();
        let k3 = (0..).find(|k| r.shard_of_key(*k) == 3).unwrap();
        let puts = vec![
            (k3, Bytes::from_static(b"a")),
            (k0, Bytes::from_static(b"b")),
        ];
        let op = Op::MultiPut { puts: puts.clone() };
        assert_eq!(r.shard_of(NodeId(1), &op), None, "spans two shards");
        let split = r.split_multi(&puts);
        assert_eq!(split.len(), 2);
        assert_eq!(*split.keys().next().unwrap(), 0);
        assert_eq!(r.anchor_of(&puts), 0);
        // Single-shard multi-put routes like a plain op.
        let same = vec![(k0, Bytes::new()), (k0, Bytes::new())];
        assert_eq!(r.shard_of(NodeId(1), &Op::MultiPut { puts: same }), Some(0));
    }

    #[test]
    fn one_shard_maps_everything_to_zero() {
        let r = ShardRouter::new(1);
        for key in 0..100u64 {
            assert_eq!(r.shard_of_key(key), 0);
        }
        assert_eq!(r.shard_of_client(NodeId(7)), 0);
    }
}
