//! The replicated key-value state machine.
//!
//! Every protocol node applies its committed write sequence to a
//! [`KvStore`]. The store tracks a version counter per key so the
//! consistency checkers can reconstruct which write a read observed.

use std::collections::BTreeMap;

use bytes::Bytes;

use crate::op::Key;

/// A versioned value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Versioned {
    /// Monotonic per-key version, starting at 1 for the first write.
    pub version: u64,
    /// The value.
    pub value: Bytes,
}

/// In-memory key-value store with per-key versions.
#[derive(Clone, Debug, Default)]
pub struct KvStore {
    map: BTreeMap<Key, Versioned>,
    applied_writes: u64,
}

impl KvStore {
    /// An empty store.
    pub fn new() -> Self {
        KvStore::default()
    }

    /// Applies a write; returns the new version of the key.
    pub fn put(&mut self, key: Key, value: Bytes) -> u64 {
        self.applied_writes += 1;
        let entry = self.map.entry(key).or_insert(Versioned {
            version: 0,
            value: Bytes::new(),
        });
        entry.version += 1;
        entry.value = value;
        entry.version
    }

    /// Reads the current value of a key.
    pub fn get(&self, key: Key) -> Option<&Versioned> {
        self.map.get(&key)
    }

    /// Reads just the value bytes.
    pub fn get_value(&self, key: Key) -> Option<Bytes> {
        self.map.get(&key).map(|v| v.value.clone())
    }

    /// Total writes applied over the store's lifetime.
    pub fn applied_writes(&self) -> u64 {
        self.applied_writes
    }

    /// Number of distinct keys present.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// A digest of the full store state, for cheap cross-replica agreement
    /// checks (FNV-1a over keys, versions, and values).
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        for (k, v) in &self.map {
            mix(&k.to_le_bytes());
            mix(&v.version.to_le_bytes());
            mix(&v.value);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_and_versions() {
        let mut s = KvStore::new();
        assert!(s.get(1).is_none());
        assert_eq!(s.put(1, Bytes::from_static(b"a")), 1);
        assert_eq!(s.put(1, Bytes::from_static(b"b")), 2);
        assert_eq!(s.put(2, Bytes::from_static(b"c")), 1);
        let v = s.get(1).unwrap();
        assert_eq!(v.version, 2);
        assert_eq!(v.value, Bytes::from_static(b"b"));
        assert_eq!(s.applied_writes(), 3);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn digest_detects_divergence() {
        let mut a = KvStore::new();
        let mut b = KvStore::new();
        a.put(1, Bytes::from_static(b"x"));
        b.put(1, Bytes::from_static(b"x"));
        assert_eq!(a.digest(), b.digest());
        b.put(2, Bytes::from_static(b"y"));
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn digest_sensitive_to_versions() {
        let mut a = KvStore::new();
        let mut b = KvStore::new();
        a.put(1, Bytes::from_static(b"x"));
        b.put(1, Bytes::from_static(b"other"));
        b.put(1, Bytes::from_static(b"x"));
        // Same final value, different version history.
        assert_ne!(a.digest(), b.digest());
    }
}
