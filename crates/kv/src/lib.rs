//! # canopus-kv — the replicated application and its consistency checkers
//!
//! The paper's motivating applications maintain a replicated transaction
//! log applied to a key-value state (§1). This crate is that application
//! layer, shared by all three protocol implementations:
//!
//! * [`Op`] / [`ClientRequest`] / [`ClientReply`] — the uniform client API
//!   (16-byte kv pairs as in §8.1, plus aggregated synthetic batches for
//!   throughput experiments).
//! * [`KvStore`] — the versioned key-value state machine.
//! * [`check`] — mechanical checkers for the paper's §6 properties:
//!   agreement, client-FIFO, and linearizability.

#![warn(missing_docs)]

pub mod check;
pub mod cost;
pub mod op;
pub mod shard;
pub mod store;

pub use check::{check_agreement, check_client_fifo, LinChecker, ReadObs, ReplyEvent, WriteObs};
pub use cost::CostModel;
pub use op::{ClientReply, ClientRequest, Key, Op, OpResult, TimedOp};
pub use shard::{shard_hash, ShardRouter};
pub use store::{KvStore, Versioned};
