//! The client-facing operation API shared by all three protocols.
//!
//! The paper's workload is 16-byte key-value pairs over one million keys
//! (§8.1). Every protocol in this repository — Canopus, EPaxos, and the
//! Zab-based ZooKeeper model — serves the same [`ClientRequest`] /
//! [`ClientReply`] API so the harness can drive them interchangeably.
//!
//! Two operation granularities exist:
//!
//! * `Put` / `Get` — real single-key operations, applied to the
//!   [`crate::KvStore`] state machine; used by correctness tests and the
//!   precise-latency experiments.
//! * `SyntheticWrite` / `SyntheticRead` — aggregated batches standing for
//!   `count` identical client requests; used by the throughput experiments
//!   where simulating five million individual 16-byte requests per second
//!   as separate events would swamp the event queue without changing the
//!   measured shapes. Synthetic batches carry the byte volume and request
//!   count so network and CPU models see the same load.

use bytes::{Bytes, BytesMut};
use canopus_net::wire::{Wire, WireError, WireRead};
use canopus_sim::NodeId;

/// Key type: the paper draws keys uniformly from a space of one million.
pub type Key = u64;

/// One client operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Write `value` to `key`.
    Put {
        /// The key.
        key: Key,
        /// The value (the paper uses 8-byte values: 16-byte kv pairs).
        value: Bytes,
    },
    /// Read `key`.
    Get {
        /// The key.
        key: Key,
    },
    /// `count` aggregated write requests of `op_bytes` each.
    SyntheticWrite {
        /// Number of client requests this batch represents.
        count: u32,
        /// Bytes per represented request (key + value).
        op_bytes: u16,
    },
    /// `count` aggregated read requests.
    SyntheticRead {
        /// Number of client requests this batch represents.
        count: u32,
    },
    /// An atomic multi-key write. In sharded deployments the touched keys
    /// may live on different shards; the anchor-shard protocol sequences
    /// the transaction in every touched shard's LOT and commits it
    /// all-or-nothing (see `canopus-core`'s `ShardEngine`).
    MultiPut {
        /// The writes, in client order. Must be non-empty.
        puts: Vec<(Key, Bytes)>,
    },
}

impl Op {
    /// Whether this operation mutates state (and must be ordered by
    /// consensus; reads are served locally in Canopus).
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Op::Put { .. } | Op::SyntheticWrite { .. } | Op::MultiPut { .. }
        )
    }

    /// The number of client requests this operation represents.
    pub fn weight(&self) -> u32 {
        match self {
            Op::Put { .. } | Op::Get { .. } => 1,
            Op::SyntheticWrite { count, .. } | Op::SyntheticRead { count } => *count,
            Op::MultiPut { .. } => 1,
        }
    }

    /// Bytes this operation contributes to a proposal's payload.
    pub fn payload_bytes(&self) -> usize {
        match self {
            Op::Put { value, .. } => 8 + value.len(),
            Op::Get { .. } => 8,
            Op::SyntheticWrite { count, op_bytes } => *count as usize * *op_bytes as usize,
            Op::SyntheticRead { count } => *count as usize * 8,
            Op::MultiPut { puts } => puts.iter().map(|(_, v)| 8 + v.len()).sum(),
        }
    }
}

impl Wire for Op {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Op::Put { key, value } => {
                0u8.encode(buf);
                key.encode(buf);
                value.encode(buf);
            }
            Op::Get { key } => {
                1u8.encode(buf);
                key.encode(buf);
            }
            Op::SyntheticWrite { count, op_bytes } => {
                2u8.encode(buf);
                count.encode(buf);
                op_bytes.encode(buf);
            }
            Op::SyntheticRead { count } => {
                3u8.encode(buf);
                count.encode(buf);
            }
            Op::MultiPut { puts } => {
                4u8.encode(buf);
                puts.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match buf.read_u8()? {
            0 => Ok(Op::Put {
                key: Key::decode(buf)?,
                value: Bytes::decode(buf)?,
            }),
            1 => Ok(Op::Get {
                key: Key::decode(buf)?,
            }),
            2 => Ok(Op::SyntheticWrite {
                count: u32::decode(buf)?,
                op_bytes: u16::decode(buf)?,
            }),
            3 => Ok(Op::SyntheticRead {
                count: u32::decode(buf)?,
            }),
            4 => Ok(Op::MultiPut {
                puts: Vec::<(Key, Bytes)>::decode(buf)?,
            }),
            _ => Err(WireError::Invalid("op tag")),
        }
    }
}

/// A client request as delivered to a protocol node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClientRequest {
    /// The client's process id — replies are sent here.
    pub client: NodeId,
    /// Client-assigned id, unique per client; replies echo it.
    pub op_id: u64,
    /// The operation.
    pub op: Op,
}

impl Wire for ClientRequest {
    fn encode(&self, buf: &mut BytesMut) {
        self.client.encode(buf);
        self.op_id.encode(buf);
        self.op.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(ClientRequest {
            client: NodeId::decode(buf)?,
            op_id: u64::decode(buf)?,
            op: Op::decode(buf)?,
        })
    }
}

/// Result carried in a [`ClientReply`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpResult {
    /// A write was committed.
    Written,
    /// A read completed with the value (or `None` for an absent key).
    Value(Option<Bytes>),
    /// A synthetic batch completed.
    Batch,
}

impl Wire for OpResult {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            OpResult::Written => 0u8.encode(buf),
            OpResult::Value(v) => {
                1u8.encode(buf);
                v.encode(buf);
            }
            OpResult::Batch => 2u8.encode(buf),
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match buf.read_u8()? {
            0 => Ok(OpResult::Written),
            1 => Ok(OpResult::Value(Option::<Bytes>::decode(buf)?)),
            2 => Ok(OpResult::Batch),
            _ => Err(WireError::Invalid("op result tag")),
        }
    }
}

/// A client write with its arrival time at the origin node (used by the
/// origin for completion-time accounting; other replicas ignore it).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimedOp {
    /// The client request.
    pub req: ClientRequest,
    /// Arrival time at the origin node.
    pub arrival: canopus_sim::Time,
}

impl Wire for TimedOp {
    fn encode(&self, buf: &mut BytesMut) {
        self.req.encode(buf);
        self.arrival.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(TimedOp {
            req: ClientRequest::decode(buf)?,
            arrival: canopus_sim::Time::decode(buf)?,
        })
    }
}

/// A protocol node's reply to a client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClientReply {
    /// Echo of the request's `op_id`.
    pub op_id: u64,
    /// Number of client requests completed (1, or the synthetic count).
    pub weight: u32,
    /// The result.
    pub result: OpResult,
}

impl Wire for ClientReply {
    fn encode(&self, buf: &mut BytesMut) {
        self.op_id.encode(buf);
        self.weight.encode(buf);
        self.result.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(ClientReply {
            op_id: u64::decode(buf)?,
            weight: u32::decode(buf)?,
            result: OpResult::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(Op::Put {
            key: 1,
            value: Bytes::from_static(b"v")
        }
        .is_write());
        assert!(!Op::Get { key: 1 }.is_write());
        assert!(Op::SyntheticWrite {
            count: 10,
            op_bytes: 16
        }
        .is_write());
        assert!(!Op::SyntheticRead { count: 10 }.is_write());
    }

    #[test]
    fn weights_and_bytes() {
        assert_eq!(Op::Get { key: 1 }.weight(), 1);
        assert_eq!(
            Op::SyntheticWrite {
                count: 500,
                op_bytes: 16
            }
            .weight(),
            500
        );
        assert_eq!(
            Op::SyntheticWrite {
                count: 500,
                op_bytes: 16
            }
            .payload_bytes(),
            8000
        );
        assert_eq!(
            Op::Put {
                key: 1,
                value: Bytes::from_static(b"12345678")
            }
            .payload_bytes(),
            16,
            "16-byte kv pair as in the paper"
        );
    }

    #[test]
    fn request_reply_round_trip() {
        let req = ClientRequest {
            client: NodeId(7),
            op_id: 99,
            op: Op::Put {
                key: 123,
                value: Bytes::from_static(b"abc"),
            },
        };
        assert_eq!(ClientRequest::from_bytes(req.to_bytes()).unwrap(), req);
        let reply = ClientReply {
            op_id: 99,
            weight: 1,
            result: OpResult::Value(Some(Bytes::from_static(b"abc"))),
        };
        assert_eq!(ClientReply::from_bytes(reply.to_bytes()).unwrap(), reply);
    }

    #[test]
    fn all_op_variants_round_trip() {
        for op in [
            Op::Put {
                key: u64::MAX,
                value: Bytes::new(),
            },
            Op::Get { key: 0 },
            Op::SyntheticWrite {
                count: 1000,
                op_bytes: 16,
            },
            Op::SyntheticRead { count: 1 },
            Op::MultiPut {
                puts: vec![(3, Bytes::from_static(b"abc")), (u64::MAX, Bytes::new())],
            },
        ] {
            assert_eq!(Op::from_bytes(op.to_bytes()).unwrap(), op);
        }
    }

    #[test]
    fn multi_put_classification() {
        let op = Op::MultiPut {
            puts: vec![
                (1, Bytes::from_static(b"12345678")),
                (2, Bytes::from_static(b"12345678")),
            ],
        };
        assert!(op.is_write());
        assert_eq!(op.weight(), 1, "one client request, many keys");
        assert_eq!(op.payload_bytes(), 32);
    }
}
