//! Shared CPU cost model for protocol nodes.
//!
//! All three protocol implementations charge the same classes of work to
//! the simulator's per-node CPU clock, so cross-protocol throughput
//! comparisons reflect protocol structure rather than differing cost
//! assumptions. Values model the paper's Xeon E5-2620 request-processing
//! costs; they cap per-node throughput exactly the way real marshaling
//! and syscall costs do.

use canopus_sim::Dur;

/// CPU costs charged by protocol nodes.
#[derive(Copy, Clone, Debug)]
pub struct CostModel {
    /// Cost to ingest one client request (parse, enqueue, bookkeeping).
    pub per_request: Dur,
    /// Cost to apply one committed write and emit the reply.
    pub per_commit: Dur,
    /// Cost to serve one read from local state.
    pub per_read: Dur,
    /// Extra cost per protocol message beyond the simulator's base cost.
    pub per_protocol_msg: Dur,
    /// Cost to persist one proposal batch to the log (0 = in-memory
    /// filesystem as in the paper's §8.1; ~100-500 us models an SSD fsync).
    pub storage_per_batch: Dur,
    /// Fixed cost to ingest an aggregated request (`SyntheticWrite` /
    /// `SyntheticRead` with weight > 1): one parse, one enqueue, one
    /// bookkeeping entry regardless of how many logical ops it stands for.
    pub per_request_batch: Dur,
    /// Marginal cost per logical op represented inside an aggregate. A
    /// synthetic batch decodes in O(1) (two integers), so the marginal
    /// cost is reply/latency accounting, not parsing — an order of
    /// magnitude below `per_request` (see `benches/micro.rs`,
    /// `ingest_amortization`).
    pub per_batched_op: Dur,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            per_request: Dur::nanos(1200),
            per_commit: Dur::nanos(1000),
            per_read: Dur::nanos(800),
            per_protocol_msg: Dur::micros(2),
            storage_per_batch: Dur::ZERO,
            per_request_batch: Dur::nanos(1500),
            per_batched_op: Dur::nanos(120),
        }
    }
}

impl CostModel {
    /// CPU cost to ingest one client request of the given weight.
    ///
    /// Weight-1 requests (real `Put`/`Get`) pay the full per-request cost.
    /// Aggregates pay a fixed batch cost plus a small per-op marginal,
    /// capped at the same 4096-op accounting ceiling the commit path uses,
    /// so ingest no longer charges a full parse per logical op that was
    /// never individually parsed.
    pub fn ingest_cost(&self, weight: u32) -> Dur {
        if weight <= 1 {
            self.per_request
        } else {
            self.per_request_batch + self.per_batched_op * u64::from(weight.min(4096))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive() {
        let c = CostModel::default();
        assert!(!c.per_request.is_zero());
        assert!(!c.per_commit.is_zero());
        assert!(!c.per_read.is_zero());
        assert!(c.storage_per_batch.is_zero());
    }

    #[test]
    fn ingest_is_amortized_for_aggregates() {
        let c = CostModel::default();
        assert_eq!(c.ingest_cost(1), c.per_request);
        // A 500-op aggregate must cost far less than 500 individual parses.
        assert!(c.ingest_cost(500) < c.per_request * 500);
        // But still more than a single request: the batch isn't free.
        assert!(c.ingest_cost(500) > c.per_request);
        // The per-op marginal saturates at the 4096 accounting cap.
        assert_eq!(c.ingest_cost(10_000), c.ingest_cost(4096));
    }
}
