//! Shared CPU cost model for protocol nodes.
//!
//! All three protocol implementations charge the same classes of work to
//! the simulator's per-node CPU clock, so cross-protocol throughput
//! comparisons reflect protocol structure rather than differing cost
//! assumptions. Values model the paper's Xeon E5-2620 request-processing
//! costs; they cap per-node throughput exactly the way real marshaling
//! and syscall costs do.

use canopus_sim::Dur;

/// CPU costs charged by protocol nodes.
#[derive(Copy, Clone, Debug)]
pub struct CostModel {
    /// Cost to ingest one client request (parse, enqueue, bookkeeping).
    pub per_request: Dur,
    /// Cost to apply one committed write and emit the reply.
    pub per_commit: Dur,
    /// Cost to serve one read from local state.
    pub per_read: Dur,
    /// Extra cost per protocol message beyond the simulator's base cost.
    pub per_protocol_msg: Dur,
    /// Cost to persist one proposal batch to the log (0 = in-memory
    /// filesystem as in the paper's §8.1; ~100-500 us models an SSD fsync).
    pub storage_per_batch: Dur,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            per_request: Dur::nanos(1200),
            per_commit: Dur::nanos(1000),
            per_read: Dur::nanos(800),
            per_protocol_msg: Dur::micros(2),
            storage_per_batch: Dur::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive() {
        let c = CostModel::default();
        assert!(!c.per_request.is_zero());
        assert!(!c.per_commit.is_zero());
        assert!(!c.per_read.is_zero());
        assert!(c.storage_per_batch.is_zero());
    }
}
