//! Consistency checkers used by the test suites.
//!
//! Three of the paper's correctness properties (§6) are checked mechanically
//! across this repository's integration and property tests:
//!
//! * **Agreement** — all correct nodes commit the same ordered sequence
//!   ([`check_agreement`]).
//! * **FIFO order of client requests** — replies to one client arrive in
//!   issue order ([`check_client_fifo`]).
//! * **Linearizability** — reads and writes are consistent with a total
//!   order that respects real-time ([`LinChecker`]): a read that returns
//!   version `v` of a key must overlap in real time with the window in
//!   which `v` was the latest committed version.

use std::collections::BTreeMap;

use canopus_sim::{NodeId, Time};

use crate::op::Key;

/// Result of a failed agreement check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Index of the first differing entry.
    pub index: usize,
    /// Which replica diverged from replica 0.
    pub replica: usize,
}

/// Verifies all replicas committed identical sequences. Shorter logs must
/// be prefixes of the longest (a lagging replica is fine; a diverging one
/// is not). Entries are compared with `Eq`.
pub fn check_agreement<T: Eq + std::fmt::Debug>(logs: &[Vec<T>]) -> Result<(), Divergence> {
    if logs.is_empty() {
        return Ok(());
    }
    let longest = logs.iter().map(|l| l.len()).max().unwrap_or(0);
    for index in 0..longest {
        let mut reference: Option<(&T, usize)> = None;
        for (replica, log) in logs.iter().enumerate() {
            if let Some(entry) = log.get(index) {
                match reference {
                    None => reference = Some((entry, replica)),
                    Some((r, _)) if r == entry => {}
                    Some(_) => return Err(Divergence { index, replica }),
                }
            }
        }
    }
    Ok(())
}

/// A reply observed by a client, for FIFO checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplyEvent {
    /// The client.
    pub client: NodeId,
    /// Issue order of the op at this client (client-assigned, increasing).
    pub op_id: u64,
    /// When the reply was received.
    pub at: Time,
}

/// Verifies each client's replies arrive in the order its requests were
/// issued (the paper's "FIFO order of client requests": if a node receives
/// `ra` before `rb`, it replies `ra` before `rb`). Returns the offending
/// pair on failure.
pub fn check_client_fifo(replies: &[ReplyEvent]) -> Result<(), (ReplyEvent, ReplyEvent)> {
    let mut last: BTreeMap<NodeId, ReplyEvent> = BTreeMap::new();
    for &event in replies {
        if let Some(&prev) = last.get(&event.client) {
            if event.op_id < prev.op_id {
                return Err((prev, event));
            }
        }
        last.insert(event.client, event);
    }
    Ok(())
}

/// A write observation: version `version` of `key` became the latest at
/// `committed` (commit order timestamps must be consistent across replicas,
/// which [`check_agreement`] establishes separately).
#[derive(Debug, Clone, Copy)]
pub struct WriteObs {
    /// Key written.
    pub key: Key,
    /// Version this write produced (1-based per key).
    pub version: u64,
    /// When the write was committed/applied.
    pub committed: Time,
}

/// A read observation: a client invoked a read of `key` at `invoke`,
/// received the response at `respond`, and observed `version` (0 = absent).
#[derive(Debug, Clone, Copy)]
pub struct ReadObs {
    /// Key read.
    pub key: Key,
    /// Observed version (0 if the key was absent).
    pub version: u64,
    /// Invocation time at the client.
    pub invoke: Time,
    /// Response time at the client.
    pub respond: Time,
}

/// A linearizability violation.
#[derive(Debug, Clone, Copy)]
pub struct LinViolation {
    /// The offending read.
    pub read: ReadObs,
    /// Why it is illegal.
    pub reason: LinReason,
}

/// Classification of a linearizability violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinReason {
    /// The read returned a version committed after the response time.
    FromTheFuture,
    /// The read returned a version already overwritten before the
    /// invocation time (a stale read).
    Stale,
    /// The read returned a version that was never written.
    NeverWritten,
}

/// Interval-based linearizability checker for versioned registers.
///
/// Sound for histories where every key's writes are totally ordered with
/// known commit times (exactly what a consensus commit log provides): a
/// read returning version `v` is legal iff the interval during which `v`
/// was latest — `[commit(v), commit(v+1))` — overlaps the read's
/// `[invoke, respond]` window. Version 0 (absent) is legal iff the first
/// write committed after the read was invoked (or never).
#[derive(Debug, Default)]
pub struct LinChecker {
    /// Per key: commit time of each version, indexed by `version - 1`.
    writes: BTreeMap<Key, Vec<Time>>,
}

impl LinChecker {
    /// New, empty checker.
    pub fn new() -> Self {
        LinChecker::default()
    }

    /// Records a committed write. Writes per key must be recorded in
    /// version order.
    pub fn record_write(&mut self, obs: WriteObs) {
        let versions = self.writes.entry(obs.key).or_default();
        assert_eq!(
            versions.len() as u64 + 1,
            obs.version,
            "writes must be recorded in version order for key {}",
            obs.key
        );
        versions.push(obs.committed);
    }

    /// Checks a read against the recorded writes.
    pub fn check_read(&self, read: ReadObs) -> Result<(), LinViolation> {
        let versions = self.writes.get(&read.key).map(Vec::as_slice).unwrap_or(&[]);
        if read.version == 0 {
            // Absent: legal iff the first write (if any) wasn't yet
            // committed when the read started... more precisely, the read
            // may linearize any point in [invoke, respond] before the first
            // commit.
            if let Some(&first) = versions.first() {
                if first <= read.invoke {
                    return Err(LinViolation {
                        read,
                        reason: LinReason::Stale,
                    });
                }
            }
            return Ok(());
        }
        let idx = (read.version - 1) as usize;
        let Some(&committed) = versions.get(idx) else {
            return Err(LinViolation {
                read,
                reason: LinReason::NeverWritten,
            });
        };
        if committed > read.respond {
            return Err(LinViolation {
                read,
                reason: LinReason::FromTheFuture,
            });
        }
        if let Some(&next) = versions.get(idx + 1) {
            if next <= read.invoke {
                return Err(LinViolation {
                    read,
                    reason: LinReason::Stale,
                });
            }
        }
        Ok(())
    }

    /// Checks a batch of reads, returning every violation.
    pub fn check_all(&self, reads: &[ReadObs]) -> Vec<LinViolation> {
        reads
            .iter()
            .filter_map(|&r| self.check_read(r).err())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canopus_sim::Dur;

    fn t(ms: u64) -> Time {
        Time::ZERO + Dur::millis(ms)
    }

    #[test]
    fn agreement_accepts_identical_and_prefixes() {
        let logs = vec![vec![1, 2, 3], vec![1, 2], vec![1, 2, 3]];
        assert!(check_agreement(&logs).is_ok());
    }

    #[test]
    fn agreement_rejects_divergence() {
        let logs = vec![vec![1, 2, 3], vec![1, 9, 3]];
        let err = check_agreement(&logs).unwrap_err();
        assert_eq!(err.index, 1);
        assert_eq!(err.replica, 1);
    }

    #[test]
    fn fifo_accepts_ordered_and_rejects_reordered() {
        let ok = vec![
            ReplyEvent {
                client: NodeId(1),
                op_id: 1,
                at: t(1),
            },
            ReplyEvent {
                client: NodeId(2),
                op_id: 5,
                at: t(1),
            },
            ReplyEvent {
                client: NodeId(1),
                op_id: 2,
                at: t(2),
            },
        ];
        assert!(check_client_fifo(&ok).is_ok());
        let bad = vec![
            ReplyEvent {
                client: NodeId(1),
                op_id: 2,
                at: t(1),
            },
            ReplyEvent {
                client: NodeId(1),
                op_id: 1,
                at: t(2),
            },
        ];
        assert!(check_client_fifo(&bad).is_err());
    }

    fn checker_with_two_writes() -> LinChecker {
        let mut c = LinChecker::new();
        c.record_write(WriteObs {
            key: 1,
            version: 1,
            committed: t(10),
        });
        c.record_write(WriteObs {
            key: 1,
            version: 2,
            committed: t(20),
        });
        c
    }

    #[test]
    fn legal_reads_pass() {
        let c = checker_with_two_writes();
        // Read overlapping v1's window.
        assert!(c
            .check_read(ReadObs {
                key: 1,
                version: 1,
                invoke: t(12),
                respond: t(15)
            })
            .is_ok());
        // Read of v1 spanning the v2 commit is fine (linearizes before 20).
        assert!(c
            .check_read(ReadObs {
                key: 1,
                version: 1,
                invoke: t(15),
                respond: t(25)
            })
            .is_ok());
        // Read of v2 starting before v2 commits is fine (linearizes after 20).
        assert!(c
            .check_read(ReadObs {
                key: 1,
                version: 2,
                invoke: t(15),
                respond: t(25)
            })
            .is_ok());
        // Absent read before any write.
        assert!(c
            .check_read(ReadObs {
                key: 1,
                version: 0,
                invoke: t(1),
                respond: t(5)
            })
            .is_ok());
        // Unwritten key.
        assert!(c
            .check_read(ReadObs {
                key: 99,
                version: 0,
                invoke: t(1),
                respond: t(100)
            })
            .is_ok());
    }

    #[test]
    fn stale_read_rejected() {
        let c = checker_with_two_writes();
        let err = c
            .check_read(ReadObs {
                key: 1,
                version: 1,
                invoke: t(21),
                respond: t(22),
            })
            .unwrap_err();
        assert_eq!(err.reason, LinReason::Stale);
        // Absent after the first commit is stale too.
        let err = c
            .check_read(ReadObs {
                key: 1,
                version: 0,
                invoke: t(11),
                respond: t(12),
            })
            .unwrap_err();
        assert_eq!(err.reason, LinReason::Stale);
    }

    #[test]
    fn future_read_rejected() {
        let c = checker_with_two_writes();
        let err = c
            .check_read(ReadObs {
                key: 1,
                version: 2,
                invoke: t(1),
                respond: t(5),
            })
            .unwrap_err();
        assert_eq!(err.reason, LinReason::FromTheFuture);
    }

    #[test]
    fn never_written_rejected() {
        let c = checker_with_two_writes();
        let err = c
            .check_read(ReadObs {
                key: 1,
                version: 7,
                invoke: t(1),
                respond: t(50),
            })
            .unwrap_err();
        assert_eq!(err.reason, LinReason::NeverWritten);
    }

    #[test]
    #[should_panic(expected = "version order")]
    fn out_of_order_write_recording_panics() {
        let mut c = LinChecker::new();
        c.record_write(WriteObs {
            key: 1,
            version: 2,
            committed: t(1),
        });
    }

    #[test]
    fn read_spanning_concurrent_writes_accepts_any_covered_version() {
        // Writes at t10 and t20; a read whose window covers both commit
        // points may linearize before v1, between v1 and v2, or after v2 —
        // versions 0, 1, and 2 are all legal.
        let c = checker_with_two_writes();
        for version in [0, 1, 2] {
            assert!(
                c.check_read(ReadObs {
                    key: 1,
                    version,
                    invoke: t(9),
                    respond: t(21),
                })
                .is_ok(),
                "version {version} must be legal for a window-spanning read"
            );
        }
    }

    #[test]
    fn read_overlapping_a_write_window_accepts_old_and_new() {
        // The read's window straddles exactly the v2 commit at t20: both
        // the pre-write and post-write value are linearizable outcomes.
        let c = checker_with_two_writes();
        for version in [1, 2] {
            assert!(c
                .check_read(ReadObs {
                    key: 1,
                    version,
                    invoke: t(19),
                    respond: t(21),
                })
                .is_ok());
        }
    }

    #[test]
    fn stale_read_exactly_at_version_boundary() {
        let c = checker_with_two_writes();
        // Invoked exactly when v2 committed (t20): v1 is already stale —
        // the boundary is inclusive (`next <= invoke`).
        let err = c
            .check_read(ReadObs {
                key: 1,
                version: 1,
                invoke: t(20),
                respond: t(22),
            })
            .unwrap_err();
        assert_eq!(err.reason, LinReason::Stale);
        // One nanosecond earlier the read may still linearize before v2.
        assert!(c
            .check_read(ReadObs {
                key: 1,
                version: 1,
                invoke: Time::ZERO + (Dur::millis(20) - Dur::nanos(1)),
                respond: t(22),
            })
            .is_ok());
        // Same inclusive boundary for the absent (version 0) case.
        let err = c
            .check_read(ReadObs {
                key: 1,
                version: 0,
                invoke: t(10),
                respond: t(12),
            })
            .unwrap_err();
        assert_eq!(err.reason, LinReason::Stale);
    }

    #[test]
    fn future_read_exactly_at_commit_boundary() {
        let c = checker_with_two_writes();
        // Responding exactly at the v2 commit instant is legal (the read
        // linearizes at its response point)…
        assert!(c
            .check_read(ReadObs {
                key: 1,
                version: 2,
                invoke: t(18),
                respond: t(20),
            })
            .is_ok());
        // …one nanosecond before it is not.
        let err = c
            .check_read(ReadObs {
                key: 1,
                version: 2,
                invoke: t(18),
                respond: Time::ZERO + (Dur::millis(20) - Dur::nanos(1)),
            })
            .unwrap_err();
        assert_eq!(err.reason, LinReason::FromTheFuture);
    }

    #[test]
    fn empty_history_check_all() {
        let c = LinChecker::new();
        // No reads, no writes: trivially linearizable.
        assert!(c.check_all(&[]).is_empty());
        // Absent reads against an empty history are always legal…
        assert!(c
            .check_all(&[ReadObs {
                key: 5,
                version: 0,
                invoke: t(1),
                respond: t(2),
            }])
            .is_empty());
        // …but observing a version that was never written is not.
        let violations = c.check_all(&[ReadObs {
            key: 5,
            version: 1,
            invoke: t(1),
            respond: t(2),
        }]);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].reason, LinReason::NeverWritten);
    }
}
