//! # canopus-epaxos — the EPaxos baseline
//!
//! A from-scratch implementation of Egalitarian Paxos (Moraru, Andersen,
//! Kaminsky — SOSP 2013), the decentralized state-of-the-art the Canopus
//! paper compares against in Figures 4, 6, and 7. Configured as in that
//! evaluation: request batching with a 5 ms (or 2 ms) window, thrifty
//! disabled, and zero command interference for the synthetic workloads.
//!
//! Implemented: the full failure-free commit protocol — PreAccept with
//! attribute merging, the fast path at quorum `F + ⌊(F+1)/2⌋`, the
//! Accept/slow path on conflicts, commit broadcast, and dependency-graph
//! execution with Tarjan SCCs. Reads travel through the protocol (unlike
//! Canopus). Not implemented: explicit-prepare recovery, which no figure
//! exercises (see DESIGN.md).

#![warn(missing_docs)]

pub mod graph;
pub mod msg;
pub mod node;

pub use msg::{CmdBatch, EpaxosMsg, InstanceId};
pub use node::{EpaxosConfig, EpaxosNode, EpaxosStats};
