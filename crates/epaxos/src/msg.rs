//! EPaxos wire messages and instance identifiers.

use bytes::{Bytes, BytesMut};
use canopus_kv::{ClientReply, ClientRequest, TimedOp};
use canopus_net::wire::{Wire, WireError, WireRead};
use canopus_sim::{NodeId, Payload};

/// Identifies one instance: slot `slot` in `replica`'s row of the
/// two-dimensional instance space.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct InstanceId {
    /// The command leader that owns the row.
    pub replica: NodeId,
    /// Slot within the row (1-based).
    pub slot: u64,
}

impl Wire for InstanceId {
    fn encode(&self, buf: &mut BytesMut) {
        self.replica.encode(buf);
        self.slot.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(InstanceId {
            replica: NodeId::decode(buf)?,
            slot: u64::decode(buf)?,
        })
    }
}

/// A batch of client operations proposed as one instance (EPaxos is run
/// with request batching in the paper: 5 ms or 2 ms windows).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CmdBatch {
    /// The operations, in arrival order. Unlike Canopus, reads travel
    /// through the protocol too (§2.2: "these protocols broadcast both
    /// read and write requests").
    pub ops: Vec<TimedOp>,
}

impl CmdBatch {
    /// Total client requests represented.
    pub fn weight(&self) -> u64 {
        self.ops.iter().map(|o| o.req.op.weight() as u64).sum()
    }

    /// Encoded payload size for network modelling.
    pub fn payload_bytes(&self) -> usize {
        self.ops
            .iter()
            .map(|o| o.req.op.payload_bytes() + 21)
            .sum::<usize>()
    }

    /// The write keys this batch touches (interference set).
    pub fn write_keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.ops.iter().filter_map(|o| match &o.req.op {
            canopus_kv::Op::Put { key, .. } => Some(*key),
            _ => None,
        })
    }
}

impl Wire for CmdBatch {
    fn encode(&self, buf: &mut BytesMut) {
        self.ops.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(CmdBatch {
            ops: Vec::<TimedOp>::decode(buf)?,
        })
    }
}

/// EPaxos protocol messages.
#[derive(Clone, Debug, PartialEq)]
pub enum EpaxosMsg {
    /// Client submits an operation.
    Request(ClientRequest),
    /// Node answers a client.
    Reply(ClientReply),
    /// Phase 1: command leader proposes attributes to the fast quorum.
    PreAccept {
        /// The instance.
        inst: InstanceId,
        /// The command batch.
        batch: CmdBatch,
        /// Proposed sequence number.
        seq: u64,
        /// Proposed dependencies.
        deps: Vec<InstanceId>,
    },
    /// Phase 1 reply with the replica's merged attributes.
    PreAcceptOk {
        /// The instance.
        inst: InstanceId,
        /// Merged sequence number.
        seq: u64,
        /// Merged dependencies.
        deps: Vec<InstanceId>,
        /// Whether the replica changed the leader's attributes.
        changed: bool,
    },
    /// Phase 2 (slow path): leader fixes the final attributes.
    Accept {
        /// The instance.
        inst: InstanceId,
        /// The command batch (for replicas that missed PreAccept).
        batch: CmdBatch,
        /// Final sequence number.
        seq: u64,
        /// Final dependencies.
        deps: Vec<InstanceId>,
    },
    /// Phase 2 acknowledgement.
    AcceptOk {
        /// The instance.
        inst: InstanceId,
    },
    /// Commit notification, broadcast to all replicas.
    Commit {
        /// The instance.
        inst: InstanceId,
        /// The command batch.
        batch: CmdBatch,
        /// Final sequence number.
        seq: u64,
        /// Final dependencies.
        deps: Vec<InstanceId>,
    },
}

impl Payload for EpaxosMsg {
    fn wire_size(&self) -> usize {
        match self {
            EpaxosMsg::Request(r) => 1 + 13 + r.op.payload_bytes().min(64),
            EpaxosMsg::Reply(_) => 1 + 14,
            EpaxosMsg::PreAccept { batch, deps, .. } => {
                1 + 20 + batch.payload_bytes() + deps.len() * 12
            }
            EpaxosMsg::PreAcceptOk { deps, .. } => 1 + 21 + deps.len() * 12,
            EpaxosMsg::Accept { batch, deps, .. } => {
                1 + 20 + batch.payload_bytes() + deps.len() * 12
            }
            EpaxosMsg::AcceptOk { .. } => 1 + 12,
            EpaxosMsg::Commit { batch, deps, .. } => {
                1 + 20 + batch.payload_bytes() + deps.len() * 12
            }
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            EpaxosMsg::Request(_) => "request",
            EpaxosMsg::Reply(_) => "reply",
            EpaxosMsg::PreAccept { .. } => "pre_accept",
            EpaxosMsg::PreAcceptOk { .. } => "pre_accept_ok",
            EpaxosMsg::Accept { .. } => "accept",
            EpaxosMsg::AcceptOk { .. } => "accept_ok",
            EpaxosMsg::Commit { .. } => "commit",
        }
    }
}

impl Wire for EpaxosMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            EpaxosMsg::Request(r) => {
                0u8.encode(buf);
                r.encode(buf);
            }
            EpaxosMsg::Reply(r) => {
                1u8.encode(buf);
                r.encode(buf);
            }
            EpaxosMsg::PreAccept {
                inst,
                batch,
                seq,
                deps,
            } => {
                2u8.encode(buf);
                inst.encode(buf);
                batch.encode(buf);
                seq.encode(buf);
                deps.encode(buf);
            }
            EpaxosMsg::PreAcceptOk {
                inst,
                seq,
                deps,
                changed,
            } => {
                3u8.encode(buf);
                inst.encode(buf);
                seq.encode(buf);
                deps.encode(buf);
                changed.encode(buf);
            }
            EpaxosMsg::Accept {
                inst,
                batch,
                seq,
                deps,
            } => {
                4u8.encode(buf);
                inst.encode(buf);
                batch.encode(buf);
                seq.encode(buf);
                deps.encode(buf);
            }
            EpaxosMsg::AcceptOk { inst } => {
                5u8.encode(buf);
                inst.encode(buf);
            }
            EpaxosMsg::Commit {
                inst,
                batch,
                seq,
                deps,
            } => {
                6u8.encode(buf);
                inst.encode(buf);
                batch.encode(buf);
                seq.encode(buf);
                deps.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match buf.read_u8()? {
            0 => Ok(EpaxosMsg::Request(ClientRequest::decode(buf)?)),
            1 => Ok(EpaxosMsg::Reply(ClientReply::decode(buf)?)),
            2 => Ok(EpaxosMsg::PreAccept {
                inst: InstanceId::decode(buf)?,
                batch: CmdBatch::decode(buf)?,
                seq: u64::decode(buf)?,
                deps: Vec::<InstanceId>::decode(buf)?,
            }),
            3 => Ok(EpaxosMsg::PreAcceptOk {
                inst: InstanceId::decode(buf)?,
                seq: u64::decode(buf)?,
                deps: Vec::<InstanceId>::decode(buf)?,
                changed: bool::decode(buf)?,
            }),
            4 => Ok(EpaxosMsg::Accept {
                inst: InstanceId::decode(buf)?,
                batch: CmdBatch::decode(buf)?,
                seq: u64::decode(buf)?,
                deps: Vec::<InstanceId>::decode(buf)?,
            }),
            5 => Ok(EpaxosMsg::AcceptOk {
                inst: InstanceId::decode(buf)?,
            }),
            6 => Ok(EpaxosMsg::Commit {
                inst: InstanceId::decode(buf)?,
                batch: CmdBatch::decode(buf)?,
                seq: u64::decode(buf)?,
                deps: Vec::<InstanceId>::decode(buf)?,
            }),
            _ => Err(WireError::Invalid("epaxos msg tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canopus_kv::Op;
    use canopus_sim::Time;

    fn sample_batch() -> CmdBatch {
        CmdBatch {
            ops: vec![TimedOp {
                req: ClientRequest {
                    client: NodeId(9),
                    op_id: 3,
                    op: Op::Put {
                        key: 7,
                        value: Bytes::from_static(b"12345678"),
                    },
                },
                arrival: Time::from_nanos(100),
            }],
        }
    }

    #[test]
    fn all_variants_round_trip() {
        let inst = InstanceId {
            replica: NodeId(2),
            slot: 5,
        };
        let deps = vec![InstanceId {
            replica: NodeId(1),
            slot: 4,
        }];
        let msgs = vec![
            EpaxosMsg::Request(ClientRequest {
                client: NodeId(9),
                op_id: 1,
                op: Op::Get { key: 7 },
            }),
            EpaxosMsg::PreAccept {
                inst,
                batch: sample_batch(),
                seq: 9,
                deps: deps.clone(),
            },
            EpaxosMsg::PreAcceptOk {
                inst,
                seq: 10,
                deps: deps.clone(),
                changed: true,
            },
            EpaxosMsg::Accept {
                inst,
                batch: sample_batch(),
                seq: 10,
                deps: deps.clone(),
            },
            EpaxosMsg::AcceptOk { inst },
            EpaxosMsg::Commit {
                inst,
                batch: sample_batch(),
                seq: 10,
                deps,
            },
        ];
        for msg in msgs {
            assert_eq!(EpaxosMsg::from_bytes(msg.to_bytes()).unwrap(), msg);
        }
    }

    #[test]
    fn batch_attributes() {
        let b = sample_batch();
        assert_eq!(b.weight(), 1);
        assert_eq!(b.write_keys().collect::<Vec<_>>(), vec![7]);
        assert!(b.payload_bytes() > 16);
    }
}
