//! Dependency-graph execution: Tarjan's strongly connected components.
//!
//! EPaxos executes committed instances by building the dependency graph,
//! collapsing strongly connected components, and executing components in
//! reverse topological order, ordering instances within a component by
//! sequence number (Moraru et al., SOSP'13 §4.4). With the paper's 0 %
//! command interference almost every instance is its own component, but the
//! machinery must exist — and is property-tested here — for the general
//! case.

use std::collections::{BTreeMap, BTreeSet};

use crate::msg::InstanceId;

/// A node in the execution graph: its dependencies and sequence number.
#[derive(Clone, Debug)]
pub struct GraphNode {
    /// Dependencies (edges point at what must execute first, cycles allowed).
    pub deps: Vec<InstanceId>,
    /// Sequence number for intra-component ordering.
    pub seq: u64,
}

/// Computes the execution order for `ready`, a set of committed instances
/// whose transitive committed dependencies are all present in `ready` or
/// already `executed`.
///
/// Returns instances in execution order: strongly connected components in
/// reverse topological order; within a component, ascending `(seq, id)`.
pub fn execution_order(
    ready: &BTreeMap<InstanceId, GraphNode>,
    executed: &BTreeSet<InstanceId>,
) -> Vec<InstanceId> {
    Tarjan::run(ready, executed)
}

struct Tarjan<'a> {
    ready: &'a BTreeMap<InstanceId, GraphNode>,
    executed: &'a BTreeSet<InstanceId>,
    index: BTreeMap<InstanceId, usize>,
    lowlink: BTreeMap<InstanceId, usize>,
    on_stack: BTreeSet<InstanceId>,
    stack: Vec<InstanceId>,
    next_index: usize,
    /// Components in completion order (= reverse topological order).
    components: Vec<Vec<InstanceId>>,
}

impl<'a> Tarjan<'a> {
    fn run(
        ready: &'a BTreeMap<InstanceId, GraphNode>,
        executed: &'a BTreeSet<InstanceId>,
    ) -> Vec<InstanceId> {
        let mut t = Tarjan {
            ready,
            executed,
            index: BTreeMap::new(),
            lowlink: BTreeMap::new(),
            on_stack: BTreeSet::new(),
            stack: Vec::new(),
            next_index: 0,
            components: Vec::new(),
        };
        for &v in ready.keys() {
            if !t.index.contains_key(&v) {
                t.strongconnect(v);
            }
        }
        let mut order = Vec::new();
        for mut component in std::mem::take(&mut t.components) {
            component.sort_by_key(|id| (ready[id].seq, *id));
            order.extend(component);
        }
        order
    }

    /// Iterative Tarjan (explicit stack) to stay safe on deep chains.
    fn strongconnect(&mut self, root: InstanceId) {
        enum Frame {
            Enter(InstanceId),
            Resume(InstanceId, usize),
        }
        let mut work = vec![Frame::Enter(root)];
        while let Some(frame) = work.pop() {
            match frame {
                Frame::Enter(v) => {
                    if self.index.contains_key(&v) {
                        continue;
                    }
                    self.index.insert(v, self.next_index);
                    self.lowlink.insert(v, self.next_index);
                    self.next_index += 1;
                    self.stack.push(v);
                    self.on_stack.insert(v);
                    work.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, child_idx) => {
                    let deps = &self.ready[&v].deps;
                    let mut next_child = child_idx;
                    let mut descended = false;
                    while next_child < deps.len() {
                        let w = deps[next_child];
                        next_child += 1;
                        if self.executed.contains(&w) || !self.ready.contains_key(&w) {
                            continue; // satisfied or not yet committed here
                        }
                        match self.index.get(&w) {
                            None => {
                                work.push(Frame::Resume(v, next_child));
                                work.push(Frame::Enter(w));
                                descended = true;
                                break;
                            }
                            Some(&wi) => {
                                if self.on_stack.contains(&w) {
                                    let low = self.lowlink[&v].min(wi);
                                    self.lowlink.insert(v, low);
                                }
                            }
                        }
                    }
                    if descended {
                        continue;
                    }
                    // All children done: fold lowlinks of finished children.
                    for w in deps {
                        if self.on_stack.contains(w) {
                            let low = self.lowlink[&v].min(self.lowlink[w]);
                            self.lowlink.insert(v, low);
                        }
                    }
                    if self.lowlink[&v] == self.index[&v] {
                        let mut component = Vec::new();
                        while let Some(w) = self.stack.pop() {
                            self.on_stack.remove(&w);
                            component.push(w);
                            if w == v {
                                break;
                            }
                        }
                        self.components.push(component);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canopus_sim::NodeId;

    fn iid(r: u32, s: u64) -> InstanceId {
        InstanceId {
            replica: NodeId(r),
            slot: s,
        }
    }

    fn graph(edges: &[(InstanceId, &[InstanceId], u64)]) -> BTreeMap<InstanceId, GraphNode> {
        edges
            .iter()
            .map(|(id, deps, seq)| {
                (
                    *id,
                    GraphNode {
                        deps: deps.to_vec(),
                        seq: *seq,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn independent_instances_execute_in_seq_id_order() {
        let g = graph(&[
            (iid(0, 1), &[], 1),
            (iid(1, 1), &[], 1),
            (iid(2, 1), &[], 2),
        ]);
        let order = execution_order(&g, &BTreeSet::new());
        // Components are singletons; overall relative order of independent
        // components follows discovery, but each must be present exactly once.
        assert_eq!(order.len(), 3);
        let set: BTreeSet<_> = order.iter().copied().collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn chain_executes_dependency_first() {
        // b depends on a; c depends on b.
        let a = iid(0, 1);
        let b = iid(1, 1);
        let c = iid(2, 1);
        let g = graph(&[(a, &[], 1), (b, &[a], 2), (c, &[b], 3)]);
        let order = execution_order(&g, &BTreeSet::new());
        let pos = |x: InstanceId| order.iter().position(|&y| y == x).unwrap();
        assert!(pos(a) < pos(b));
        assert!(pos(b) < pos(c));
    }

    #[test]
    fn cycle_breaks_by_seq() {
        // a <-> b mutual deps (the classic interference cycle).
        let a = iid(0, 1);
        let b = iid(1, 1);
        let g = graph(&[(a, &[b], 5), (b, &[a], 3)]);
        let order = execution_order(&g, &BTreeSet::new());
        assert_eq!(order, vec![b, a], "lower seq first within the component");
    }

    #[test]
    fn executed_deps_are_satisfied() {
        let a = iid(0, 1);
        let b = iid(1, 1);
        let g = graph(&[(b, &[a], 2)]);
        let mut executed = BTreeSet::new();
        executed.insert(a);
        let order = execution_order(&g, &executed);
        assert_eq!(order, vec![b]);
    }

    #[test]
    fn diamond_topology() {
        let a = iid(0, 1);
        let b = iid(1, 1);
        let c = iid(2, 1);
        let d = iid(3, 1);
        let g = graph(&[(a, &[], 1), (b, &[a], 2), (c, &[a], 2), (d, &[b, c], 3)]);
        let order = execution_order(&g, &BTreeSet::new());
        let pos = |x: InstanceId| order.iter().position(|&y| y == x).unwrap();
        assert!(pos(a) < pos(b) && pos(a) < pos(c));
        assert!(pos(b) < pos(d) && pos(c) < pos(d));
    }

    #[test]
    fn large_cycle_single_component() {
        // 0 -> 1 -> 2 -> ... -> 9 -> 0
        let ids: Vec<InstanceId> = (0..10).map(|i| iid(i, 1)).collect();
        let mut edges: Vec<(InstanceId, Vec<InstanceId>, u64)> = Vec::new();
        for i in 0..10usize {
            edges.push((ids[i], vec![ids[(i + 1) % 10]], (10 - i) as u64));
        }
        let g: BTreeMap<InstanceId, GraphNode> = edges
            .into_iter()
            .map(|(id, deps, seq)| (id, GraphNode { deps, seq }))
            .collect();
        let order = execution_order(&g, &BTreeSet::new());
        assert_eq!(order.len(), 10);
        // All in one component: ordered by (seq, id): seq 1 is ids[9].
        assert_eq!(order[0], ids[9]);
    }
}
