//! The EPaxos replica (Moraru et al., SOSP'13), as configured in the
//! Canopus paper's evaluation: request batching (5 ms or 2 ms windows),
//! thrifty off (PreAccepts go to every replica), and ~0 % command
//! interference for synthetic workloads.
//!
//! Every replica is the command leader for its own clients. A command goes
//! through PreAccept → (fast-path commit | Accept → slow-path commit) and
//! is then broadcast to all replicas — the topology-oblivious all-to-all
//! dissemination whose cost Figure 4 and Figure 6 of the Canopus paper
//! measure. Reads travel through the protocol like writes (§2.2 of the
//! paper: decentralized protocols "broadcast both read and write
//! requests").
//!
//! Scope: the failure-free path only. Explicit-prepare recovery is not
//! implemented because no benchmark or comparison in the paper exercises
//! EPaxos under replica failure (see DESIGN.md substitutions).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use canopus_kv::{ClientReply, CostModel, Key, KvStore, Op, OpResult, TimedOp};
use canopus_obs::{Counter, EventKind as ObsEvent, Gauge, NodeObs};
use canopus_sim::{impl_process_any, Context, Dur, NodeId, Process, Time, Timer};

use crate::graph::{execution_order, GraphNode};
use crate::msg::{CmdBatch, EpaxosMsg, InstanceId};

const BATCH_TIMER: u64 = 1;

/// EPaxos replica configuration.
#[derive(Clone, Debug)]
pub struct EpaxosConfig {
    /// Batching window: requests wait up to this long to form an instance
    /// (the paper evaluates 5 ms and 2 ms).
    pub batch_duration: Dur,
    /// CPU cost model (shared with the other protocols).
    pub costs: CostModel,
    /// Record per-key write order for consistency checks.
    pub record_log: bool,
}

impl Default for EpaxosConfig {
    fn default() -> Self {
        EpaxosConfig {
            batch_duration: Dur::millis(5),
            costs: CostModel::default(),
            record_log: true,
        }
    }
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Status {
    PreAccepted,
    Accepted,
    Committed,
    Executed,
}

#[derive(Debug)]
struct Instance {
    batch: CmdBatch,
    seq: u64,
    deps: Vec<InstanceId>,
    status: Status,
    /// Leader-side phase bookkeeping.
    is_local: bool,
    preaccept_replies: u32,
    any_changed: bool,
    merged_seq: u64,
    merged_deps: BTreeSet<InstanceId>,
    accept_replies: u32,
}

/// Counters exposed by every replica.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct EpaxosStats {
    /// Instances this replica led to commit.
    pub led_commits: u64,
    /// Fast-path commits among them.
    pub fast_path: u64,
    /// Slow-path commits among them.
    pub slow_path: u64,
    /// Client requests executed (weighted, all leaders).
    pub executed_weight: u64,
    /// Requests from this replica's own clients completed (weighted).
    pub own_completed: u64,
}

/// Observability handles, pre-registered so the hot path never does a
/// name lookup. All handles are inert when the hub is disabled.
struct EpaxosObs {
    hub: NodeObs,
    led_commits: Counter,
    fast_path: Counter,
    slow_path: Counter,
    exec_backlog: Gauge,
}

impl EpaxosObs {
    fn from_hub(hub: NodeObs) -> Self {
        EpaxosObs {
            led_commits: hub.metrics.counter("epaxos.led_commits"),
            fast_path: hub.metrics.counter("epaxos.fast_path"),
            slow_path: hub.metrics.counter("epaxos.slow_path"),
            exec_backlog: hub.metrics.gauge("epaxos.exec_backlog"),
            hub,
        }
    }
}

/// One EPaxos replica.
pub struct EpaxosNode {
    cfg: EpaxosConfig,
    me: NodeId,
    replicas: Vec<NodeId>,
    pending: VecDeque<TimedOp>,
    next_slot: u64,
    instances: BTreeMap<InstanceId, Instance>,
    /// Interference tracking: per key, the latest instance and its seq.
    key_info: BTreeMap<Key, (InstanceId, u64)>,
    executed: BTreeSet<InstanceId>,
    /// Committed-but-unexecuted instances awaiting dependencies.
    blocked: BTreeMap<InstanceId, GraphNode>,
    store: KvStore,
    stats: EpaxosStats,
    obs: EpaxosObs,
    /// Per-key write order with local execution times, for cross-replica
    /// and linearizability checks.
    write_log: BTreeMap<Key, Vec<(NodeId, u64, Time)>>,
}

impl EpaxosNode {
    /// Creates a replica. `replicas` must list the whole group, including
    /// `me`, identically at every member.
    pub fn new(me: NodeId, replicas: Vec<NodeId>, cfg: EpaxosConfig) -> Self {
        assert!(replicas.contains(&me));
        let mut replicas = replicas;
        replicas.sort_unstable();
        replicas.dedup();
        EpaxosNode {
            cfg,
            me,
            replicas,
            pending: VecDeque::new(),
            next_slot: 0,
            instances: BTreeMap::new(),
            key_info: BTreeMap::new(),
            executed: BTreeSet::new(),
            blocked: BTreeMap::new(),
            store: KvStore::new(),
            stats: EpaxosStats::default(),
            obs: EpaxosObs::from_hub(NodeObs::disabled()),
            write_log: BTreeMap::new(),
        }
    }

    /// Attaches an observability hub (metrics registry + flight recorder).
    pub fn with_obs(mut self, hub: NodeObs) -> Self {
        self.obs = EpaxosObs::from_hub(hub);
        self
    }

    /// The node's observability hub.
    pub fn obs(&self) -> &NodeObs {
        &self.obs.hub
    }

    /// This replica's id.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// Current counters.
    pub fn stats(&self) -> EpaxosStats {
        self.stats
    }

    /// The replicated store.
    pub fn store(&self) -> &KvStore {
        &self.store
    }

    /// Per-key write order, for consistency checks (EPaxos guarantees
    /// identical order only for interfering commands, so cross-replica
    /// agreement is per key, not over the whole sequence). Builds a fresh
    /// map with the per-replica execution times stripped (they differ
    /// across replicas and would defeat equality checks) — cold-path only;
    /// hot consumers should use [`Self::write_log_timed`].
    pub fn write_log(&self) -> BTreeMap<Key, Vec<(NodeId, u64)>> {
        self.write_log
            .iter()
            .map(|(&k, v)| (k, v.iter().map(|&(c, id, _)| (c, id)).collect()))
            .collect()
    }

    /// Per-key write order with this replica's execution times (the chaos
    /// verdict uses the earliest time any replica executed a version as its
    /// visibility lower bound).
    pub fn write_log_timed(&self) -> &BTreeMap<Key, Vec<(NodeId, u64, Time)>> {
        &self.write_log
    }

    fn n(&self) -> usize {
        self.replicas.len()
    }

    /// Fast-quorum size: `F + floor((F+1)/2)` for `N = 2F+1`.
    fn fast_quorum(&self) -> usize {
        let f = (self.n() - 1) / 2;
        f + f.div_ceil(2)
    }

    fn majority(&self) -> usize {
        self.n() / 2 + 1
    }

    fn others(&self) -> impl Iterator<Item = NodeId> + '_ {
        let me = self.me;
        self.replicas.iter().copied().filter(move |&r| r != me)
    }

    /// Computes this replica's interference attributes for `batch` and
    /// updates its key tracking assuming the instance takes them.
    fn attributes_for(&mut self, inst: InstanceId, batch: &CmdBatch) -> (u64, Vec<InstanceId>) {
        let mut deps: BTreeSet<InstanceId> = BTreeSet::new();
        let mut seq = 1;
        let mut touched_for_write: Vec<Key> = Vec::new();
        for op in &batch.ops {
            let key = match &op.req.op {
                Op::Put { key, .. } => {
                    touched_for_write.push(*key);
                    Some(*key)
                }
                Op::Get { key } => Some(*key),
                Op::MultiPut { puts } => {
                    // Interferes on every touched key; fold all but the
                    // first into the write set here and let the shared
                    // path below handle the first.
                    for (k, _) in puts.iter().skip(1) {
                        touched_for_write.push(*k);
                    }
                    puts.first().map(|(k, _)| {
                        touched_for_write.push(*k);
                        *k
                    })
                }
                _ => None, // synthetic: zero interference, as in the paper
            };
            if let Some(key) = key {
                if let Some(&(last, last_seq)) = self.key_info.get(&key) {
                    if last != inst {
                        deps.insert(last);
                        seq = seq.max(last_seq + 1);
                    }
                }
            }
        }
        for key in touched_for_write {
            self.key_info.insert(key, (inst, seq));
        }
        (seq, deps.into_iter().collect())
    }

    /// Leader: opens a new instance for the pending batch.
    fn propose_batch(&mut self, ctx: &mut Context<'_, EpaxosMsg>) {
        if self.pending.is_empty() {
            return;
        }
        self.next_slot += 1;
        let inst = InstanceId {
            replica: self.me,
            slot: self.next_slot,
        };
        let batch = CmdBatch {
            ops: self.pending.drain(..).collect(),
        };
        let (seq, deps) = self.attributes_for(inst, &batch);
        if !self.cfg.costs.storage_per_batch.is_zero() {
            ctx.charge(self.cfg.costs.storage_per_batch);
        }
        let record = Instance {
            batch: batch.clone(),
            seq,
            deps: deps.clone(),
            status: Status::PreAccepted,
            is_local: true,
            preaccept_replies: 0,
            any_changed: false,
            merged_seq: seq,
            merged_deps: deps.iter().copied().collect(),
            accept_replies: 0,
        };
        self.instances.insert(inst, record);
        if self.n() == 1 {
            self.commit(inst, ctx);
            return;
        }
        for peer in self.others().collect::<Vec<_>>() {
            ctx.send(
                peer,
                EpaxosMsg::PreAccept {
                    inst,
                    batch: batch.clone(),
                    seq,
                    deps: deps.clone(),
                },
            );
        }
    }

    fn commit(&mut self, inst: InstanceId, ctx: &mut Context<'_, EpaxosMsg>) {
        let (batch, seq, deps) = {
            let i = self.instances.get_mut(&inst).expect("instance exists");
            i.status = Status::Committed;
            (i.batch.clone(), i.seq, i.deps.clone())
        };
        self.stats.led_commits += 1;
        self.obs.led_commits.inc();
        self.obs.hub.event(
            ctx.now().as_nanos(),
            ObsEvent::Commit {
                cycle: inst.slot,
                weight: batch.weight(),
            },
        );
        // Reply to writes at commit (reads reply at execution, with data).
        let write_replies: Vec<(NodeId, ClientReply)> = batch
            .ops
            .iter()
            .filter(|op| op.req.op.is_write())
            .map(|op| {
                let weight = op.req.op.weight();
                let result = match op.req.op {
                    Op::Put { .. } | Op::MultiPut { .. } => OpResult::Written,
                    _ => OpResult::Batch,
                };
                (
                    op.req.client,
                    ClientReply {
                        op_id: op.req.op_id,
                        weight,
                        result,
                    },
                )
            })
            .collect();
        for (client, reply) in write_replies {
            self.stats.own_completed += reply.weight as u64;
            ctx.send(client, EpaxosMsg::Reply(reply));
        }
        for peer in self.others().collect::<Vec<_>>() {
            ctx.send(
                peer,
                EpaxosMsg::Commit {
                    inst,
                    batch: batch.clone(),
                    seq,
                    deps: deps.clone(),
                },
            );
        }
        self.try_execute(ctx);
    }

    /// Executes committed instances whose dependency closure is satisfied.
    ///
    /// Fast path: under the paper's ~0 % interference, almost every
    /// committed instance has only executed (or no) dependencies and runs
    /// immediately. Instances with unexecuted deps park in `blocked`; each
    /// execution retries them, and a full Tarjan pass over the (tiny)
    /// blocked pool resolves genuine dependency cycles.
    fn try_execute(&mut self, ctx: &mut Context<'_, EpaxosMsg>) {
        // Move newly committed instances into the candidate pool.
        let newly: Vec<InstanceId> = self
            .instances
            .iter()
            .filter(|(id, i)| i.status == Status::Committed && !self.blocked.contains_key(id))
            .map(|(&id, _)| id)
            .collect();
        for id in newly {
            let inst = &self.instances[&id];
            self.blocked.insert(
                id,
                GraphNode {
                    deps: inst.deps.clone(),
                    seq: inst.seq,
                },
            );
        }
        // Fixpoint: execute anything whose deps are all executed.
        loop {
            let runnable: Vec<InstanceId> = self
                .blocked
                .iter()
                .filter(|(_, node)| node.deps.iter().all(|d| self.executed.contains(d)))
                .map(|(&id, _)| id)
                .collect();
            if runnable.is_empty() {
                break;
            }
            for id in runnable {
                self.blocked.remove(&id);
                self.execute_one(id, ctx);
            }
        }
        // Cycles (mutual interference) defeat the fixpoint: run Tarjan on
        // the remaining pool, executing components whose external deps are
        // all satisfied and all members committed.
        if self.blocked.is_empty() {
            return;
        }
        let all_committed_pool: BTreeMap<InstanceId, GraphNode> = self.blocked.clone();
        let order = execution_order(&all_committed_pool, &self.executed);
        let mut deferred: BTreeSet<InstanceId> = BTreeSet::new();
        for id in order {
            let node = &all_committed_pool[&id];
            let blocked = node.deps.iter().any(|d| {
                if self.executed.contains(d) {
                    return false;
                }
                if deferred.contains(d) {
                    return true;
                }
                match self.instances.get(d) {
                    Some(i) => !(i.status == Status::Committed || i.status == Status::Executed),
                    None => true, // never seen: certainly uncommitted
                }
            });
            if blocked {
                deferred.insert(id);
                continue;
            }
            self.blocked.remove(&id);
            self.execute_one(id, ctx);
        }
    }

    fn execute_one(&mut self, id: InstanceId, ctx: &mut Context<'_, EpaxosMsg>) {
        let is_local = {
            let inst = self.instances.get_mut(&id).expect("exists");
            inst.status = Status::Executed;
            inst.is_local
        };
        let ops = self.instances[&id].batch.ops.clone();
        for op in &ops {
            let weight = op.req.op.weight();
            ctx.charge(Dur::nanos(
                self.cfg.costs.per_commit.as_nanos() * weight.min(4096) as u64,
            ));
            self.stats.executed_weight += weight as u64;
            match &op.req.op {
                Op::Put { key, value } => {
                    self.store.put(*key, value.clone());
                    if self.cfg.record_log {
                        self.write_log.entry(*key).or_default().push((
                            op.req.client,
                            op.req.op_id,
                            ctx.now(),
                        ));
                    }
                }
                Op::Get { key } => {
                    if is_local {
                        let value = self.store.get_value(*key);
                        self.stats.own_completed += weight as u64;
                        ctx.send(
                            op.req.client,
                            EpaxosMsg::Reply(ClientReply {
                                op_id: op.req.op_id,
                                weight,
                                result: OpResult::Value(value),
                            }),
                        );
                    }
                }
                Op::MultiPut { puts } => {
                    for (key, value) in puts {
                        self.store.put(*key, value.clone());
                        if self.cfg.record_log {
                            self.write_log.entry(*key).or_default().push((
                                op.req.client,
                                op.req.op_id,
                                ctx.now(),
                            ));
                        }
                    }
                }
                Op::SyntheticWrite { .. } => {}
                Op::SyntheticRead { .. } => {
                    if is_local {
                        self.stats.own_completed += weight as u64;
                        ctx.send(
                            op.req.client,
                            EpaxosMsg::Reply(ClientReply {
                                op_id: op.req.op_id,
                                weight,
                                result: OpResult::Batch,
                            }),
                        );
                    }
                }
            }
        }
        self.executed.insert(id);
    }

    fn handle_preaccept(
        &mut self,
        from: NodeId,
        inst: InstanceId,
        batch: CmdBatch,
        seq: u64,
        deps: Vec<InstanceId>,
        ctx: &mut Context<'_, EpaxosMsg>,
    ) {
        let (my_seq, my_deps) = self.attributes_for(inst, &batch);
        let mut merged: BTreeSet<InstanceId> = deps.iter().copied().collect();
        merged.extend(my_deps.iter().copied());
        let merged_seq = seq.max(my_seq);
        let merged_deps: Vec<InstanceId> = merged.into_iter().collect();
        let changed = merged_seq != seq || merged_deps != deps;
        self.instances.insert(
            inst,
            Instance {
                batch,
                seq: merged_seq,
                deps: merged_deps.clone(),
                status: Status::PreAccepted,
                is_local: false,
                preaccept_replies: 0,
                any_changed: false,
                merged_seq,
                merged_deps: merged_deps.iter().copied().collect(),
                accept_replies: 0,
            },
        );
        ctx.send(
            from,
            EpaxosMsg::PreAcceptOk {
                inst,
                seq: merged_seq,
                deps: merged_deps,
                changed,
            },
        );
    }

    fn handle_preaccept_ok(
        &mut self,
        inst: InstanceId,
        seq: u64,
        deps: Vec<InstanceId>,
        changed: bool,
        ctx: &mut Context<'_, EpaxosMsg>,
    ) {
        let fast_quorum = self.fast_quorum();
        let decision = {
            let Some(i) = self.instances.get_mut(&inst) else {
                return;
            };
            if !i.is_local || i.status != Status::PreAccepted {
                return; // stale
            }
            i.preaccept_replies += 1;
            i.any_changed |= changed;
            i.merged_seq = i.merged_seq.max(seq);
            i.merged_deps.extend(deps);
            // Leader counts itself towards the fast quorum.
            if (i.preaccept_replies as usize) + 1 < fast_quorum {
                None
            } else if !i.any_changed {
                Some(true) // fast path with original attributes
            } else {
                i.status = Status::Accepted;
                i.seq = i.merged_seq;
                i.deps = i.merged_deps.iter().copied().collect();
                Some(false) // slow path with merged attributes
            }
        };
        match decision {
            None => {}
            Some(true) => {
                self.stats.fast_path += 1;
                self.obs.fast_path.inc();
                self.commit(inst, ctx);
            }
            Some(false) => {
                self.stats.slow_path += 1;
                self.obs.slow_path.inc();
                let (batch, seq, deps) = {
                    let i = &self.instances[&inst];
                    (i.batch.clone(), i.seq, i.deps.clone())
                };
                for peer in self.others().collect::<Vec<_>>() {
                    ctx.send(
                        peer,
                        EpaxosMsg::Accept {
                            inst,
                            batch: batch.clone(),
                            seq,
                            deps: deps.clone(),
                        },
                    );
                }
            }
        }
    }

    fn handle_accept(
        &mut self,
        from: NodeId,
        inst: InstanceId,
        batch: CmdBatch,
        seq: u64,
        deps: Vec<InstanceId>,
        ctx: &mut Context<'_, EpaxosMsg>,
    ) {
        let entry = self.instances.entry(inst).or_insert_with(|| Instance {
            batch,
            seq,
            deps: deps.clone(),
            status: Status::Accepted,
            is_local: false,
            preaccept_replies: 0,
            any_changed: false,
            merged_seq: seq,
            merged_deps: BTreeSet::new(),
            accept_replies: 0,
        });
        if entry.status != Status::Committed && entry.status != Status::Executed {
            entry.seq = seq;
            entry.deps = deps;
            entry.status = Status::Accepted;
        }
        ctx.send(from, EpaxosMsg::AcceptOk { inst });
    }

    fn handle_accept_ok(&mut self, inst: InstanceId, ctx: &mut Context<'_, EpaxosMsg>) {
        let majority = self.majority();
        let ready = {
            let Some(i) = self.instances.get_mut(&inst) else {
                return;
            };
            if !i.is_local || i.status != Status::Accepted {
                return;
            }
            i.accept_replies += 1;
            (i.accept_replies as usize) + 1 >= majority
        };
        if ready {
            self.commit(inst, ctx);
        }
    }

    fn handle_commit(
        &mut self,
        inst: InstanceId,
        batch: CmdBatch,
        seq: u64,
        deps: Vec<InstanceId>,
        ctx: &mut Context<'_, EpaxosMsg>,
    ) {
        let entry = self.instances.entry(inst).or_insert_with(|| Instance {
            batch: batch.clone(),
            seq,
            deps: deps.clone(),
            status: Status::Committed,
            is_local: false,
            preaccept_replies: 0,
            any_changed: false,
            merged_seq: seq,
            merged_deps: BTreeSet::new(),
            accept_replies: 0,
        });
        if entry.status != Status::Executed {
            entry.batch = batch;
            entry.seq = seq;
            entry.deps = deps;
            entry.status = Status::Committed;
        }
        self.try_execute(ctx);
    }
}

impl Process<EpaxosMsg> for EpaxosNode {
    fn on_start(&mut self, ctx: &mut Context<'_, EpaxosMsg>) {
        ctx.set_timer(self.cfg.batch_duration, BATCH_TIMER);
    }

    fn on_message(&mut self, from: NodeId, msg: EpaxosMsg, ctx: &mut Context<'_, EpaxosMsg>) {
        ctx.charge(self.cfg.costs.per_protocol_msg);
        match msg {
            EpaxosMsg::Request(req) => {
                ctx.charge(Dur::nanos(
                    self.cfg.costs.per_request.as_nanos() * req.op.weight().min(4096) as u64,
                ));
                self.pending.push_back(TimedOp {
                    req,
                    arrival: ctx.now(),
                });
            }
            EpaxosMsg::Reply(_) => {}
            EpaxosMsg::PreAccept {
                inst,
                batch,
                seq,
                deps,
            } => self.handle_preaccept(from, inst, batch, seq, deps, ctx),
            EpaxosMsg::PreAcceptOk {
                inst,
                seq,
                deps,
                changed,
            } => self.handle_preaccept_ok(inst, seq, deps, changed, ctx),
            EpaxosMsg::Accept {
                inst,
                batch,
                seq,
                deps,
            } => self.handle_accept(from, inst, batch, seq, deps, ctx),
            EpaxosMsg::AcceptOk { inst } => self.handle_accept_ok(inst, ctx),
            EpaxosMsg::Commit {
                inst,
                batch,
                seq,
                deps,
            } => self.handle_commit(inst, batch, seq, deps, ctx),
        }
    }

    fn on_timer(&mut self, timer: Timer, ctx: &mut Context<'_, EpaxosMsg>) {
        if timer.token == BATCH_TIMER {
            self.propose_batch(ctx);
            self.obs.exec_backlog.set(self.blocked.len() as i64);
            ctx.set_timer(self.cfg.batch_duration, BATCH_TIMER);
        }
    }

    impl_process_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use canopus_kv::ClientRequest;
    use canopus_sim::{Simulation, Time, UniformFabric};

    struct TestClient {
        target: NodeId,
        ops: Vec<(Dur, Op)>,
        cursor: usize,
        replies: Vec<(u64, OpResult, Time)>,
    }

    impl TestClient {
        fn arm(&self, ctx: &mut Context<'_, EpaxosMsg>) {
            if let Some((when, _)) = self.ops.get(self.cursor) {
                let at = Time::ZERO + *when;
                ctx.set_timer(at.saturating_since(ctx.now()), 0);
            }
        }
    }

    impl Process<EpaxosMsg> for TestClient {
        fn on_start(&mut self, ctx: &mut Context<'_, EpaxosMsg>) {
            self.arm(ctx);
        }
        fn on_timer(&mut self, _t: Timer, ctx: &mut Context<'_, EpaxosMsg>) {
            let (_, op) = self.ops[self.cursor].clone();
            let op_id = self.cursor as u64;
            self.cursor += 1;
            ctx.send(
                self.target,
                EpaxosMsg::Request(ClientRequest {
                    client: ctx.id(),
                    op_id,
                    op,
                }),
            );
            self.arm(ctx);
        }
        fn on_message(&mut self, _f: NodeId, msg: EpaxosMsg, ctx: &mut Context<'_, EpaxosMsg>) {
            if let EpaxosMsg::Reply(r) = msg {
                self.replies.push((r.op_id, r.result, ctx.now()));
            }
        }
        impl_process_any!();
    }

    fn build(n: u32, seed: u64) -> (Simulation<EpaxosMsg, UniformFabric>, Vec<NodeId>) {
        let mut sim = Simulation::new(UniformFabric::new(Dur::micros(100)), seed);
        let replicas: Vec<NodeId> = (0..n).map(NodeId).collect();
        let cfg = EpaxosConfig {
            batch_duration: Dur::millis(1),
            ..EpaxosConfig::default()
        };
        for &r in &replicas {
            sim.add_node(Box::new(EpaxosNode::new(r, replicas.clone(), cfg.clone())));
        }
        (sim, replicas)
    }

    fn add_client(
        sim: &mut Simulation<EpaxosMsg, UniformFabric>,
        target: NodeId,
        ops: Vec<(Dur, Op)>,
    ) -> NodeId {
        sim.add_node(Box::new(TestClient {
            target,
            ops,
            cursor: 0,
            replies: Vec::new(),
        }))
    }

    #[test]
    fn commits_and_replies_to_writes() {
        let (mut sim, _) = build(3, 1);
        let ops = (0..5u64)
            .map(|k| {
                (
                    Dur::millis(k + 1),
                    Op::Put {
                        key: k,
                        value: Bytes::from_static(b"xxxxxxxx"),
                    },
                )
            })
            .collect();
        let client = add_client(&mut sim, NodeId(0), ops);
        sim.run_for(Dur::millis(100));
        let c = sim.node::<TestClient>(client);
        assert_eq!(c.replies.len(), 5);
        let s = sim.node::<EpaxosNode>(NodeId(0)).stats();
        assert!(s.fast_path >= 1, "uncontended writes take the fast path");
        assert_eq!(s.slow_path, 0);
    }

    #[test]
    fn replicas_converge_on_state() {
        let (mut sim, replicas) = build(5, 2);
        for (i, &r) in replicas.iter().enumerate() {
            let ops = (0..10u64)
                .map(|k| {
                    (
                        Dur::micros(700 * k + i as u64 * 131),
                        Op::Put {
                            key: 1000 + i as u64 * 100 + k, // disjoint keys
                            value: Bytes::from_static(b"vvvvvvvv"),
                        },
                    )
                })
                .collect();
            add_client(&mut sim, r, ops);
        }
        sim.run_for(Dur::millis(300));
        let d0 = sim.node::<EpaxosNode>(replicas[0]).store().digest();
        for &r in &replicas[1..] {
            assert_eq!(sim.node::<EpaxosNode>(r).store().digest(), d0);
        }
        let total: u64 = sim.node::<EpaxosNode>(replicas[0]).stats().executed_weight;
        assert_eq!(total, 50);
    }

    #[test]
    fn conflicting_writes_serialize_identically() {
        let (mut sim, replicas) = build(3, 3);
        // Two clients hammer the SAME key from different replicas: full
        // interference; slow path and dependency ordering must engage.
        for (i, &r) in replicas[..2].iter().enumerate() {
            let ops = (0..10u64)
                .map(|k| {
                    (
                        Dur::micros(900 * k + i as u64 * 450),
                        Op::Put {
                            key: 42,
                            value: Bytes::from(vec![i as u8 + 1; 8]),
                        },
                    )
                })
                .collect();
            add_client(&mut sim, r, ops);
        }
        sim.run_for(Dur::millis(500));
        // All replicas must apply writes to key 42 in the same order.
        let reference = sim.node::<EpaxosNode>(replicas[0]).write_log()[&42].clone();
        assert_eq!(reference.len(), 20);
        for &r in &replicas[1..] {
            assert_eq!(
                sim.node::<EpaxosNode>(r).write_log()[&42],
                reference,
                "per-key write order diverged at {r}"
            );
        }
        let s0 = sim.node::<EpaxosNode>(replicas[0]).stats();
        let s1 = sim.node::<EpaxosNode>(replicas[1]).stats();
        assert!(
            s0.slow_path + s1.slow_path > 0,
            "conflicts must exercise the slow path"
        );
    }

    #[test]
    fn reads_return_committed_values() {
        let (mut sim, _) = build(3, 4);
        let writer_ops = vec![(
            Dur::millis(1),
            Op::Put {
                key: 5,
                value: Bytes::from_static(b"AAAAAAAA"),
            },
        )];
        add_client(&mut sim, NodeId(0), writer_ops);
        let reader_ops = vec![(Dur::millis(50), Op::Get { key: 5 })];
        let reader = add_client(&mut sim, NodeId(1), reader_ops);
        sim.run_for(Dur::millis(200));
        let c = sim.node::<TestClient>(reader);
        assert_eq!(c.replies.len(), 1);
        match &c.replies[0].1 {
            OpResult::Value(Some(v)) => assert_eq!(&v[..], b"AAAAAAAA"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn single_replica_commits_immediately() {
        let (mut sim, _) = build(1, 5);
        let ops = vec![(
            Dur::millis(1),
            Op::Put {
                key: 1,
                value: Bytes::from_static(b"solo...."),
            },
        )];
        let client = add_client(&mut sim, NodeId(0), ops);
        sim.run_for(Dur::millis(50));
        assert_eq!(sim.node::<TestClient>(client).replies.len(), 1);
    }

    #[test]
    fn fast_quorum_sizes() {
        for (n, expect) in [(3usize, 2usize), (5, 3), (9, 6), (27, 20)] {
            let replicas: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
            let node = EpaxosNode::new(NodeId(0), replicas, EpaxosConfig::default());
            assert_eq!(node.fast_quorum(), expect, "N={n}");
        }
    }
}
