//! The consensus flight recorder: a fixed-capacity ring buffer of
//! structured events per node, dumpable on demand.
//!
//! Events are low-frequency relative to message traffic (a handful per
//! consensus cycle), so a mutex-guarded `VecDeque` is plenty; the
//! disabled recorder still costs exactly one branch per `record`.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

/// First line of every flight-recorder dump; `#[should_panic(expected =
/// DUMP_HEADER)]` tests match on it.
pub const DUMP_HEADER: &str = "flight recorder dump";

/// The shared event taxonomy. Consensus-cycle events carry the Canopus
/// cycle id; election/resync events cover the Raft/ZAB/EPaxos nodes; the
/// net/crash events come from the transport and the harness nemesis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A consensus cycle left `Idle`: the proposal batch was sealed.
    /// `ops`/`weight` describe the batch; `in_flight` is the pipeline
    /// occupancy *including* this cycle.
    CycleStart {
        /// Cycle id.
        cycle: u64,
        /// Operations in the sealed batch.
        ops: u64,
        /// Total weight (bytes) of the batch.
        weight: u64,
        /// Cycles in flight including this one (pipeline occupancy).
        in_flight: u64,
    },
    /// A linger window was armed to let the batch fill.
    LingerArm {
        /// Cycle the window gathers proposals for.
        cycle: u64,
        /// Pending ops when the window was armed.
        ops: u64,
    },
    /// The linger window elapsed and released the batch.
    LingerFire {
        /// Cycle being released.
        cycle: u64,
        /// Ops gathered by the time the window fired.
        ops: u64,
    },
    /// One broadcast round of a cycle completed.
    RoundComplete {
        /// Cycle id.
        cycle: u64,
        /// Round index within the cycle (0-based).
        round: u64,
    },
    /// A cycle committed.
    Commit {
        /// Cycle id.
        cycle: u64,
        /// Committed weight (bytes).
        weight: u64,
    },
    /// A super-leaf was tombstoned (excluded from future cycles).
    Tombstone {
        /// Cycle from which the exclusion takes effect.
        cycle: u64,
        /// The excluded group (super-leaf id or node id, per protocol).
        group: u32,
    },
    /// A previously tombstoned group rejoined.
    Rejoin {
        /// Cycle from which the rejoin takes effect.
        cycle: u64,
        /// The rejoining group.
        group: u32,
    },
    /// A leader election started (Raft/ZAB: a term/epoch bump).
    Election {
        /// New term or epoch.
        term: u64,
    },
    /// This node learned of a (possibly new) leader.
    LeaderChange {
        /// Term or epoch of the leadership.
        term: u64,
        /// The leader's node id.
        leader: u32,
    },
    /// A follower was resynced from the leader's log.
    Resync {
        /// Peer that was brought up to date.
        peer: u32,
        /// Entries (or bytes, per protocol) shipped.
        entries: u64,
    },
    /// The node process was crashed by the nemesis.
    Crash,
    /// The node process was restarted.
    Restart,
    /// The transport dropped traffic (no route, fault rule, full queue).
    NetDrop {
        /// Intended destination.
        peer: u32,
        /// Why it was dropped.
        reason: &'static str,
    },
    /// Escape hatch for protocol-specific notes.
    Note {
        /// Static label.
        label: &'static str,
        /// Free-form value.
        value: u64,
    },
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::CycleStart {
                cycle,
                ops,
                weight,
                in_flight,
            } => write!(
                f,
                "cycle-start   c{cycle} ops={ops} weight={weight} in_flight={in_flight}"
            ),
            EventKind::LingerArm { cycle, ops } => {
                write!(f, "linger-arm    c{cycle} ops={ops}")
            }
            EventKind::LingerFire { cycle, ops } => {
                write!(f, "linger-fire   c{cycle} ops={ops}")
            }
            EventKind::RoundComplete { cycle, round } => {
                write!(f, "round-done    c{cycle} round={round}")
            }
            EventKind::Commit { cycle, weight } => {
                write!(f, "commit        c{cycle} weight={weight}")
            }
            EventKind::Tombstone { cycle, group } => {
                write!(f, "tombstone     c{cycle} group={group}")
            }
            EventKind::Rejoin { cycle, group } => {
                write!(f, "rejoin        c{cycle} group={group}")
            }
            EventKind::Election { term } => write!(f, "election      term={term}"),
            EventKind::LeaderChange { term, leader } => {
                write!(f, "leader-change term={term} leader=n{leader}")
            }
            EventKind::Resync { peer, entries } => {
                write!(f, "resync        peer=n{peer} entries={entries}")
            }
            EventKind::Crash => write!(f, "crash"),
            EventKind::Restart => write!(f, "restart"),
            EventKind::NetDrop { peer, reason } => {
                write!(f, "net-drop      peer=n{peer} reason={reason}")
            }
            EventKind::Note { label, value } => write!(f, "note          {label}={value}"),
        }
    }
}

/// One recorded event: a per-recorder sequence number, the monotonic
/// timestamp the caller supplied, the recording node, and the payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Sequence number, monotone per recorder (survives ring eviction, so
    /// gaps reveal how much history was overwritten).
    pub seq: u64,
    /// Caller-supplied monotonic nanoseconds (virtual time on the
    /// simulator, elapsed wall clock on the TCP transport).
    pub at_nanos: u64,
    /// Raw id of the recording node.
    pub node: u32,
    /// What happened.
    pub kind: EventKind,
}

impl fmt::Display for FlightEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.at_nanos as f64 / 1_000_000.0;
        write!(
            f,
            "[{ms:>10.3}ms] n{} #{:<4} {}",
            self.node, self.seq, self.kind
        )
    }
}

#[derive(Debug)]
struct RingInner {
    cap: usize,
    next_seq: u64,
    events: VecDeque<FlightEvent>,
}

/// Fixed-capacity ring buffer of [`FlightEvent`]s for one node. Cloning
/// shares the ring; [`FlightRecorder::disabled`] records nothing at the
/// cost of one branch.
#[derive(Clone, Debug, Default)]
pub struct FlightRecorder {
    node: u32,
    ring: Option<Arc<Mutex<RingInner>>>,
}

impl FlightRecorder {
    /// An enabled recorder for `node` keeping the most recent `cap` events.
    pub fn new(node: u32, cap: usize) -> Self {
        FlightRecorder {
            node,
            ring: Some(Arc::new(Mutex::new(RingInner {
                cap: cap.max(1),
                next_seq: 0,
                events: VecDeque::with_capacity(cap.max(1)),
            }))),
        }
    }

    /// A recorder that records nothing (the `Default`).
    pub fn disabled() -> Self {
        FlightRecorder::default()
    }

    /// Whether this recorder keeps events.
    pub fn is_enabled(&self) -> bool {
        self.ring.is_some()
    }

    /// Record `kind` at `at_nanos`, evicting the oldest event when full.
    #[inline]
    pub fn record(&self, at_nanos: u64, kind: EventKind) {
        if let Some(ring) = &self.ring {
            let mut r = ring.lock().unwrap();
            let seq = r.next_seq;
            r.next_seq += 1;
            if r.events.len() == r.cap {
                r.events.pop_front();
            }
            let node = self.node;
            r.events.push_back(FlightEvent {
                seq,
                at_nanos,
                node,
                kind,
            });
        }
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.ring.as_ref().map_or(0, |r| r.lock().unwrap().next_seq)
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        self.ring.as_ref().map_or_else(Vec::new, |r| {
            r.lock().unwrap().events.iter().cloned().collect()
        })
    }

    /// The most recent `n` retained events, oldest first.
    pub fn last(&self, n: usize) -> Vec<FlightEvent> {
        let evs = self.events();
        let skip = evs.len().saturating_sub(n);
        evs[skip..].to_vec()
    }

    /// Render the most recent `n` events, one per line, under
    /// [`DUMP_HEADER`]. An empty or disabled recorder says so explicitly
    /// rather than returning an empty string.
    pub fn dump_last(&self, n: usize) -> String {
        let mut out = format!("{DUMP_HEADER} (node n{}, last {n}):\n", self.node);
        if !self.is_enabled() {
            out.push_str("  <recorder disabled>\n");
            return out;
        }
        let evs = self.last(n);
        if evs.is_empty() {
            out.push_str("  <no events recorded>\n");
            return out;
        }
        for ev in evs {
            out.push_str("  ");
            out.push_str(&ev.to_string());
            out.push('\n');
        }
        out
    }
}
