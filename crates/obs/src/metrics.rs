//! The lock-free metrics registry.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Option<Arc<..>>`:
//! `None` means the owning registry is disabled and every operation is a
//! single branch; `Some` updates a relaxed atomic. Registration (the cold
//! path) takes a mutex so names stay unique and exposition stays sorted.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

use crate::json_escape;

/// Number of histogram buckets: bucket 0 holds the value `0`, bucket
/// `b ∈ 1..=64` holds values in `[2^(b-1), 2^b - 1]` (so `u64::MAX` lands
/// in bucket 64).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Bucket index for `v` under the log₂ scheme above.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive `(lo, hi)` value bounds of bucket `b`.
pub fn bucket_bounds(b: usize) -> (u64, u64) {
    match b {
        0 => (0, 0),
        64 => (1u64 << 63, u64::MAX),
        b => (1u64 << (b - 1), (1u64 << b) - 1),
    }
}

#[derive(Debug)]
struct HistogramCells {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCells {
    fn new() -> Self {
        HistogramCells {
            buckets: [(); HISTOGRAM_BUCKETS].map(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Monotonically increasing counter. Cheap to clone; `inc`/`add` are
/// relaxed atomics, or one branch if the registry is disabled.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A no-op counter (what disabled registries hand out).
    pub fn noop() -> Self {
        Counter(None)
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        if let Some(c) = &self.0 {
            c.fetch_add(1, Relaxed);
        }
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Relaxed);
        }
    }

    /// Current value (0 for a no-op counter).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Relaxed))
    }
}

/// Signed instantaneous value (queue depths, in-flight cycles).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// A no-op gauge.
    pub fn noop() -> Self {
        Gauge(None)
    }

    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.store(v, Relaxed);
        }
    }

    /// Add `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        if let Some(g) = &self.0 {
            g.fetch_add(d, Relaxed);
        }
    }

    /// Current value (0 for a no-op gauge).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.load(Relaxed))
    }
}

/// Log₂-bucketed histogram of `u64` samples.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistogramCells>>);

impl Histogram {
    /// A no-op histogram.
    pub fn noop() -> Self {
        Histogram(None)
    }

    /// Record one sample.
    #[inline]
    pub fn observe(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.buckets[bucket_index(v)].fetch_add(1, Relaxed);
            h.count.fetch_add(1, Relaxed);
            h.sum.fetch_add(v, Relaxed);
        }
    }

    /// Point-in-time copy of the cells (empty snapshot for a no-op).
    pub fn snapshot(&self) -> HistogramSnapshot {
        match &self.0 {
            None => HistogramSnapshot::default(),
            Some(h) => HistogramSnapshot {
                count: h.count.load(Relaxed),
                sum: h.sum.load(Relaxed),
                buckets: (0..HISTOGRAM_BUCKETS)
                    .filter_map(|b| {
                        let n = h.buckets[b].load(Relaxed);
                        (n > 0).then_some((b, n))
                    })
                    .collect(),
            },
        }
    }
}

/// Copy of one histogram's state: total count/sum plus the non-empty
/// buckets as `(bucket_index, samples)` pairs in index order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples observed.
    pub count: u64,
    /// Sum of all observed values (wrapping add on overflow is accepted).
    pub sum: u64,
    /// `(bucket_index, samples)` for every non-empty bucket.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// Mean value, if any samples were recorded.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

#[derive(Debug)]
enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCells>),
}

#[derive(Debug, Default)]
struct RegistryInner {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// A process-local metrics registry. Cloning shares the same store:
/// harnesses keep one clone per node for snapshot collection while the
/// node's process owns another.
#[derive(Clone, Debug, Default)]
pub struct Registry(Option<Arc<RegistryInner>>);

impl Registry {
    /// An enabled, empty registry.
    pub fn new() -> Self {
        Registry(Some(Arc::new(RegistryInner::default())))
    }

    /// A disabled registry: every handle it hands out is a no-op and every
    /// update costs one branch.
    pub fn disabled() -> Self {
        Registry(None)
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Get or create the counter `name`. Re-registering an existing name
    /// returns a handle to the same cell; registering a name that exists
    /// with a different metric type panics (a naming bug).
    pub fn counter(&self, name: &str) -> Counter {
        let Some(inner) = &self.0 else {
            return Counter::noop();
        };
        let mut metrics = inner.metrics.lock().unwrap();
        let cell = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0))));
        match cell {
            Metric::Counter(c) => Counter(Some(c.clone())),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Get or create the gauge `name` (same rules as [`Registry::counter`]).
    pub fn gauge(&self, name: &str) -> Gauge {
        let Some(inner) = &self.0 else {
            return Gauge::noop();
        };
        let mut metrics = inner.metrics.lock().unwrap();
        let cell = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(AtomicI64::new(0))));
        match cell {
            Metric::Gauge(g) => Gauge(Some(g.clone())),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Get or create the histogram `name` (same rules as
    /// [`Registry::counter`]).
    pub fn histogram(&self, name: &str) -> Histogram {
        let Some(inner) = &self.0 else {
            return Histogram::noop();
        };
        let mut metrics = inner.metrics.lock().unwrap();
        let cell = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(HistogramCells::new())));
        match cell {
            Metric::Histogram(h) => Histogram(Some(h.clone())),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Point-in-time copy of every registered metric, names sorted.
    ///
    /// Concurrent writers may land between individual cell reads — each
    /// cell is internally consistent (a histogram's buckets may briefly
    /// disagree with its `count` by in-flight samples), and a quiesced
    /// registry snapshots exactly.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        let Some(inner) = &self.0 else {
            return snap;
        };
        let metrics = inner.metrics.lock().unwrap();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push((name.clone(), c.load(Relaxed))),
                Metric::Gauge(g) => snap.gauges.push((name.clone(), g.load(Relaxed))),
                Metric::Histogram(h) => {
                    let hs = Histogram(Some(h.clone())).snapshot();
                    snap.histograms.push((name.clone(), hs));
                }
            }
        }
        snap
    }
}

/// Point-in-time copy of a whole registry, ready for exposition.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` for every histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// True if nothing was registered (e.g. a disabled registry).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Human-readable exposition: one line per metric, histograms with
    /// their non-empty `[lo..hi]` buckets.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter   {name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "gauge     {name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = write!(out, "histogram {name} count={} sum={}", h.count, h.sum);
            if let Some(mean) = h.mean() {
                let _ = write!(out, " mean={mean:.1}");
            }
            for &(b, n) in &h.buckets {
                let (lo, hi) = bucket_bounds(b);
                if lo == hi {
                    let _ = write!(out, " [{lo}]={n}");
                } else {
                    let _ = write!(out, " [{lo}..{hi}]={n}");
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Compact JSON exposition:
    /// `{"counters":{..},"gauges":{..},"histograms":{"name":{"count":..,"sum":..,"buckets":[[lo,hi,n],..]}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", json_escape(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", json_escape(name));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"buckets\":[",
                json_escape(name),
                h.count,
                h.sum
            );
            for (j, &(b, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let (lo, hi) = bucket_bounds(b);
                let _ = write!(out, "[{lo},{hi},{n}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Merge another snapshot into this one: counters/gauges add, and
    /// histograms add bucket-wise. Used to aggregate per-node registries
    /// into one cluster view.
    pub fn merge(&mut self, other: &Snapshot) {
        fn merge_into<V: Copy + std::ops::AddAssign>(
            dst: &mut Vec<(String, V)>,
            src: &[(String, V)],
        ) {
            for (name, v) in src {
                match dst.iter_mut().find(|(n, _)| n == name) {
                    Some((_, d)) => *d += *v,
                    None => dst.push((name.clone(), *v)),
                }
            }
            dst.sort_by(|a, b| a.0.cmp(&b.0));
        }
        merge_into(&mut self.counters, &other.counters);
        merge_into(&mut self.gauges, &other.gauges);
        for (name, h) in &other.histograms {
            match self.histograms.iter_mut().find(|(n, _)| n == name) {
                Some((_, d)) => {
                    d.count += h.count;
                    d.sum = d.sum.wrapping_add(h.sum);
                    for &(b, n) in &h.buckets {
                        match d.buckets.iter_mut().find(|(db, _)| *db == b) {
                            Some((_, dn)) => *dn += n,
                            None => d.buckets.push((b, n)),
                        }
                    }
                    d.buckets.sort_by_key(|&(b, _)| b);
                }
                None => self.histograms.push((name.clone(), h.clone())),
            }
        }
        self.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    }
}
