//! # canopus-obs — zero-dependency observability
//!
//! Two halves, both designed so that a *disabled* instance costs exactly
//! one predictable branch on the hot path:
//!
//! - [`Registry`]: a process-local registry of named [`Counter`]s,
//!   [`Gauge`]s and log₂-bucketed [`Histogram`]s. Handles are cheap
//!   `Arc`-backed clones; updates are relaxed atomics, so protocol code
//!   can record from any thread without coordination. A registry built
//!   with [`Registry::disabled`] hands out handles whose operations test
//!   a single `Option` discriminant and return — the `throughput_knee`
//!   ladder numbers are provably unaffected (the bench's `--check` mode
//!   asserts enabled and disabled smoke runs commit identical op counts).
//! - [`FlightRecorder`]: a fixed-capacity per-node ring buffer of
//!   structured consensus events ([`EventKind`]) with monotonic
//!   timestamps, dumpable on demand. Chaos-verdict failures print the
//!   last N events per node as the panic artifact.
//!
//! The crate is std-only with zero dependencies (this build environment
//! has no registry access), sits *below* `canopus-sim` in the workspace
//! graph, and therefore speaks raw `u32` node ids and `u64` nanosecond
//! timestamps rather than the simulator's `NodeId`/`Time` newtypes.

#![warn(missing_docs)]

mod flight;
mod metrics;
mod reactor;

pub use flight::{EventKind, FlightEvent, FlightRecorder, DUMP_HEADER};
pub use metrics::{
    bucket_bounds, bucket_index, Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot,
    HISTOGRAM_BUCKETS,
};
pub use reactor::{reactor_registry, reactor_snapshot, ReactorObs};

/// Everything one node carries: its metrics registry plus its flight
/// recorder. Cloning shares the underlying storage, so a harness can keep
/// one clone per node for snapshot collection while the node process owns
/// another.
#[derive(Clone, Debug, Default)]
pub struct NodeObs {
    /// Raw node id (dense index, same as the simulator's `NodeId.0`).
    pub node: u32,
    /// The node's metrics registry.
    pub metrics: Registry,
    /// The node's consensus flight recorder.
    pub flight: FlightRecorder,
}

impl NodeObs {
    /// A fully disabled hub: every metric update and event record is one
    /// branch. This is the `Default` and what instrumented constructors
    /// start with.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled hub for `node` with a flight ring of `flight_cap` events.
    pub fn enabled(node: u32, flight_cap: usize) -> Self {
        NodeObs {
            node,
            metrics: Registry::new(),
            flight: FlightRecorder::new(node, flight_cap),
        }
    }

    /// True if either half records anything.
    pub fn is_enabled(&self) -> bool {
        self.metrics.is_enabled() || self.flight.is_enabled()
    }

    /// Record a flight event at `at_nanos` (no-op when disabled).
    #[inline]
    pub fn event(&self, at_nanos: u64, kind: EventKind) {
        self.flight.record(at_nanos, kind);
    }
}

/// Minimal JSON string escaping for metric names and labels (the tiny
/// subset RFC 8259 requires: quote, backslash, and control characters).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
