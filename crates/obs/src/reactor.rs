//! Process-global reactor metrics.
//!
//! The TCP reactor in `canopus-net` is shared by every node in the
//! process (one event loop per core), so its counters do not belong to
//! any single [`NodeObs`](crate::NodeObs) hub. This module owns one
//! process-wide [`Registry`] for them. Event loops cache a
//! [`ReactorObs`] handle once at startup, so steady-state recording is a
//! relaxed atomic add per event — there is no per-node branch to skip,
//! and the registry is always enabled (the reactor's own syscalls dwarf
//! the counter cost).

use std::sync::OnceLock;

use crate::metrics::{Counter, Registry, Snapshot};

static REACTOR_REGISTRY: OnceLock<Registry> = OnceLock::new();

/// The process-global registry backing the reactor counters.
pub fn reactor_registry() -> &'static Registry {
    REACTOR_REGISTRY.get_or_init(Registry::new)
}

/// A snapshot of the reactor registry (loop iterations, readiness events,
/// backpressure incidents, connection churn, ...).
pub fn reactor_snapshot() -> Snapshot {
    reactor_registry().snapshot()
}

/// Cached counter handles for one reactor event loop (or any transport
/// component that reports into the global reactor registry).
#[derive(Clone)]
pub struct ReactorObs {
    /// Event-loop iterations (one per `epoll_wait` return).
    pub iterations: Counter,
    /// Readiness events dispatched (one per fd event).
    pub readiness_events: Counter,
    /// Cross-thread wakeups delivered via the loop's eventfd waker.
    pub wakeups: Counter,
    /// Sends rejected because a peer's bounded write queue was full.
    pub backpressure_full: Counter,
    /// Outbound connections that reached the established state.
    pub conns_opened: Counter,
    /// Connections torn down (EOF, error, or node shutdown).
    pub conns_closed: Counter,
    /// Reconnect attempts scheduled after a failed/broken outbound link.
    pub reconnects: Counter,
    /// Inbound connections accepted.
    pub accepted: Counter,
    /// Frames decoded off the wire and dispatched to node inboxes.
    pub frames_in: Counter,
    /// Frames flushed onto the wire.
    pub frames_out: Counter,
}

impl ReactorObs {
    /// Handles into the process-global reactor registry.
    pub fn global() -> ReactorObs {
        let r = reactor_registry();
        ReactorObs {
            iterations: r.counter("reactor.loop.iterations"),
            readiness_events: r.counter("reactor.readiness.events"),
            wakeups: r.counter("reactor.wakeups"),
            backpressure_full: r.counter("reactor.backpressure.full"),
            conns_opened: r.counter("reactor.conns.opened"),
            conns_closed: r.counter("reactor.conns.closed"),
            reconnects: r.counter("reactor.conns.reconnects"),
            accepted: r.counter("reactor.conns.accepted"),
            frames_in: r.counter("reactor.frames.in"),
            frames_out: r.counter("reactor.frames.out"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_handles_share_one_registry() {
        let a = ReactorObs::global();
        let b = ReactorObs::global();
        let before = reactor_snapshot()
            .counters
            .iter()
            .find(|(k, _)| k == "reactor.loop.iterations")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        a.iterations.inc();
        b.iterations.inc();
        let after = reactor_snapshot()
            .counters
            .iter()
            .find(|(k, _)| k == "reactor.loop.iterations")
            .map(|(_, v)| *v)
            .unwrap();
        assert_eq!(after, before + 2);
    }
}
