//! Unit suite for the observability crate: histogram bucket edges, ring
//! wraparound ordering, and snapshot consistency under concurrent writers.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use canopus_obs::{
    bucket_bounds, bucket_index, EventKind, FlightRecorder, NodeObs, Registry, DUMP_HEADER,
    HISTOGRAM_BUCKETS,
};

// ---------------------------------------------------------------------
// Histogram bucket boundaries
// ---------------------------------------------------------------------

/// Zero gets its own bucket; each exact power of two opens the next
/// bucket; `u64::MAX` lands in the last one.
#[test]
fn histogram_bucket_boundaries() {
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 1);
    for b in 1..64usize {
        let lo = 1u64 << (b - 1);
        // Low edge of bucket b.
        assert_eq!(bucket_index(lo), b, "low edge of bucket {b}");
        // High edge: one below the next power.
        let hi = (1u64 << b) - 1;
        assert_eq!(bucket_index(hi), b, "high edge of bucket {b}");
        // The next power opens bucket b+1.
        assert_eq!(bucket_index(1u64 << b), b + 1, "power 2^{b}");
    }
    assert_eq!(bucket_index(u64::MAX), 64);
    assert_eq!(bucket_index(1u64 << 63), 64);
    assert_eq!(HISTOGRAM_BUCKETS, 65);
}

/// `bucket_bounds` and `bucket_index` must agree: every bucket's own
/// bounds map back into it.
#[test]
fn histogram_bounds_roundtrip() {
    for b in 0..HISTOGRAM_BUCKETS {
        let (lo, hi) = bucket_bounds(b);
        assert_eq!(bucket_index(lo), b, "lo of {b}");
        assert_eq!(bucket_index(hi), b, "hi of {b}");
        assert!(lo <= hi);
    }
    assert_eq!(bucket_bounds(0), (0, 0));
    assert_eq!(bucket_bounds(64).1, u64::MAX);
}

#[test]
fn histogram_observe_and_snapshot() {
    let reg = Registry::new();
    let h = reg.histogram("batch_size");
    for v in [0u64, 1, 2, 3, 4, 7, 8, u64::MAX] {
        h.observe(v);
    }
    let snap = h.snapshot();
    assert_eq!(snap.count, 8);
    assert_eq!(
        snap.sum,
        0u64.wrapping_add(1 + 2 + 3 + 4 + 7 + 8)
            .wrapping_add(u64::MAX)
    );
    // Buckets: 0→[0], 1→[1], 2→[2,3], 3→[4,7], 4→[8], 64→[MAX].
    assert_eq!(
        snap.buckets,
        vec![(0, 1), (1, 1), (2, 2), (3, 2), (4, 1), (64, 1)]
    );
}

// ---------------------------------------------------------------------
// Disabled registry / no-op handles
// ---------------------------------------------------------------------

#[test]
fn disabled_registry_is_inert() {
    let reg = Registry::disabled();
    assert!(!reg.is_enabled());
    let c = reg.counter("x");
    let g = reg.gauge("y");
    let h = reg.histogram("z");
    c.inc();
    c.add(10);
    g.set(5);
    g.add(-2);
    h.observe(123);
    assert_eq!(c.get(), 0);
    assert_eq!(g.get(), 0);
    assert_eq!(h.snapshot().count, 0);
    assert!(reg.snapshot().is_empty());
    assert!(!NodeObs::disabled().is_enabled());
}

#[test]
fn registry_handles_share_cells() {
    let reg = Registry::new();
    let a = reg.counter("hits");
    let b = reg.counter("hits");
    a.inc();
    b.add(2);
    assert_eq!(a.get(), 3);
    let snap = reg.snapshot();
    assert_eq!(snap.counter("hits"), Some(3));
    // Clones of the registry see the same store.
    assert_eq!(reg.clone().snapshot().counter("hits"), Some(3));
}

#[test]
fn exposition_text_and_json() {
    let reg = Registry::new();
    reg.counter("ops").add(7);
    reg.gauge("depth").set(-3);
    reg.histogram("sz").observe(5);
    let snap = reg.snapshot();
    let text = snap.to_text();
    assert!(text.contains("counter   ops 7"), "{text}");
    assert!(text.contains("gauge     depth -3"), "{text}");
    assert!(text.contains("histogram sz count=1 sum=5"), "{text}");
    let json = snap.to_json();
    assert!(json.contains("\"ops\":7"), "{json}");
    assert!(json.contains("\"depth\":-3"), "{json}");
    assert!(
        json.contains("\"sz\":{\"count\":1,\"sum\":5,\"buckets\":[[4,7,1]]}"),
        "{json}"
    );
}

// ---------------------------------------------------------------------
// Snapshot under concurrent writes
// ---------------------------------------------------------------------

/// Writers hammer a counter and a histogram from several threads while a
/// snapshotter reads. Every observed snapshot must be monotone in the
/// counter and internally plausible; after joining, totals must be exact.
#[test]
fn snapshot_under_concurrent_writes() {
    const THREADS: usize = 4;
    const PER_THREAD: u64 = 20_000;
    let reg = Registry::new();
    let stop = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..THREADS)
        .map(|t| {
            let reg = reg.clone();
            thread::spawn(move || {
                let c = reg.counter("total");
                let h = reg.histogram("vals");
                for i in 0..PER_THREAD {
                    c.inc();
                    h.observe((t as u64) * PER_THREAD + i);
                }
            })
        })
        .collect();

    let snapshotter = {
        let reg = reg.clone();
        let stop = stop.clone();
        thread::spawn(move || {
            let mut last = 0u64;
            let mut iterations = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = reg.snapshot();
                let now = snap.counter("total").unwrap_or(0);
                assert!(now >= last, "counter went backwards: {last} -> {now}");
                last = now;
                if let Some(h) = snap.histogram("vals") {
                    let bucket_total: u64 = h.buckets.iter().map(|&(_, n)| n).sum();
                    // In-flight observes may make count lag the buckets
                    // (or vice versa) but never by more than the writers
                    // could have in flight.
                    assert!(
                        bucket_total.abs_diff(h.count) <= THREADS as u64,
                        "buckets {bucket_total} vs count {}",
                        h.count
                    );
                }
                iterations += 1;
            }
            iterations
        })
    };

    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    assert!(snapshotter.join().unwrap() > 0);

    let snap = reg.snapshot();
    let total = (THREADS as u64) * PER_THREAD;
    assert_eq!(snap.counter("total"), Some(total));
    let h = snap.histogram("vals").unwrap();
    assert_eq!(h.count, total);
    assert_eq!(h.buckets.iter().map(|&(_, n)| n).sum::<u64>(), total);
}

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

/// Fill a small ring far past capacity: retention is exactly `cap`, the
/// retained window is the most recent events, and ordering (by seq and by
/// timestamp) is preserved across wraparound.
#[test]
fn ring_buffer_wraparound_ordering() {
    let fr = FlightRecorder::new(3, 8);
    for i in 0..100u64 {
        fr.record(
            i * 10,
            EventKind::Note {
                label: "i",
                value: i,
            },
        );
    }
    assert_eq!(fr.recorded(), 100);
    let evs = fr.events();
    assert_eq!(evs.len(), 8);
    let seqs: Vec<u64> = evs.iter().map(|e| e.seq).collect();
    assert_eq!(seqs, (92..100).collect::<Vec<_>>());
    assert!(evs.windows(2).all(|w| w[0].at_nanos < w[1].at_nanos));
    assert!(evs.iter().all(|e| e.node == 3));
    // last(n) trims from the front.
    let last3: Vec<u64> = fr.last(3).iter().map(|e| e.seq).collect();
    assert_eq!(last3, vec![97, 98, 99]);
    // last(n) with n > len returns everything.
    assert_eq!(fr.last(100).len(), 8);
}

#[test]
fn flight_dump_format() {
    let fr = FlightRecorder::new(1, 4);
    fr.record(
        1_500_000,
        EventKind::Commit {
            cycle: 7,
            weight: 42,
        },
    );
    let dump = fr.dump_last(10);
    assert!(dump.starts_with(DUMP_HEADER), "{dump}");
    assert!(dump.contains("commit"), "{dump}");
    assert!(dump.contains("c7"), "{dump}");
    assert!(dump.contains("n1"), "{dump}");

    let empty = FlightRecorder::new(2, 4).dump_last(5);
    assert!(empty.contains("<no events recorded>"), "{empty}");
    let off = FlightRecorder::disabled().dump_last(5);
    assert!(off.contains("<recorder disabled>"), "{off}");
    assert!(!FlightRecorder::disabled().is_enabled());
}

#[test]
fn snapshot_merge_aggregates() {
    let a = Registry::new();
    a.counter("ops").add(3);
    a.histogram("sz").observe(4);
    let b = Registry::new();
    b.counter("ops").add(5);
    b.counter("extra").inc();
    b.histogram("sz").observe(5);
    let mut merged = a.snapshot();
    merged.merge(&b.snapshot());
    assert_eq!(merged.counter("ops"), Some(8));
    assert_eq!(merged.counter("extra"), Some(1));
    let h = merged.histogram("sz").unwrap();
    assert_eq!(h.count, 2);
    assert_eq!(h.buckets, vec![(3, 2)]); // both 4 and 5 land in [4,7]
}
