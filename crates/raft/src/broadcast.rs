//! Super-leaf reliable broadcast (paper §4.3).
//!
//! Within a super-leaf every node creates its own dedicated Raft group and
//! becomes its initial leader; all super-leaf peers join as followers.
//! A node broadcasts by proposing into *its own* group; the Raft log
//! replication then guarantees the reliable-broadcast properties (validity,
//! integrity, agreement) the Canopus proof assumes (A4): either all live
//! members deliver a message or none do, in a consistent per-origin order.
//!
//! If a node fails, the followers of its group elect a new leader who
//! completes any in-flight replication — exactly the paper's "the new
//! leader completes any incomplete log replication" — after which the group
//! simply goes quiet (a crashed owner proposes nothing new).

use std::collections::BTreeMap;

use bytes::Bytes;
use canopus_sim::{NodeId, Time};
use rand::rngs::SmallRng;

use crate::core::{GroupId, Outbox, RaftConfig, RaftCore, RaftMsg};

/// A message delivered by the super-leaf broadcast: `origin` broadcast
/// `data` as its `seq`-th message.
#[derive(Clone, Debug, PartialEq)]
pub struct Delivery {
    /// The node that called [`SuperLeafBroadcast::broadcast`].
    pub origin: NodeId,
    /// Position in the origin's broadcast order (1-based).
    pub seq: u64,
    /// The payload.
    pub data: Bytes,
}

/// Reliable broadcast among the members of one super-leaf.
#[derive(Debug)]
pub struct SuperLeafBroadcast {
    me: NodeId,
    /// One Raft group per member, keyed by owner. `groups[me]` is the group
    /// this node leads.
    groups: BTreeMap<NodeId, RaftCore>,
}

impl SuperLeafBroadcast {
    /// Creates the broadcast layer for `me` within `members` (which must
    /// include `me`). Every member must construct this with the identical
    /// member list.
    pub fn new(
        me: NodeId,
        members: &[NodeId],
        cfg: RaftConfig,
        now: Time,
        rng: &mut SmallRng,
    ) -> Self {
        assert!(members.contains(&me), "superleaf must include self");
        let mut groups = BTreeMap::new();
        for &owner in members {
            let core = RaftCore::new(
                GroupId(owner.0),
                me,
                members.to_vec(),
                cfg,
                owner == me,
                now,
                rng,
            );
            groups.insert(owner, core);
        }
        SuperLeafBroadcast { me, groups }
    }

    /// This node's id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The members of the super-leaf (sorted).
    pub fn members(&self) -> &[NodeId] {
        self.groups[&self.me].members()
    }

    /// Reliably broadcasts `data` to the super-leaf (including self-delivery).
    ///
    /// Returns the sequence number in this node's broadcast order, or `None`
    /// if this node currently does not lead its own group (possible briefly
    /// after a false-positive failure detection; callers may retry).
    pub fn broadcast(&mut self, data: Bytes, now: Time, out: &mut Outbox) -> Option<u64> {
        let group = self.groups.get_mut(&self.me).expect("own group exists");
        group.propose(data, now, out)
    }

    /// Routes one incoming Raft message to its group; returns any newly
    /// delivered broadcasts (across all groups, grouped by origin, in each
    /// origin's log order).
    pub fn handle(
        &mut self,
        from: NodeId,
        msg: RaftMsg,
        now: Time,
        rng: &mut SmallRng,
        out: &mut Outbox,
    ) -> Vec<Delivery> {
        let owner = NodeId(msg.group().0);
        let Some(group) = self.groups.get_mut(&owner) else {
            return Vec::new(); // unknown group: stale traffic after reconfig
        };
        group.handle(from, msg, now, rng, out);
        self.drain_deliveries()
    }

    /// Drives timeouts for all groups; returns any deliveries unlocked by
    /// elections (rare — only after owner failure).
    pub fn tick(&mut self, now: Time, rng: &mut SmallRng, out: &mut Outbox) -> Vec<Delivery> {
        for group in self.groups.values_mut() {
            group.tick(now, rng, out);
        }
        self.drain_deliveries()
    }

    fn drain_deliveries(&mut self) -> Vec<Delivery> {
        let mut deliveries = Vec::new();
        for (&owner, group) in self.groups.iter_mut() {
            for (seq, data) in group.take_delivered() {
                deliveries.push(Delivery {
                    origin: owner,
                    seq,
                    data,
                });
            }
        }
        deliveries
    }

    /// Whether this node currently leads its own broadcast group.
    pub fn leads_own_group(&self) -> bool {
        self.groups[&self.me].is_leader()
    }

    /// Campaigns to reclaim leadership of this node's own group (no-op if
    /// already leading). A live owner always wins eventually: its log is
    /// complete for its group and voters grant higher terms.
    pub fn reclaim_own_group(&mut self, now: Time, rng: &mut SmallRng, out: &mut Outbox) {
        let group = self.groups.get_mut(&self.me).expect("own group exists");
        group.force_election(now, rng, out);
    }

    /// Whether this node currently leads the group owned by `owner` (true
    /// after winning the election triggered by `owner`'s failure).
    pub fn leads_group_of(&self, owner: NodeId) -> bool {
        self.groups.get(&owner).is_some_and(|g| g.is_leader())
    }

    /// Proposes `data` into the group owned by `owner`. Used by a successor
    /// leader to append administrative entries (tombstones) totally ordered
    /// with the owner's broadcasts. Returns the log index, or `None` if
    /// this node does not lead that group.
    pub fn propose_into(
        &mut self,
        owner: NodeId,
        data: Bytes,
        now: Time,
        out: &mut Outbox,
    ) -> Option<u64> {
        let group = self.groups.get_mut(&owner)?;
        group.propose(data, now, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canopus_sim::{
        impl_process_any, Context, Dur, LossyFabric, Payload, Process, Simulation, Timer,
        UniformFabric,
    };

    /// Host process used to exercise broadcast inside the simulator.
    #[derive(Debug)]
    struct HostMsg(RaftMsg);

    impl Payload for HostMsg {
        fn wire_size(&self) -> usize {
            self.0.wire_size()
        }
    }

    struct Host {
        bcast: Option<SuperLeafBroadcast>,
        members: Vec<NodeId>,
        delivered: Vec<Delivery>,
        /// Payloads to broadcast at staggered times.
        to_send: Vec<Bytes>,
    }

    const TICK: u64 = 1;
    const SEND: u64 = 2;

    impl Process<HostMsg> for Host {
        fn on_start(&mut self, ctx: &mut Context<'_, HostMsg>) {
            let mut rng = ctx.rng().clone();
            self.bcast = Some(SuperLeafBroadcast::new(
                ctx.id(),
                &self.members.clone(),
                RaftConfig::default(),
                ctx.now(),
                &mut rng,
            ));
            ctx.set_timer(Dur::millis(1), TICK);
            if !self.to_send.is_empty() {
                ctx.set_timer(Dur::micros(100), SEND);
            }
        }

        fn on_message(&mut self, from: NodeId, msg: HostMsg, ctx: &mut Context<'_, HostMsg>) {
            let bcast = self.bcast.as_mut().unwrap();
            let mut out = Outbox::new();
            let mut rng = ctx.rng().clone();
            let delivered = bcast.handle(from, msg.0, ctx.now(), &mut rng, &mut out);
            self.delivered.extend(delivered);
            for (to, m) in out {
                ctx.send(to, HostMsg(m));
            }
        }

        fn on_timer(&mut self, timer: Timer, ctx: &mut Context<'_, HostMsg>) {
            let bcast = self.bcast.as_mut().unwrap();
            let mut out = Outbox::new();
            let mut rng = ctx.rng().clone();
            match timer.token {
                TICK => {
                    let delivered = bcast.tick(ctx.now(), &mut rng, &mut out);
                    self.delivered.extend(delivered);
                    ctx.set_timer(Dur::millis(1), TICK);
                }
                SEND => {
                    if let Some(data) = self.to_send.pop() {
                        bcast.broadcast(data, ctx.now(), &mut out);
                    }
                    if !self.to_send.is_empty() {
                        ctx.set_timer(Dur::micros(100), SEND);
                    }
                }
                _ => unreachable!(),
            }
            for (to, m) in out {
                ctx.send(to, HostMsg(m));
            }
        }

        impl_process_any!();
    }

    fn build(
        n: usize,
        payloads_for: impl Fn(usize) -> Vec<Bytes>,
        loss: f64,
        seed: u64,
    ) -> (Simulation<HostMsg, LossyFabric<UniformFabric>>, Vec<NodeId>) {
        let fabric = LossyFabric::new(UniformFabric::new(Dur::micros(25)), loss);
        let mut sim = Simulation::new(fabric, seed);
        let members: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        for i in 0..n {
            sim.add_node(Box::new(Host {
                bcast: None,
                members: members.clone(),
                delivered: Vec::new(),
                to_send: payloads_for(i),
            }));
        }
        (sim, members)
    }

    fn delivered_keys(
        sim: &Simulation<HostMsg, LossyFabric<UniformFabric>>,
        id: NodeId,
    ) -> Vec<(NodeId, u64, Bytes)> {
        let host = sim.node::<Host>(id);
        let mut keys: Vec<_> = host
            .delivered
            .iter()
            .map(|d| (d.origin, d.seq, d.data.clone()))
            .collect();
        keys.sort();
        keys
    }

    #[test]
    fn all_members_deliver_all_broadcasts() {
        let (mut sim, members) = build(3, |i| vec![Bytes::from(format!("from-{i}"))], 0.0, 1);
        sim.run_for(Dur::millis(50));
        let reference = delivered_keys(&sim, members[0]);
        assert_eq!(reference.len(), 3, "one broadcast per member");
        for &m in &members[1..] {
            assert_eq!(delivered_keys(&sim, m), reference);
        }
    }

    #[test]
    fn per_origin_order_is_preserved() {
        let (mut sim, members) = build(
            3,
            |i| {
                if i == 0 {
                    (0..10)
                        .rev()
                        .map(|k| Bytes::from(format!("m{k}")))
                        .collect()
                } else {
                    vec![]
                }
            },
            0.0,
            2,
        );
        sim.run_for(Dur::millis(100));
        for &m in &members {
            let host = sim.node::<Host>(m);
            let from_zero: Vec<&Delivery> = host
                .delivered
                .iter()
                .filter(|d| d.origin == NodeId(0))
                .collect();
            assert_eq!(from_zero.len(), 10);
            for (k, d) in from_zero.iter().enumerate() {
                assert_eq!(d.seq, k as u64 + 1, "seq in order");
                // to_send is popped from the back, so "m0".."m9" in order.
                assert_eq!(d.data, Bytes::from(format!("m{k}")));
            }
        }
    }

    #[test]
    fn broadcast_survives_message_loss() {
        // 10% loss: Raft retries via heartbeats until everyone delivers.
        let (mut sim, members) = build(3, |i| vec![Bytes::from(format!("lossy-{i}"))], 0.10, 3);
        sim.run_for(Dur::millis(500));
        let reference = delivered_keys(&sim, members[0]);
        assert_eq!(reference.len(), 3);
        for &m in &members[1..] {
            assert_eq!(delivered_keys(&sim, m), reference);
        }
    }

    #[test]
    fn survivors_agree_after_owner_crash() {
        // Node 0 broadcasts then crashes; the remaining members must agree
        // on whether its message was delivered (both-or-neither).
        let (mut sim, members) = build(5, |i| vec![Bytes::from(format!("c-{i}"))], 0.0, 4);
        sim.run_for(Dur::micros(150)); // let node 0 propose
        sim.crash(members[0]);
        sim.run_for(Dur::millis(200));
        let a = delivered_keys(&sim, members[1]);
        for &m in &members[2..] {
            assert_eq!(delivered_keys(&sim, m), a, "survivors diverged");
        }
        // All four survivor broadcasts must be present.
        let survivor_msgs = a
            .iter()
            .filter(|(origin, _, _)| *origin != members[0])
            .count();
        assert_eq!(survivor_msgs, 4);
    }

    #[test]
    fn broadcast_works_in_two_node_superleaf() {
        let (mut sim, members) = build(2, |i| vec![Bytes::from(format!("duo-{i}"))], 0.0, 5);
        sim.run_for(Dur::millis(50));
        assert_eq!(delivered_keys(&sim, members[0]).len(), 2);
        assert_eq!(
            delivered_keys(&sim, members[0]),
            delivered_keys(&sim, members[1])
        );
    }
}
