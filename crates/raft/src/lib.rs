//! # canopus-raft — Raft consensus and super-leaf reliable broadcast
//!
//! Canopus assumes (paper §4.3, assumption A4) a reliable broadcast
//! primitive inside every super-leaf: "if hardware support is not
//! available, we use a variant of Raft". This crate is that substrate:
//!
//! * [`RaftCore`] — a compact, correct Raft member: randomized leader
//!   election, log replication with consistency checks, commit tracking,
//!   and leadership no-ops.
//! * [`SuperLeafBroadcast`] — the paper's construction: every super-leaf
//!   member leads its own Raft group; broadcasting is proposing into one's
//!   own group, and peer failure triggers an election that completes any
//!   in-flight replication.
//! * [`FailureDetector`] — heartbeat-style liveness tracking used to feed
//!   membership updates into consensus cycles (§4.6).
//!
//! Everything here is sans-IO: hosts route [`RaftMsg`]s and call `tick`.

#![warn(missing_docs)]

pub mod broadcast;
pub mod core;
pub mod fd;

pub use crate::core::{Entry, GroupId, Outbox, RaftConfig, RaftCore, RaftMsg, Role};
pub use broadcast::{Delivery, SuperLeafBroadcast};
pub use fd::FailureDetector;
