//! A compact, correct Raft core: leader election, log replication, and
//! commit tracking.
//!
//! Canopus (§4.3) uses Raft *within a super-leaf* as its software reliable
//! broadcast: each node leads its own single-purpose Raft group whose
//! followers are its super-leaf peers. This module implements the group
//! machinery; [`crate::broadcast`] assembles the per-node groups into the
//! super-leaf broadcast primitive.
//!
//! The implementation is sans-IO and tick-driven: the host process calls
//! [`RaftCore::tick`] periodically and [`RaftCore::handle`] for every
//! incoming [`RaftMsg`]; both push outbound messages into a caller-provided
//! buffer. Committed entries are drained with [`RaftCore::take_delivered`].
//!
//! Standard Raft details implemented here: randomized election timeouts,
//! vote up-to-dateness checks, the AppendEntries consistency check with
//! conflict truncation, commit only of current-term entries by counting
//! replicas, and a no-op entry appended on leadership change so earlier-term
//! entries commit promptly.

use bytes::{Bytes, BytesMut};
use canopus_net::wire::{Wire, WireError, WireRead};
use canopus_sim::{Dur, NodeId, Time};
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};

/// Identifies a Raft group. In super-leaf broadcast, the group id is the
/// owner node's id.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GroupId(pub u32);

impl Wire for GroupId {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(GroupId(u32::decode(buf)?))
    }
}

/// One replicated log entry.
#[derive(Clone, Debug, PartialEq)]
pub struct Entry {
    /// Term in which the entry was appended by a leader.
    pub term: u64,
    /// Opaque command payload. Empty payloads are leadership no-ops and are
    /// not delivered to the host.
    pub data: Bytes,
}

impl Wire for Entry {
    fn encode(&self, buf: &mut BytesMut) {
        self.term.encode(buf);
        self.data.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(Entry {
            term: u64::decode(buf)?,
            data: Bytes::decode(buf)?,
        })
    }
}

/// Raft protocol messages for one group.
#[derive(Clone, Debug, PartialEq)]
pub enum RaftMsg {
    /// Candidate solicits a vote.
    RequestVote {
        /// Group this message belongs to.
        group: GroupId,
        /// Candidate's term.
        term: u64,
        /// Index of the candidate's last log entry.
        last_log_index: u64,
        /// Term of the candidate's last log entry.
        last_log_term: u64,
    },
    /// Response to `RequestVote`.
    VoteReply {
        /// Group this message belongs to.
        group: GroupId,
        /// Voter's current term.
        term: u64,
        /// Whether the vote was granted.
        granted: bool,
    },
    /// Leader replicates entries (empty = heartbeat / commit notification).
    AppendEntries {
        /// Group this message belongs to.
        group: GroupId,
        /// Leader's term.
        term: u64,
        /// Index of the entry immediately preceding `entries`.
        prev_index: u64,
        /// Term of the entry at `prev_index`.
        prev_term: u64,
        /// Entries to append (may be empty).
        entries: Vec<Entry>,
        /// Leader's commit index.
        commit: u64,
    },
    /// Response to `AppendEntries`.
    AppendReply {
        /// Group this message belongs to.
        group: GroupId,
        /// Follower's current term.
        term: u64,
        /// Whether the consistency check passed and entries were appended.
        success: bool,
        /// Follower's highest matching index when `success`, else the
        /// follower's hint for where to back up to.
        match_index: u64,
    },
}

impl RaftMsg {
    /// The group this message targets.
    pub fn group(&self) -> GroupId {
        match self {
            RaftMsg::RequestVote { group, .. }
            | RaftMsg::VoteReply { group, .. }
            | RaftMsg::AppendEntries { group, .. }
            | RaftMsg::AppendReply { group, .. } => *group,
        }
    }

    /// Approximate encoded size, used for network modelling.
    pub fn wire_size(&self) -> usize {
        match self {
            RaftMsg::RequestVote { .. } => 29,
            RaftMsg::VoteReply { .. } => 14,
            RaftMsg::AppendEntries { entries, .. } => {
                33 + entries.iter().map(|e| 12 + e.data.len()).sum::<usize>()
            }
            RaftMsg::AppendReply { .. } => 22,
        }
    }
}

impl Wire for RaftMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            RaftMsg::RequestVote {
                group,
                term,
                last_log_index,
                last_log_term,
            } => {
                0u8.encode(buf);
                group.encode(buf);
                term.encode(buf);
                last_log_index.encode(buf);
                last_log_term.encode(buf);
            }
            RaftMsg::VoteReply {
                group,
                term,
                granted,
            } => {
                1u8.encode(buf);
                group.encode(buf);
                term.encode(buf);
                granted.encode(buf);
            }
            RaftMsg::AppendEntries {
                group,
                term,
                prev_index,
                prev_term,
                entries,
                commit,
            } => {
                2u8.encode(buf);
                group.encode(buf);
                term.encode(buf);
                prev_index.encode(buf);
                prev_term.encode(buf);
                entries.encode(buf);
                commit.encode(buf);
            }
            RaftMsg::AppendReply {
                group,
                term,
                success,
                match_index,
            } => {
                3u8.encode(buf);
                group.encode(buf);
                term.encode(buf);
                success.encode(buf);
                match_index.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match buf.read_u8()? {
            0 => Ok(RaftMsg::RequestVote {
                group: GroupId::decode(buf)?,
                term: u64::decode(buf)?,
                last_log_index: u64::decode(buf)?,
                last_log_term: u64::decode(buf)?,
            }),
            1 => Ok(RaftMsg::VoteReply {
                group: GroupId::decode(buf)?,
                term: u64::decode(buf)?,
                granted: bool::decode(buf)?,
            }),
            2 => Ok(RaftMsg::AppendEntries {
                group: GroupId::decode(buf)?,
                term: u64::decode(buf)?,
                prev_index: u64::decode(buf)?,
                prev_term: u64::decode(buf)?,
                entries: Vec::<Entry>::decode(buf)?,
                commit: u64::decode(buf)?,
            }),
            3 => Ok(RaftMsg::AppendReply {
                group: GroupId::decode(buf)?,
                term: u64::decode(buf)?,
                success: bool::decode(buf)?,
                match_index: u64::decode(buf)?,
            }),
            _ => Err(WireError::Invalid("raft msg tag")),
        }
    }
}

/// Raft timing parameters. Defaults suit an intra-rack deployment where the
/// one-way latency is tens of microseconds.
#[derive(Copy, Clone, Debug)]
pub struct RaftConfig {
    /// Leader sends an empty AppendEntries if idle this long.
    pub heartbeat_interval: Dur,
    /// Minimum follower election timeout.
    pub election_timeout_min: Dur,
    /// Maximum follower election timeout.
    pub election_timeout_max: Dur,
}

impl Default for RaftConfig {
    fn default() -> Self {
        RaftConfig {
            heartbeat_interval: Dur::millis(2),
            election_timeout_min: Dur::millis(10),
            election_timeout_max: Dur::millis(20),
        }
    }
}

/// The role a peer currently plays in its group.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Role {
    /// Accepts entries from the leader.
    Follower,
    /// Soliciting votes after an election timeout.
    Candidate,
    /// Replicating entries to followers.
    Leader,
}

/// Outbound message buffer: `(destination, message)` pairs.
pub type Outbox = Vec<(NodeId, RaftMsg)>;

/// A single Raft group member.
#[derive(Debug)]
pub struct RaftCore {
    cfg: RaftConfig,
    group: GroupId,
    me: NodeId,
    members: Vec<NodeId>,
    role: Role,
    term: u64,
    voted_for: Option<NodeId>,
    votes: BTreeSet<NodeId>,
    /// Log entries; `log[i]` has index `i + 1`.
    log: Vec<Entry>,
    commit_index: u64,
    delivered: u64,
    election_deadline: Time,
    next_heartbeat: Time,
    next_index: BTreeMap<NodeId, u64>,
    match_index: BTreeMap<NodeId, u64>,
}

impl RaftCore {
    /// Creates a member of `group`. If `initial_leader` is true the node
    /// boots as leader of term 1 (used by super-leaf broadcast groups,
    /// where each node starts as the leader of its own group, §4.3);
    /// otherwise it boots as a follower that expects term-1 traffic.
    pub fn new(
        group: GroupId,
        me: NodeId,
        members: Vec<NodeId>,
        cfg: RaftConfig,
        initial_leader: bool,
        now: Time,
        rng: &mut SmallRng,
    ) -> Self {
        assert!(members.contains(&me), "members must include self");
        assert!(!members.is_empty());
        let mut sorted = members;
        sorted.sort_unstable();
        sorted.dedup();
        let mut core = RaftCore {
            cfg,
            group,
            me,
            members: sorted,
            role: Role::Follower,
            term: 1,
            voted_for: None,
            votes: BTreeSet::new(),
            log: Vec::new(),
            commit_index: 0,
            delivered: 0,
            election_deadline: Time::ZERO,
            next_heartbeat: Time::ZERO,
            next_index: BTreeMap::new(),
            match_index: BTreeMap::new(),
        };
        if initial_leader {
            core.become_leader(now);
        } else {
            core.reset_election_deadline(now, rng);
        }
        core
    }

    /// This member's durable state — the fields Raft requires to survive a
    /// crash (current term, vote, log). Volatile state (commit index,
    /// delivery cursor, role) is re-derived after recovery.
    pub fn persistent_state(&self) -> (u64, Option<NodeId>, Vec<Entry>) {
        (self.term, self.voted_for, self.log.clone())
    }

    /// Rebuilds a member from recovered durable state. The node boots as a
    /// follower; its committed entries re-deliver through the normal commit
    /// path once a leader advances its commit index, so the host replays
    /// them into its state machine exactly once.
    pub fn restore(
        group: GroupId,
        me: NodeId,
        members: Vec<NodeId>,
        cfg: RaftConfig,
        now: Time,
        rng: &mut SmallRng,
        term: u64,
        voted_for: Option<NodeId>,
        log: Vec<Entry>,
    ) -> Self {
        let mut core = RaftCore::new(group, me, members, cfg, false, now, rng);
        core.term = term.max(1);
        core.voted_for = voted_for;
        core.log = log;
        core.reset_election_deadline(now, rng);
        core
    }

    /// This member's id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The group id.
    pub fn group(&self) -> GroupId {
        self.group
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Current term.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Current commit index.
    pub fn commit_index(&self) -> u64 {
        self.commit_index
    }

    /// Number of entries in the log.
    pub fn log_len(&self) -> u64 {
        self.log.len() as u64
    }

    /// Whether this member currently leads the group.
    pub fn is_leader(&self) -> bool {
        self.role == Role::Leader
    }

    /// Group members (sorted).
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    fn majority(&self) -> usize {
        self.members.len() / 2 + 1
    }

    fn last_log_index(&self) -> u64 {
        self.log.len() as u64
    }

    fn last_log_term(&self) -> u64 {
        self.log.last().map_or(0, |e| e.term)
    }

    fn term_at(&self, index: u64) -> u64 {
        if index == 0 {
            0
        } else {
            self.log[(index - 1) as usize].term
        }
    }

    fn reset_election_deadline(&mut self, now: Time, rng: &mut SmallRng) {
        let min = self.cfg.election_timeout_min.as_nanos();
        let max = self.cfg.election_timeout_max.as_nanos().max(min + 1);
        let timeout = Dur::nanos(rng.gen_range(min..max));
        self.election_deadline = now + timeout;
    }

    fn become_leader(&mut self, now: Time) {
        self.role = Role::Leader;
        self.next_index.clear();
        self.match_index.clear();
        let next = self.last_log_index() + 1;
        for &peer in &self.members {
            if peer != self.me {
                self.next_index.insert(peer, next);
                self.match_index.insert(peer, 0);
            }
        }
        self.next_heartbeat = now; // heartbeat immediately

        // Commit entries from prior terms by appending a no-op in our term
        // (Raft §5.4.2). Skipped for a fresh log: there is nothing to flush.
        if !self.log.is_empty() {
            self.log.push(Entry {
                term: self.term,
                data: Bytes::new(),
            });
        }
        self.recompute_commit();
    }

    fn become_follower(&mut self, term: u64, now: Time, rng: &mut SmallRng) {
        self.role = Role::Follower;
        self.term = term;
        self.voted_for = None;
        self.votes.clear();
        self.reset_election_deadline(now, rng);
    }

    /// Appends a command to the log. Returns its index, or `None` if this
    /// member is not currently the leader (callers should surface the error
    /// to the proposer; super-leaf broadcast never proposes to groups it
    /// does not own).
    pub fn propose(&mut self, data: Bytes, now: Time, out: &mut Outbox) -> Option<u64> {
        if self.role != Role::Leader {
            return None;
        }
        assert!(!data.is_empty(), "empty payloads are reserved for no-ops");
        self.log.push(Entry {
            term: self.term,
            data,
        });
        let index = self.last_log_index();
        self.broadcast_appends(now, out);
        // A single-member group commits immediately.
        self.recompute_commit();
        Some(index)
    }

    /// Sends AppendEntries to every follower, tailored to its `next_index`.
    fn broadcast_appends(&mut self, now: Time, out: &mut Outbox) {
        let peers: Vec<NodeId> = self
            .members
            .iter()
            .copied()
            .filter(|&p| p != self.me)
            .collect();
        for peer in peers {
            self.send_append(peer, out);
        }
        self.next_heartbeat = now + self.cfg.heartbeat_interval;
    }

    fn send_append(&mut self, peer: NodeId, out: &mut Outbox) {
        let next = *self.next_index.get(&peer).unwrap_or(&1);
        let prev_index = next - 1;
        let prev_term = self.term_at(prev_index);
        let entries: Vec<Entry> = self.log[(next - 1) as usize..].to_vec();
        out.push((
            peer,
            RaftMsg::AppendEntries {
                group: self.group,
                term: self.term,
                prev_index,
                prev_term,
                entries,
                commit: self.commit_index,
            },
        ));
    }

    /// Advances time-based behaviour: election timeouts and heartbeats.
    pub fn tick(&mut self, now: Time, rng: &mut SmallRng, out: &mut Outbox) {
        match self.role {
            Role::Leader => {
                if now >= self.next_heartbeat {
                    self.broadcast_appends(now, out);
                }
            }
            Role::Follower | Role::Candidate => {
                if now >= self.election_deadline && self.members.len() > 1 {
                    self.start_election(now, rng, out);
                } else if self.members.len() == 1 && self.role == Role::Follower {
                    // Sole member: become leader directly.
                    self.term += 1;
                    self.become_leader(now);
                }
            }
        }
    }

    /// Immediately campaigns for leadership at a higher term. Used by a
    /// broadcast-group owner to reclaim its group after a transient
    /// usurpation (e.g. a false failure suspicion under CPU overload).
    pub fn force_election(&mut self, now: Time, rng: &mut SmallRng, out: &mut Outbox) {
        if self.role != Role::Leader {
            self.start_election(now, rng, out);
        }
    }

    fn start_election(&mut self, now: Time, rng: &mut SmallRng, out: &mut Outbox) {
        self.role = Role::Candidate;
        self.term += 1;
        self.voted_for = Some(self.me);
        self.votes.clear();
        self.votes.insert(self.me);
        self.reset_election_deadline(now, rng);
        if self.votes.len() >= self.majority() {
            self.become_leader(now);
            return;
        }
        for &peer in &self.members {
            if peer != self.me {
                out.push((
                    peer,
                    RaftMsg::RequestVote {
                        group: self.group,
                        term: self.term,
                        last_log_index: self.last_log_index(),
                        last_log_term: self.last_log_term(),
                    },
                ));
            }
        }
    }

    /// Handles one incoming message for this group.
    pub fn handle(
        &mut self,
        from: NodeId,
        msg: RaftMsg,
        now: Time,
        rng: &mut SmallRng,
        out: &mut Outbox,
    ) {
        debug_assert_eq!(msg.group(), self.group);
        match msg {
            RaftMsg::RequestVote {
                term,
                last_log_index,
                last_log_term,
                ..
            } => {
                if term > self.term {
                    self.become_follower(term, now, rng);
                }
                let up_to_date = (last_log_term, last_log_index)
                    >= (self.last_log_term(), self.last_log_index());
                let granted = term == self.term
                    && up_to_date
                    && (self.voted_for.is_none() || self.voted_for == Some(from));
                if granted {
                    self.voted_for = Some(from);
                    self.reset_election_deadline(now, rng);
                }
                out.push((
                    from,
                    RaftMsg::VoteReply {
                        group: self.group,
                        term: self.term,
                        granted,
                    },
                ));
            }
            RaftMsg::VoteReply { term, granted, .. } => {
                if term > self.term {
                    self.become_follower(term, now, rng);
                    return;
                }
                if self.role == Role::Candidate && term == self.term && granted {
                    self.votes.insert(from);
                    if self.votes.len() >= self.majority() {
                        self.become_leader(now);
                        self.broadcast_appends(now, out);
                    }
                }
            }
            RaftMsg::AppendEntries {
                term,
                prev_index,
                prev_term,
                entries,
                commit,
                ..
            } => {
                if term > self.term || (term == self.term && self.role == Role::Candidate) {
                    self.become_follower(term, now, rng);
                }
                if term < self.term {
                    out.push((
                        from,
                        RaftMsg::AppendReply {
                            group: self.group,
                            term: self.term,
                            success: false,
                            match_index: 0,
                        },
                    ));
                    return;
                }
                // term == self.term and we are a follower.
                self.reset_election_deadline(now, rng);
                // Consistency check.
                if prev_index > self.last_log_index() || self.term_at(prev_index) != prev_term {
                    // Hint: back up to our log end (simple but effective).
                    let hint = self.last_log_index().min(prev_index.saturating_sub(1));
                    out.push((
                        from,
                        RaftMsg::AppendReply {
                            group: self.group,
                            term: self.term,
                            success: false,
                            match_index: hint,
                        },
                    ));
                    return;
                }
                // Append, truncating conflicts.
                let mut index = prev_index;
                for entry in entries {
                    index += 1;
                    if index <= self.last_log_index() {
                        if self.term_at(index) != entry.term {
                            self.log.truncate((index - 1) as usize);
                            self.log.push(entry);
                        }
                        // else: already have it
                    } else {
                        self.log.push(entry);
                    }
                }
                let new_commit = commit.min(index.max(self.last_log_index().min(index)));
                if new_commit > self.commit_index {
                    self.commit_index = new_commit;
                }
                out.push((
                    from,
                    RaftMsg::AppendReply {
                        group: self.group,
                        term: self.term,
                        success: true,
                        match_index: index,
                    },
                ));
            }
            RaftMsg::AppendReply {
                term,
                success,
                match_index,
                ..
            } => {
                if term > self.term {
                    self.become_follower(term, now, rng);
                    return;
                }
                if self.role != Role::Leader || term != self.term {
                    return;
                }
                if success {
                    self.match_index.insert(from, match_index);
                    self.next_index.insert(from, match_index + 1);
                    let old_commit = self.commit_index;
                    self.recompute_commit();
                    if self.commit_index > old_commit {
                        // Eagerly notify followers so they deliver without
                        // waiting for the next heartbeat (keeps super-leaf
                        // broadcast latency at ~1.5 RTT instead of +interval).
                        self.broadcast_appends(now, out);
                    }
                } else {
                    let next = self
                        .next_index
                        .get(&from)
                        .copied()
                        .unwrap_or(1)
                        .saturating_sub(1)
                        .max(1)
                        .min(match_index + 1);
                    self.next_index.insert(from, next.max(1));
                    self.send_append(from, out);
                }
            }
        }
    }

    /// Recomputes the commit index from match indices (leader only commits
    /// entries of its own term by counting, Raft §5.4.2).
    fn recompute_commit(&mut self) {
        if self.role != Role::Leader {
            return;
        }
        let mut candidates: Vec<u64> = self
            .members
            .iter()
            .map(|&peer| {
                if peer == self.me {
                    self.last_log_index()
                } else {
                    *self.match_index.get(&peer).unwrap_or(&0)
                }
            })
            .collect();
        candidates.sort_unstable();
        // The majority-th highest match index is replicated on a majority.
        let majority_index = candidates[candidates.len() - self.majority()];
        if majority_index > self.commit_index && self.term_at(majority_index) == self.term {
            self.commit_index = majority_index;
        }
    }

    /// Drains newly committed entries, in log order, skipping no-ops.
    /// Each is `(index, payload)`.
    pub fn take_delivered(&mut self) -> Vec<(u64, Bytes)> {
        let mut out = Vec::new();
        while self.delivered < self.commit_index {
            self.delivered += 1;
            let entry = &self.log[(self.delivered - 1) as usize];
            if !entry.data.is_empty() {
                out.push((self.delivered, entry.data.clone()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    fn trio(now: Time) -> (RaftCore, RaftCore, RaftCore, SmallRng) {
        let mut r = rng();
        let members = vec![NodeId(0), NodeId(1), NodeId(2)];
        let g = GroupId(0);
        let cfg = RaftConfig::default();
        let a = RaftCore::new(g, NodeId(0), members.clone(), cfg, true, now, &mut r);
        let b = RaftCore::new(g, NodeId(1), members.clone(), cfg, false, now, &mut r);
        let c = RaftCore::new(g, NodeId(2), members, cfg, false, now, &mut r);
        (a, b, c, r)
    }

    /// Synchronously shuttles messages between the three peers until quiet.
    fn pump(cores: &mut [&mut RaftCore], mut queue: Outbox, rng: &mut SmallRng, now: Time) {
        let mut rounds = 0;
        while !queue.is_empty() {
            rounds += 1;
            assert!(rounds < 1000, "message storm");
            let mut next = Outbox::new();
            for (to, msg) in queue.drain(..) {
                let from_sender = msg_sender(&msg, cores, to);
                let target = cores
                    .iter_mut()
                    .find(|c| c.me() == to)
                    .expect("destination exists");
                target.handle(from_sender, msg, now, rng, &mut next);
            }
            queue = next;
        }
    }

    /// Our tests route synchronously; infer senders by exclusion: messages
    /// destined to X from a group with leader semantics come from whoever
    /// could have sent them. For the simple pump we tag the leader/candidate
    /// by scanning. (Production code carries the sender on the wire.)
    fn msg_sender(msg: &RaftMsg, cores: &mut [&mut RaftCore], to: NodeId) -> NodeId {
        match msg {
            RaftMsg::AppendEntries { term, .. } | RaftMsg::RequestVote { term, .. } => cores
                .iter()
                .find(|c| c.term() == *term && c.me() != to && c.role() != Role::Follower)
                .map(|c| c.me())
                .unwrap_or(NodeId(0)),
            // Replies: sender is "the other" node; with three nodes and a
            // single active exchange this is unambiguous in these tests.
            _ => cores.iter().find(|c| c.me() != to).map(|c| c.me()).unwrap(),
        }
    }

    #[test]
    fn initial_leader_replicates_and_commits() {
        let now = Time::ZERO;
        let (mut a, mut b, mut c, mut r) = trio(now);
        let mut out = Outbox::new();
        let idx = a
            .propose(Bytes::from_static(b"x"), now, &mut out)
            .expect("leader proposes");
        assert_eq!(idx, 1);

        // Deliver appends to b and c; collect replies.
        let mut replies = Outbox::new();
        for (to, msg) in out.drain(..) {
            match to {
                NodeId(1) => b.handle(NodeId(0), msg, now, &mut r, &mut replies),
                NodeId(2) => c.handle(NodeId(0), msg, now, &mut r, &mut replies),
                other => panic!("unexpected dest {other}"),
            }
        }
        // First reply commits on the leader (majority of 3 = 2).
        let mut notify = Outbox::new();
        let (reply_to_a, msg) = replies.remove(0);
        assert_eq!(reply_to_a, NodeId(0));
        a.handle(NodeId(1), msg, now, &mut r, &mut notify);
        assert_eq!(a.commit_index(), 1);
        assert_eq!(a.take_delivered(), vec![(1, Bytes::from_static(b"x"))]);

        // The eager commit notification lets followers deliver too.
        for (to, msg) in notify.drain(..) {
            let mut sink = Outbox::new();
            match to {
                NodeId(1) => b.handle(NodeId(0), msg, now, &mut r, &mut sink),
                NodeId(2) => c.handle(NodeId(0), msg, now, &mut r, &mut sink),
                other => panic!("unexpected dest {other}"),
            }
        }
        assert_eq!(b.take_delivered(), vec![(1, Bytes::from_static(b"x"))]);
        assert_eq!(c.take_delivered(), vec![(1, Bytes::from_static(b"x"))]);
    }

    #[test]
    fn follower_rejects_gap_and_leader_backs_up() {
        let now = Time::ZERO;
        let (mut a, mut b, _c, mut r) = trio(now);
        let mut out = Outbox::new();
        // Leader appends two entries but we only deliver the *second* append
        // (simulating loss of the first).
        a.propose(Bytes::from_static(b"1"), now, &mut out);
        out.clear();
        a.propose(Bytes::from_static(b"2"), now, &mut out);
        // Craft: take the append destined to b; it has prev_index=0 and both
        // entries (since next_index for b is still 1) — so no gap. To force a
        // gap, pretend b's next_index advanced without b hearing anything:
        // send an append with prev_index=1 manually.
        let gap = RaftMsg::AppendEntries {
            group: GroupId(0),
            term: a.term(),
            prev_index: 1,
            prev_term: a.term(),
            entries: vec![Entry {
                term: a.term(),
                data: Bytes::from_static(b"2"),
            }],
            commit: 0,
        };
        let mut replies = Outbox::new();
        b.handle(NodeId(0), gap, now, &mut r, &mut replies);
        let (_, reply) = replies.pop().expect("reply");
        match reply {
            RaftMsg::AppendReply { success, .. } => assert!(!success),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn election_on_leader_silence() {
        let now = Time::ZERO;
        let (_a, mut b, mut c, mut r) = trio(now);
        // No traffic from the leader; advance past the election timeout.
        let later = now + Dur::millis(50);
        let mut out = Outbox::new();
        b.tick(later, &mut r, &mut out);
        // b should have started an election.
        assert_eq!(b.role(), Role::Candidate);
        let vote_reqs: Vec<_> = std::mem::take(&mut out);
        assert_eq!(vote_reqs.len(), 2);
        // c grants the vote.
        let mut replies = Outbox::new();
        let (_, req) = vote_reqs
            .into_iter()
            .find(|(to, _)| *to == NodeId(2))
            .unwrap();
        c.handle(NodeId(1), req, later, &mut r, &mut replies);
        let (_, reply) = replies.pop().unwrap();
        let mut out2 = Outbox::new();
        b.handle(NodeId(2), reply, later, &mut r, &mut out2);
        assert_eq!(b.role(), Role::Leader, "majority of 2 reached");
    }

    #[test]
    fn votes_denied_for_stale_log() {
        let now = Time::ZERO;
        let (mut a, mut b, _c, mut r) = trio(now);
        // Leader a commits an entry that b has.
        let mut out = Outbox::new();
        a.propose(Bytes::from_static(b"x"), now, &mut out);
        for (to, msg) in out.drain(..) {
            if to == NodeId(1) {
                let mut sink = Outbox::new();
                b.handle(NodeId(0), msg, now, &mut r, &mut sink);
            }
        }
        // A candidate with an empty log must not win b's vote.
        let stale = RaftMsg::RequestVote {
            group: GroupId(0),
            term: 5,
            last_log_index: 0,
            last_log_term: 0,
        };
        let mut replies = Outbox::new();
        b.handle(NodeId(2), stale, now, &mut r, &mut replies);
        let (_, reply) = replies.pop().unwrap();
        match reply {
            RaftMsg::VoteReply { granted, .. } => assert!(!granted),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn new_leader_completes_replication() {
        // a replicates entry to b only, then "fails". b must become leader
        // (it has the longer log) and bring c up to date — the §4.3 scenario
        // where a new leader completes incomplete broadcasts.
        let now = Time::ZERO;
        let (mut a, mut b, mut c, mut r) = trio(now);
        let mut out = Outbox::new();
        a.propose(Bytes::from_static(b"x"), now, &mut out);
        for (to, msg) in out.drain(..) {
            if to == NodeId(1) {
                let mut sink = Outbox::new();
                b.handle(NodeId(0), msg, now, &mut r, &mut sink);
            }
            // message to c is lost; a crashes now.
        }
        assert_eq!(b.log_len(), 1);
        assert_eq!(c.log_len(), 0);

        // b times out and wins the election against c.
        let later = now + Dur::millis(50);
        let mut out = Outbox::new();
        b.tick(later, &mut r, &mut out);
        let mut replies = Outbox::new();
        for (to, msg) in out.drain(..) {
            if to == NodeId(2) {
                c.handle(NodeId(1), msg, later, &mut r, &mut replies);
            }
        }
        let mut appends = Outbox::new();
        for (_, msg) in replies.drain(..) {
            b.handle(NodeId(2), msg, later, &mut r, &mut appends);
        }
        assert!(b.is_leader());

        // b's first appends carry the old entry plus b's no-op; shuttle
        // messages between b and c (a stays crashed) until quiet, after
        // which both must deliver "x".
        let mut queue: Outbox = appends;
        let mut rounds = 0;
        while !queue.is_empty() {
            rounds += 1;
            assert!(rounds < 100, "message storm between b and c");
            let mut next = Outbox::new();
            for (to, msg) in queue.drain(..) {
                match to {
                    NodeId(1) => b.handle(NodeId(2), msg, later, &mut r, &mut next),
                    NodeId(2) => c.handle(NodeId(1), msg, later, &mut r, &mut next),
                    _ => {} // messages to the crashed node are lost
                }
            }
            queue = next;
        }
        assert_eq!(b.take_delivered(), vec![(1, Bytes::from_static(b"x"))]);
        assert_eq!(c.take_delivered(), vec![(1, Bytes::from_static(b"x"))]);
        let _ = pump; // silence unused in this configuration
        let _ = &mut a;
    }

    #[test]
    fn single_member_group_commits_instantly() {
        let mut r = rng();
        let g = GroupId(9);
        let mut solo = RaftCore::new(
            g,
            NodeId(5),
            vec![NodeId(5)],
            RaftConfig::default(),
            true,
            Time::ZERO,
            &mut r,
        );
        let mut out = Outbox::new();
        solo.propose(Bytes::from_static(b"only"), Time::ZERO, &mut out);
        assert!(out.is_empty());
        assert_eq!(
            solo.take_delivered(),
            vec![(1, Bytes::from_static(b"only"))]
        );
    }

    #[test]
    fn raft_msgs_round_trip_on_wire() {
        let msgs = vec![
            RaftMsg::RequestVote {
                group: GroupId(3),
                term: 7,
                last_log_index: 9,
                last_log_term: 6,
            },
            RaftMsg::VoteReply {
                group: GroupId(3),
                term: 7,
                granted: true,
            },
            RaftMsg::AppendEntries {
                group: GroupId(1),
                term: 2,
                prev_index: 4,
                prev_term: 2,
                entries: vec![
                    Entry {
                        term: 2,
                        data: Bytes::from_static(b"hello"),
                    },
                    Entry {
                        term: 2,
                        data: Bytes::new(),
                    },
                ],
                commit: 4,
            },
            RaftMsg::AppendReply {
                group: GroupId(1),
                term: 2,
                success: false,
                match_index: 3,
            },
        ];
        for msg in msgs {
            let bytes = msg.to_bytes();
            let back = RaftMsg::from_bytes(bytes).expect("decode");
            assert_eq!(back, msg);
        }
    }
}
