//! Heartbeat failure detection within a super-leaf.
//!
//! The paper (§3.6, §4.6) detects node failures "by using a method similar
//! to the heartbeat mechanism in Raft" and assumes detection within a rack
//! is reliable (assumption A2: bounded intra-rack delays). This detector
//! tracks the last time each peer was heard from — any protocol traffic
//! counts — and reports peers silent beyond a timeout as failed. The host
//! folds confirmed failures into the membership updates (`F` sets) carried
//! by the next consensus cycle.

use std::collections::BTreeMap;

use canopus_sim::{Dur, NodeId, Time};

/// Tracks peer liveness from observed traffic.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    timeout: Dur,
    last_heard: BTreeMap<NodeId, Time>,
    /// Peers already reported, so each failure is surfaced exactly once.
    reported: BTreeMap<NodeId, bool>,
}

impl FailureDetector {
    /// Creates a detector for `peers` (excluding self), considering a peer
    /// failed after `timeout` of silence.
    pub fn new(peers: &[NodeId], timeout: Dur, now: Time) -> Self {
        FailureDetector {
            timeout,
            last_heard: peers.iter().map(|&p| (p, now)).collect(),
            reported: peers.iter().map(|&p| (p, false)).collect(),
        }
    }

    /// Records traffic from `peer` at `now`. Unknown peers are ignored.
    pub fn record(&mut self, peer: NodeId, now: Time) {
        if let Some(t) = self.last_heard.get_mut(&peer) {
            if now > *t {
                *t = now;
            }
        }
    }

    /// Starts tracking a peer that joined (or rejoined) the super-leaf.
    pub fn add_peer(&mut self, peer: NodeId, now: Time) {
        self.last_heard.insert(peer, now);
        self.reported.insert(peer, false);
    }

    /// Stops tracking a peer that left the super-leaf.
    pub fn remove_peer(&mut self, peer: NodeId) {
        self.last_heard.remove(&peer);
        self.reported.remove(&peer);
    }

    /// Returns peers that crossed the silence threshold since the last call;
    /// each failed peer is reported once until it is heard from again.
    pub fn newly_failed(&mut self, now: Time) -> Vec<NodeId> {
        let mut failed = Vec::new();
        for (&peer, &heard) in &self.last_heard {
            let expired = now.saturating_since(heard) >= self.timeout;
            let reported = self.reported.get_mut(&peer).expect("tracked");
            if expired && !*reported {
                *reported = true;
                failed.push(peer);
            } else if !expired && *reported {
                // Heard again after being reported: allow re-reporting later.
                *reported = false;
            }
        }
        failed
    }

    /// Peers currently considered alive.
    pub fn live_peers(&self, now: Time) -> Vec<NodeId> {
        self.last_heard
            .iter()
            .filter(|(_, &heard)| now.saturating_since(heard) < self.timeout)
            .map(|(&p, _)| p)
            .collect()
    }

    /// The configured silence threshold.
    pub fn timeout(&self) -> Dur {
        self.timeout
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Time {
        Time::ZERO + Dur::millis(ms)
    }

    #[test]
    fn silent_peer_reported_once() {
        let peers = [NodeId(1), NodeId(2)];
        let mut fd = FailureDetector::new(&peers, Dur::millis(10), t(0));
        fd.record(NodeId(1), t(5));
        // At t=12: peer 2 silent for 12ms (failed), peer 1 for 7ms (fine).
        assert_eq!(fd.newly_failed(t(12)), vec![NodeId(2)]);
        assert_eq!(fd.newly_failed(t(13)), vec![], "reported only once");
        // Peer 1 eventually fails too.
        assert_eq!(fd.newly_failed(t(20)), vec![NodeId(1)]);
    }

    #[test]
    fn traffic_resets_the_clock() {
        let peers = [NodeId(1)];
        let mut fd = FailureDetector::new(&peers, Dur::millis(10), t(0));
        for ms in (0..100).step_by(5) {
            fd.record(NodeId(1), t(ms));
            assert_eq!(fd.newly_failed(t(ms + 1)), vec![]);
        }
    }

    #[test]
    fn recovered_peer_can_fail_again() {
        let peers = [NodeId(1)];
        let mut fd = FailureDetector::new(&peers, Dur::millis(10), t(0));
        assert_eq!(fd.newly_failed(t(15)), vec![NodeId(1)]);
        // Peer rejoins and talks.
        fd.record(NodeId(1), t(20));
        assert_eq!(fd.newly_failed(t(21)), vec![]);
        // And fails again later: re-reported.
        assert_eq!(fd.newly_failed(t(40)), vec![NodeId(1)]);
    }

    #[test]
    fn live_peers_tracks_current_view() {
        let peers = [NodeId(1), NodeId(2)];
        let mut fd = FailureDetector::new(&peers, Dur::millis(10), t(0));
        fd.record(NodeId(1), t(8));
        assert_eq!(fd.live_peers(t(12)), vec![NodeId(1)]);
    }

    #[test]
    fn add_and_remove_peers() {
        let mut fd = FailureDetector::new(&[NodeId(1)], Dur::millis(10), t(0));
        fd.add_peer(NodeId(3), t(5));
        fd.remove_peer(NodeId(1));
        assert_eq!(fd.newly_failed(t(30)), vec![NodeId(3)]);
        assert!(fd.live_peers(t(30)).is_empty());
    }
}
