//! The ZooKeeper model: Zab atomic broadcast with observers.
//!
//! Reproduces the system the paper compares against in Figure 5: a single
//! leader runs the Zab broadcast phase over a small participant ensemble
//! (the paper configures **five followers**, "mainly to reduce the load on
//! the centralized leader"), while the remaining nodes are **observers**
//! that receive committed transactions asynchronously and serve reads
//! locally. Writes funnel through the leader — the centralized bottleneck
//! Canopus removes — and reads are served from local committed state
//! (ZooKeeper's sequential-consistency semantics; the stronger `sync`
//! path is not modelled, matching how ZooKeeper is benchmarked).
//!
//! Failure handling: followers detect leader silence, run a
//! highest-`(zxid, id)` election among live participants, and the winner
//! resyncs followers from its log before resuming broadcast — a compact
//! rendition of Zab's discovery/synchronization phases sufficient for
//! crash-failover tests (full ZooKeeper recovery variants are out of
//! scope; see DESIGN.md).

use std::collections::{BTreeMap, VecDeque};

use canopus_kv::{ClientReply, ClientRequest, CostModel, KvStore, Op, OpResult, TimedOp};
use canopus_obs::{Counter, EventKind as ObsEvent, Gauge, NodeObs};
use canopus_sim::{impl_process_any, Context, Dur, NodeId, Process, Time, Timer};

use crate::msg::{Txn, ZabMsg, Zxid};

const TICK: u64 = 1;

/// Role of a node in the ensemble.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ZabRole {
    /// Runs the broadcast protocol.
    Leader,
    /// Participates in the quorum.
    Follower,
    /// Receives committed transactions asynchronously; serves reads.
    Observer,
}

/// Configuration of the ZooKeeper model.
#[derive(Clone, Debug)]
pub struct ZabConfig {
    /// Number of quorum participants (leader + followers); the paper uses
    /// 6 (a leader and five followers), the rest observers.
    pub participants: usize,
    /// Leader heartbeat interval.
    pub heartbeat: Dur,
    /// Follower silence threshold before starting an election.
    pub election_timeout: Dur,
    /// Housekeeping tick.
    pub tick_interval: Dur,
    /// Leader CPU per represented request per destination: models the
    /// unbatched, per-request proposal/INFORM stream of real ZooKeeper.
    pub per_request_dissemination: Dur,
    /// CPU cost model.
    pub costs: CostModel,
}

impl Default for ZabConfig {
    fn default() -> Self {
        ZabConfig {
            participants: 6,
            heartbeat: Dur::millis(2),
            election_timeout: Dur::millis(20),
            tick_interval: Dur::millis(1),
            per_request_dissemination: Dur::nanos(600),
            costs: CostModel::default(),
        }
    }
}

/// Counters exposed by every node.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ZabStats {
    /// Transactions this node applied (weighted).
    pub applied_weight: u64,
    /// Requests from this node's own clients completed (weighted).
    pub own_completed: u64,
    /// Reads served locally (weighted).
    pub reads_served: u64,
    /// Elections participated in.
    pub elections: u64,
}

/// Pre-registered observability handles (no-ops unless
/// [`ZabNode::with_obs`] installed an enabled hub).
struct ZabObs {
    hub: NodeObs,
    elections: Counter,
    leader_changes: Counter,
    resyncs_served: Counter,
    resyncs_requested: Counter,
    commit_lag: Gauge,
}

impl ZabObs {
    fn from_hub(hub: NodeObs) -> Self {
        let m = &hub.metrics;
        ZabObs {
            elections: m.counter("zab.elections"),
            leader_changes: m.counter("zab.leader_changes"),
            resyncs_served: m.counter("zab.resyncs_served"),
            resyncs_requested: m.counter("zab.resyncs_requested"),
            commit_lag: m.gauge("zab.commit_lag"),
            hub,
        }
    }
}

/// One node of the ZooKeeper model.
pub struct ZabNode {
    cfg: ZabConfig,
    me: NodeId,
    ensemble: Vec<NodeId>,
    role: ZabRole,
    epoch: u32,
    leader: NodeId,
    /// Full transaction log: `(zxid, txn)`, zxid-ordered.
    log: Vec<(Zxid, Txn)>,
    committed: Zxid,
    applied: Zxid,
    /// Leader: acks per in-flight zxid.
    acks: BTreeMap<Zxid, u32>,
    next_counter: u64,
    /// Cursor into `log`: everything before it is applied.
    applied_idx: usize,
    /// Election state: candidate credentials seen for the next epoch.
    election_votes: BTreeMap<NodeId, Zxid>,
    election_deadline: Option<Time>,
    last_leader_contact: Time,
    next_ping: Time,
    store: KvStore,
    stats: ZabStats,
    obs: ZabObs,
    forward_queue: VecDeque<Txn>,
    /// When we last asked the leader for a full resync — throttles the
    /// request so a burst of gap-detected messages costs one history
    /// transfer, not one per message.
    resync_requested_at: Option<Time>,
}

impl ZabNode {
    /// Creates a node. The first `cfg.participants` entries of `ensemble`
    /// are quorum participants with `ensemble[0]` the initial leader; the
    /// remainder are observers. All nodes must receive the identical list.
    pub fn new(me: NodeId, ensemble: Vec<NodeId>, cfg: ZabConfig) -> Self {
        assert!(ensemble.contains(&me));
        assert!(cfg.participants >= 1 && cfg.participants <= ensemble.len());
        let leader = ensemble[0];
        let role = if me == leader {
            ZabRole::Leader
        } else if ensemble[..cfg.participants].contains(&me) {
            ZabRole::Follower
        } else {
            ZabRole::Observer
        };
        ZabNode {
            cfg,
            me,
            ensemble,
            role,
            epoch: 1,
            leader,
            log: Vec::new(),
            committed: Zxid::default(),
            applied: Zxid::default(),
            acks: BTreeMap::new(),
            next_counter: 0,
            applied_idx: 0,
            election_votes: BTreeMap::new(),
            election_deadline: None,
            last_leader_contact: Time::ZERO,
            next_ping: Time::ZERO,
            store: KvStore::new(),
            stats: ZabStats::default(),
            obs: ZabObs::from_hub(NodeObs::disabled()),
            forward_queue: VecDeque::new(),
            resync_requested_at: None,
        }
    }

    /// Installs an observability hub (metrics + flight recorder). Builder
    /// style; without it the node carries a disabled hub costing one
    /// branch per update.
    pub fn with_obs(mut self, hub: NodeObs) -> Self {
        self.obs = ZabObs::from_hub(hub);
        self
    }

    /// This node's observability hub (disabled unless installed).
    pub fn obs(&self) -> &NodeObs {
        &self.obs.hub
    }

    /// Creates a node that rejoins after a crash with no durable state. It
    /// always boots as a follower — even `ensemble[0]` — because an
    /// amnesiac node that reclaimed its old leadership would reuse
    /// already-committed zxids and diverge the log. It catches up through
    /// the resync path (leader pings → `ResyncRequest` → `NewLeader`), or
    /// triggers an election if the whole ensemble lost its leader.
    pub fn recovering(me: NodeId, ensemble: Vec<NodeId>, cfg: ZabConfig) -> Self {
        let mut node = ZabNode::new(me, ensemble, cfg);
        if node.role == ZabRole::Leader {
            node.role = ZabRole::Follower;
        }
        node
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// Current role.
    pub fn role(&self) -> ZabRole {
        self.role
    }

    /// Current epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Counters.
    pub fn stats(&self) -> ZabStats {
        self.stats
    }

    /// The replicated store.
    pub fn store(&self) -> &KvStore {
        &self.store
    }

    /// The applied transaction log as `(client, op_id)` pairs, for
    /// agreement checks.
    pub fn applied_log(&self) -> Vec<(NodeId, u64)> {
        self.log
            .iter()
            .filter(|(z, _)| *z <= self.applied)
            .map(|(_, t)| (t.op.req.client, t.op.req.op_id))
            .collect()
    }

    /// The applied transactions as `(key, client, op_id)` triples (`key`
    /// is `None` for non-`Put` operations), for per-key order checks.
    pub fn applied_ops(&self) -> Vec<(Option<canopus_kv::Key>, NodeId, u64)> {
        self.log
            .iter()
            .filter(|(z, _)| *z <= self.applied)
            .map(|(_, t)| {
                let key = match &t.op.req.op {
                    Op::Put { key, .. } => Some(*key),
                    _ => None,
                };
                (key, t.op.req.client, t.op.req.op_id)
            })
            .collect()
    }

    fn participants(&self) -> &[NodeId] {
        &self.ensemble[..self.cfg.participants]
    }

    fn followers(&self) -> impl Iterator<Item = NodeId> + '_ {
        let me = self.me;
        self.participants()
            .iter()
            .copied()
            .filter(move |&n| n != me)
    }

    fn observers(&self) -> &[NodeId] {
        &self.ensemble[self.cfg.participants..]
    }

    fn quorum(&self) -> u32 {
        (self.cfg.participants / 2 + 1) as u32
    }

    fn last_zxid(&self) -> Zxid {
        self.log.last().map(|(z, _)| *z).unwrap_or_default()
    }

    // ------------------------------------------------------------------
    // Broadcast phase
    // ------------------------------------------------------------------

    fn lead_transaction(&mut self, txn: Txn, ctx: &mut Context<'_, ZabMsg>) {
        debug_assert_eq!(self.role, ZabRole::Leader);
        // Real ZooKeeper proposes each request individually: the leader
        // pays per-request processing and per-request dissemination to
        // every follower and observer. Synthetic batches model the load of
        // `weight` requests, so the charge scales with weight and fan-out —
        // this is the centralized bottleneck of Figure 5.
        let weight = txn.op.req.op.weight() as u64;
        let fanout = (self.ensemble.len() - 1) as u64;
        let per_req = self.cfg.costs.per_request.as_nanos()
            + self.cfg.per_request_dissemination.as_nanos() * fanout;
        ctx.charge(Dur::nanos(per_req * weight.min(65_536)));
        self.next_counter += 1;
        let zxid = Zxid {
            epoch: self.epoch,
            counter: self.next_counter,
        };
        self.log.push((zxid, txn.clone()));
        self.acks.insert(zxid, 1); // self-ack
        if !self.cfg.costs.storage_per_batch.is_zero() {
            ctx.charge(self.cfg.costs.storage_per_batch);
        }
        for f in self.followers().collect::<Vec<_>>() {
            ctx.send(
                f,
                ZabMsg::Propose {
                    zxid,
                    txn: txn.clone(),
                },
            );
        }
        self.next_ping = ctx.now() + self.cfg.heartbeat;
        if self.quorum() == 1 {
            self.leader_commit(zxid, ctx);
        }
    }

    fn leader_commit(&mut self, zxid: Zxid, ctx: &mut Context<'_, ZabMsg>) {
        self.acks.remove(&zxid);
        self.committed = self.committed.max(zxid);
        for f in self.followers().collect::<Vec<_>>() {
            ctx.send(f, ZabMsg::Commit { zxid });
        }
        // Observers get the fused Inform.
        let txn = self
            .log
            .iter()
            .find(|(z, _)| *z == zxid)
            .map(|(_, t)| t.clone())
            .expect("committed txn is in the log");
        for &o in self.observers().to_vec().iter() {
            ctx.send(
                o,
                ZabMsg::Inform {
                    zxid,
                    txn: txn.clone(),
                },
            );
        }
        self.apply_committed(ctx);
    }

    /// Applies every logged transaction up to the commit point, in order.
    /// The log is zxid-ordered (leaders append in order; followers receive
    /// in FIFO order; resyncs replace the whole log), so a cursor suffices.
    fn apply_committed(&mut self, ctx: &mut Context<'_, ZabMsg>) {
        while self.applied_idx < self.log.len() {
            let (zxid, txn) = self.log[self.applied_idx].clone();
            if zxid > self.committed {
                break;
            }
            self.applied_idx += 1;
            if zxid <= self.applied {
                continue;
            }
            self.apply_one(zxid, txn, ctx);
        }
    }

    fn apply_one(&mut self, zxid: Zxid, txn: Txn, ctx: &mut Context<'_, ZabMsg>) {
        debug_assert!(zxid > self.applied);
        self.applied = zxid;
        let weight = txn.op.req.op.weight();
        ctx.charge(Dur::nanos(
            self.cfg.costs.per_commit.as_nanos() * weight.min(4096) as u64,
        ));
        self.stats.applied_weight += weight as u64;
        match &txn.op.req.op {
            Op::Put { key, value } => {
                self.store.put(*key, value.clone());
            }
            Op::MultiPut { puts } => {
                for (key, value) in puts {
                    self.store.put(*key, value.clone());
                }
            }
            _ => {}
        }
        if txn.origin == self.me {
            self.stats.own_completed += weight as u64;
            let result = match txn.op.req.op {
                Op::Put { .. } | Op::MultiPut { .. } => OpResult::Written,
                _ => OpResult::Batch,
            };
            ctx.send(
                txn.op.req.client,
                ZabMsg::Reply(ClientReply {
                    op_id: txn.op.req.op_id,
                    weight,
                    result,
                }),
            );
        }
    }

    fn handle_request(&mut self, req: ClientRequest, ctx: &mut Context<'_, ZabMsg>) {
        ctx.charge(Dur::nanos(
            self.cfg.costs.per_request.as_nanos() * req.op.weight().min(4096) as u64,
        ));
        if req.op.is_write() {
            let txn = Txn {
                op: TimedOp {
                    req,
                    arrival: ctx.now(),
                },
                origin: self.me,
            };
            match self.role {
                ZabRole::Leader => self.lead_transaction(txn, ctx),
                _ => {
                    if self.election_deadline.is_some() || self.leader == self.me {
                        // Leaderless — mid-election, or we are the
                        // configured leader but no longer lead (a
                        // recovering `ensemble[0]`): queue until the next
                        // epoch rather than forwarding to ourselves.
                        self.forward_queue.push_back(txn);
                    } else {
                        ctx.send(self.leader, ZabMsg::Forward(txn));
                    }
                }
            }
        } else {
            // Reads are served locally from committed state — the
            // ZooKeeper read path that observers scale (Figure 5).
            let weight = req.op.weight();
            ctx.charge(Dur::nanos(
                self.cfg.costs.per_read.as_nanos() * weight.min(4096) as u64,
            ));
            self.stats.reads_served += weight as u64;
            let result = match &req.op {
                Op::Get { key } => OpResult::Value(self.store.get_value(*key)),
                _ => OpResult::Batch,
            };
            ctx.send(
                req.client,
                ZabMsg::Reply(ClientReply {
                    op_id: req.op_id,
                    weight,
                    result,
                }),
            );
        }
    }

    // ------------------------------------------------------------------
    // Election + resync
    // ------------------------------------------------------------------

    fn start_election(&mut self, ctx: &mut Context<'_, ZabMsg>) {
        self.stats.elections += 1;
        let new_epoch = self.epoch + 1;
        self.obs.elections.inc();
        self.obs.hub.event(
            ctx.now().as_nanos(),
            ObsEvent::Election {
                term: new_epoch as u64,
            },
        );
        self.election_votes.clear();
        self.election_votes.insert(self.me, self.last_zxid());
        self.election_deadline = Some(ctx.now() + self.cfg.election_timeout);
        for f in self
            .participants()
            .to_vec()
            .into_iter()
            .filter(|&n| n != self.me)
        {
            ctx.send(
                f,
                ZabMsg::Election {
                    epoch: new_epoch,
                    last_zxid: self.last_zxid(),
                },
            );
        }
    }

    fn finish_election(&mut self, ctx: &mut Context<'_, ZabMsg>) {
        if (self.election_votes.len() as u32) < self.quorum() {
            // Not enough live participants: stall and retry.
            self.start_election(ctx);
            return;
        }
        let winner = self
            .election_votes
            .iter()
            .max_by_key(|(&id, &z)| (z, id))
            .map(|(&id, _)| id)
            .expect("non-empty");
        self.election_deadline = None;
        if winner == self.me {
            self.epoch += 1;
            self.role = ZabRole::Leader;
            self.leader = self.me;
            self.next_counter = 0;
            self.obs.leader_changes.inc();
            self.obs.hub.event(
                ctx.now().as_nanos(),
                ObsEvent::LeaderChange {
                    term: self.epoch as u64,
                    leader: self.me.0,
                },
            );
            // Commit everything we have logged (we hold the highest zxid
            // among a quorum; Zab's synchronization makes it durable).
            self.committed = self.last_zxid();
            let history = self.log.clone();
            for f in self.followers().collect::<Vec<_>>() {
                ctx.send(
                    f,
                    ZabMsg::NewLeader {
                        epoch: self.epoch,
                        history: history.clone(),
                        committed: self.committed,
                    },
                );
            }
            for &o in self.observers().to_vec().iter() {
                ctx.send(
                    o,
                    ZabMsg::NewLeader {
                        epoch: self.epoch,
                        history: history.clone(),
                        committed: self.committed,
                    },
                );
            }
            self.apply_committed(ctx);
            // Re-drive queued writes.
            let queued: Vec<Txn> = self.forward_queue.drain(..).collect();
            for txn in queued {
                self.lead_transaction(txn, ctx);
            }
        }
        // Losers wait for NewLeader.
    }

    /// Asks `from` for a full resync, at most once per election timeout —
    /// the leader answers with its entire history, so a burst of
    /// gap-detected messages must not trigger one transfer each.
    fn request_resync(&mut self, from: NodeId, ctx: &mut Context<'_, ZabMsg>) {
        let due = match self.resync_requested_at {
            Some(at) => ctx.now().saturating_since(at) >= self.cfg.election_timeout,
            None => true,
        };
        if due {
            self.resync_requested_at = Some(ctx.now());
            self.obs.resyncs_requested.inc();
            ctx.send(from, ZabMsg::ResyncRequest);
        }
    }

    /// Whether `zxid` extends this node's log by exactly one transaction.
    /// If not — we missed history (restart, healed partition) — and the
    /// transaction is ahead of us, ask `from` for a full resync. Returns
    /// `true` when the transaction may be appended.
    fn contiguous_or_resync(
        &mut self,
        zxid: Zxid,
        from: NodeId,
        ctx: &mut Context<'_, ZabMsg>,
    ) -> bool {
        let last = self.last_zxid();
        let contiguous = if zxid.epoch == last.epoch {
            zxid.counter == last.counter + 1
        } else {
            zxid.counter == 1
        };
        if !contiguous && zxid > last {
            self.request_resync(from, ctx);
        }
        contiguous
    }

    fn handle_new_leader(
        &mut self,
        from: NodeId,
        epoch: u32,
        history: Vec<(Zxid, Txn)>,
        committed: Zxid,
        ctx: &mut Context<'_, ZabMsg>,
    ) {
        if epoch <= self.epoch && from != self.leader {
            return; // stale
        }
        if from != self.leader || epoch != self.epoch {
            self.obs.leader_changes.inc();
            self.obs.hub.event(
                ctx.now().as_nanos(),
                ObsEvent::LeaderChange {
                    term: epoch as u64,
                    leader: from.0,
                },
            );
        }
        self.obs.hub.event(
            ctx.now().as_nanos(),
            ObsEvent::Resync {
                peer: from.0,
                entries: history.len() as u64,
            },
        );
        self.epoch = epoch;
        self.leader = from;
        self.role = if self.participants().contains(&self.me) {
            ZabRole::Follower
        } else {
            ZabRole::Observer
        };
        self.election_deadline = None;
        self.election_votes.clear();
        self.resync_requested_at = None;
        // Adopt the leader's history (full resync).
        self.log = history;
        self.committed = committed;
        self.applied_idx = self
            .log
            .iter()
            .position(|(z, _)| *z > self.applied)
            .unwrap_or(self.log.len());
        // Reset apply point conservatively: reapply from scratch is not
        // possible (store already mutated), so apply only the tail.
        self.apply_committed(ctx);
        self.last_leader_contact = ctx.now();
        ctx.send(from, ZabMsg::FollowerAck { epoch });
        // Re-forward queued writes to the new leader.
        let queued: Vec<Txn> = self.forward_queue.drain(..).collect();
        for txn in queued {
            ctx.send(self.leader, ZabMsg::Forward(txn));
        }
    }
}

impl Process<ZabMsg> for ZabNode {
    fn on_start(&mut self, ctx: &mut Context<'_, ZabMsg>) {
        self.last_leader_contact = ctx.now();
        self.next_ping = ctx.now();
        ctx.set_timer(self.cfg.tick_interval, TICK);
    }

    fn on_message(&mut self, from: NodeId, msg: ZabMsg, ctx: &mut Context<'_, ZabMsg>) {
        ctx.charge(self.cfg.costs.per_protocol_msg);
        if from == self.leader {
            self.last_leader_contact = ctx.now();
        }
        match msg {
            ZabMsg::Request(req) => self.handle_request(req, ctx),
            ZabMsg::Reply(_) => {}
            ZabMsg::Forward(txn) => {
                if self.role == ZabRole::Leader {
                    self.lead_transaction(txn, ctx);
                } else if self.leader != self.me && self.election_deadline.is_none() {
                    // Re-forward (leadership may have moved).
                    ctx.send(self.leader, ZabMsg::Forward(txn));
                } else {
                    // We are the forward target but no longer lead (a
                    // recovering `ensemble[0]`, or mid-election): park it.
                    self.forward_queue.push_back(txn);
                }
            }
            ZabMsg::Propose { zxid, txn } => {
                if zxid.epoch != self.epoch {
                    return;
                }
                // Never append a duplicate or a suffix with a hole.
                if !self.contiguous_or_resync(zxid, from, ctx) {
                    return;
                }
                self.log.push((zxid, txn));
                ctx.send(from, ZabMsg::Ack { zxid });
            }
            ZabMsg::Ack { zxid } => {
                if self.role != ZabRole::Leader || zxid.epoch != self.epoch {
                    return;
                }
                if let Some(count) = self.acks.get_mut(&zxid) {
                    *count += 1;
                    if *count >= self.quorum() {
                        self.leader_commit(zxid, ctx);
                    }
                }
            }
            ZabMsg::Commit { zxid } => {
                if zxid.epoch != self.epoch {
                    return;
                }
                self.committed = self.committed.max(zxid);
                self.apply_committed(ctx);
            }
            ZabMsg::Inform { zxid, txn } => {
                if zxid <= self.applied {
                    return;
                }
                // Epoch guard, like Propose: an observer that missed the
                // `NewLeader` broadcast has no guarantee it holds the full
                // previous epoch, so a cross-epoch Inform must trigger a
                // resync — without this, `(e+1, 1)` would pass the
                // contiguity check and silently skip the committed tail of
                // epoch `e`.
                if zxid.epoch != self.epoch {
                    if zxid.epoch > self.epoch {
                        self.request_resync(from, ctx);
                    }
                    return;
                }
                // Same gap rule as Propose: an observer that missed history
                // must resync instead of applying a suffix with a hole.
                if !self.contiguous_or_resync(zxid, from, ctx) {
                    return;
                }
                self.log.push((zxid, txn));
                self.committed = self.committed.max(zxid);
                self.apply_committed(ctx);
            }
            ZabMsg::Ping { epoch } => {
                if epoch >= self.epoch {
                    self.last_leader_contact = ctx.now();
                }
                // A higher epoch means a leader we never synced with (we
                // restarted, or we are a deposed leader healing from a
                // partition): request a full resync from it.
                if epoch > self.epoch {
                    self.request_resync(from, ctx);
                }
            }
            ZabMsg::Election { epoch, last_zxid } => {
                if self.role == ZabRole::Observer {
                    return;
                }
                if epoch <= self.epoch {
                    return;
                }
                // Join the election if we haven't already.
                if self.election_deadline.is_none() {
                    self.start_election(ctx);
                }
                self.election_votes.insert(from, last_zxid);
                if self.election_votes.len() == self.cfg.participants {
                    self.finish_election(ctx);
                }
            }
            ZabMsg::NewLeader {
                epoch,
                history,
                committed,
            } => self.handle_new_leader(from, epoch, history, committed, ctx),
            ZabMsg::FollowerAck { .. } => {}
            ZabMsg::ResyncRequest => {
                if self.role == ZabRole::Leader {
                    self.obs.resyncs_served.inc();
                    self.obs.hub.event(
                        ctx.now().as_nanos(),
                        ObsEvent::Resync {
                            peer: from.0,
                            entries: self.log.len() as u64,
                        },
                    );
                    ctx.send(
                        from,
                        ZabMsg::NewLeader {
                            epoch: self.epoch,
                            history: self.log.clone(),
                            committed: self.committed,
                        },
                    );
                }
            }
        }
    }

    fn on_timer(&mut self, timer: Timer, ctx: &mut Context<'_, ZabMsg>) {
        if timer.token != TICK {
            return;
        }
        let now = ctx.now();
        match self.role {
            ZabRole::Leader => {
                if now >= self.next_ping {
                    self.next_ping = now + self.cfg.heartbeat;
                    for f in self.followers().collect::<Vec<_>>() {
                        ctx.send(f, ZabMsg::Ping { epoch: self.epoch });
                    }
                    for &o in self.observers().to_vec().iter() {
                        ctx.send(o, ZabMsg::Ping { epoch: self.epoch });
                    }
                }
            }
            ZabRole::Follower => {
                if let Some(deadline) = self.election_deadline {
                    if now >= deadline {
                        self.finish_election(ctx);
                    }
                } else if now.saturating_since(self.last_leader_contact)
                    >= self.cfg.election_timeout
                {
                    self.start_election(ctx);
                }
            }
            ZabRole::Observer => {}
        }
        if self.obs.hub.is_enabled() {
            // Logged-but-uncommitted transactions, the ZAB analogue of
            // Raft's commit index lag.
            let lag = self
                .log
                .iter()
                .rev()
                .take_while(|(z, _)| *z > self.committed)
                .count();
            self.obs.commit_lag.set(lag as i64);
        }
        ctx.set_timer(self.cfg.tick_interval, TICK);
    }

    impl_process_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use canopus_sim::{Simulation, UniformFabric};

    struct TestClient {
        target: NodeId,
        ops: Vec<(Dur, Op)>,
        cursor: usize,
        replies: Vec<(u64, OpResult, Time)>,
    }

    impl TestClient {
        fn arm(&self, ctx: &mut Context<'_, ZabMsg>) {
            if let Some((when, _)) = self.ops.get(self.cursor) {
                let at = Time::ZERO + *when;
                ctx.set_timer(at.saturating_since(ctx.now()), 0);
            }
        }
    }

    impl Process<ZabMsg> for TestClient {
        fn on_start(&mut self, ctx: &mut Context<'_, ZabMsg>) {
            self.arm(ctx);
        }
        fn on_timer(&mut self, _t: Timer, ctx: &mut Context<'_, ZabMsg>) {
            let (_, op) = self.ops[self.cursor].clone();
            let op_id = self.cursor as u64;
            self.cursor += 1;
            ctx.send(
                self.target,
                ZabMsg::Request(ClientRequest {
                    client: ctx.id(),
                    op_id,
                    op,
                }),
            );
            self.arm(ctx);
        }
        fn on_message(&mut self, _f: NodeId, msg: ZabMsg, ctx: &mut Context<'_, ZabMsg>) {
            if let ZabMsg::Reply(r) = msg {
                self.replies.push((r.op_id, r.result, ctx.now()));
            }
        }
        impl_process_any!();
    }

    fn build(
        n: u32,
        participants: usize,
        seed: u64,
    ) -> (Simulation<ZabMsg, UniformFabric>, Vec<NodeId>) {
        let mut sim = Simulation::new(UniformFabric::new(Dur::micros(100)), seed);
        let ensemble: Vec<NodeId> = (0..n).map(NodeId).collect();
        let cfg = ZabConfig {
            participants,
            ..ZabConfig::default()
        };
        for &id in &ensemble {
            sim.add_node(Box::new(ZabNode::new(id, ensemble.clone(), cfg.clone())));
        }
        (sim, ensemble)
    }

    fn put(key: u64, tag: u8) -> Op {
        Op::Put {
            key,
            value: Bytes::from(vec![tag; 8]),
        }
    }

    #[test]
    fn writes_commit_through_leader() {
        let (mut sim, _) = build(5, 3, 1);
        // Client talks to a follower; write must round-trip via the leader.
        let client = sim.add_node(Box::new(TestClient {
            target: NodeId(1),
            ops: (0..5)
                .map(|k| (Dur::millis(k + 1), put(k, k as u8)))
                .collect(),
            cursor: 0,
            replies: Vec::new(),
        }));
        sim.run_for(Dur::millis(100));
        assert_eq!(sim.node::<TestClient>(client).replies.len(), 5);
        // Every node (incl. observers) applied all writes.
        for i in 0..5u32 {
            assert_eq!(sim.node::<ZabNode>(NodeId(i)).stats().applied_weight, 5);
        }
    }

    #[test]
    fn observers_apply_and_serve_reads() {
        let (mut sim, ensemble) = build(6, 3, 2);
        let observer = *ensemble.last().unwrap();
        assert_eq!(sim.node::<ZabNode>(observer).role(), ZabRole::Observer);
        let writer = sim.add_node(Box::new(TestClient {
            target: NodeId(0),
            ops: vec![(Dur::millis(1), put(9, 7))],
            cursor: 0,
            replies: Vec::new(),
        }));
        let reader = sim.add_node(Box::new(TestClient {
            target: observer,
            ops: vec![(Dur::millis(50), Op::Get { key: 9 })],
            cursor: 0,
            replies: Vec::new(),
        }));
        sim.run_for(Dur::millis(100));
        assert_eq!(sim.node::<TestClient>(writer).replies.len(), 1);
        let r = sim.node::<TestClient>(reader);
        match &r.replies[0].1 {
            OpResult::Value(Some(v)) => assert_eq!(v[0], 7),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn logs_agree_across_participants_and_observers() {
        let (mut sim, ensemble) = build(7, 5, 3);
        for (i, &target) in ensemble.iter().enumerate() {
            sim.add_node(Box::new(TestClient {
                target,
                ops: (0..6)
                    .map(|k| {
                        (
                            Dur::micros(800 * k + i as u64 * 97),
                            put(i as u64 * 10 + k, 1),
                        )
                    })
                    .collect(),
                cursor: 0,
                replies: Vec::new(),
            }));
        }
        sim.run_for(Dur::millis(300));
        let reference = sim.node::<ZabNode>(ensemble[0]).applied_log();
        assert_eq!(reference.len(), 42);
        for &n in &ensemble[1..] {
            assert_eq!(sim.node::<ZabNode>(n).applied_log(), reference);
        }
    }

    #[test]
    fn fast_leader_restart_rejoins_as_follower_without_forking() {
        // Crash the leader and restart it amnesiac *within* the election
        // timeout, while its followers still believe in it. Booted via
        // `recovering`, it must come back as a follower — an amnesiac
        // node that reclaimed epoch-1 leadership would reuse committed
        // zxids and fork the log.
        let (mut sim, ensemble) = build(5, 5, 9);
        let cfg = ZabConfig {
            participants: 5,
            ..ZabConfig::default()
        };
        let client = sim.add_node(Box::new(TestClient {
            target: NodeId(2),
            ops: (0..30)
                .map(|k| (Dur::millis(4 * k + 1), put(k, (k + 1) as u8)))
                .collect(),
            cursor: 0,
            replies: Vec::new(),
        }));
        sim.run_for(Dur::millis(15));
        sim.crash(NodeId(0));
        sim.run_for(Dur::millis(5)); // well under the 20 ms election timeout
        sim.restart(
            NodeId(0),
            Box::new(ZabNode::recovering(NodeId(0), ensemble.clone(), cfg)),
        );
        sim.run_for(Dur::millis(800));

        assert_ne!(
            sim.node::<ZabNode>(NodeId(0)).role(),
            ZabRole::Leader,
            "amnesiac node must not retain leadership"
        );
        // Writes flowed again after the election.
        let replies = sim.node::<TestClient>(client).replies.len();
        assert!(replies >= 20, "writes resumed: {replies}/30");
        // Every node's applied log — the restarted one included — is a
        // prefix of the longest; no fork.
        let logs: Vec<Vec<(NodeId, u64)>> = ensemble
            .iter()
            .map(|&n| sim.node::<ZabNode>(n).applied_log())
            .collect();
        let longest = logs.iter().max_by_key(|l| l.len()).unwrap().clone();
        for (i, log) in logs.iter().enumerate() {
            assert!(
                longest.starts_with(log),
                "node {i} forked: {:?} vs {:?}",
                &log[..log.len().min(8)],
                &longest[..longest.len().min(8)]
            );
        }
    }

    #[test]
    fn leader_failure_elects_new_leader_and_resumes() {
        let (mut sim, ensemble) = build(5, 5, 4);
        let client = sim.add_node(Box::new(TestClient {
            target: NodeId(2),
            ops: (0..20)
                .map(|k| (Dur::millis(5 * k + 1), put(k, 1)))
                .collect(),
            cursor: 0,
            replies: Vec::new(),
        }));
        sim.run_for(Dur::millis(12));
        sim.crash(NodeId(0)); // the initial leader
        sim.run_for(Dur::millis(500));
        // A new leader emerged among the survivors.
        let mut leaders = 0;
        for &n in &ensemble[1..] {
            if sim.node::<ZabNode>(n).role() == ZabRole::Leader {
                leaders += 1;
                assert!(sim.node::<ZabNode>(n).epoch() > 1);
            }
        }
        assert_eq!(leaders, 1, "exactly one new leader");
        // Writes continued after the failover (some may be lost in the
        // handoff window — Zab only guarantees acked/committed ones).
        let replies = sim.node::<TestClient>(client).replies.len();
        assert!(replies >= 15, "most writes completed: {replies}/20");
        // Survivor logs agree.
        let reference = sim.node::<ZabNode>(ensemble[1]).applied_log();
        for &n in &ensemble[2..] {
            assert_eq!(sim.node::<ZabNode>(n).applied_log(), reference);
        }
    }
}
