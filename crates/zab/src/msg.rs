//! Zab protocol messages.

use bytes::{Bytes, BytesMut};
use canopus_kv::{ClientReply, ClientRequest, TimedOp};
use canopus_net::wire::{Wire, WireError, WireRead};
use canopus_sim::{NodeId, Payload};

/// A Zab transaction id: `(epoch, counter)`, totally ordered.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Zxid {
    /// Leader epoch.
    pub epoch: u32,
    /// Counter within the epoch.
    pub counter: u64,
}

impl Wire for Zxid {
    fn encode(&self, buf: &mut BytesMut) {
        self.epoch.encode(buf);
        self.counter.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(Zxid {
            epoch: u32::decode(buf)?,
            counter: u64::decode(buf)?,
        })
    }
}

/// One replicated transaction: the op and the node that received it from
/// its client (which owes the reply).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Txn {
    /// The operation with arrival time.
    pub op: TimedOp,
    /// The node that received it from the client.
    pub origin: NodeId,
}

impl Wire for Txn {
    fn encode(&self, buf: &mut BytesMut) {
        self.op.encode(buf);
        self.origin.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(Txn {
            op: TimedOp::decode(buf)?,
            origin: NodeId::decode(buf)?,
        })
    }
}

/// Zab / ZooKeeper-model messages.
#[derive(Clone, Debug, PartialEq)]
pub enum ZabMsg {
    /// Client submits an operation (to any node).
    Request(ClientRequest),
    /// Node answers its client.
    Reply(ClientReply),
    /// A non-leader forwards a write to the leader.
    Forward(Txn),
    /// Leader proposes a transaction to its followers.
    Propose {
        /// Transaction id.
        zxid: Zxid,
        /// The transaction.
        txn: Txn,
    },
    /// Follower acknowledges a proposal (after logging it).
    Ack {
        /// Acked transaction.
        zxid: Zxid,
    },
    /// Leader commits a transaction at the followers.
    Commit {
        /// Committed transaction.
        zxid: Zxid,
    },
    /// Leader informs observers of a committed transaction (proposal and
    /// commit fused, as in ZooKeeper's INFORM).
    Inform {
        /// Committed transaction id.
        zxid: Zxid,
        /// The transaction.
        txn: Txn,
    },
    /// Leader heartbeat (keeps followers from electing).
    Ping {
        /// Leader's epoch.
        epoch: u32,
    },
    /// Election: a participant announces its candidacy credentials.
    Election {
        /// Proposed new epoch.
        epoch: u32,
        /// Candidate's last logged zxid.
        last_zxid: Zxid,
    },
    /// The election winner announces itself and syncs followers.
    NewLeader {
        /// New epoch.
        epoch: u32,
        /// The leader's log suffix from the follower's committed point on
        /// (full resync; logs are short at the scale elections occur).
        history: Vec<(Zxid, Txn)>,
        /// Commit point within `history`.
        committed: Zxid,
    },
    /// Follower acknowledges the new leader.
    FollowerAck {
        /// Acked epoch.
        epoch: u32,
    },
    /// A node that noticed it is behind (stale epoch or a log gap, e.g.
    /// after a restart or a healed partition) asks the current leader for
    /// a full resync; the leader answers with `NewLeader`.
    ResyncRequest,
}

impl Payload for ZabMsg {
    fn wire_size(&self) -> usize {
        match self {
            ZabMsg::Request(r) => 1 + 13 + r.op.payload_bytes().min(64),
            ZabMsg::Reply(_) => 1 + 14,
            ZabMsg::Forward(txn) | ZabMsg::Propose { txn, .. } => {
                1 + 16 + txn.op.req.op.payload_bytes() + 25
            }
            ZabMsg::Ack { .. } | ZabMsg::Commit { .. } => 1 + 12,
            ZabMsg::Inform { txn, .. } => 1 + 16 + txn.op.req.op.payload_bytes() + 25,
            ZabMsg::Ping { .. } => 1 + 4,
            ZabMsg::Election { .. } => 1 + 16,
            ZabMsg::NewLeader { history, .. } => {
                1 + 16
                    + history
                        .iter()
                        .map(|(_, t)| 12 + t.op.req.op.payload_bytes() + 25)
                        .sum::<usize>()
            }
            ZabMsg::FollowerAck { .. } => 1 + 4,
            ZabMsg::ResyncRequest => 1,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            ZabMsg::Request(_) => "request",
            ZabMsg::Reply(_) => "reply",
            ZabMsg::Forward(_) => "forward",
            ZabMsg::Propose { .. } => "propose",
            ZabMsg::Ack { .. } => "ack",
            ZabMsg::Commit { .. } => "commit",
            ZabMsg::Inform { .. } => "inform",
            ZabMsg::Ping { .. } => "ping",
            ZabMsg::Election { .. } => "election",
            ZabMsg::NewLeader { .. } => "new_leader",
            ZabMsg::FollowerAck { .. } => "follower_ack",
            ZabMsg::ResyncRequest => "resync_request",
        }
    }
}

impl Wire for ZabMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ZabMsg::Request(r) => {
                0u8.encode(buf);
                r.encode(buf);
            }
            ZabMsg::Reply(r) => {
                1u8.encode(buf);
                r.encode(buf);
            }
            ZabMsg::Forward(txn) => {
                2u8.encode(buf);
                txn.encode(buf);
            }
            ZabMsg::Propose { zxid, txn } => {
                3u8.encode(buf);
                zxid.encode(buf);
                txn.encode(buf);
            }
            ZabMsg::Ack { zxid } => {
                4u8.encode(buf);
                zxid.encode(buf);
            }
            ZabMsg::Commit { zxid } => {
                5u8.encode(buf);
                zxid.encode(buf);
            }
            ZabMsg::Inform { zxid, txn } => {
                6u8.encode(buf);
                zxid.encode(buf);
                txn.encode(buf);
            }
            ZabMsg::Ping { epoch } => {
                7u8.encode(buf);
                epoch.encode(buf);
            }
            ZabMsg::Election { epoch, last_zxid } => {
                8u8.encode(buf);
                epoch.encode(buf);
                last_zxid.encode(buf);
            }
            ZabMsg::NewLeader {
                epoch,
                history,
                committed,
            } => {
                9u8.encode(buf);
                epoch.encode(buf);
                history.encode(buf);
                committed.encode(buf);
            }
            ZabMsg::FollowerAck { epoch } => {
                10u8.encode(buf);
                epoch.encode(buf);
            }
            ZabMsg::ResyncRequest => 11u8.encode(buf),
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match buf.read_u8()? {
            0 => Ok(ZabMsg::Request(ClientRequest::decode(buf)?)),
            1 => Ok(ZabMsg::Reply(ClientReply::decode(buf)?)),
            2 => Ok(ZabMsg::Forward(Txn::decode(buf)?)),
            3 => Ok(ZabMsg::Propose {
                zxid: Zxid::decode(buf)?,
                txn: Txn::decode(buf)?,
            }),
            4 => Ok(ZabMsg::Ack {
                zxid: Zxid::decode(buf)?,
            }),
            5 => Ok(ZabMsg::Commit {
                zxid: Zxid::decode(buf)?,
            }),
            6 => Ok(ZabMsg::Inform {
                zxid: Zxid::decode(buf)?,
                txn: Txn::decode(buf)?,
            }),
            7 => Ok(ZabMsg::Ping {
                epoch: u32::decode(buf)?,
            }),
            8 => Ok(ZabMsg::Election {
                epoch: u32::decode(buf)?,
                last_zxid: Zxid::decode(buf)?,
            }),
            9 => Ok(ZabMsg::NewLeader {
                epoch: u32::decode(buf)?,
                history: Vec::<(Zxid, Txn)>::decode(buf)?,
                committed: Zxid::decode(buf)?,
            }),
            10 => Ok(ZabMsg::FollowerAck {
                epoch: u32::decode(buf)?,
            }),
            11 => Ok(ZabMsg::ResyncRequest),
            _ => Err(WireError::Invalid("zab msg tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canopus_kv::Op;
    use canopus_sim::Time;

    fn txn() -> Txn {
        Txn {
            op: TimedOp {
                req: ClientRequest {
                    client: NodeId(9),
                    op_id: 1,
                    op: Op::Put {
                        key: 3,
                        value: Bytes::from_static(b"12345678"),
                    },
                },
                arrival: Time::from_nanos(5),
            },
            origin: NodeId(2),
        }
    }

    #[test]
    fn zxid_ordering() {
        let a = Zxid {
            epoch: 1,
            counter: 9,
        };
        let b = Zxid {
            epoch: 2,
            counter: 1,
        };
        assert!(a < b, "epoch dominates counter");
    }

    #[test]
    fn all_variants_round_trip() {
        let z = Zxid {
            epoch: 3,
            counter: 77,
        };
        let msgs = vec![
            ZabMsg::Forward(txn()),
            ZabMsg::Propose {
                zxid: z,
                txn: txn(),
            },
            ZabMsg::Ack { zxid: z },
            ZabMsg::Commit { zxid: z },
            ZabMsg::Inform {
                zxid: z,
                txn: txn(),
            },
            ZabMsg::Ping { epoch: 3 },
            ZabMsg::Election {
                epoch: 4,
                last_zxid: z,
            },
            ZabMsg::NewLeader {
                epoch: 4,
                history: vec![(z, txn())],
                committed: z,
            },
            ZabMsg::FollowerAck { epoch: 4 },
        ];
        for m in msgs {
            assert_eq!(ZabMsg::from_bytes(m.to_bytes()).unwrap(), m);
        }
    }
}
