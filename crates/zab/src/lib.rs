//! # canopus-zab — the ZooKeeper baseline (Zab atomic broadcast)
//!
//! The system the Canopus paper compares against in Figure 5: a
//! centralized-leader atomic broadcast (Zab: Junqueira, Reed, Serafini —
//! DSN 2011) with a small participant ensemble and asynchronous
//! **observers**, exactly as the paper configures ZooKeeper ("only five
//! followers with the rest of the nodes set as observers"). Writes funnel
//! through the leader; reads are served locally from committed state.
//! "ZKCanopus" — the paper's ZooKeeper with Zab swapped for Canopus — is
//! simply a `canopus::CanopusNode` serving the same client API; the
//! harness builds both sides of Figure 5 from the shared workload.

#![warn(missing_docs)]

pub mod msg;
pub mod node;

pub use msg::{Txn, ZabMsg, Zxid};
pub use node::{ZabConfig, ZabNode, ZabRole, ZabStats};
