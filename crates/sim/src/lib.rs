//! # canopus-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the execution substrate for the Canopus reproduction.
//! The paper evaluates Canopus on a 39-machine, 3-rack cluster and on 21 EC2
//! instances spread over 7 regions; neither is available here, so every
//! experiment instead runs on this simulator with the paper's topologies and
//! latencies modelled explicitly (see `canopus-net`).
//!
//! Design points:
//!
//! * **Sans-IO processes** ([`Process`]): protocol logic sees only message
//!   and timer callbacks plus a [`Context`] for recording effects. The same
//!   state machines run on the TCP transport in `canopus-net`.
//! * **Virtual time** ([`Time`], [`Dur`]): nanosecond-resolution clock; a
//!   multi-datacenter run covering minutes of protocol time executes in
//!   milliseconds of wall time.
//! * **Determinism**: one seeded RNG, a totally ordered event queue
//!   (`(time, seq)`), and effect buffering make every run reproducible.
//! * **CPU model**: per-message base cost plus explicit [`Context::charge`]s
//!   give nodes finite processing capacity so saturation behaviour (the
//!   paper's throughput metric) emerges naturally.
//! * **Fault injection**: crash-stop, restart, message loss, and partitions
//!   ([`fabric::LossyFabric`], [`fabric::PartitionableFabric`]) cover the
//!   failure model of §3 of the paper.

#![warn(missing_docs)]

pub mod fabric;
pub mod fault;
mod process;
mod sim;
mod time;

pub use fabric::{Fabric, LossyFabric, PartitionableFabric, Route, UniformFabric};
pub use fault::{FaultAction, FaultEvent, FaultPlan, NemesisDriver, NemesisFabric};
pub use process::{Context, Effect, NodeId, Payload, Process, Timer, TimerId};
pub use sim::{NetStats, NodeConfig, Simulation, TraceEvent, Tracer, EXTERNAL};
pub use time::{Dur, Time};
