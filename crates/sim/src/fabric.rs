//! Pluggable network fabrics.
//!
//! The simulation kernel asks its [`Fabric`] what happens to each message:
//! when it arrives, or that it is lost. `canopus-net` supplies the
//! topology-aware Clos/WAN fabric used by the experiments; this module
//! provides simple fabrics for unit tests plus loss/partition decorators
//! that compose over any inner fabric.

use std::collections::BTreeSet;

use rand::rngs::SmallRng;
use rand::Rng;

use crate::process::{NodeId, Payload};
use crate::time::{Dur, Time};

/// The fate of one message.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Route {
    /// Deliver at the given absolute time (must be ≥ the send time).
    Deliver(Time),
    /// Silently drop the message.
    Drop,
}

/// Decides delivery times for messages.
///
/// The fabric owns all link state (bandwidth occupancy, queues) and may
/// mutate it per message, which is how serialization delay and queueing
/// emerge in the topology-aware implementation.
pub trait Fabric<M: Payload> {
    /// Routes one message sent at `now` from `from` to `to`.
    fn route(&mut self, from: NodeId, to: NodeId, msg: &M, now: Time, rng: &mut SmallRng) -> Route;
}

/// Uniform-latency fabric: every message arrives exactly `latency` later.
/// Useful for protocol unit tests where topology is irrelevant.
#[derive(Debug, Clone)]
pub struct UniformFabric {
    latency: Dur,
}

impl UniformFabric {
    /// Creates a fabric with a fixed one-way `latency`.
    pub fn new(latency: Dur) -> Self {
        UniformFabric { latency }
    }
}

impl<M: Payload> Fabric<M> for UniformFabric {
    fn route(&mut self, _: NodeId, _: NodeId, _: &M, now: Time, _: &mut SmallRng) -> Route {
        Route::Deliver(now + self.latency)
    }
}

/// Decorator that drops each message with probability `loss`, and otherwise
/// defers to the inner fabric. The loss rate can be changed mid-run (the
/// nemesis engine's `SetLoss` event), and asymmetric impairment is modelled
/// with per-sender overrides: traffic *leaving* an impaired node is dropped
/// at its own rate while the reverse direction keeps the global rate.
pub struct LossyFabric<F> {
    inner: F,
    loss: f64,
    out_loss: std::collections::BTreeMap<NodeId, f64>,
}

impl<F> LossyFabric<F> {
    /// Wraps `inner`, dropping messages with probability `loss` ∈ [0, 1].
    pub fn new(inner: F, loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        LossyFabric {
            inner,
            loss,
            out_loss: std::collections::BTreeMap::new(),
        }
    }

    /// Changes the global loss probability.
    pub fn set_loss(&mut self, loss: f64) {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        self.loss = loss;
    }

    /// Current global loss probability.
    pub fn loss(&self) -> f64 {
        self.loss
    }

    /// Sets an asymmetric loss rate for traffic sent *by* `node`
    /// (overrides the global rate for that direction). `loss = 0` removes
    /// the override only if the global rate is also zero — pass exactly
    /// what should apply to the node's outbound traffic.
    pub fn set_out_loss(&mut self, node: NodeId, loss: f64) {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        self.out_loss.insert(node, loss);
    }

    /// Clears the global and all per-node loss rates.
    pub fn clear_loss(&mut self) {
        self.loss = 0.0;
        self.out_loss.clear();
    }

    /// Access to the wrapped fabric.
    pub fn inner_mut(&mut self) -> &mut F {
        &mut self.inner
    }
}

impl<M: Payload, F: Fabric<M>> Fabric<M> for LossyFabric<F> {
    fn route(&mut self, from: NodeId, to: NodeId, msg: &M, now: Time, rng: &mut SmallRng) -> Route {
        let p = match self.out_loss.get(&from) {
            Some(&p) => p,
            None => self.loss,
        };
        if p > 0.0 && rng.gen::<f64>() < p {
            return Route::Drop;
        }
        self.inner.route(from, to, msg, now, rng)
    }
}

/// Decorator that drops messages crossing an administratively installed
/// partition. Used by failure-injection tests (§3.4 of the paper: Canopus
/// must stall, not diverge, under partition).
pub struct PartitionableFabric<F> {
    inner: F,
    /// Pairs (a, b) with a < b such that traffic between a and b is cut.
    cut: BTreeSet<(NodeId, NodeId)>,
    /// Nodes cut from everyone (both directions).
    isolated: BTreeSet<NodeId>,
}

impl<F> PartitionableFabric<F> {
    /// Wraps `inner` with no partitions installed.
    pub fn new(inner: F) -> Self {
        PartitionableFabric {
            inner,
            cut: BTreeSet::new(),
            isolated: BTreeSet::new(),
        }
    }

    fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Cuts bidirectional connectivity between `a` and `b`.
    pub fn cut_pair(&mut self, a: NodeId, b: NodeId) {
        self.cut.insert(Self::key(a, b));
    }

    /// Restores connectivity between `a` and `b`.
    pub fn heal_pair(&mut self, a: NodeId, b: NodeId) {
        self.cut.remove(&Self::key(a, b));
    }

    /// Cuts every pair with one endpoint in `side_a` and the other in `side_b`.
    pub fn cut_groups(&mut self, side_a: &[NodeId], side_b: &[NodeId]) {
        for &a in side_a {
            for &b in side_b {
                self.cut_pair(a, b);
            }
        }
    }

    /// Heals every pair with one endpoint in `side_a` and the other in
    /// `side_b` (the inverse of [`Self::cut_groups`]).
    pub fn heal_groups(&mut self, side_a: &[NodeId], side_b: &[NodeId]) {
        for &a in side_a {
            for &b in side_b {
                self.heal_pair(a, b);
            }
        }
    }

    /// Cuts `node` off from every other node, both directions.
    pub fn isolate(&mut self, node: NodeId) {
        self.isolated.insert(node);
    }

    /// Reconnects an isolated node.
    pub fn unisolate(&mut self, node: NodeId) {
        self.isolated.remove(&node);
    }

    /// Removes all installed partitions and isolations.
    pub fn heal_all(&mut self) {
        self.cut.clear();
        self.isolated.clear();
    }

    /// Number of cut pairs currently installed.
    pub fn cut_count(&self) -> usize {
        self.cut.len()
    }

    /// Access to the wrapped fabric.
    pub fn inner_mut(&mut self) -> &mut F {
        &mut self.inner
    }
}

impl<M: Payload, F: Fabric<M>> Fabric<M> for PartitionableFabric<F> {
    fn route(&mut self, from: NodeId, to: NodeId, msg: &M, now: Time, rng: &mut SmallRng) -> Route {
        if !self.isolated.is_empty()
            && (self.isolated.contains(&from) || self.isolated.contains(&to))
        {
            return Route::Drop;
        }
        if self.cut.contains(&Self::key(from, to)) {
            return Route::Drop;
        }
        self.inner.route(from, to, msg, now, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    impl Payload for u32 {
        fn wire_size(&self) -> usize {
            4
        }
    }

    #[test]
    fn uniform_fabric_adds_latency() {
        let mut f = UniformFabric::new(Dur::micros(50));
        let mut rng = SmallRng::seed_from_u64(0);
        let t = Time::ZERO + Dur::millis(1);
        assert_eq!(
            Fabric::<u32>::route(&mut f, NodeId(0), NodeId(1), &7, t, &mut rng),
            Route::Deliver(t + Dur::micros(50))
        );
    }

    #[test]
    fn lossy_fabric_drops_roughly_at_rate() {
        let mut f = LossyFabric::new(UniformFabric::new(Dur::ZERO), 0.25);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut dropped = 0;
        for _ in 0..10_000 {
            if Fabric::<u32>::route(&mut f, NodeId(0), NodeId(1), &7, Time::ZERO, &mut rng)
                == Route::Drop
            {
                dropped += 1;
            }
        }
        assert!((2000..3000).contains(&dropped), "dropped {dropped}/10000");
    }

    #[test]
    fn zero_loss_never_drops() {
        let mut f = LossyFabric::new(UniformFabric::new(Dur::ZERO), 0.0);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert_ne!(
                Fabric::<u32>::route(&mut f, NodeId(0), NodeId(1), &7, Time::ZERO, &mut rng),
                Route::Drop
            );
        }
    }

    #[test]
    fn partition_cuts_both_directions_and_heals() {
        let mut f = PartitionableFabric::new(UniformFabric::new(Dur::ZERO));
        let mut rng = SmallRng::seed_from_u64(0);
        f.cut_pair(NodeId(1), NodeId(2));
        assert_eq!(
            Fabric::<u32>::route(&mut f, NodeId(1), NodeId(2), &7, Time::ZERO, &mut rng),
            Route::Drop
        );
        assert_eq!(
            Fabric::<u32>::route(&mut f, NodeId(2), NodeId(1), &7, Time::ZERO, &mut rng),
            Route::Drop
        );
        // Unrelated pair unaffected.
        assert_ne!(
            Fabric::<u32>::route(&mut f, NodeId(0), NodeId(2), &7, Time::ZERO, &mut rng),
            Route::Drop
        );
        f.heal_all();
        assert_ne!(
            Fabric::<u32>::route(&mut f, NodeId(1), NodeId(2), &7, Time::ZERO, &mut rng),
            Route::Drop
        );
    }

    #[test]
    fn cut_groups_cuts_cross_product() {
        let mut f = PartitionableFabric::new(UniformFabric::new(Dur::ZERO));
        let mut rng = SmallRng::seed_from_u64(0);
        f.cut_groups(&[NodeId(0), NodeId(1)], &[NodeId(2)]);
        for a in [0u32, 1] {
            assert_eq!(
                Fabric::<u32>::route(&mut f, NodeId(a), NodeId(2), &7, Time::ZERO, &mut rng),
                Route::Drop
            );
        }
        assert_ne!(
            Fabric::<u32>::route(&mut f, NodeId(0), NodeId(1), &7, Time::ZERO, &mut rng),
            Route::Drop
        );
    }
}
