//! Virtual time for the discrete-event simulator.
//!
//! All simulation timestamps are nanoseconds since the start of the
//! simulation. Two newtypes keep instants and durations from being mixed up:
//! [`Time`] is a point on the virtual clock, [`Dur`] is a span between two
//! points. The arithmetic mirrors `std::time::{Instant, Duration}` but is
//! `Copy`, `Ord`, and cheap enough to live inside event-queue keys.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(u64);

impl Time {
    /// The simulation epoch.
    pub const ZERO: Time = Time(0);
    /// The greatest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Builds an instant from raw nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Time {
        Time(ns)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since simulation start (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is actually later.
    pub fn saturating_since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl Dur {
    /// The empty span.
    pub const ZERO: Dur = Dur(0);

    /// Builds a span from nanoseconds.
    pub const fn nanos(ns: u64) -> Dur {
        Dur(ns)
    }

    /// Builds a span from microseconds.
    pub const fn micros(us: u64) -> Dur {
        Dur(us * 1_000)
    }

    /// Builds a span from milliseconds.
    pub const fn millis(ms: u64) -> Dur {
        Dur(ms * 1_000_000)
    }

    /// Builds a span from seconds.
    pub const fn secs(s: u64) -> Dur {
        Dur(s * 1_000_000_000)
    }

    /// Builds a span from fractional seconds (negative values clamp to zero).
    pub fn from_secs_f64(s: f64) -> Dur {
        Dur((s.max(0.0) * 1e9).round() as u64)
    }

    /// Builds a span from fractional milliseconds (negative values clamp to zero).
    pub fn from_millis_f64(ms: f64) -> Dur {
        Dur((ms.max(0.0) * 1e6).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `true` if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Element-wise maximum of two spans.
    pub fn max(self, other: Dur) -> Dur {
        Dur(self.0.max(other.0))
    }

    /// Multiplies the span by a float factor, clamping negatives to zero.
    pub fn mul_f64(self, k: f64) -> Dur {
        Dur((self.0 as f64 * k).max(0.0).round() as u64)
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, rhs: Dur) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: Time) -> Dur {
        debug_assert!(self.0 >= rhs.0, "time went backwards: {self:?} - {rhs:?}");
        Dur(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", Dur(self.0))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == u64::MAX {
            write!(f, "inf")
        } else if ns >= 1_000_000_000 && ns.is_multiple_of(1_000_000) {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(Dur::micros(3).as_nanos(), 3_000);
        assert_eq!(Dur::millis(7).as_micros(), 7_000);
        assert_eq!(Dur::secs(2).as_millis(), 2_000);
        assert_eq!(Dur::from_secs_f64(0.5).as_millis(), 500);
        assert_eq!(Dur::from_millis_f64(1.5).as_micros(), 1_500);
    }

    #[test]
    fn time_arithmetic() {
        let t = Time::ZERO + Dur::millis(5);
        assert_eq!(t.as_millis(), 5);
        let later = t + Dur::micros(250);
        assert_eq!(later - t, Dur::micros(250));
        assert_eq!(t.saturating_since(later), Dur::ZERO);
    }

    #[test]
    fn duration_arithmetic() {
        let d = Dur::millis(2) * 3;
        assert_eq!(d.as_millis(), 6);
        assert_eq!(d / 2, Dur::millis(3));
        assert_eq!(d - Dur::millis(10), Dur::ZERO, "saturating subtraction");
        assert_eq!(Dur::millis(1).mul_f64(2.5), Dur::micros(2500));
    }

    #[test]
    fn negative_float_clamps() {
        assert_eq!(Dur::from_secs_f64(-1.0), Dur::ZERO);
        assert_eq!(Dur::millis(1).mul_f64(-3.0), Dur::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Dur::nanos(17)), "17ns");
        assert_eq!(format!("{}", Dur::micros(2)), "2.000us");
        assert_eq!(format!("{}", Dur::millis(3)), "3.000ms");
        assert_eq!(format!("{}", Dur::secs(4)), "4.000s");
    }
}
