//! The discrete-event simulation kernel.
//!
//! [`Simulation`] owns a set of [`Process`] nodes, a [`Fabric`] that decides
//! message delivery times, one seeded RNG, and a single event queue ordered
//! by `(time, sequence)`. The sequence tiebreak makes executions totally
//! deterministic: the same seed and the same setup replay byte-identical
//! histories (asserted by tests in `canopus-harness`).
//!
//! # CPU model
//!
//! Each node has a `busy_until` watermark. Handling a message costs the
//! node's configured `base_msg_cost` plus whatever the handler explicitly
//! [`Context::charge`]s. Deliveries to a busy node queue in FIFO order and
//! are handled when the node frees up — so an overloaded node exhibits
//! growing queues and rising completion times, which is exactly the signal
//! the paper's throughput-search methodology (§8.1) keys on. Timers fire at
//! their scheduled instant regardless of queue depth (they model OS timers,
//! not work items), but their charges still extend `busy_until`.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};

use canopus_obs::{Counter, Registry};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::fabric::{Fabric, Route};
use crate::process::{Context, Effect, NodeId, Payload, Process, Timer, TimerId};
use crate::time::{Dur, Time};

/// Sender id used for messages injected from outside the simulation
/// (test drivers, harness probes).
pub const EXTERNAL: NodeId = NodeId(u32::MAX);

/// Per-node execution parameters.
#[derive(Copy, Clone, Debug)]
pub struct NodeConfig {
    /// CPU time charged for every handled message, before explicit charges.
    pub base_msg_cost: Dur,
    /// CPU time charged per message sent (syscall + serialization). This is
    /// what makes large fan-outs — a Zab leader informing observers, an
    /// EPaxos replica broadcasting commits — cost real processor time.
    pub per_send_cost: Dur,
    /// Independent CPU lanes (cores) this node schedules work across.
    /// Deliveries queue per lane ([`Payload::lane_hint`] modulo this
    /// count), so a node hosting N shard pipelines with N lanes models a
    /// core per shard; timers charge the lane the callback selects via
    /// [`Context::use_lane`] (lane 0 by default). With 1 lane — the
    /// default — the kernel behaves exactly as the single-core model.
    pub lanes: u32,
}

impl Default for NodeConfig {
    fn default() -> Self {
        // Rough costs of receiving/sending one message on the paper's
        // Xeon E5-2620 class hardware.
        NodeConfig {
            base_msg_cost: Dur::micros(1),
            per_send_cost: Dur::nanos(500),
            lanes: 1,
        }
    }
}

impl NodeConfig {
    /// The same cost model spread over `lanes` CPU lanes.
    pub fn with_lanes(mut self, lanes: u32) -> Self {
        self.lanes = lanes.max(1);
        self
    }
}

/// Counters maintained by the kernel for every simulation.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to the fabric.
    pub msgs_sent: u64,
    /// Messages delivered to a live process.
    pub msgs_delivered: u64,
    /// Messages dropped by the fabric, a partition, or a dead destination.
    pub msgs_dropped: u64,
    /// Total bytes handed to the fabric.
    pub bytes_sent: u64,
}

/// A trace record, emitted to the optional tracer hook.
#[derive(Debug)]
pub enum TraceEvent<'a, M> {
    /// A message left `from` towards `to`; `deliver_at` is `None` if dropped.
    Send {
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
        /// Send time.
        at: Time,
        /// Scheduled delivery time, or `None` if the fabric dropped it.
        deliver_at: Option<Time>,
        /// The message.
        msg: &'a M,
    },
    /// A message is about to be handled by `to`.
    Deliver {
        /// Original sender.
        from: NodeId,
        /// Destination now handling the message.
        to: NodeId,
        /// Handling time.
        at: Time,
        /// The message.
        msg: &'a M,
    },
}

/// Tracer callback type.
pub type Tracer<M> = Box<dyn FnMut(&TraceEvent<'_, M>)>;

/// Per-message-type network accounting, attached to a [`Simulation`] via
/// [`Simulation::set_net_metrics`]. The kernel is single-threaded, so the
/// counter handles are cached in a plain map keyed by the `'static`
/// labels from [`Payload::kind`] — the steady-state cost per send is two
/// hash lookups and two relaxed adds, and a simulation without metrics
/// pays exactly one branch (the `Option` test in `route_send`).
struct NetMetrics {
    registry: Registry,
    by_kind: HashMap<&'static str, (Counter, Counter)>,
}

impl NetMetrics {
    fn count(&mut self, kind: &'static str, bytes: u64) {
        let (msgs, byt) = self.by_kind.entry(kind).or_insert_with(|| {
            (
                self.registry.counter(&format!("net.sent.msgs.{kind}")),
                self.registry.counter(&format!("net.sent.bytes.{kind}")),
            )
        });
        msgs.inc();
        byt.add(bytes);
    }
}

enum EventKind<M> {
    Deliver {
        to: NodeId,
        from: NodeId,
        msg: M,
    },
    Timer {
        node: NodeId,
        id: TimerId,
        token: u64,
        epoch: u32,
    },
    Drain {
        node: NodeId,
        lane: u32,
    },
}

struct EventEntry<M> {
    at: Time,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for EventEntry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for EventEntry<M> {}
impl<M> PartialOrd for EventEntry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for EventEntry<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// One CPU lane of a node: its busy watermark and the deliveries queued
/// behind it.
struct Lane<M> {
    busy_until: Time,
    pending: VecDeque<(NodeId, M)>,
    drain_scheduled: bool,
}

impl<M> Lane<M> {
    fn idle(at: Time) -> Self {
        Lane {
            busy_until: at,
            pending: VecDeque::new(),
            drain_scheduled: false,
        }
    }
}

struct NodeSlot<M> {
    process: Option<Box<dyn Process<M>>>,
    alive: bool,
    epoch: u32,
    lanes: Vec<Lane<M>>,
    cfg: NodeConfig,
}

/// The deterministic discrete-event simulator.
pub struct Simulation<M: Payload, F: Fabric<M>> {
    time: Time,
    seq: u64,
    events: BinaryHeap<Reverse<EventEntry<M>>>,
    nodes: Vec<NodeSlot<M>>,
    fabric: F,
    rng: SmallRng,
    next_timer_id: u64,
    armed_timers: HashSet<u64>,
    stats: NetStats,
    events_processed: u64,
    tracer: Option<Tracer<M>>,
    /// Running FNV-1a over the event schedule when enabled (see
    /// [`Simulation::enable_trace_hash`]); `None` = disabled.
    trace_hash: Option<u64>,
    /// Per-kind message/byte counters (see [`Simulation::set_net_metrics`]);
    /// `None` = disabled, costing one branch per send.
    net_metrics: Option<NetMetrics>,
}

/// FNV-1a offset basis / prime, shared by the trace-hash helper.
const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv_mix(h: &mut u64, word: u64) {
    for b in word.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

impl<M: Payload, F: Fabric<M>> Simulation<M, F> {
    /// Creates an empty simulation over `fabric`, seeded with `seed`.
    pub fn new(fabric: F, seed: u64) -> Self {
        Simulation {
            time: Time::ZERO,
            seq: 0,
            events: BinaryHeap::new(),
            nodes: Vec::new(),
            fabric,
            rng: SmallRng::seed_from_u64(seed),
            next_timer_id: 0,
            armed_timers: HashSet::new(),
            stats: NetStats::default(),
            events_processed: 0,
            tracer: None,
            trace_hash: None,
            net_metrics: None,
        }
    }

    /// Attaches a metrics registry that accumulates per-message-type
    /// send counters (`net.sent.msgs.<kind>` / `net.sent.bytes.<kind>`,
    /// labels from [`Payload::kind`]). Passing a disabled registry is
    /// equivalent to never calling this. Metrics are observation-only:
    /// they never touch the RNG, the event queue, or the trace hash, so
    /// enabling them cannot change an execution.
    pub fn set_net_metrics(&mut self, registry: Registry) {
        if registry.is_enabled() {
            self.net_metrics = Some(NetMetrics {
                registry,
                by_kind: HashMap::new(),
            });
        }
    }

    /// Installs a tracer receiving every send/deliver record.
    pub fn set_tracer(&mut self, tracer: Tracer<M>) {
        self.tracer = Some(tracer);
    }

    /// Starts folding every send, delivery, and timer firing into a running
    /// FNV-1a hash. Two runs with the same seed, setup, and fault schedule
    /// must produce identical hashes — the determinism regression the chaos
    /// suite asserts.
    pub fn enable_trace_hash(&mut self) {
        self.trace_hash = Some(FNV_OFFSET);
    }

    /// The current trace hash (`None` until [`Self::enable_trace_hash`]).
    pub fn trace_hash(&self) -> Option<u64> {
        self.trace_hash
    }

    fn trace_mix(&mut self, tag: u64, a: u64, b: u64, c: u64) {
        if let Some(h) = self.trace_hash.as_mut() {
            fnv_mix(h, tag);
            fnv_mix(h, a);
            fnv_mix(h, b);
            fnv_mix(h, c);
        }
    }

    /// Adds a node with default [`NodeConfig`]; `on_start` runs immediately.
    pub fn add_node(&mut self, process: Box<dyn Process<M>>) -> NodeId {
        self.add_node_with(process, NodeConfig::default())
    }

    /// Adds a node with an explicit config; `on_start` runs immediately.
    pub fn add_node_with(&mut self, process: Box<dyn Process<M>>, cfg: NodeConfig) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let lanes = (0..cfg.lanes.max(1))
            .map(|_| Lane::idle(self.time))
            .collect();
        self.nodes.push(NodeSlot {
            process: Some(process),
            alive: true,
            epoch: 0,
            lanes,
            cfg,
        });
        self.run_callback(id, CallbackKind::Start, self.time, None);
        id
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.time
    }

    /// Network counters.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Number of events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of nodes ever added (crashed nodes included).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Whether a node is currently alive.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.nodes[id.index()].alive
    }

    /// Mutable access to the fabric, e.g. to install partitions mid-run.
    pub fn fabric_mut(&mut self) -> &mut F {
        &mut self.fabric
    }

    /// Immutable access to the fabric.
    pub fn fabric(&self) -> &F {
        &self.fabric
    }

    /// Borrows a node's process state, downcast to `P`.
    ///
    /// # Panics
    /// Panics if the node crashed or the type does not match.
    pub fn node<P: 'static>(&self, id: NodeId) -> &P {
        self.nodes[id.index()]
            .process
            .as_ref()
            .unwrap_or_else(|| panic!("{id} has crashed"))
            .as_any()
            .downcast_ref::<P>()
            .unwrap_or_else(|| panic!("{id} is not a {}", std::any::type_name::<P>()))
    }

    /// Borrows a node's process state as `&dyn Any`, for extractors that
    /// downcast generically (e.g. the chaos verdict, which also accepts
    /// processes recovered from a live TCP cluster).
    ///
    /// # Panics
    /// Panics if the node crashed.
    pub fn node_any(&self, id: NodeId) -> &dyn std::any::Any {
        self.nodes[id.index()]
            .process
            .as_ref()
            .unwrap_or_else(|| panic!("{id} has crashed"))
            .as_any()
    }

    /// Mutably borrows a node's process state, downcast to `P`.
    ///
    /// # Panics
    /// Panics if the node crashed or the type does not match.
    pub fn node_mut<P: 'static>(&mut self, id: NodeId) -> &mut P {
        self.nodes[id.index()]
            .process
            .as_mut()
            .unwrap_or_else(|| panic!("node has crashed"))
            .as_any_mut()
            .downcast_mut::<P>()
            .unwrap_or_else(|| panic!("node is not a {}", std::any::type_name::<P>()))
    }

    /// Crash-stops a node: queued and in-flight messages to it are dropped,
    /// and its armed timers will never fire.
    pub fn crash(&mut self, id: NodeId) {
        let slot = &mut self.nodes[id.index()];
        slot.alive = false;
        slot.epoch += 1;
        for lane in &mut slot.lanes {
            lane.pending.clear();
        }
    }

    /// Takes the crashed process out of a dead node's slot, if it is still
    /// there. Lets restart paths model durable state (e.g. Raft's
    /// term/vote/log survive a power cycle) by recovering it from the old
    /// process. Returns `None` for live nodes or already-taken slots.
    pub fn take_crashed(&mut self, id: NodeId) -> Option<Box<dyn Process<M>>> {
        let slot = &mut self.nodes[id.index()];
        if slot.alive {
            return None;
        }
        slot.process.take()
    }

    /// Restarts a crashed node with a fresh process (the rejoin protocol is
    /// the process's responsibility); `on_start` runs immediately.
    pub fn restart(&mut self, id: NodeId, process: Box<dyn Process<M>>) {
        let slot = &mut self.nodes[id.index()];
        assert!(!slot.alive, "restart of a live node");
        slot.process = Some(process);
        slot.alive = true;
        let now = self.time;
        for lane in &mut slot.lanes {
            *lane = Lane::idle(now);
        }
        self.run_callback(id, CallbackKind::Start, self.time, None);
    }

    /// Injects a message from [`EXTERNAL`] directly to `to` after `delay`,
    /// bypassing the fabric. Intended for tests and harness probes.
    pub fn inject(&mut self, to: NodeId, msg: M, delay: Dur) {
        let at = self.time + delay;
        self.push_event(
            at,
            EventKind::Deliver {
                to,
                from: EXTERNAL,
                msg,
            },
        );
    }

    /// Runs until the event queue is exhausted or `deadline` is reached;
    /// afterwards `now() == deadline` unless the queue emptied first.
    pub fn run_until(&mut self, deadline: Time) {
        while let Some(Reverse(entry)) = self.events.peek() {
            if entry.at > deadline {
                break;
            }
            let Reverse(entry) = self.events.pop().expect("peeked");
            debug_assert!(entry.at >= self.time, "event queue went backwards");
            self.time = entry.at;
            self.dispatch(entry);
        }
        if self.time < deadline {
            self.time = deadline;
        }
    }

    /// Runs for `d` of virtual time from now.
    pub fn run_for(&mut self, d: Dur) {
        let deadline = self.time + d;
        self.run_until(deadline);
    }

    /// Dispatches a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        match self.events.pop() {
            Some(Reverse(entry)) => {
                self.time = entry.at;
                self.dispatch(entry);
                true
            }
            None => false,
        }
    }

    fn push_event(&mut self, at: Time, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse(EventEntry { at, seq, kind }));
    }

    fn dispatch(&mut self, entry: EventEntry<M>) {
        self.events_processed += 1;
        let at = entry.at;
        match entry.kind {
            EventKind::Deliver { to, from, msg } => {
                let slot = &mut self.nodes[to.index()];
                if !slot.alive {
                    self.stats.msgs_dropped += 1;
                    return;
                }
                let lane = (msg.lane_hint() % slot.lanes.len() as u64) as u32;
                slot.lanes[lane as usize].pending.push_back((from, msg));
                self.try_drain(to, lane, at);
            }
            EventKind::Timer {
                node,
                id,
                token,
                epoch,
            } => {
                if !self.armed_timers.remove(&id.0) {
                    return; // cancelled
                }
                let slot = &self.nodes[node.index()];
                if !slot.alive || slot.epoch != epoch {
                    return; // armed before a crash
                }
                self.trace_mix(2, node.0 as u64, at.as_nanos(), token);
                self.run_callback(node, CallbackKind::Timer(Timer { id, token }), at, None);
            }
            EventKind::Drain { node, lane } => {
                self.nodes[node.index()].lanes[lane as usize].drain_scheduled = false;
                self.try_drain(node, lane, at);
            }
        }
    }

    /// Handles as many queued messages as one lane of the node's CPU
    /// allows at `now`, scheduling a future drain if work remains.
    fn try_drain(&mut self, node: NodeId, lane: u32, now: Time) {
        loop {
            let slot = &mut self.nodes[node.index()];
            let l = &mut slot.lanes[lane as usize];
            if !slot.alive {
                l.pending.clear();
                return;
            }
            if l.pending.is_empty() {
                return;
            }
            if l.busy_until > now {
                if !l.drain_scheduled {
                    l.drain_scheduled = true;
                    let at = l.busy_until;
                    self.push_event(at, EventKind::Drain { node, lane });
                }
                return;
            }
            let (from, msg) = l.pending.pop_front().expect("checked non-empty");
            if let Some(tracer) = self.tracer.as_mut() {
                tracer(&TraceEvent::Deliver {
                    from,
                    to: node,
                    at: now,
                    msg: &msg,
                });
            }
            self.stats.msgs_delivered += 1;
            self.trace_mix(
                1,
                ((from.0 as u64) << 32) | node.0 as u64,
                now.as_nanos(),
                msg.wire_size() as u64,
            );
            self.run_callback(node, CallbackKind::Message(from, msg), now, Some(lane));
        }
    }

    /// Runs one process callback and charges its CPU cost to a lane:
    /// message deliveries charge the lane they queued on (`lane`), while
    /// timer/start callbacks charge the lane the callback selected via
    /// [`Context::use_lane`] (lane 0 unless overridden).
    fn run_callback(&mut self, node: NodeId, kind: CallbackKind<M>, now: Time, lane: Option<u32>) {
        let mut process = match self.nodes[node.index()].process.take() {
            Some(p) => p,
            None => return,
        };
        let mut ctx = Context {
            now,
            self_id: node,
            rng: &mut self.rng,
            effects: Vec::new(),
            charged: Dur::ZERO,
            next_timer_id: &mut self.next_timer_id,
            lane: 0,
        };
        match kind {
            CallbackKind::Start => process.on_start(&mut ctx),
            CallbackKind::Message(from, msg) => process.on_message(from, msg, &mut ctx),
            CallbackKind::Timer(timer) => process.on_timer(timer, &mut ctx),
        }
        let effects = std::mem::take(&mut ctx.effects);
        let charged = ctx.charged;
        let lane_hint = ctx.lane;
        let slot = &mut self.nodes[node.index()];
        slot.process = Some(process);
        let sends = effects
            .iter()
            .filter(|e| matches!(e, Effect::Send { .. }))
            .count() as u64;
        let lane = lane.unwrap_or((lane_hint % slot.lanes.len() as u64) as u32);
        let l = &mut slot.lanes[lane as usize];
        let start = if l.busy_until > now {
            l.busy_until
        } else {
            now
        };
        l.busy_until = start + slot.cfg.base_msg_cost + charged + slot.cfg.per_send_cost * sends;
        let epoch = slot.epoch;

        for effect in effects {
            match effect {
                Effect::Send { to, msg } => self.route_send(node, to, msg, now),
                Effect::SetTimer { id, after, token } => {
                    self.armed_timers.insert(id.0);
                    self.push_event(
                        now + after,
                        EventKind::Timer {
                            node,
                            id,
                            token,
                            epoch,
                        },
                    );
                }
                Effect::CancelTimer { id } => {
                    self.armed_timers.remove(&id.0);
                }
            }
        }
    }

    fn route_send(&mut self, from: NodeId, to: NodeId, msg: M, now: Time) {
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += msg.wire_size() as u64;
        if let Some(nm) = self.net_metrics.as_mut() {
            nm.count(msg.kind(), msg.wire_size() as u64);
        }
        if to == EXTERNAL {
            // Replies to externally injected messages sink silently.
            return;
        }
        let route = self.fabric.route(from, to, &msg, now, &mut self.rng);
        self.trace_mix(
            3,
            ((from.0 as u64) << 32) | to.0 as u64,
            now.as_nanos(),
            match route {
                Route::Deliver(t) => t.as_nanos(),
                Route::Drop => u64::MAX,
            },
        );
        if let Some(tracer) = self.tracer.as_mut() {
            let deliver_at = match route {
                Route::Deliver(t) => Some(t),
                Route::Drop => None,
            };
            tracer(&TraceEvent::Send {
                from,
                to,
                at: now,
                deliver_at,
                msg: &msg,
            });
        }
        match route {
            Route::Deliver(at) => {
                debug_assert!(at >= now, "fabric delivered into the past");
                let at = at.max(now);
                self.push_event(at, EventKind::Deliver { to, from, msg });
            }
            Route::Drop => {
                self.stats.msgs_dropped += 1;
            }
        }
    }
}

enum CallbackKind<M> {
    Start,
    Message(NodeId, M),
    Timer(Timer),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::UniformFabric;
    use crate::impl_process_any;
    use rand::Rng;

    #[derive(Debug, Clone, PartialEq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    impl Payload for Msg {
        fn wire_size(&self) -> usize {
            8
        }
    }

    /// Echoes pings back; counts pongs.
    struct Echo {
        peer: Option<NodeId>,
        pongs: Vec<(Time, u32)>,
        pings_handled: u32,
    }

    impl Echo {
        fn new(peer: Option<NodeId>) -> Self {
            Echo {
                peer,
                pongs: Vec::new(),
                pings_handled: 0,
            }
        }
    }

    impl Process<Msg> for Echo {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            if let Some(peer) = self.peer {
                ctx.send(peer, Msg::Ping(0));
            }
        }

        fn on_message(&mut self, from: NodeId, msg: Msg, ctx: &mut Context<'_, Msg>) {
            match msg {
                Msg::Ping(n) => {
                    self.pings_handled += 1;
                    ctx.send(from, Msg::Pong(n));
                }
                Msg::Pong(n) => {
                    self.pongs.push((ctx.now(), n));
                    if n < 4 {
                        ctx.send(from, Msg::Ping(n + 1));
                    }
                }
            }
        }

        impl_process_any!();
    }

    fn two_node_sim() -> (Simulation<Msg, UniformFabric>, NodeId, NodeId) {
        let mut sim = Simulation::new(UniformFabric::new(Dur::micros(100)), 7);
        let a = sim.add_node(Box::new(Echo::new(None)));
        // Process cost defaults to 1us; ping-pong round trip = 2 * 100us + costs.
        let b = sim.add_node(Box::new(Echo::new(Some(a))));
        (sim, a, b)
    }

    #[test]
    fn ping_pong_round_trips() {
        let (mut sim, a, b) = two_node_sim();
        sim.run_until(Time::ZERO + Dur::millis(10));
        let echo_b = sim.node::<Echo>(b);
        assert_eq!(echo_b.pongs.len(), 5);
        // First pong arrives after one RTT plus two handling costs.
        let (t0, n0) = echo_b.pongs[0];
        assert_eq!(n0, 0);
        assert!(t0 >= Time::ZERO + Dur::micros(200), "rtt respected: {t0}");
        let echo_a = sim.node::<Echo>(a);
        assert_eq!(echo_a.pings_handled, 5);
    }

    #[test]
    fn determinism_same_seed_same_history() {
        let run = || {
            let (mut sim, _, b) = two_node_sim();
            sim.run_until(Time::ZERO + Dur::millis(10));
            (
                sim.node::<Echo>(b).pongs.clone(),
                sim.events_processed(),
                sim.stats(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn crash_drops_messages_and_timers() {
        let (mut sim, a, b) = two_node_sim();
        sim.run_until(Time::ZERO + Dur::micros(150));
        sim.crash(a);
        let before = sim.node::<Echo>(b).pongs.len();
        sim.run_until(Time::ZERO + Dur::millis(10));
        // At most the single in-flight pong may still land; after that the
        // exchange stalls because pings to the crashed node are dropped.
        assert!(sim.node::<Echo>(b).pongs.len() <= before + 1);
        assert!(sim.node::<Echo>(b).pongs.len() < 5);
        assert!(sim.stats().msgs_dropped > 0);
        assert!(!sim.is_alive(a));
    }

    #[test]
    fn restart_resumes_with_fresh_state() {
        let (mut sim, a, _b) = two_node_sim();
        sim.run_until(Time::ZERO + Dur::millis(1));
        sim.crash(a);
        sim.run_until(Time::ZERO + Dur::millis(2));
        sim.restart(a, Box::new(Echo::new(None)));
        assert!(sim.is_alive(a));
        assert_eq!(sim.node::<Echo>(a).pings_handled, 0);
    }

    #[test]
    fn inject_delivers_external_messages() {
        let mut sim: Simulation<Msg, UniformFabric> =
            Simulation::new(UniformFabric::new(Dur::micros(10)), 1);
        let a = sim.add_node(Box::new(Echo::new(None)));
        sim.inject(a, Msg::Ping(9), Dur::millis(1));
        sim.run_until(Time::ZERO + Dur::millis(5));
        assert_eq!(sim.node::<Echo>(a).pings_handled, 1);
    }

    /// A process that charges heavy CPU per message.
    struct Slow {
        handled: Vec<Time>,
    }

    impl Process<Msg> for Slow {
        fn on_message(&mut self, _from: NodeId, _msg: Msg, ctx: &mut Context<'_, Msg>) {
            self.handled.push(ctx.now());
            ctx.charge(Dur::millis(1));
        }
        impl_process_any!();
    }

    #[test]
    fn cpu_charge_queues_subsequent_messages() {
        let mut sim: Simulation<Msg, UniformFabric> =
            Simulation::new(UniformFabric::new(Dur::ZERO), 1);
        let a = sim.add_node(Box::new(Slow {
            handled: Vec::new(),
        }));
        for i in 0..3 {
            sim.inject(a, Msg::Ping(i), Dur::ZERO);
        }
        sim.run_until(Time::ZERO + Dur::millis(10));
        let handled = &sim.node::<Slow>(a).handled;
        assert_eq!(handled.len(), 3);
        // Each message handled ~1ms (charge) + 1us (base) after the previous.
        assert!(handled[1] - handled[0] >= Dur::millis(1));
        assert!(handled[2] - handled[1] >= Dur::millis(1));
    }

    /// Message that names a CPU lane directly.
    #[derive(Debug, Clone, PartialEq)]
    struct Laned(u64);

    impl Payload for Laned {
        fn wire_size(&self) -> usize {
            8
        }
        fn lane_hint(&self) -> u64 {
            self.0
        }
    }

    struct SlowLaned {
        handled: Vec<(Time, u64)>,
    }

    impl Process<Laned> for SlowLaned {
        fn on_message(&mut self, _from: NodeId, msg: Laned, ctx: &mut Context<'_, Laned>) {
            self.handled.push((ctx.now(), msg.0));
            ctx.charge(Dur::millis(1));
        }
        impl_process_any!();
    }

    #[test]
    fn lanes_run_hinted_messages_concurrently() {
        let mut sim: Simulation<Laned, UniformFabric> =
            Simulation::new(UniformFabric::new(Dur::ZERO), 1);
        let a = sim.add_node_with(
            Box::new(SlowLaned {
                handled: Vec::new(),
            }),
            NodeConfig::default().with_lanes(2),
        );
        // Two heavy messages on different lanes, then one more per lane.
        for hint in [0u64, 1, 2, 3] {
            sim.inject(a, Laned(hint), Dur::ZERO);
        }
        sim.run_until(Time::ZERO + Dur::millis(10));
        let handled = &sim.node::<SlowLaned>(a).handled;
        assert_eq!(handled.len(), 4);
        // Hints 0 and 1 land on distinct lanes and start immediately; the
        // 1ms charge from hint 0 must not delay hint 1.
        let t = |hint: u64| handled.iter().find(|(_, h)| *h == hint).unwrap().0;
        assert!(t(1) < Time::ZERO + Dur::millis(1), "lane 1 not delayed");
        // Hints 2 and 3 fold back onto lanes 0 and 1 and queue behind the
        // first pair's charges.
        assert!(t(2) >= t(0) + Dur::millis(1));
        assert!(t(3) >= t(1) + Dur::millis(1));
    }

    #[test]
    fn single_lane_serializes_regardless_of_hints() {
        let mut sim: Simulation<Laned, UniformFabric> =
            Simulation::new(UniformFabric::new(Dur::ZERO), 1);
        let a = sim.add_node(Box::new(SlowLaned {
            handled: Vec::new(),
        }));
        for hint in [5u64, 9, 13] {
            sim.inject(a, Laned(hint), Dur::ZERO);
        }
        sim.run_until(Time::ZERO + Dur::millis(10));
        let handled = &sim.node::<SlowLaned>(a).handled;
        assert_eq!(handled.len(), 3);
        assert!(handled[1].0 - handled[0].0 >= Dur::millis(1));
        assert!(handled[2].0 - handled[1].0 >= Dur::millis(1));
    }

    /// Timer handler that directs its charge at a chosen lane.
    struct LanedTimer {
        handled: Vec<(Time, u64)>,
    }

    impl Process<Laned> for LanedTimer {
        fn on_start(&mut self, ctx: &mut Context<'_, Laned>) {
            ctx.set_timer(Dur::ZERO, 0);
        }
        fn on_message(&mut self, _from: NodeId, msg: Laned, ctx: &mut Context<'_, Laned>) {
            self.handled.push((ctx.now(), msg.0));
            ctx.charge(Dur::micros(10));
        }
        fn on_timer(&mut self, _timer: Timer, ctx: &mut Context<'_, Laned>) {
            // Charge a heavy tick against lane 1 only.
            ctx.use_lane(1);
            ctx.charge(Dur::millis(1));
        }
        impl_process_any!();
    }

    #[test]
    fn use_lane_directs_timer_charge() {
        let mut sim: Simulation<Laned, UniformFabric> =
            Simulation::new(UniformFabric::new(Dur::ZERO), 1);
        let a = sim.add_node_with(
            Box::new(LanedTimer {
                handled: Vec::new(),
            }),
            NodeConfig::default().with_lanes(2),
        );
        sim.inject(a, Laned(0), Dur::micros(1));
        sim.inject(a, Laned(1), Dur::micros(1));
        sim.run_until(Time::ZERO + Dur::millis(10));
        let handled = &sim.node::<LanedTimer>(a).handled;
        let t = |hint: u64| handled.iter().find(|(_, h)| *h == hint).unwrap().0;
        // The timer's 1ms charge went to lane 1, so the lane-0 message runs
        // right away while the lane-1 message waits out the tick.
        assert!(t(0) < Time::ZERO + Dur::millis(1), "lane 0 stayed free");
        assert!(
            t(1) >= Time::ZERO + Dur::millis(1),
            "lane 1 blocked by tick"
        );
    }

    struct TimerUser {
        fired: Vec<(Time, u64)>,
        cancel_second: bool,
    }

    impl Process<Msg> for TimerUser {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            ctx.set_timer(Dur::millis(1), 1);
            let t2 = ctx.set_timer(Dur::millis(2), 2);
            if self.cancel_second {
                ctx.cancel_timer(t2);
            }
            ctx.set_timer(Dur::millis(3), 3);
        }
        fn on_message(&mut self, _: NodeId, _: Msg, _: &mut Context<'_, Msg>) {}
        fn on_timer(&mut self, timer: Timer, ctx: &mut Context<'_, Msg>) {
            self.fired.push((ctx.now(), timer.token));
        }
        impl_process_any!();
    }

    #[test]
    fn timers_fire_in_order_and_cancel_works() {
        let mut sim: Simulation<Msg, UniformFabric> =
            Simulation::new(UniformFabric::new(Dur::ZERO), 1);
        let a = sim.add_node(Box::new(TimerUser {
            fired: Vec::new(),
            cancel_second: true,
        }));
        sim.run_until(Time::ZERO + Dur::millis(10));
        let fired = &sim.node::<TimerUser>(a).fired;
        let tokens: Vec<u64> = fired.iter().map(|(_, t)| *t).collect();
        assert_eq!(tokens, vec![1, 3]);
        assert_eq!(fired[0].0, Time::ZERO + Dur::millis(1));
        assert_eq!(fired[1].0, Time::ZERO + Dur::millis(3));
    }

    #[test]
    fn timers_do_not_survive_crash() {
        let mut sim: Simulation<Msg, UniformFabric> =
            Simulation::new(UniformFabric::new(Dur::ZERO), 1);
        let a = sim.add_node(Box::new(TimerUser {
            fired: Vec::new(),
            cancel_second: false,
        }));
        sim.run_until(Time::ZERO + Dur::micros(1500));
        sim.crash(a);
        sim.restart(
            a,
            Box::new(TimerUser {
                fired: Vec::new(),
                cancel_second: false,
            }),
        );
        sim.run_until(Time::ZERO + Dur::millis(30));
        let fired = &sim.node::<TimerUser>(a).fired;
        // Only the fresh process's timers fire; the pre-crash t=2ms and t=3ms
        // arming must not leak into the new epoch.
        let tokens: Vec<u64> = fired.iter().map(|(_, t)| *t).collect();
        assert_eq!(tokens, vec![1, 2, 3]);
        assert!(fired[0].0 >= Time::ZERO + Dur::micros(1500));
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut sim: Simulation<Msg, UniformFabric> =
            Simulation::new(UniformFabric::new(Dur::ZERO), 1);
        sim.run_until(Time::ZERO + Dur::secs(5));
        assert_eq!(sim.now(), Time::ZERO + Dur::secs(5));
    }

    #[test]
    fn rng_is_deterministic_across_runs() {
        let draw = || {
            let mut sim: Simulation<Msg, UniformFabric> =
                Simulation::new(UniformFabric::new(Dur::ZERO), 99);
            let _ = sim.add_node(Box::new(Echo::new(None)));
            // Reach into the rng through a context-less path: run and sample.
            sim.rng.gen::<u64>()
        };
        assert_eq!(draw(), draw());
    }
}
