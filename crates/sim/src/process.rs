//! The sans-IO process abstraction.
//!
//! Every protocol participant — Canopus pnodes, Raft peers, EPaxos replicas,
//! Zab leaders/followers, and workload clients — is a [`Process`]: a state
//! machine that reacts to message deliveries and timer firings through a
//! [`Context`]. Processes never perform IO themselves; they only record
//! intents (sends, timers, CPU charges) that the driving runtime executes.
//! The same process code therefore runs unchanged on the deterministic
//! simulator and on the TCP driver in `canopus-net`.

use std::any::Any;
use std::fmt;

use rand::rngs::SmallRng;

use crate::time::{Dur, Time};

/// Identifier of a process within one simulation or deployment.
///
/// Ids are dense indices assigned in creation order, which lets topologies
/// and routing tables use plain vectors.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as a `usize`, for vector addressing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Handle for a pending timer, used for cancellation.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerId(pub u64);

/// A timer delivery. `token` is the protocol-chosen discriminator passed to
/// [`Context::set_timer`]; `id` identifies this particular arming.
#[derive(Copy, Clone, Debug)]
pub struct Timer {
    /// Unique id of this arming (matches the [`TimerId`] returned by `set_timer`).
    pub id: TimerId,
    /// Protocol-defined discriminator (e.g. "election timeout", "cycle tick").
    pub token: u64,
}

/// Payloads that can traverse the simulated or real network.
///
/// `wire_size` must return the number of bytes the message would occupy on
/// the wire; the network fabric uses it for serialization-delay and
/// bandwidth-queueing computations, so it should track the real encoded size
/// reasonably closely.
pub trait Payload: fmt::Debug + 'static {
    /// Encoded size of this message in bytes.
    fn wire_size(&self) -> usize;

    /// Short static label for this message's variant (e.g. `"raft"`,
    /// `"propose"`), used by the observability layer to account messages
    /// and bytes by type. The default lumps everything under `"msg"`;
    /// protocol enums override it per variant.
    fn kind(&self) -> &'static str {
        "msg"
    }

    /// Which CPU lane of a multi-lane node should handle this message.
    ///
    /// The kernel reduces the hint modulo the destination's configured
    /// lane count, so implementations return a stable raw value (a shard
    /// id, a key hash) without knowing the deployment's lane count. On
    /// the default single-lane nodes the hint is irrelevant — everything
    /// maps to lane 0 — so the default of 0 preserves existing behavior.
    fn lane_hint(&self) -> u64 {
        0
    }
}

/// One effect recorded by a process during a callback.
///
/// Effects are consumed by whichever runtime drives the process: the
/// simulator kernel, or an external driver (e.g. the TCP transport in
/// `canopus-net`) via [`Context::detached`] / [`Context::into_effects`].
#[derive(Debug)]
pub enum Effect<M> {
    /// Send `msg` to `to`.
    Send {
        /// Destination node.
        to: NodeId,
        /// The message.
        msg: M,
    },
    /// Arm a one-shot timer.
    SetTimer {
        /// Timer handle (for cancellation).
        id: TimerId,
        /// Delay from the callback's `now`.
        after: Dur,
        /// Protocol-defined discriminator.
        token: u64,
    },
    /// Cancel a previously armed timer.
    CancelTimer {
        /// The handle returned by `set_timer`.
        id: TimerId,
    },
}

/// The interface a process uses to interact with the world.
///
/// All methods record intents; the runtime applies them after the callback
/// returns. This keeps callbacks pure with respect to the event queue and
/// makes executions reproducible.
pub struct Context<'a, M> {
    pub(crate) now: Time,
    pub(crate) self_id: NodeId,
    pub(crate) rng: &'a mut SmallRng,
    pub(crate) effects: Vec<Effect<M>>,
    pub(crate) charged: Dur,
    pub(crate) next_timer_id: &'a mut u64,
    pub(crate) lane: u64,
}

impl<'a, M> Context<'a, M> {
    /// Builds a context for an external (non-simulator) driver such as the
    /// TCP transport. `next_timer_id` must be a counter owned by the
    /// driver so timer ids stay unique per node lifetime.
    pub fn detached(
        now: Time,
        self_id: NodeId,
        rng: &'a mut SmallRng,
        next_timer_id: &'a mut u64,
    ) -> Self {
        Context {
            now,
            self_id,
            rng,
            effects: Vec::new(),
            charged: Dur::ZERO,
            next_timer_id,
            lane: 0,
        }
    }

    /// Consumes the context, yielding the recorded effects and the total
    /// CPU charge. Only external drivers need this; the simulator kernel
    /// drains contexts internally.
    pub fn into_effects(self) -> (Vec<Effect<M>>, Dur) {
        (self.effects, self.charged)
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The id of the process being called.
    pub fn id(&self) -> NodeId {
        self.self_id
    }

    /// Deterministic per-simulation random number generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Sends `msg` to `to`. Delivery time (or loss) is decided by the fabric.
    /// Sending to self is allowed and goes through the fabric like any other
    /// message.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.effects.push(Effect::Send { to, msg });
    }

    /// Arms a one-shot timer `after` from now carrying `token`.
    pub fn set_timer(&mut self, after: Dur, token: u64) -> TimerId {
        let id = TimerId(*self.next_timer_id);
        *self.next_timer_id += 1;
        self.effects.push(Effect::SetTimer { id, after, token });
        id
    }

    /// Cancels a previously armed timer. Cancelling an already-fired or
    /// unknown timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.push(Effect::CancelTimer { id });
    }

    /// Charges `cost` of CPU time to this node, modelling processing work
    /// (request marshaling, log persistence, state-machine application).
    /// While a node is busy, subsequent message deliveries queue behind the
    /// charge, which is how CPU saturation manifests in experiments.
    pub fn charge(&mut self, cost: Dur) {
        self.charged += cost;
    }

    /// Directs this callback's CPU charge at lane `hint % lanes` of a
    /// multi-lane node instead of the default lane 0. Message deliveries
    /// pick their lane from [`Payload::lane_hint`] before the handler
    /// runs (so queuing happens on the right lane); timer and start
    /// callbacks call this to co-locate their charge with the shard the
    /// work belongs to. A no-op on single-lane nodes.
    pub fn use_lane(&mut self, hint: u64) {
        self.lane = hint;
    }
}

/// A deterministic, event-driven protocol participant.
///
/// Implementations must be deterministic given the callback sequence and the
/// RNG: no wall-clock reads, no iteration over hash maps where the order
/// escapes into messages (use `BTreeMap`/vectors for anything
/// order-sensitive).
pub trait Process<M>: Any + Send {
    /// Called once when the node starts (or restarts after a crash).
    fn on_start(&mut self, _ctx: &mut Context<'_, M>) {}

    /// Called for every delivered message.
    fn on_message(&mut self, from: NodeId, msg: M, ctx: &mut Context<'_, M>);

    /// Called when an armed timer fires.
    fn on_timer(&mut self, _timer: Timer, _ctx: &mut Context<'_, M>) {}

    /// Upcasts for harness-side state inspection.
    fn as_any(&self) -> &dyn Any;

    /// Upcasts for harness-side state mutation.
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Consumes the boxed process for owned downcasting (crash-recovery
    /// paths reclaim durable state from the dead process this way).
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// Implements the [`Process::as_any`]/[`Process::as_any_mut`] boilerplate.
#[macro_export]
macro_rules! impl_process_any {
    () => {
        fn as_any(&self) -> &dyn ::std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn ::std::any::Any {
            self
        }
        fn into_any(self: ::std::boxed::Box<Self>) -> ::std::boxed::Box<dyn ::std::any::Any> {
            self
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn context_records_effects_in_order() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut next_timer = 0;
        let mut ctx: Context<'_, u32> = Context {
            now: Time::ZERO,
            self_id: NodeId(3),
            rng: &mut rng,
            effects: Vec::new(),
            charged: Dur::ZERO,
            next_timer_id: &mut next_timer,
            lane: 0,
        };
        ctx.send(NodeId(1), 42);
        let t = ctx.set_timer(Dur::millis(5), 7);
        ctx.cancel_timer(t);
        ctx.charge(Dur::micros(2));
        ctx.charge(Dur::micros(3));

        assert_eq!(ctx.charged, Dur::micros(5));
        assert_eq!(ctx.effects.len(), 3);
        match &ctx.effects[0] {
            Effect::Send { to, msg } => {
                assert_eq!(*to, NodeId(1));
                assert_eq!(*msg, 42);
            }
            other => panic!("unexpected effect {other:?}"),
        }
        match &ctx.effects[1] {
            Effect::SetTimer { id, after, token } => {
                assert_eq!(*id, t);
                assert_eq!(*after, Dur::millis(5));
                assert_eq!(*token, 7);
            }
            other => panic!("unexpected effect {other:?}"),
        }
    }

    #[test]
    fn timer_ids_are_unique() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut next_timer = 0;
        let mut ctx: Context<'_, u32> = Context {
            now: Time::ZERO,
            self_id: NodeId(0),
            rng: &mut rng,
            effects: Vec::new(),
            charged: Dur::ZERO,
            next_timer_id: &mut next_timer,
            lane: 0,
        };
        let a = ctx.set_timer(Dur::millis(1), 0);
        let b = ctx.set_timer(Dur::millis(1), 0);
        assert_ne!(a, b);
    }
}
