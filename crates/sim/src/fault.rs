//! The deterministic nemesis engine: seeded, time-ordered fault schedules
//! applied to a running [`Simulation`].
//!
//! A [`FaultPlan`] is a declarative, virtual-time schedule of
//! [`FaultEvent`]s — partitions, crashes, restarts, loss injection, node
//! isolation, link flapping — built with combinators (`at`, `then`,
//! `repeat`, `randomized`). A [`NemesisDriver`] replays the plan against
//! any simulation whose fabric implements [`NemesisFabric`] (the
//! [`PartitionableFabric`]`<`[`LossyFabric`]`<F>>` composition provides it
//! for every inner fabric), interleaving fault application with event
//! processing so faults land at exact virtual instants.
//!
//! Determinism: the plan is data, the jitter is seeded, and the driver
//! advances the simulation with `run_until` between events — so the same
//! plan + seed always yields the same execution (guarded by the trace-hash
//! regression tests in the chaos suite).

use std::collections::BTreeSet;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::fabric::{Fabric, LossyFabric, PartitionableFabric};
use crate::process::{NodeId, Payload, Process};
use crate::sim::Simulation;
use crate::time::{Dur, Time};

/// One scheduled fault.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultEvent {
    /// Cut every link with one endpoint in `a` and the other in `b`.
    CutGroups {
        /// One side of the partition.
        a: Vec<NodeId>,
        /// The other side.
        b: Vec<NodeId>,
    },
    /// Remove every installed partition and isolation, and zero all loss.
    HealAll,
    /// Crash-stop a node.
    Crash(NodeId),
    /// Restart a crashed node with a fresh (or recovered) process.
    Restart(NodeId),
    /// Set the global message-loss probability.
    SetLoss(f64),
    /// Set an asymmetric loss rate on one node's outbound traffic.
    SetNodeOutLoss {
        /// The impaired sender.
        node: NodeId,
        /// Drop probability for its outbound messages.
        loss: f64,
    },
    /// Cut a node off from everyone (both directions).
    IsolateNode(NodeId),
    /// Toggle the `a`↔`b` cut every `period`, starting cut, until the next
    /// `HealAll` in the plan (or the driver's horizon).
    FlapLink {
        /// One side of the flapping link.
        a: Vec<NodeId>,
        /// The other side.
        b: Vec<NodeId>,
        /// Toggle period.
        period: Dur,
    },
}

/// A concrete action on the timeline after flap expansion.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultAction {
    /// Install a group cut.
    Cut(Vec<NodeId>, Vec<NodeId>),
    /// Remove a group cut.
    Heal(Vec<NodeId>, Vec<NodeId>),
    /// Remove all partitions/isolations and zero loss.
    HealAll,
    /// Crash-stop a node.
    Crash(NodeId),
    /// Restart a crashed node.
    Restart(NodeId),
    /// Set the global loss probability.
    SetLoss(f64),
    /// Set one node's outbound loss probability.
    SetNodeOutLoss(NodeId, f64),
    /// Isolate a node.
    Isolate(NodeId),
}

/// A seeded, time-ordered schedule of fault events. Offsets are relative
/// to the instant the plan is handed to a [`NemesisDriver`].
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    events: Vec<(Dur, FaultEvent)>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds `event` at absolute offset `at` from the plan start.
    pub fn at(mut self, at: Dur, event: FaultEvent) -> Self {
        self.events.push((at, event));
        self
    }

    /// Adds `event` `gap` after the previously added event (or at `gap`
    /// for the first event).
    pub fn then(self, gap: Dur, event: FaultEvent) -> Self {
        let base = self.events.last().map(|(d, _)| *d).unwrap_or(Dur::ZERO);
        self.at(base + gap, event)
    }

    /// Repeats the current schedule `times` additional times, each copy
    /// shifted by a further `period`. The original occupies repetition 0.
    pub fn repeat(mut self, times: usize, period: Dur) -> Self {
        let base: Vec<(Dur, FaultEvent)> = self.events.clone();
        for i in 1..=times {
            let shift = Dur::nanos(period.as_nanos() * i as u64);
            for (d, ev) in &base {
                self.events.push((*d + shift, ev.clone()));
            }
        }
        self
    }

    /// Applies deterministic jitter of up to `jitter` to every event
    /// offset, drawn from a `seed`ed RNG. Same seed ⇒ same jitter.
    pub fn randomized(mut self, seed: u64, jitter: Dur) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x4e454d45_53495321);
        for (d, _) in &mut self.events {
            let j = Dur::nanos(rng.gen_range(0..jitter.as_nanos().max(1)));
            *d += j;
        }
        self
    }

    /// The raw schedule, in insertion order.
    pub fn events(&self) -> &[(Dur, FaultEvent)] {
        &self.events
    }

    /// Expands the plan into a concrete, time-sorted action timeline
    /// anchored at `start`, bounded by `horizon`. `FlapLink` unrolls into
    /// alternating cut/heal actions until the next `HealAll` after it (or
    /// the horizon).
    pub fn timeline(&self, start: Time, horizon: Dur) -> Vec<(Time, FaultAction)> {
        let end = start + horizon;
        let mut out: Vec<(Time, u64, FaultAction)> = Vec::new();
        let mut seq = 0u64;
        let push = |out: &mut Vec<(Time, u64, FaultAction)>, seq: &mut u64, t, a| {
            out.push((t, *seq, a));
            *seq += 1;
        };
        for (i, (offset, event)) in self.events.iter().enumerate() {
            let t = start + *offset;
            if t > end {
                continue;
            }
            match event {
                FaultEvent::CutGroups { a, b } => {
                    push(
                        &mut out,
                        &mut seq,
                        t,
                        FaultAction::Cut(a.clone(), b.clone()),
                    );
                }
                FaultEvent::HealAll => push(&mut out, &mut seq, t, FaultAction::HealAll),
                FaultEvent::Crash(n) => push(&mut out, &mut seq, t, FaultAction::Crash(*n)),
                FaultEvent::Restart(n) => push(&mut out, &mut seq, t, FaultAction::Restart(*n)),
                FaultEvent::SetLoss(p) => push(&mut out, &mut seq, t, FaultAction::SetLoss(*p)),
                FaultEvent::SetNodeOutLoss { node, loss } => {
                    push(
                        &mut out,
                        &mut seq,
                        t,
                        FaultAction::SetNodeOutLoss(*node, *loss),
                    );
                }
                FaultEvent::IsolateNode(n) => {
                    push(&mut out, &mut seq, t, FaultAction::Isolate(*n));
                }
                FaultEvent::FlapLink { a, b, period } => {
                    assert!(!period.is_zero(), "flap period must be positive");
                    // Flap until the next HealAll scheduled after this event.
                    let stop = self
                        .events
                        .iter()
                        .enumerate()
                        .filter(|(j, (d, ev))| {
                            matches!(ev, FaultEvent::HealAll)
                                && (*d > *offset || (*d == *offset && *j > i))
                        })
                        .map(|(_, (d, _))| start + *d)
                        .min()
                        .unwrap_or(end)
                        .min(end);
                    let mut cut = true;
                    let mut when = t;
                    while when < stop {
                        let action = if cut {
                            FaultAction::Cut(a.clone(), b.clone())
                        } else {
                            FaultAction::Heal(a.clone(), b.clone())
                        };
                        push(&mut out, &mut seq, when, action);
                        cut = !cut;
                        when += *period;
                    }
                    // Leave the link healed when the flap window closes
                    // without a terminating HealAll of its own.
                    if !cut {
                        push(
                            &mut out,
                            &mut seq,
                            stop,
                            FaultAction::Heal(a.clone(), b.clone()),
                        );
                    }
                }
            }
        }
        out.sort_by_key(|(t, s, _)| (*t, *s));
        out.into_iter().map(|(t, _, a)| (t, a)).collect()
    }
}

/// Fabric operations the nemesis needs. Implemented by the canonical
/// [`PartitionableFabric`]`<`[`LossyFabric`]`<F>>` composition over any
/// inner fabric.
pub trait NemesisFabric {
    /// Cut the `a` × `b` cross product of links.
    fn nemesis_cut_groups(&mut self, a: &[NodeId], b: &[NodeId]);
    /// Heal the `a` × `b` cross product of links.
    fn nemesis_heal_groups(&mut self, a: &[NodeId], b: &[NodeId]);
    /// Remove every partition and isolation, and zero all loss.
    fn nemesis_heal_all(&mut self);
    /// Set the global loss probability.
    fn nemesis_set_loss(&mut self, loss: f64);
    /// Set one node's outbound loss probability.
    fn nemesis_set_node_out_loss(&mut self, node: NodeId, loss: f64);
    /// Isolate a node from everyone.
    fn nemesis_isolate(&mut self, node: NodeId);
}

impl<F> NemesisFabric for PartitionableFabric<LossyFabric<F>> {
    fn nemesis_cut_groups(&mut self, a: &[NodeId], b: &[NodeId]) {
        self.cut_groups(a, b);
    }
    fn nemesis_heal_groups(&mut self, a: &[NodeId], b: &[NodeId]) {
        self.heal_groups(a, b);
    }
    fn nemesis_heal_all(&mut self) {
        self.heal_all();
        self.inner_mut().clear_loss();
    }
    fn nemesis_set_loss(&mut self, loss: f64) {
        self.inner_mut().set_loss(loss);
    }
    fn nemesis_set_node_out_loss(&mut self, node: NodeId, loss: f64) {
        self.inner_mut().set_out_loss(node, loss);
    }
    fn nemesis_isolate(&mut self, node: NodeId) {
        self.isolate(node);
    }
}

/// Factory invoked by the driver on `Restart`: receives the node id and,
/// when the kernel still holds it, the crashed process (so protocols with
/// durable state — e.g. Raft's term/vote/log — can model recovery).
pub type RestartFn<'a, M> =
    &'a mut dyn FnMut(NodeId, Option<Box<dyn Process<M>>>) -> Box<dyn Process<M>>;

/// The clock-agnostic core of a nemesis run: a cursor over the expanded
/// action timeline plus the applied/crash bookkeeping every driver needs.
///
/// The schedule knows nothing about *how* time advances — the virtual-time
/// [`NemesisDriver`] steps a [`Simulation`] between actions, while the
/// wall-clock live driver in `canopus-harness` sleeps real time between
/// them. Both pop due actions with [`NemesisSchedule::pop_due`], apply
/// them to their respective fabrics, and record the outcome with
/// [`NemesisSchedule::record`].
pub struct NemesisSchedule {
    timeline: Vec<(Time, FaultAction)>,
    next: usize,
    applied: Vec<(Time, FaultAction)>,
    ever_crashed: BTreeSet<NodeId>,
}

impl NemesisSchedule {
    /// Expands `plan` into a schedule anchored at `start`, bounded by
    /// `start + horizon`.
    pub fn new(plan: &FaultPlan, start: Time, horizon: Dur) -> Self {
        NemesisSchedule {
            timeline: plan.timeline(start, horizon),
            next: 0,
            applied: Vec::new(),
            ever_crashed: BTreeSet::new(),
        }
    }

    /// The instant of the next unapplied action, if any remain.
    pub fn next_at(&self) -> Option<Time> {
        self.timeline.get(self.next).map(|&(t, _)| t)
    }

    /// Pops the next action if it is due at or before `now`. The caller
    /// applies it to its fabric, then calls [`NemesisSchedule::record`].
    pub fn pop_due(&mut self, now: Time) -> Option<(Time, FaultAction)> {
        match self.timeline.get(self.next) {
            Some(&(at, _)) if at <= now => {
                let entry = self.timeline[self.next].clone();
                self.next += 1;
                Some(entry)
            }
            _ => None,
        }
    }

    /// Records an action as applied. `Crash` actions the caller actually
    /// executed should also be reported via
    /// [`NemesisSchedule::mark_crashed`].
    pub fn record(&mut self, at: Time, action: FaultAction) {
        self.applied.push((at, action));
    }

    /// Notes that `node` was genuinely crashed (it was alive when the
    /// `Crash` action fired).
    pub fn mark_crashed(&mut self, node: NodeId) {
        self.ever_crashed.insert(node);
    }

    /// Whether every scheduled action has been popped.
    pub fn finished(&self) -> bool {
        self.next >= self.timeline.len()
    }

    /// The actions applied so far, with their application times.
    pub fn applied(&self) -> &[(Time, FaultAction)] {
        &self.applied
    }

    /// Nodes crashed at least once by this schedule.
    pub fn ever_crashed(&self) -> &BTreeSet<NodeId> {
        &self.ever_crashed
    }
}

/// Replays a [`FaultPlan`] timeline against a simulation as virtual time
/// advances.
pub struct NemesisDriver {
    sched: NemesisSchedule,
}

impl NemesisDriver {
    /// Builds a driver for `plan`, anchored at `start` and expanded up to
    /// `start + horizon`.
    pub fn new(plan: &FaultPlan, start: Time, horizon: Dur) -> Self {
        NemesisDriver {
            sched: NemesisSchedule::new(plan, start, horizon),
        }
    }

    /// Runs `sim` until `until`, applying every scheduled action at its
    /// exact virtual instant. `restart` builds replacement processes for
    /// `Restart` actions.
    pub fn run<M, F>(&mut self, sim: &mut Simulation<M, F>, until: Time, restart: RestartFn<'_, M>)
    where
        M: Payload,
        F: Fabric<M> + NemesisFabric,
    {
        while let Some(next) = self.sched.next_at().filter(|&at| at <= until) {
            sim.run_until(next);
            while let Some((at, action)) = self.sched.pop_due(next) {
                self.apply(sim, at, action, restart);
            }
        }
        sim.run_until(until);
    }

    fn apply<M, F>(
        &mut self,
        sim: &mut Simulation<M, F>,
        at: Time,
        action: FaultAction,
        restart: RestartFn<'_, M>,
    ) where
        M: Payload,
        F: Fabric<M> + NemesisFabric,
    {
        match &action {
            FaultAction::Cut(a, b) => sim.fabric_mut().nemesis_cut_groups(a, b),
            FaultAction::Heal(a, b) => sim.fabric_mut().nemesis_heal_groups(a, b),
            FaultAction::HealAll => sim.fabric_mut().nemesis_heal_all(),
            FaultAction::SetLoss(p) => sim.fabric_mut().nemesis_set_loss(*p),
            FaultAction::SetNodeOutLoss(n, p) => {
                sim.fabric_mut().nemesis_set_node_out_loss(*n, *p);
            }
            FaultAction::Isolate(n) => sim.fabric_mut().nemesis_isolate(*n),
            FaultAction::Crash(n) => {
                if sim.is_alive(*n) {
                    sim.crash(*n);
                    self.sched.mark_crashed(*n);
                }
            }
            FaultAction::Restart(n) => {
                if !sim.is_alive(*n) {
                    let old = sim.take_crashed(*n);
                    sim.restart(*n, restart(*n, old));
                }
            }
        }
        self.sched.record(at, action);
    }

    /// Whether every scheduled action has been applied.
    pub fn finished(&self) -> bool {
        self.sched.finished()
    }

    /// The actions applied so far, with their application times.
    pub fn applied(&self) -> &[(Time, FaultAction)] {
        self.sched.applied()
    }

    /// Nodes crashed at least once by this driver.
    pub fn ever_crashed(&self) -> &BTreeSet<NodeId> {
        self.sched.ever_crashed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn combinators_build_ordered_timelines() {
        let plan = FaultPlan::new()
            .at(Dur::millis(10), FaultEvent::Crash(n(1)))
            .then(Dur::millis(5), FaultEvent::Restart(n(1)))
            .at(Dur::millis(2), FaultEvent::SetLoss(0.1));
        let tl = plan.timeline(Time::ZERO, Dur::secs(1));
        assert_eq!(tl.len(), 3);
        assert_eq!(
            tl[0],
            (Time::ZERO + Dur::millis(2), FaultAction::SetLoss(0.1))
        );
        assert_eq!(
            tl[1],
            (Time::ZERO + Dur::millis(10), FaultAction::Crash(n(1)))
        );
        assert_eq!(
            tl[2],
            (Time::ZERO + Dur::millis(15), FaultAction::Restart(n(1)))
        );
    }

    #[test]
    fn repeat_shifts_whole_schedule() {
        let plan = FaultPlan::new()
            .at(Dur::millis(1), FaultEvent::Crash(n(0)))
            .then(Dur::millis(1), FaultEvent::Restart(n(0)))
            .repeat(2, Dur::millis(10));
        let tl = plan.timeline(Time::ZERO, Dur::secs(1));
        assert_eq!(tl.len(), 6);
        assert_eq!(tl[2].0, Time::ZERO + Dur::millis(11));
        assert_eq!(tl[5].0, Time::ZERO + Dur::millis(22));
    }

    #[test]
    fn randomized_is_deterministic_per_seed() {
        let base = || {
            FaultPlan::new()
                .at(Dur::millis(10), FaultEvent::HealAll)
                .then(Dur::millis(10), FaultEvent::Crash(n(2)))
        };
        let a = base()
            .randomized(7, Dur::millis(3))
            .timeline(Time::ZERO, Dur::secs(1));
        let b = base()
            .randomized(7, Dur::millis(3))
            .timeline(Time::ZERO, Dur::secs(1));
        let c = base()
            .randomized(8, Dur::millis(3))
            .timeline(Time::ZERO, Dur::secs(1));
        assert_eq!(a, b);
        assert_ne!(a, c, "different seed jitters differently");
    }

    #[test]
    fn flap_expands_until_heal_all() {
        let plan = FaultPlan::new()
            .at(
                Dur::millis(0),
                FaultEvent::FlapLink {
                    a: vec![n(0)],
                    b: vec![n(1)],
                    period: Dur::millis(10),
                },
            )
            .at(Dur::millis(35), FaultEvent::HealAll);
        let tl = plan.timeline(Time::ZERO, Dur::secs(1));
        // Toggles at 0 (cut), 10 (heal), 20 (cut), 30 (heal), then HealAll.
        let cuts = tl
            .iter()
            .filter(|(_, a)| matches!(a, FaultAction::Cut(..)))
            .count();
        let heals = tl
            .iter()
            .filter(|(_, a)| matches!(a, FaultAction::Heal(..)))
            .count();
        assert_eq!(cuts, 2);
        assert_eq!(heals, 2);
        assert!(matches!(tl.last().unwrap().1, FaultAction::HealAll));
    }

    #[test]
    fn repeat_period_expansion_orders_copies_and_preserves_ties() {
        // Two events per repetition; with a period shorter than the
        // schedule span the copies interleave, and the sort must order by
        // time first, insertion sequence second.
        let plan = FaultPlan::new()
            .at(Dur::millis(0), FaultEvent::Crash(n(0)))
            .then(Dur::millis(8), FaultEvent::Restart(n(0)))
            .repeat(1, Dur::millis(4));
        let tl = plan.timeline(Time::ZERO, Dur::secs(1));
        let times: Vec<u64> = tl.iter().map(|(t, _)| t.as_millis()).collect();
        assert_eq!(times, vec![0, 4, 8, 12], "copies interleave time-sorted");
        assert_eq!(tl[1].1, FaultAction::Crash(n(0)), "copy's crash at 4ms");
        assert_eq!(tl[2].1, FaultAction::Restart(n(0)));

        // Degenerate period 0: every copy collides in time; insertion
        // order (repetition-major) must break the ties deterministically.
        let plan = FaultPlan::new()
            .at(Dur::millis(1), FaultEvent::Crash(n(1)))
            .then(Dur::millis(1), FaultEvent::Restart(n(1)))
            .repeat(2, Dur::ZERO);
        let tl = plan.timeline(Time::ZERO, Dur::secs(1));
        let kinds: Vec<bool> = tl
            .iter()
            .map(|(_, a)| matches!(a, FaultAction::Crash(_)))
            .collect();
        assert_eq!(kinds, vec![true, true, true, false, false, false]);
    }

    #[test]
    fn randomized_jitter_is_bounded_and_identical_across_identical_seeds() {
        let base = || {
            FaultPlan::new()
                .at(Dur::millis(5), FaultEvent::Crash(n(0)))
                .then(Dur::millis(5), FaultEvent::Restart(n(0)))
                .repeat(3, Dur::millis(20))
        };
        let jitter = Dur::millis(4);
        let a = base().randomized(99, jitter);
        let b = base().randomized(99, jitter);
        assert_eq!(
            a.timeline(Time::ZERO, Dur::secs(1)),
            b.timeline(Time::ZERO, Dur::secs(1)),
            "identical seeds must jitter identically"
        );
        // Every jittered offset stays within [original, original + jitter).
        for ((d, _), (orig, _)) in a.events().iter().zip(base().events()) {
            assert!(*d >= *orig, "jitter never moves events earlier");
            assert!(
                *d < *orig + jitter,
                "jitter bounded: {d:?} vs {orig:?} + {jitter:?}"
            );
        }
    }

    #[test]
    fn flap_boundary_at_horizon_is_exclusive_and_leaves_link_healed() {
        // Toggles at 0 (cut), 10 (heal), 20 (cut); the toggle that would
        // land exactly on the 30 ms horizon must NOT fire — the window is
        // half-open — and the dangling cut is closed by a forced heal at
        // the horizon itself.
        let plan = FaultPlan::new().at(
            Dur::millis(0),
            FaultEvent::FlapLink {
                a: vec![n(0)],
                b: vec![n(1)],
                period: Dur::millis(10),
            },
        );
        let tl = plan.timeline(Time::ZERO, Dur::millis(30));
        let times: Vec<u64> = tl.iter().map(|(t, _)| t.as_millis()).collect();
        assert_eq!(times, vec![0, 10, 20, 30]);
        assert!(matches!(tl[2].1, FaultAction::Cut(..)));
        assert!(
            matches!(tl[3].1, FaultAction::Heal(..)),
            "forced heal exactly at the horizon"
        );
        // A flap scheduled exactly at the horizon produces no toggles at
        // all (when < stop is false immediately) and needs no closing heal.
        let plan = FaultPlan::new().at(
            Dur::millis(30),
            FaultEvent::FlapLink {
                a: vec![n(0)],
                b: vec![n(1)],
                period: Dur::millis(10),
            },
        );
        assert!(plan.timeline(Time::ZERO, Dur::millis(30)).is_empty());
    }

    #[test]
    fn schedule_cursor_pops_in_order_and_tracks_bookkeeping() {
        let plan = FaultPlan::new()
            .at(Dur::millis(10), FaultEvent::Crash(n(2)))
            .then(Dur::millis(10), FaultEvent::Restart(n(2)))
            .then(Dur::millis(10), FaultEvent::HealAll);
        let mut sched = NemesisSchedule::new(&plan, Time::ZERO, Dur::secs(1));
        assert_eq!(sched.next_at(), Some(Time::ZERO + Dur::millis(10)));
        assert!(sched.pop_due(Time::ZERO + Dur::millis(5)).is_none());
        let (at, action) = sched.pop_due(Time::ZERO + Dur::millis(25)).expect("due");
        assert_eq!(action, FaultAction::Crash(n(2)));
        sched.record(at, action);
        sched.mark_crashed(n(2));
        let (at, action) = sched.pop_due(Time::ZERO + Dur::millis(25)).expect("due");
        assert_eq!(action, FaultAction::Restart(n(2)));
        sched.record(at, action);
        assert!(sched.pop_due(Time::ZERO + Dur::millis(25)).is_none());
        assert!(!sched.finished());
        assert_eq!(sched.applied().len(), 2);
        assert_eq!(
            sched.ever_crashed().iter().copied().collect::<Vec<_>>(),
            [n(2)]
        );
        let _ = sched.pop_due(Time::ZERO + Dur::secs(1)).expect("heal due");
        assert!(sched.finished());
    }

    #[test]
    fn flap_without_heal_ends_healed_at_horizon() {
        let plan = FaultPlan::new().at(
            Dur::millis(0),
            FaultEvent::FlapLink {
                a: vec![n(0)],
                b: vec![n(1)],
                period: Dur::millis(10),
            },
        );
        let tl = plan.timeline(Time::ZERO, Dur::millis(25));
        // cut@0, heal@10, cut@20, forced heal@25.
        assert!(matches!(tl.last().unwrap().1, FaultAction::Heal(..)));
        let cuts = tl
            .iter()
            .filter(|(_, a)| matches!(a, FaultAction::Cut(..)))
            .count();
        let heals = tl
            .iter()
            .filter(|(_, a)| matches!(a, FaultAction::Heal(..)))
            .count();
        assert_eq!(cuts, heals);
    }
}
