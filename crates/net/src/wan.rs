//! Wide-area latency matrices.
//!
//! The multi-datacenter experiments (§8.2, Figures 6 and 7) run over the
//! seven EC2 regions of the paper's Table 1. [`WanMatrix::paper_table1`]
//! reproduces that table exactly; arbitrary matrices can be built for other
//! deployments.

use canopus_sim::Dur;

/// Index of a datacenter (site) within a [`WanMatrix`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SiteId(pub u16);

impl SiteId {
    /// The index as `usize`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// Symmetric matrix of round-trip times between datacenters, plus the
/// intra-datacenter RTT on the diagonal.
#[derive(Clone, Debug)]
pub struct WanMatrix {
    names: Vec<String>,
    /// Row-major RTTs; `rtt[i][j] == rtt[j][i]`.
    rtt: Vec<Vec<Dur>>,
}

impl WanMatrix {
    /// Builds a matrix from site names and a full symmetric RTT table.
    ///
    /// # Panics
    /// Panics if the table is not square, not matching `names` in size, or
    /// asymmetric.
    pub fn new(names: Vec<String>, rtt: Vec<Vec<Dur>>) -> Self {
        assert_eq!(names.len(), rtt.len(), "matrix must be square");
        for (i, row) in rtt.iter().enumerate() {
            assert_eq!(row.len(), names.len(), "matrix must be square");
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, rtt[j][i], "matrix must be symmetric ({i},{j})");
            }
        }
        WanMatrix { names, rtt }
    }

    /// A matrix where every distinct pair has the same `rtt` and the
    /// intra-site RTT is `local_rtt`. Useful for controlled experiments.
    pub fn uniform(sites: usize, rtt: Dur, local_rtt: Dur) -> Self {
        let names = (0..sites).map(|i| format!("dc{i}")).collect();
        let table = (0..sites)
            .map(|i| {
                (0..sites)
                    .map(|j| if i == j { local_rtt } else { rtt })
                    .collect()
            })
            .collect();
        WanMatrix::new(names, table)
    }

    /// The seven-datacenter latency matrix of the paper's Table 1
    /// (milliseconds, RTT). Site order: IR, CA, VA, TK, OR, SY, FF.
    pub fn paper_table1() -> Self {
        const NAMES: [&str; 7] = ["IR", "CA", "VA", "TK", "OR", "SY", "FF"];
        // Lower triangle from Table 1; diagonal is the intra-DC RTT.
        const MS: [[f64; 7]; 7] = [
            // IR     CA     VA     TK     OR     SY     FF
            [0.20, 133.0, 66.0, 243.0, 154.0, 295.0, 22.0], // IR
            [133.0, 0.20, 60.0, 113.0, 20.0, 168.0, 145.0], // CA
            [66.0, 60.0, 0.25, 145.0, 80.0, 226.0, 89.0],   // VA
            [243.0, 113.0, 145.0, 0.13, 100.0, 103.0, 226.0], // TK
            [154.0, 20.0, 80.0, 100.0, 0.26, 161.0, 156.0], // OR
            [295.0, 168.0, 226.0, 103.0, 161.0, 0.20, 322.0], // SY
            [22.0, 145.0, 89.0, 226.0, 156.0, 322.0, 0.23], // FF
        ];
        let names = NAMES.iter().map(|s| s.to_string()).collect();
        let rtt = MS
            .iter()
            .map(|row| row.iter().map(|&ms| Dur::from_millis_f64(ms)).collect())
            .collect();
        WanMatrix::new(names, rtt)
    }

    /// The first `n` sites of [`paper_table1`], matching the paper's 3-, 5-,
    /// and 7-datacenter configurations.
    ///
    /// # Panics
    /// Panics if `n` is 0 or greater than 7.
    pub fn paper_sites(n: usize) -> Self {
        assert!((1..=7).contains(&n), "paper has 7 datacenters");
        let full = Self::paper_table1();
        let names = full.names[..n].to_vec();
        let rtt = full.rtt[..n].iter().map(|row| row[..n].to_vec()).collect();
        WanMatrix::new(names, rtt)
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if there are no sites.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Name of a site.
    pub fn name(&self, site: SiteId) -> &str {
        &self.names[site.index()]
    }

    /// Round-trip time between two sites (diagonal = intra-DC RTT).
    pub fn rtt(&self, a: SiteId, b: SiteId) -> Dur {
        self.rtt[a.index()][b.index()]
    }

    /// One-way propagation delay between two sites (RTT / 2).
    pub fn one_way(&self, a: SiteId, b: SiteId) -> Dur {
        self.rtt(a, b) / 2
    }

    /// The largest RTT between any pair of distinct sites — the paper's
    /// "latency between the most widely-separated super-leaves" (§7.1),
    /// which bounds consensus-cycle completion time.
    pub fn max_rtt(&self) -> Dur {
        let mut max = Dur::ZERO;
        for i in 0..self.len() {
            for j in (i + 1)..self.len() {
                max = max.max(self.rtt(SiteId(i as u16), SiteId(j as u16)));
            }
        }
        max
    }

    /// Iterates over site ids.
    pub fn sites(&self) -> impl Iterator<Item = SiteId> {
        (0..self.len() as u16).map(SiteId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_values() {
        let m = WanMatrix::paper_table1();
        assert_eq!(m.len(), 7);
        let site = |name: &str| {
            m.sites()
                .find(|&s| m.name(s) == name)
                .unwrap_or_else(|| panic!("missing {name}"))
        };
        assert_eq!(m.rtt(site("IR"), site("CA")), Dur::millis(133));
        assert_eq!(m.rtt(site("SY"), site("FF")), Dur::millis(322));
        assert_eq!(m.rtt(site("CA"), site("OR")), Dur::millis(20));
        assert_eq!(m.rtt(site("TK"), site("TK")), Dur::micros(130));
        // Symmetry
        assert_eq!(m.rtt(site("VA"), site("TK")), m.rtt(site("TK"), site("VA")));
    }

    #[test]
    fn max_rtt_is_sy_ff() {
        let m = WanMatrix::paper_table1();
        assert_eq!(m.max_rtt(), Dur::millis(322));
    }

    #[test]
    fn paper_sites_prefix() {
        let m3 = WanMatrix::paper_sites(3);
        assert_eq!(m3.len(), 3);
        assert_eq!(m3.name(SiteId(0)), "IR");
        assert_eq!(m3.name(SiteId(2)), "VA");
        assert_eq!(m3.rtt(SiteId(0), SiteId(1)), Dur::millis(133));
        // 3-DC max RTT is IR-CA = 133ms.
        assert_eq!(m3.max_rtt(), Dur::millis(133));
    }

    #[test]
    fn one_way_is_half_rtt() {
        let m = WanMatrix::paper_table1();
        assert_eq!(m.one_way(SiteId(0), SiteId(1)), Dur::from_millis_f64(66.5));
    }

    #[test]
    fn uniform_matrix() {
        let m = WanMatrix::uniform(4, Dur::millis(100), Dur::micros(200));
        assert_eq!(m.rtt(SiteId(0), SiteId(3)), Dur::millis(100));
        assert_eq!(m.rtt(SiteId(2), SiteId(2)), Dur::micros(200));
        assert_eq!(m.max_rtt(), Dur::millis(100));
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_matrix_rejected() {
        let _ = WanMatrix::new(
            vec!["a".into(), "b".into()],
            vec![
                vec![Dur::ZERO, Dur::millis(1)],
                vec![Dur::millis(2), Dur::ZERO],
            ],
        );
    }
}
