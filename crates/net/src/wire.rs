//! Hand-rolled binary wire format.
//!
//! Messages crossing the real TCP transport are encoded with this
//! explicit, versionless little-endian format rather than a serialization
//! framework: consensus messages are small, hot, and schema-stable, and an
//! explicit codec keeps the wire size computable (the simulator's
//! [`canopus_sim::Payload::wire_size`] must agree with what the TCP
//! transport actually sends).
//!
//! Framing on a stream is a 4-byte little-endian length prefix followed by
//! the encoded message; see [`crate::tcp`].

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Maximum accepted frame size (16 MiB); guards against corrupted prefixes.
pub const MAX_FRAME: usize = 16 << 20;

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    Truncated,
    /// A tag or invariant was violated; the payload names the field.
    Invalid(&'static str),
    /// A length prefix exceeded [`MAX_FRAME`].
    TooLarge(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::Invalid(what) => write!(f, "invalid field: {what}"),
            WireError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
        }
    }
}

impl std::error::Error for WireError {}

/// Types with a binary wire representation.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);
    /// Decodes a value from the front of `buf`.
    fn decode(buf: &mut Bytes) -> Result<Self, WireError>;

    /// Encodes into a fresh buffer.
    fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.freeze()
    }

    /// Decodes from a complete buffer, requiring full consumption.
    fn from_bytes(mut bytes: Bytes) -> Result<Self, WireError> {
        let v = Self::decode(&mut bytes)?;
        if !bytes.is_empty() {
            return Err(WireError::Invalid("trailing bytes"));
        }
        Ok(v)
    }

    /// The exact encoded size in bytes.
    fn encoded_len(&self) -> usize {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.len()
    }
}

/// Checked reads over [`Bytes`].
pub trait WireRead {
    /// Reads a `u8`, failing on truncation.
    fn read_u8(&mut self) -> Result<u8, WireError>;
    /// Reads a little-endian `u16`, failing on truncation.
    fn read_u16(&mut self) -> Result<u16, WireError>;
    /// Reads a little-endian `u32`, failing on truncation.
    fn read_u32(&mut self) -> Result<u32, WireError>;
    /// Reads a little-endian `u64`, failing on truncation.
    fn read_u64(&mut self) -> Result<u64, WireError>;
    /// Reads `n` raw bytes, failing on truncation.
    fn read_bytes(&mut self, n: usize) -> Result<Bytes, WireError>;
}

impl WireRead for Bytes {
    fn read_u8(&mut self) -> Result<u8, WireError> {
        if self.remaining() < 1 {
            return Err(WireError::Truncated);
        }
        Ok(self.get_u8())
    }
    fn read_u16(&mut self) -> Result<u16, WireError> {
        if self.remaining() < 2 {
            return Err(WireError::Truncated);
        }
        Ok(self.get_u16_le())
    }
    fn read_u32(&mut self) -> Result<u32, WireError> {
        if self.remaining() < 4 {
            return Err(WireError::Truncated);
        }
        Ok(self.get_u32_le())
    }
    fn read_u64(&mut self) -> Result<u64, WireError> {
        if self.remaining() < 8 {
            return Err(WireError::Truncated);
        }
        Ok(self.get_u64_le())
    }
    fn read_bytes(&mut self, n: usize) -> Result<Bytes, WireError> {
        if n > MAX_FRAME {
            return Err(WireError::TooLarge(n));
        }
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        Ok(self.split_to(n))
    }
}

impl Wire for u8 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        buf.read_u8()
    }
}

impl Wire for u16 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u16_le(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        buf.read_u16()
    }
}

impl Wire for u32 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        buf.read_u32()
    }
}

impl Wire for u64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        buf.read_u64()
    }
}

impl Wire for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self as u8);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match buf.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Invalid("bool")),
        }
    }
}

impl Wire for Bytes {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.len() as u32);
        buf.put_slice(self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let n = buf.read_u32()? as usize;
        buf.read_bytes(n)
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.len() as u32);
        buf.put_slice(self.as_bytes());
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let n = buf.read_u32()? as usize;
        let raw = buf.read_bytes(n)?;
        // Validate in place over the sliced frame, then copy exactly once
        // into the owned String (the old path copied to a Vec first and
        // validated the copy).
        std::str::from_utf8(&raw)
            .map(str::to_owned)
            .map_err(|_| WireError::Invalid("utf8"))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.len() as u32);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let n = buf.read_u32()? as usize;
        if n > MAX_FRAME {
            return Err(WireError::TooLarge(n));
        }
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match buf.read_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            _ => Err(WireError::Invalid("option tag")),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

impl Wire for canopus_sim::NodeId {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.0);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(canopus_sim::NodeId(buf.read_u32()?))
    }
}

impl Wire for canopus_sim::Time {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.as_nanos());
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(canopus_sim::Time::from_nanos(buf.read_u64()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(bytes.len(), v.encoded_len());
        let back = T::from_bytes(bytes).expect("decode");
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(0xBEEFu16);
        round_trip(0xDEADBEEFu32);
        round_trip(u64::MAX);
        round_trip(true);
        round_trip(false);
        round_trip("hello canopus".to_string());
        round_trip(Bytes::from_static(b"\x00\x01\x02"));
        round_trip(vec![1u32, 2, 3]);
        round_trip(Option::<u64>::None);
        round_trip(Some(42u64));
        round_trip((7u8, "x".to_string()));
        round_trip(canopus_sim::NodeId(12));
    }

    #[test]
    fn truncated_fails() {
        let bytes = 0xDEADBEEFu32.to_bytes();
        let short = bytes.slice(..2);
        assert_eq!(u32::from_bytes(short), Err(WireError::Truncated));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = BytesMut::new();
        1u8.encode(&mut buf);
        2u8.encode(&mut buf);
        assert_eq!(
            u8::from_bytes(buf.freeze()),
            Err(WireError::Invalid("trailing bytes"))
        );
    }

    #[test]
    fn bad_bool_rejected() {
        assert_eq!(
            bool::from_bytes(Bytes::from_static(&[7])),
            Err(WireError::Invalid("bool"))
        );
    }

    #[test]
    fn bad_option_tag_rejected() {
        assert_eq!(
            Option::<u8>::from_bytes(Bytes::from_static(&[9])),
            Err(WireError::Invalid("option tag"))
        );
    }

    #[test]
    fn oversized_vec_length_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(u32::MAX);
        assert!(matches!(
            Vec::<u8>::from_bytes(buf.freeze()),
            Err(WireError::TooLarge(_))
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(2);
        buf.put_slice(&[0xFF, 0xFE]);
        assert_eq!(
            String::from_bytes(buf.freeze()),
            Err(WireError::Invalid("utf8"))
        );
    }

    // Seeded randomized property tests (proptest is unavailable offline;
    // the generators below cover the same input spaces deterministically).

    fn arb_string(rng: &mut SmallRng, max_len: usize) -> String {
        let len = rng.gen_range(0..=max_len);
        (0..len)
            .map(|_| {
                // The whole scalar-value space, surrogates excluded: control
                // chars, astral planes, and char::MAX are all fair game.
                loop {
                    if let Some(c) = char::from_u32(rng.gen_range(0u32..=char::MAX as u32)) {
                        break c;
                    }
                }
            })
            .collect()
    }

    #[test]
    fn prop_u64_round_trip() {
        let mut rng = SmallRng::seed_from_u64(0xA1);
        for _ in 0..256 {
            round_trip(rng.gen::<u64>());
        }
    }

    #[test]
    fn prop_string_round_trip() {
        let mut rng = SmallRng::seed_from_u64(0xA2);
        for _ in 0..256 {
            round_trip(arb_string(&mut rng, 64));
        }
    }

    #[test]
    fn prop_vec_round_trip() {
        let mut rng = SmallRng::seed_from_u64(0xA3);
        for _ in 0..256 {
            let n = rng.gen_range(0usize..100);
            round_trip((0..n).map(|_| rng.gen::<u32>()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn prop_nested_round_trip() {
        let mut rng = SmallRng::seed_from_u64(0xA4);
        for _ in 0..256 {
            let n = rng.gen_range(0usize..20);
            let v: Vec<(u8, String)> = (0..n)
                .map(|_| (rng.gen::<u8>(), arb_string(&mut rng, 8)))
                .collect();
            round_trip(v);
        }
    }

    #[test]
    fn prop_decode_arbitrary_bytes_never_panics() {
        let mut rng = SmallRng::seed_from_u64(0xA5);
        for _ in 0..1024 {
            let n = rng.gen_range(0usize..256);
            let data: Vec<u8> = (0..n).map(|_| rng.gen::<u8>()).collect();
            // Decoding must fail gracefully, never panic, on any input.
            let _ = Vec::<String>::from_bytes(Bytes::from(data.clone()));
            let _ = Option::<u64>::from_bytes(Bytes::from(data));
        }
    }
}
