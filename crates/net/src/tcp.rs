//! Tokio TCP transport: runs the same sans-IO [`Process`] state machines
//! over real sockets.
//!
//! Frames are a 4-byte little-endian length prefix followed by the
//! [`Wire`]-encoded message. The first frame on every connection is a
//! handshake carrying the sender's [`NodeId`]. Outbound connections are
//! established lazily per peer and re-established with backoff on failure;
//! like the simulator's fabric, delivery is not guaranteed across a
//! reconnect (consensus protocols tolerate loss by design).
//!
//! This module exists to make the library deployable, and to demonstrate
//! that the protocol crates are genuinely IO-free: `examples/live_cluster.rs`
//! runs a Canopus group over loopback TCP with zero changes to protocol
//! code.

use std::collections::{BinaryHeap, HashMap, HashSet};
use std::net::SocketAddr;
use std::time::Duration as StdDuration;

use bytes::Bytes;
use canopus_sim::{Context, Effect, NodeId, Payload, Process, Time, Timer, TimerId};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::{mpsc, oneshot};

use crate::wire::{Wire, WireError, MAX_FRAME};

/// Reads one length-prefixed frame. Returns `Ok(None)` on clean EOF.
pub async fn read_frame<R: AsyncReadExt + Unpin>(
    stream: &mut R,
) -> std::io::Result<Option<Bytes>> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf).await {
        Ok(_) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            WireError::TooLarge(len),
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).await?;
    Ok(Some(Bytes::from(payload)))
}

/// Writes one length-prefixed frame.
pub async fn write_frame<W: AsyncWriteExt + Unpin>(
    stream: &mut W,
    payload: &[u8],
) -> std::io::Result<()> {
    let len = payload.len() as u32;
    stream.write_all(&len.to_le_bytes()).await?;
    stream.write_all(payload).await?;
    Ok(())
}

/// Static peer address book for a deployment.
#[derive(Clone, Debug, Default)]
pub struct PeerMap {
    addrs: HashMap<NodeId, SocketAddr>,
}

impl PeerMap {
    /// Empty map.
    pub fn new() -> Self {
        PeerMap::default()
    }

    /// Registers `node` at `addr`.
    pub fn insert(&mut self, node: NodeId, addr: SocketAddr) {
        self.addrs.insert(node, addr);
    }

    /// Looks up a peer address.
    pub fn get(&self, node: NodeId) -> Option<SocketAddr> {
        self.addrs.get(&node).copied()
    }
}

/// Handle to one running TCP node.
pub struct TcpNodeHandle<M: Payload> {
    /// The node's id.
    pub id: NodeId,
    /// The address the node listens on.
    pub addr: SocketAddr,
    shutdown: Option<oneshot::Sender<()>>,
    join: tokio::task::JoinHandle<Box<dyn Process<M>>>,
}

impl<M: Payload> TcpNodeHandle<M> {
    /// Requests shutdown and returns the final process state.
    pub async fn stop(mut self) -> Box<dyn Process<M>> {
        if let Some(tx) = self.shutdown.take() {
            let _ = tx.send(());
        }
        self.join.await.expect("node task panicked")
    }
}

struct TimerEntry {
    at: Time,
    id: TimerId,
    token: u64,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.id.0) == (other.at, other.id.0)
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap on (at, id).
        (other.at, other.id.0).cmp(&(self.at, self.id.0))
    }
}

/// Runs one node over TCP until shutdown; returns the final process state.
///
/// `listener` must already be bound; `peers` maps every destination the
/// process will send to. Messages to unknown peers are dropped with a log
/// line to stderr (consensus protocols treat this as loss).
pub async fn run_node<M>(
    id: NodeId,
    mut process: Box<dyn Process<M>>,
    listener: TcpListener,
    peers: PeerMap,
    mut shutdown: oneshot::Receiver<()>,
    seed: u64,
) -> Box<dyn Process<M>>
where
    M: Wire + Payload + Send,
{
    let start = tokio::time::Instant::now();
    let now_fn = move || Time::from_nanos(start.elapsed().as_nanos() as u64);

    let (inbox_tx, mut inbox_rx) = mpsc::channel::<(NodeId, M)>(4096);

    // Accept loop: each inbound connection handshakes, then feeds the inbox.
    let accept_inbox = inbox_tx.clone();
    let accept_task = tokio::spawn(async move {
        loop {
            let Ok((stream, _)) = listener.accept().await else {
                return;
            };
            let inbox = accept_inbox.clone();
            tokio::spawn(async move {
                if let Err(e) = serve_connection(stream, inbox).await {
                    // Connection errors are expected during shutdown/reconnect.
                    let _ = e;
                }
            });
        }
    });

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut next_timer_id: u64 = 0;
    let mut timers: BinaryHeap<TimerEntry> = BinaryHeap::new();
    let mut armed: HashSet<u64> = HashSet::new();
    let mut outbox: HashMap<NodeId, mpsc::Sender<Bytes>> = HashMap::new();

    // Start the process.
    {
        let mut ctx = Context::detached(now_fn(), id, &mut rng, &mut next_timer_id);
        process.on_start(&mut ctx);
        let (effects, _) = ctx.into_effects();
        apply_effects(
            id,
            effects,
            now_fn(),
            &mut timers,
            &mut armed,
            &mut outbox,
            &peers,
        );
    }

    loop {
        // Pop expired/cancelled timer heads to find the next real deadline.
        let next_deadline = loop {
            match timers.peek() {
                Some(entry) if !armed.contains(&entry.id.0) => {
                    timers.pop();
                }
                Some(entry) => break Some(entry.at),
                None => break None,
            }
        };
        let sleep = match next_deadline {
            Some(at) => {
                let now = now_fn();
                let delta = at.saturating_since(now);
                tokio::time::sleep(StdDuration::from_nanos(delta.as_nanos()))
            }
            None => tokio::time::sleep(StdDuration::from_secs(3600)),
        };
        tokio::pin!(sleep);

        tokio::select! {
            _ = &mut shutdown => break,
            msg = inbox_rx.recv() => {
                let Some((from, msg)) = msg else { break };
                let mut ctx = Context::detached(now_fn(), id, &mut rng, &mut next_timer_id);
                process.on_message(from, msg, &mut ctx);
                let (effects, _) = ctx.into_effects();
                apply_effects(id, effects, now_fn(), &mut timers, &mut armed, &mut outbox, &peers);
            }
            _ = &mut sleep, if next_deadline.is_some() => {
                if let Some(entry) = timers.pop() {
                    if armed.remove(&entry.id.0) {
                        let timer = Timer { id: entry.id, token: entry.token };
                        let mut ctx = Context::detached(now_fn(), id, &mut rng, &mut next_timer_id);
                        process.on_timer(timer, &mut ctx);
                        let (effects, _) = ctx.into_effects();
                        apply_effects(id, effects, now_fn(), &mut timers, &mut armed, &mut outbox, &peers);
                    }
                }
            }
        }
    }

    accept_task.abort();
    process
}

async fn serve_connection<M>(
    mut stream: TcpStream,
    inbox: mpsc::Sender<(NodeId, M)>,
) -> std::io::Result<()>
where
    M: Wire + Payload + Send,
{
    let Some(hello) = read_frame(&mut stream).await? else {
        return Ok(());
    };
    let peer = NodeId::from_bytes(hello)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    while let Some(frame) = read_frame(&mut stream).await? {
        match M::from_bytes(frame) {
            Ok(msg) => {
                if inbox.send((peer, msg)).await.is_err() {
                    return Ok(()); // node shut down
                }
            }
            Err(e) => {
                return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e));
            }
        }
    }
    Ok(())
}

fn apply_effects<M>(
    self_id: NodeId,
    effects: Vec<Effect<M>>,
    now: Time,
    timers: &mut BinaryHeap<TimerEntry>,
    armed: &mut HashSet<u64>,
    outbox: &mut HashMap<NodeId, mpsc::Sender<Bytes>>,
    peers: &PeerMap,
) where
    M: Wire + Payload + Send,
{
    for effect in effects {
        match effect {
            Effect::Send { to, msg } => {
                let sender = outbox
                    .entry(to)
                    .or_insert_with(|| spawn_writer(self_id, to, peers.get(to)));
                // Non-blocking: a slow/unreachable peer sheds load instead of
                // stalling the protocol loop (equivalent to network loss).
                let _ = sender.try_send(msg.to_bytes());
            }
            Effect::SetTimer { id, after, token } => {
                armed.insert(id.0);
                timers.push(TimerEntry {
                    at: now + after,
                    id,
                    token,
                });
            }
            Effect::CancelTimer { id } => {
                armed.remove(&id.0);
            }
        }
    }
}

/// Spawns the writer task for one peer; returns the channel feeding it.
fn spawn_writer(self_id: NodeId, to: NodeId, addr: Option<SocketAddr>) -> mpsc::Sender<Bytes> {
    let (tx, mut rx) = mpsc::channel::<Bytes>(4096);
    tokio::spawn(async move {
        let Some(addr) = addr else {
            eprintln!("canopus-net: no address for {to}; dropping its traffic");
            while rx.recv().await.is_some() {}
            return;
        };
        let mut backoff = StdDuration::from_millis(10);
        'reconnect: loop {
            let mut stream = loop {
                match TcpStream::connect(addr).await {
                    Ok(s) => break s,
                    Err(_) => {
                        tokio::time::sleep(backoff).await;
                        backoff = (backoff * 2).min(StdDuration::from_secs(1));
                        // Drain queued messages while unreachable (loss).
                        while rx.try_recv().is_ok() {}
                    }
                }
            };
            backoff = StdDuration::from_millis(10);
            let _ = stream.set_nodelay(true);
            if write_frame(&mut stream, &self_id.to_bytes()).await.is_err() {
                continue 'reconnect;
            }
            while let Some(frame) = rx.recv().await {
                if write_frame(&mut stream, &frame).await.is_err() {
                    continue 'reconnect;
                }
            }
            return; // channel closed: node shut down
        }
    });
    tx
}

/// Spawns a whole cluster on loopback TCP with ephemeral ports.
///
/// Returns one handle per process, in order. Intended for examples and
/// integration tests; production deployments would use [`run_node`] with
/// externally managed listeners and peer maps.
pub async fn spawn_local_cluster<M>(
    processes: Vec<Box<dyn Process<M>>>,
    seed: u64,
) -> Vec<TcpNodeHandle<M>>
where
    M: Wire + Payload + Send,
{
    let mut listeners = Vec::new();
    let mut peers = PeerMap::new();
    for (i, _) in processes.iter().enumerate() {
        let listener = TcpListener::bind("127.0.0.1:0")
            .await
            .expect("bind loopback");
        let addr = listener.local_addr().expect("local addr");
        peers.insert(NodeId(i as u32), addr);
        listeners.push((listener, addr));
    }
    let mut handles = Vec::new();
    for (i, (process, (listener, addr))) in processes.into_iter().zip(listeners).enumerate() {
        let id = NodeId(i as u32);
        let (tx, rx) = oneshot::channel();
        let peer_map = peers.clone();
        let join = tokio::spawn(run_node(
            id,
            process,
            listener,
            peer_map,
            rx,
            seed.wrapping_add(i as u64),
        ));
        handles.push(TcpNodeHandle {
            id,
            addr,
            shutdown: Some(tx),
            join,
        });
    }
    handles
}

#[cfg(test)]
mod tests {
    use super::*;
    use canopus_sim::impl_process_any;
    use bytes::BytesMut;

    #[derive(Debug, Clone, PartialEq)]
    struct Num(u64);

    impl Payload for Num {
        fn wire_size(&self) -> usize {
            8
        }
    }

    impl Wire for Num {
        fn encode(&self, buf: &mut BytesMut) {
            self.0.encode(buf);
        }
        fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
            Ok(Num(u64::decode(buf)?))
        }
    }

    /// Sends 1..=count to the peer on start; records what it receives.
    struct Counter {
        peer: Option<NodeId>,
        count: u64,
        seen: Vec<u64>,
    }

    impl Process<Num> for Counter {
        fn on_start(&mut self, ctx: &mut Context<'_, Num>) {
            if let Some(peer) = self.peer {
                for i in 1..=self.count {
                    ctx.send(peer, Num(i));
                }
            }
        }
        fn on_message(&mut self, _from: NodeId, msg: Num, _ctx: &mut Context<'_, Num>) {
            self.seen.push(msg.0);
        }
        impl_process_any!();
    }

    #[tokio::test]
    async fn frames_round_trip_over_tcp() {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        let server = tokio::spawn(async move {
            let (mut stream, _) = listener.accept().await.unwrap();
            read_frame(&mut stream).await.unwrap().unwrap()
        });
        let mut client = TcpStream::connect(addr).await.unwrap();
        write_frame(&mut client, b"hello").await.unwrap();
        let got = server.await.unwrap();
        assert_eq!(&got[..], b"hello");
    }

    #[tokio::test]
    async fn read_frame_reports_clean_eof() {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        let server = tokio::spawn(async move {
            let (mut stream, _) = listener.accept().await.unwrap();
            read_frame(&mut stream).await.unwrap()
        });
        let client = TcpStream::connect(addr).await.unwrap();
        drop(client);
        assert!(server.await.unwrap().is_none());
    }

    #[tokio::test]
    async fn oversized_frame_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        let server = tokio::spawn(async move {
            let (mut stream, _) = listener.accept().await.unwrap();
            read_frame(&mut stream).await
        });
        let mut client = TcpStream::connect(addr).await.unwrap();
        client
            .write_all(&(u32::MAX).to_le_bytes())
            .await
            .unwrap();
        assert!(server.await.unwrap().is_err());
    }

    #[tokio::test]
    async fn cluster_delivers_messages_in_order() {
        let a = Counter {
            peer: Some(NodeId(1)),
            count: 100,
            seen: Vec::new(),
        };
        let b = Counter {
            peer: None,
            count: 0,
            seen: Vec::new(),
        };
        let handles = spawn_local_cluster::<Num>(vec![Box::new(a), Box::new(b)], 7).await;
        // Give delivery a moment.
        tokio::time::sleep(StdDuration::from_millis(300)).await;
        let mut processes = Vec::new();
        for h in handles {
            processes.push(h.stop().await);
        }
        let b_final = processes.pop().unwrap();
        let counter = b_final
            .as_any()
            .downcast_ref::<Counter>()
            .expect("counter");
        assert_eq!(counter.seen, (1..=100).collect::<Vec<_>>());
    }
}
