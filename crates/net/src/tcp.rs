//! TCP transport: runs the same sans-IO [`Process`] state machines over
//! real sockets, one node-loop thread per node on top of the shared
//! [`reactor`](crate::reactor) pool (one epoll event loop per core).
//!
//! Frames are a 4-byte little-endian length prefix followed by the
//! [`Wire`]-encoded message. The first frame on every connection is a
//! handshake carrying the sender's [`NodeId`]. Outbound connections are
//! established lazily per peer address (and shared between peers at the
//! same address), nonblocking with exponential backoff on failure; like
//! the simulator's fabric, delivery is not guaranteed across a reconnect
//! (consensus protocols tolerate loss by design). Per-peer write queues
//! are bounded: when one fills, the send is shed as loss, counted under
//! `net.drops.backpressure`, and the node's [`SendGate`] is raised so
//! clients can back off.
//!
//! This module exists to make the library deployable, and to demonstrate
//! that the protocol crates are genuinely IO-free: `examples/live_cluster.rs`
//! runs a Canopus group over loopback TCP with zero changes to protocol
//! code, and `examples/live_scale.rs` runs 100+ nodes on one machine —
//! the reactor keeps the thread count proportional to nodes and cores,
//! not connections.

use std::collections::{BinaryHeap, HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration as StdDuration, Instant};

use bytes::Bytes;
use canopus_obs::{Counter, EventKind as ObsEvent, Gauge, Histogram, NodeObs};
use canopus_sim::{Context, Effect, NodeId, Payload, Process, Time, Timer, TimerId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::fault::FaultRules;
use crate::reactor::{DispatchVerdict, NodeIo, SendGate, SendOutcome};
use crate::wire::{Wire, WireError, MAX_FRAME};

/// How long the node loop waits before re-checking the shutdown signal.
const POLL_INTERVAL: StdDuration = StdDuration::from_millis(20);

/// Largest chunk a frame's payload buffer grows by per read. A corrupt
/// (or hostile) length prefix under [`MAX_FRAME`] therefore allocates in
/// proportion to the bytes that actually arrive, never the claimed length
/// up front.
const READ_CHUNK: usize = 64 << 10;

/// Reads one length-prefixed frame. Returns `Ok(None)` on clean EOF.
///
/// A length prefix above [`MAX_FRAME`] is rejected with an
/// `InvalidData` error before any payload allocation, and the payload
/// buffer grows incrementally ([`READ_CHUNK`] at a time) as bytes arrive,
/// so a corrupt prefix can never trigger an unbounded — or even a large
/// speculative — allocation.
pub fn read_frame<R: Read>(stream: &mut R) -> std::io::Result<Option<Bytes>> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(_) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            WireError::TooLarge(len),
        ));
    }
    let mut payload = Vec::with_capacity(len.min(READ_CHUNK));
    while payload.len() < len {
        let chunk = (len - payload.len()).min(READ_CHUNK);
        let start = payload.len();
        payload.resize(start + chunk, 0);
        stream.read_exact(&mut payload[start..])?;
    }
    Ok(Some(Bytes::from(payload)))
}

/// Writes one length-prefixed frame.
pub fn write_frame<W: Write>(stream: &mut W, payload: &[u8]) -> std::io::Result<()> {
    let len = payload.len() as u32;
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(payload)?;
    Ok(())
}

/// Observability bundle for one TCP node: the node's hub plus a wall-clock
/// origin so reactor-side recordings can stamp flight events without access
/// to the node loop's clock, plus an optional [`SendGate`] surfacing
/// transport backpressure to clients. Clones share the underlying registry,
/// recorder, and gate.
#[derive(Clone, Default)]
pub struct NetObs {
    hub: NodeObs,
    origin: Option<Instant>,
    gate: Option<SendGate>,
}

impl NetObs {
    /// A disabled bundle: every recording below is a single branch.
    pub fn disabled() -> Self {
        NetObs::default()
    }

    /// Wraps a node hub; timestamps count from this call.
    pub fn new(hub: NodeObs) -> Self {
        NetObs {
            hub,
            origin: Some(Instant::now()),
            gate: None,
        }
    }

    /// Attaches a backpressure gate: the transport raises it while any of
    /// the node's peer write queues is at high water, and lowers it once
    /// drained. Clients share the clone and shed or defer load while it
    /// is saturated.
    pub fn with_gate(mut self, gate: SendGate) -> Self {
        self.gate = Some(gate);
        self
    }

    /// The attached backpressure gate, if any.
    pub fn gate(&self) -> Option<&SendGate> {
        self.gate.as_ref()
    }

    /// The wrapped hub.
    pub fn hub(&self) -> &NodeObs {
        &self.hub
    }

    fn now_nanos(&self) -> u64 {
        self.origin
            .map(|o| o.elapsed().as_nanos() as u64)
            .unwrap_or(0)
    }
}

/// Per-node transport metrics, with per-(peer, kind) counter handles cached
/// so steady-state sends and receives never take the registry lock.
struct NodeNetMetrics {
    obs: NetObs,
    sent: HashMap<(u32, &'static str), (Counter, Counter)>,
    recv: HashMap<(u32, &'static str), (Counter, Counter)>,
    queue_bytes: HashMap<u32, Gauge>,
    fault_drops_send: Counter,
    fault_drops_recv: Counter,
    backpressure_drops: Counter,
    flush_bytes: Histogram,
    no_addr_drops: Counter,
    /// Peers already flagged in the flight recorder, so a saturated or
    /// misconfigured link leaves one event, not one per shed message.
    flagged: HashSet<(u32, &'static str)>,
}

impl NodeNetMetrics {
    fn new(obs: NetObs) -> Self {
        let m = &obs.hub.metrics;
        NodeNetMetrics {
            sent: HashMap::new(),
            recv: HashMap::new(),
            queue_bytes: HashMap::new(),
            fault_drops_send: m.counter("net.drops.fault.send"),
            fault_drops_recv: m.counter("net.drops.fault.recv"),
            backpressure_drops: m.counter("net.drops.backpressure"),
            flush_bytes: m.histogram("net.flush_bytes"),
            no_addr_drops: m.counter("net.drops.no_address"),
            flagged: HashSet::new(),
            obs,
        }
    }

    fn count_sent(&mut self, to: NodeId, kind: &'static str, bytes: u64) {
        if !self.obs.hub.is_enabled() {
            return;
        }
        let m = &self.obs.hub.metrics;
        let (msgs, by) = self.sent.entry((to.0, kind)).or_insert_with(|| {
            (
                m.counter(&format!("net.sent.msgs.p{}.{kind}", to.0)),
                m.counter(&format!("net.sent.bytes.p{}.{kind}", to.0)),
            )
        });
        msgs.inc();
        by.add(bytes);
    }

    fn count_recv(&mut self, from: NodeId, kind: &'static str, bytes: u64) {
        if !self.obs.hub.is_enabled() {
            return;
        }
        let m = &self.obs.hub.metrics;
        let (msgs, by) = self.recv.entry((from.0, kind)).or_insert_with(|| {
            (
                m.counter(&format!("net.recv.msgs.p{}.{kind}", from.0)),
                m.counter(&format!("net.recv.bytes.p{}.{kind}", from.0)),
            )
        });
        msgs.inc();
        by.add(bytes);
    }

    fn set_queue_bytes(&mut self, to: NodeId, bytes: usize) {
        if !self.obs.hub.is_enabled() {
            return;
        }
        let m = &self.obs.hub.metrics;
        self.queue_bytes
            .entry(to.0)
            .or_insert_with(|| m.gauge(&format!("net.queue_depth.p{}", to.0)))
            .set(bytes as i64);
    }

    /// One flight event per (peer, reason); the counters carry the rate.
    fn flag_drop(&mut self, to: NodeId, reason: &'static str) {
        if self.flagged.insert((to.0, reason)) {
            self.obs.hub.event(
                self.obs.now_nanos(),
                ObsEvent::NetDrop { peer: to.0, reason },
            );
        }
    }
}

/// Static peer address book for a deployment.
#[derive(Clone, Debug, Default)]
pub struct PeerMap {
    addrs: HashMap<NodeId, SocketAddr>,
}

impl PeerMap {
    /// Empty map.
    pub fn new() -> Self {
        PeerMap::default()
    }

    /// Registers `node` at `addr`.
    pub fn insert(&mut self, node: NodeId, addr: SocketAddr) {
        self.addrs.insert(node, addr);
    }

    /// Looks up a peer address.
    pub fn get(&self, node: NodeId) -> Option<SocketAddr> {
        self.addrs.get(&node).copied()
    }
}

/// Handle to one running TCP node.
pub struct TcpNodeHandle<M: Payload> {
    /// The node's id.
    pub id: NodeId,
    /// The address the node listens on.
    pub addr: SocketAddr,
    shutdown: Option<Sender<()>>,
    join: JoinHandle<Box<dyn Process<M>>>,
}

impl<M: Payload> TcpNodeHandle<M> {
    /// Requests shutdown and returns the final process state.
    pub fn stop(mut self) -> Box<dyn Process<M>> {
        if let Some(tx) = self.shutdown.take() {
            let _ = tx.send(());
        }
        self.join.join().expect("node thread panicked")
    }
}

struct TimerEntry {
    at: Time,
    id: TimerId,
    token: u64,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.id.0) == (other.at, other.id.0)
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap on (at, id).
        (other.at, other.id.0).cmp(&(self.at, self.id.0))
    }
}

/// Runs one node over TCP until shutdown; returns the final process state.
///
/// `listener` must already be bound; `peers` maps every destination the
/// process will send to. Messages to unknown peers are dropped (consensus
/// protocols treat this as loss) with a flight-recorder event and a
/// `net.drops.no_address` count when observability is attached.
///
/// Equivalent to [`run_node_with_rules`] with an empty, never-activated
/// [`FaultRules`] table.
pub fn run_node<M>(
    id: NodeId,
    process: Box<dyn Process<M>>,
    listener: TcpListener,
    peers: PeerMap,
    shutdown: Receiver<()>,
    seed: u64,
) -> Box<dyn Process<M>>
where
    M: Wire + Payload + Send,
{
    let rules = Arc::new(FaultRules::new(seed));
    run_node_with_rules(id, process, listener, peers, shutdown, seed, rules)
}

/// Runs one node over TCP with a shared runtime fault table.
///
/// Equivalent to [`run_node_obs`] with a disabled [`NetObs`] bundle.
pub fn run_node_with_rules<M>(
    id: NodeId,
    process: Box<dyn Process<M>>,
    listener: TcpListener,
    peers: PeerMap,
    shutdown: Receiver<()>,
    seed: u64,
    rules: Arc<FaultRules>,
) -> Box<dyn Process<M>>
where
    M: Wire + Payload + Send,
{
    run_node_obs(
        id,
        process,
        listener,
        peers,
        shutdown,
        seed,
        rules,
        NetObs::disabled(),
    )
}

/// Runs one node over TCP with a shared runtime fault table and an
/// observability bundle.
///
/// `rules` is consulted on the send path (full verdict, including
/// probabilistic loss) and on the receive path (deterministic cuts,
/// isolation, and crash marks — so messages already in flight when a rule
/// lands are still dropped). With no rules installed both checks are a
/// single relaxed atomic load; see [`FaultRules`].
///
/// `obs` records per-peer message/byte counts by wire kind on both paths,
/// fault-rule and backpressure drop counts, coalesced-flush sizes, and
/// per-peer write-queue depth in bytes. A disabled bundle costs one branch
/// per recording. Listening, reading, connecting, and writing all run on
/// the shared reactor pool; this function's thread only drives the state
/// machine and its timers.
#[allow(clippy::too_many_arguments)]
pub fn run_node_obs<M>(
    id: NodeId,
    mut process: Box<dyn Process<M>>,
    listener: TcpListener,
    peers: PeerMap,
    shutdown: Receiver<()>,
    seed: u64,
    rules: Arc<FaultRules>,
    obs: NetObs,
) -> Box<dyn Process<M>>
where
    M: Wire + Payload + Send,
{
    let gate = obs.gate.clone();
    let mut metrics = NodeNetMetrics::new(obs);
    let start = Instant::now();
    let now_fn = move || Time::from_nanos(start.elapsed().as_nanos() as u64);

    let (inbox_tx, inbox_rx) = mpsc::channel::<(NodeId, M)>();

    // Inbound frames are decoded on reactor threads and forwarded here;
    // the node loop below applies the receive-path fault check so rules
    // landing while a message is in flight still drop it.
    let dispatch: crate::reactor::Dispatch =
        Arc::new(
            move |from: NodeId, frame: Bytes| match M::from_bytes(frame) {
                Ok(msg) => {
                    if inbox_tx.send((from, msg)).is_err() {
                        DispatchVerdict::Closed
                    } else {
                        DispatchVerdict::Continue
                    }
                }
                Err(_) => DispatchVerdict::Corrupt,
            },
        );
    let mut io = NodeIo::register(id, listener, dispatch, gate, metrics.flush_bytes.clone());

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut next_timer_id: u64 = 0;
    let mut timers: BinaryHeap<TimerEntry> = BinaryHeap::new();
    let mut armed: HashSet<u64> = HashSet::new();

    // Start the process.
    {
        let mut ctx = Context::detached(now_fn(), id, &mut rng, &mut next_timer_id);
        process.on_start(&mut ctx);
        let (effects, _) = ctx.into_effects();
        apply_effects(
            id,
            effects,
            now_fn(),
            &mut timers,
            &mut armed,
            &mut io,
            &peers,
            &rules,
            &mut metrics,
        );
    }

    'run: loop {
        // A dropped handle (sender disconnected) counts as shutdown, like
        // the closed-oneshot semantics this loop replaces — otherwise a
        // handle dropped without stop() would leak a live node forever.
        match shutdown.try_recv() {
            Ok(()) => break 'run,
            Err(mpsc::TryRecvError::Disconnected) => break 'run,
            Err(mpsc::TryRecvError::Empty) => {}
        }
        // Pop expired/cancelled timer heads to find the next real deadline.
        let next_deadline = loop {
            match timers.peek() {
                Some(entry) if !armed.contains(&entry.id.0) => {
                    timers.pop();
                }
                Some(entry) => break Some(entry.at),
                None => break None,
            }
        };
        let now = now_fn();
        if let Some(at) = next_deadline {
            if at <= now {
                if let Some(entry) = timers.pop() {
                    if armed.remove(&entry.id.0) {
                        let timer = Timer {
                            id: entry.id,
                            token: entry.token,
                        };
                        let mut ctx = Context::detached(now, id, &mut rng, &mut next_timer_id);
                        process.on_timer(timer, &mut ctx);
                        let (effects, _) = ctx.into_effects();
                        apply_effects(
                            id,
                            effects,
                            now_fn(),
                            &mut timers,
                            &mut armed,
                            &mut io,
                            &peers,
                            &rules,
                            &mut metrics,
                        );
                    }
                }
                continue 'run;
            }
        }
        // Wait for the next message, but never past the next timer deadline
        // or the shutdown-poll interval.
        let wait = match next_deadline {
            Some(at) => {
                StdDuration::from_nanos(at.saturating_since(now).as_nanos()).min(POLL_INTERVAL)
            }
            None => POLL_INTERVAL,
        };
        match inbox_rx.recv_timeout(wait) {
            Ok((from, msg)) => {
                // Receive-path fault check: deterministic rules only (loss
                // was already rolled once at the sender).
                if rules.should_drop_link(from, id) {
                    metrics.fault_drops_recv.inc();
                    continue 'run;
                }
                metrics.count_recv(from, msg.kind(), msg.wire_size() as u64);
                let mut ctx = Context::detached(now_fn(), id, &mut rng, &mut next_timer_id);
                process.on_message(from, msg, &mut ctx);
                let (effects, _) = ctx.into_effects();
                apply_effects(
                    id,
                    effects,
                    now_fn(),
                    &mut timers,
                    &mut armed,
                    &mut io,
                    &peers,
                    &rules,
                    &mut metrics,
                );
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break 'run,
        }
    }

    // Synchronous deregistration: when close() returns, every fd the node
    // owned (listener registration, inbound and outbound connections) has
    // been torn down on its loop — shutdown leaks nothing.
    io.close();
    drop(inbox_rx);
    process
}

#[allow(clippy::too_many_arguments)]
fn apply_effects<M>(
    self_id: NodeId,
    effects: Vec<Effect<M>>,
    now: Time,
    timers: &mut BinaryHeap<TimerEntry>,
    armed: &mut HashSet<u64>,
    io: &mut NodeIo,
    peers: &PeerMap,
    rules: &FaultRules,
    metrics: &mut NodeNetMetrics,
) where
    M: Wire + Payload + Send,
{
    for effect in effects {
        match effect {
            Effect::Send { to, msg } => {
                // Send-path fault check: full verdict, including the
                // probabilistic loss roll (exactly once per message).
                if rules.should_drop(self_id, to) {
                    metrics.fault_drops_send.inc();
                    continue;
                }
                let Some(addr) = peers.get(to) else {
                    // No address book entry: consensus treats this as
                    // loss, but it is almost always a deployment bug, so
                    // flag the link and count every message shed on it.
                    metrics.no_addr_drops.inc();
                    metrics.flag_drop(to, "no_address");
                    continue;
                };
                metrics.count_sent(to, msg.kind(), msg.wire_size() as u64);
                match io.send(addr, msg.to_bytes()) {
                    SendOutcome::Queued => {
                        metrics.set_queue_bytes(to, io.queued_bytes(addr));
                    }
                    SendOutcome::Backpressure => {
                        // The peer's bounded queue is full: shed as loss
                        // (never stall the protocol loop) and leave the
                        // gate raised for clients to observe.
                        metrics.backpressure_drops.inc();
                        metrics.flag_drop(to, "backpressure");
                    }
                }
            }
            Effect::SetTimer { id, after, token } => {
                armed.insert(id.0);
                timers.push(TimerEntry {
                    at: now + after,
                    id,
                    token,
                });
            }
            Effect::CancelTimer { id } => {
                armed.remove(&id.0);
            }
        }
    }
}

/// Spawns [`run_node_with_rules`] on a fresh thread and returns the
/// node's handle. `listener` must already be bound (its local address
/// becomes the handle's `addr`).
pub fn spawn_node_with_rules<M>(
    id: NodeId,
    process: Box<dyn Process<M>>,
    listener: TcpListener,
    peers: PeerMap,
    seed: u64,
    rules: Arc<FaultRules>,
) -> TcpNodeHandle<M>
where
    M: Wire + Payload + Send,
{
    spawn_node_obs(
        id,
        process,
        listener,
        peers,
        seed,
        rules,
        NetObs::disabled(),
    )
}

/// [`spawn_node_with_rules`] with an observability bundle attached to the
/// node's transport.
pub fn spawn_node_obs<M>(
    id: NodeId,
    process: Box<dyn Process<M>>,
    listener: TcpListener,
    peers: PeerMap,
    seed: u64,
    rules: Arc<FaultRules>,
    obs: NetObs,
) -> TcpNodeHandle<M>
where
    M: Wire + Payload + Send,
{
    let addr = listener.local_addr().expect("local addr");
    let (tx, rx) = mpsc::channel();
    let join = std::thread::spawn(move || {
        run_node_obs(id, process, listener, peers, rx, seed, rules, obs)
    });
    TcpNodeHandle {
        id,
        addr,
        shutdown: Some(tx),
        join,
    }
}

/// Spawns a whole cluster on loopback TCP with ephemeral ports.
///
/// Returns one handle per process, in order. Intended for examples and
/// integration tests; production deployments would use [`run_node`] with
/// externally managed listeners and peer maps.
pub fn spawn_local_cluster<M>(
    processes: Vec<Box<dyn Process<M>>>,
    seed: u64,
) -> Vec<TcpNodeHandle<M>>
where
    M: Wire + Payload + Send,
{
    spawn_local_cluster_with_rules(processes, seed, Arc::new(FaultRules::new(seed)))
}

/// [`spawn_local_cluster`] with a shared [`FaultRules`] table, so a test
/// or nemesis driver can partition, impair, and heal the live cluster
/// mid-run.
pub fn spawn_local_cluster_with_rules<M>(
    processes: Vec<Box<dyn Process<M>>>,
    seed: u64,
    rules: Arc<FaultRules>,
) -> Vec<TcpNodeHandle<M>>
where
    M: Wire + Payload + Send,
{
    let obs = processes.iter().map(|_| NetObs::disabled()).collect();
    spawn_local_cluster_obs(processes, seed, rules, obs)
}

/// [`spawn_local_cluster_with_rules`] with one observability bundle per
/// node (`obs[i]` is attached to node `i`'s transport). Panics unless
/// `obs.len() == processes.len()`.
pub fn spawn_local_cluster_obs<M>(
    processes: Vec<Box<dyn Process<M>>>,
    seed: u64,
    rules: Arc<FaultRules>,
    obs: Vec<NetObs>,
) -> Vec<TcpNodeHandle<M>>
where
    M: Wire + Payload + Send,
{
    assert_eq!(obs.len(), processes.len(), "one NetObs per process");
    let mut listeners = Vec::new();
    let mut peers = PeerMap::new();
    for (i, _) in processes.iter().enumerate() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr");
        peers.insert(NodeId(i as u32), addr);
        listeners.push((listener, addr));
    }
    let mut handles = Vec::new();
    for (i, ((process, obs), (listener, _))) in
        processes.into_iter().zip(obs).zip(listeners).enumerate()
    {
        let id = NodeId(i as u32);
        handles.push(spawn_node_obs(
            id,
            process,
            listener,
            peers.clone(),
            seed.wrapping_add(i as u64),
            Arc::clone(&rules),
            obs,
        ));
    }
    handles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reactor::append_frame;
    use bytes::BytesMut;
    use canopus_sim::impl_process_any;
    use std::net::TcpStream;

    #[derive(Debug, Clone, PartialEq)]
    struct Num(u64);

    impl Payload for Num {
        fn wire_size(&self) -> usize {
            8
        }
    }

    impl Wire for Num {
        fn encode(&self, buf: &mut BytesMut) {
            self.0.encode(buf);
        }
        fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
            Ok(Num(u64::decode(buf)?))
        }
    }

    /// Sends 1..=count to the peer on start; records what it receives.
    struct Counter {
        peer: Option<NodeId>,
        count: u64,
        seen: Vec<u64>,
    }

    impl Process<Num> for Counter {
        fn on_start(&mut self, ctx: &mut Context<'_, Num>) {
            if let Some(peer) = self.peer {
                for i in 1..=self.count {
                    ctx.send(peer, Num(i));
                }
            }
        }
        fn on_message(&mut self, _from: NodeId, msg: Num, _ctx: &mut Context<'_, Num>) {
            self.seen.push(msg.0);
        }
        impl_process_any!();
    }

    #[test]
    fn frames_round_trip_over_tcp() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            read_frame(&mut stream).unwrap().unwrap()
        });
        let mut client = TcpStream::connect(addr).unwrap();
        write_frame(&mut client, b"hello").unwrap();
        let got = server.join().unwrap();
        assert_eq!(&got[..], b"hello");
    }

    #[test]
    fn coalesced_flush_parses_back_into_individual_frames() {
        // One buffer holding three frames — exactly what a coalesced
        // reactor flush sends in a single write — must decode frame by
        // frame.
        let mut buf = Vec::new();
        append_frame(&mut buf, b"alpha");
        append_frame(&mut buf, b"");
        append_frame(&mut buf, b"gamma!");
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(&read_frame(&mut cursor).unwrap().unwrap()[..], b"alpha");
        assert_eq!(&read_frame(&mut cursor).unwrap().unwrap()[..], b"");
        assert_eq!(&read_frame(&mut cursor).unwrap().unwrap()[..], b"gamma!");
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn read_frame_reports_clean_eof() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            read_frame(&mut stream).unwrap()
        });
        let client = TcpStream::connect(addr).unwrap();
        drop(client);
        assert!(server.join().unwrap().is_none());
    }

    #[test]
    fn oversized_frame_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            read_frame(&mut stream)
        });
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(&(u32::MAX).to_le_bytes()).unwrap();
        assert!(server.join().unwrap().is_err());
    }

    #[test]
    fn huge_prefix_with_short_body_errors_without_upfront_allocation() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            read_frame(&mut stream)
        });
        let mut client = TcpStream::connect(addr).unwrap();
        // A prefix just under the limit, but only 3 bytes of body: the
        // reader must fail with UnexpectedEof after allocating at most one
        // chunk, not reserve ~16 MiB for a stream that never delivers it.
        client
            .write_all(&((MAX_FRAME - 1) as u32).to_le_bytes())
            .unwrap();
        client.write_all(b"abc").unwrap();
        drop(client);
        let got = server.join().unwrap();
        assert!(got.is_err(), "truncated oversized frame must error");
    }

    #[test]
    fn fault_rules_cut_blocks_delivery_until_healed() {
        let a = Counter {
            peer: Some(NodeId(1)),
            count: 50,
            seen: Vec::new(),
        };
        let b = Counter {
            peer: None,
            count: 0,
            seen: Vec::new(),
        };
        let rules = Arc::new(FaultRules::new(3));
        rules.cut_groups(&[NodeId(0)], &[NodeId(1)]);
        let handles =
            spawn_local_cluster_with_rules::<Num>(vec![Box::new(a), Box::new(b)], 7, rules.clone());
        std::thread::sleep(StdDuration::from_millis(200));
        let mut processes = Vec::new();
        for h in handles {
            processes.push(h.stop());
        }
        let b_final = processes.pop().unwrap();
        let counter = b_final.as_any().downcast_ref::<Counter>().expect("counter");
        assert!(
            counter.seen.is_empty(),
            "cut link must drop everything, saw {:?}",
            counter.seen
        );
    }

    #[test]
    fn cluster_delivers_messages_in_order() {
        let a = Counter {
            peer: Some(NodeId(1)),
            count: 100,
            seen: Vec::new(),
        };
        let b = Counter {
            peer: None,
            count: 0,
            seen: Vec::new(),
        };
        let handles = spawn_local_cluster::<Num>(vec![Box::new(a), Box::new(b)], 7);
        // Give delivery a moment.
        std::thread::sleep(StdDuration::from_millis(300));
        let mut processes = Vec::new();
        for h in handles {
            processes.push(h.stop());
        }
        let b_final = processes.pop().unwrap();
        let counter = b_final.as_any().downcast_ref::<Counter>().expect("counter");
        assert_eq!(counter.seen, (1..=100).collect::<Vec<_>>());
    }

    /// Spawns a lone sink node with no peers; returns its handle.
    fn spawn_sink() -> TcpNodeHandle<Num> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        spawn_node_with_rules::<Num>(
            NodeId(0),
            Box::new(Counter {
                peer: None,
                count: 0,
                seen: Vec::new(),
            }),
            listener,
            PeerMap::new(),
            11,
            Arc::new(FaultRules::new(11)),
        )
    }

    #[test]
    fn partial_frames_split_across_readiness_events_reassemble() {
        let handle = spawn_sink();
        let addr = handle.addr;
        let mut client = TcpStream::connect(addr).unwrap();
        client.set_nodelay(true).unwrap();
        // Handshake then two frames, dribbled a few bytes at a time with
        // pauses, so the reactor sees many readiness events per frame and
        // must hold partial headers and partial payloads across them.
        let mut stream_bytes = Vec::new();
        append_frame(&mut stream_bytes, &NodeId(9).to_bytes());
        append_frame(&mut stream_bytes, &Num(41).to_bytes());
        append_frame(&mut stream_bytes, &Num(42).to_bytes());
        for chunk in stream_bytes.chunks(3) {
            client.write_all(chunk).unwrap();
            client.flush().unwrap();
            std::thread::sleep(StdDuration::from_millis(2));
        }
        // Let the last dispatch land.
        std::thread::sleep(StdDuration::from_millis(100));
        let final_state = handle.stop();
        let counter = final_state.as_any().downcast_ref::<Counter>().unwrap();
        assert_eq!(counter.seen, vec![41, 42]);
    }

    #[test]
    fn truncated_oversized_frame_mid_chunk_closes_conn_but_not_node() {
        let handle = spawn_sink();
        let addr = handle.addr;
        // Connection 1: handshake, then a huge-but-legal length prefix
        // with only a sliver of body, then EOF. The reactor must reject
        // or drop it without buffering the claimed size and without
        // taking the node down.
        {
            let mut bad = TcpStream::connect(addr).unwrap();
            let mut bytes = Vec::new();
            append_frame(&mut bytes, &NodeId(8).to_bytes());
            bytes.extend_from_slice(&((MAX_FRAME - 1) as u32).to_le_bytes());
            bytes.extend_from_slice(b"abc");
            bad.write_all(&bytes).unwrap();
        } // dropped: EOF mid-frame
          // Connection 2 (after the bad one): a valid frame still lands.
        std::thread::sleep(StdDuration::from_millis(50));
        let mut good = TcpStream::connect(addr).unwrap();
        let mut bytes = Vec::new();
        append_frame(&mut bytes, &NodeId(9).to_bytes());
        append_frame(&mut bytes, &Num(7).to_bytes());
        good.write_all(&bytes).unwrap();
        std::thread::sleep(StdDuration::from_millis(100));
        let final_state = handle.stop();
        let counter = final_state.as_any().downcast_ref::<Counter>().unwrap();
        assert_eq!(counter.seen, vec![7], "node must survive the bad conn");
    }

    #[test]
    fn over_limit_prefix_rejected_by_reactor_without_allocation() {
        let handle = spawn_sink();
        let addr = handle.addr;
        let mut bad = TcpStream::connect(addr).unwrap();
        let mut bytes = Vec::new();
        append_frame(&mut bytes, &NodeId(8).to_bytes());
        // Over MAX_FRAME: must be rejected on sight of the prefix.
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        bad.write_all(&bytes).unwrap();
        // The reactor closes the connection: the next read sees EOF.
        bad.set_read_timeout(Some(StdDuration::from_secs(5)))
            .unwrap();
        let mut buf = [0u8; 1];
        let n = bad.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "reactor must close the offending connection");
        drop(handle.stop());
    }

    /// A process that blasts large payloads at one peer on start.
    struct Blaster {
        peer: NodeId,
        frames: usize,
        frame_len: usize,
    }

    #[derive(Debug, Clone)]
    struct Blob(Vec<u8>);

    impl Payload for Blob {
        fn wire_size(&self) -> usize {
            self.0.len()
        }
    }

    impl Wire for Blob {
        fn encode(&self, buf: &mut BytesMut) {
            buf.extend_from_slice(&self.0);
        }
        fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
            let all = buf.split_to(buf.len());
            Ok(Blob(all.to_vec()))
        }
    }

    impl Process<Blob> for Blaster {
        fn on_start(&mut self, ctx: &mut Context<'_, Blob>) {
            for _ in 0..self.frames {
                ctx.send(self.peer, Blob(vec![0xAB; self.frame_len]));
            }
        }
        fn on_message(&mut self, _from: NodeId, _msg: Blob, _ctx: &mut Context<'_, Blob>) {}
        impl_process_any!();
    }

    #[test]
    fn full_write_queue_signals_backpressure_and_raises_gate() {
        // A listener that accepts but never reads: the kernel buffers
        // fill, then the bounded reactor queue fills, then sends must
        // come back as explicit backpressure.
        let sink = TcpListener::bind("127.0.0.1:0").unwrap();
        let sink_addr = sink.local_addr().unwrap();
        let (stop_tx, stop_rx) = mpsc::channel::<()>();
        let acceptor = std::thread::spawn(move || {
            sink.set_nonblocking(true).unwrap();
            let mut held = Vec::new();
            loop {
                if let Ok((s, _)) = sink.accept() {
                    held.push(s);
                }
                match stop_rx.recv_timeout(StdDuration::from_millis(10)) {
                    Err(RecvTimeoutError::Timeout) => {}
                    _ => return,
                }
            }
        });

        let mut peers = PeerMap::new();
        peers.insert(NodeId(1), sink_addr);
        let gate = SendGate::new();
        let hub = NodeObs::enabled(0, 16);
        let obs = NetObs::new(hub.clone()).with_gate(gate.clone());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        // 256 frames x 256 KiB = 64 MiB >> kernel buffers + 2 MiB queue.
        let handle = spawn_node_obs::<Blob>(
            NodeId(0),
            Box::new(Blaster {
                peer: NodeId(1),
                frames: 256,
                frame_len: 256 << 10,
            }),
            listener,
            peers,
            5,
            Arc::new(FaultRules::new(5)),
            obs,
        );
        // The blast happens in on_start, before the node loop spins; by
        // the time sends return the queue must have saturated.
        std::thread::sleep(StdDuration::from_millis(300));
        let dropped = hub
            .metrics
            .snapshot()
            .counter("net.drops.backpressure")
            .unwrap_or(0);
        assert!(
            dropped > 0,
            "an unread peer must surface explicit backpressure"
        );
        assert!(gate.incidents() > 0, "gate must record the incident");
        drop(handle.stop());
        let _ = stop_tx.send(());
        acceptor.join().unwrap();
    }

    #[test]
    fn fault_rules_same_seed_same_sequence_identical_decisions() {
        // The reactor changed *when* and *on which thread* verdicts are
        // taken, but determinism must only depend on (seed, query
        // sequence). Replay the same interrogation twice and compare.
        let interrogate = |rules: &FaultRules| -> Vec<bool> {
            let mut verdicts = Vec::new();
            for round in 0..200u32 {
                let from = NodeId(round % 5);
                let to = NodeId((round + 1) % 5);
                verdicts.push(rules.should_drop(from, to));
            }
            verdicts
        };
        let build = || {
            let rules = FaultRules::new(0xC0FFEE);
            rules.set_loss(0.5);
            rules.cut_one_way(NodeId(2), NodeId(3));
            rules
        };
        let a = interrogate(&build());
        let b = interrogate(&build());
        assert_eq!(a, b, "same seed + same sequence => same verdicts");
        assert!(a.iter().any(|&v| v), "loss at 0.5 must drop something");
        assert!(!a.iter().all(|&v| v), "loss at 0.5 must pass something");

        // Deterministic rules (cuts/isolation/crash marks) must not
        // depend on query order at all — reactor loops interleave them
        // arbitrarily across threads.
        let rules = std::sync::Arc::new(build());
        let mut joins = Vec::new();
        for t in 0..4 {
            let r = std::sync::Arc::clone(&rules);
            joins.push(std::thread::spawn(move || {
                for i in 0..500 {
                    let cut = r.should_drop_link(NodeId(2), NodeId(3));
                    assert!(cut, "cut link stays cut (thread {t}, iter {i})");
                    let open = r.should_drop_link(NodeId(0), NodeId(1));
                    assert!(!open, "open link stays open (thread {t}, iter {i})");
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
    }
}
