//! TCP transport: runs the same sans-IO [`Process`] state machines over
//! real sockets, one thread per node plus one per connection.
//!
//! Frames are a 4-byte little-endian length prefix followed by the
//! [`Wire`]-encoded message. The first frame on every connection is a
//! handshake carrying the sender's [`NodeId`]. Outbound connections are
//! established lazily per peer and re-established with backoff on failure;
//! like the simulator's fabric, delivery is not guaranteed across a
//! reconnect (consensus protocols tolerate loss by design).
//!
//! This module exists to make the library deployable, and to demonstrate
//! that the protocol crates are genuinely IO-free: `examples/live_cluster.rs`
//! runs a Canopus group over loopback TCP with zero changes to protocol
//! code. The build is std-only (threads + `std::net`); an async runtime
//! would slot in behind the same `tcp` feature.

use std::collections::{BinaryHeap, HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration as StdDuration, Instant};

use bytes::Bytes;
use canopus_obs::{Counter, EventKind as ObsEvent, Gauge, Histogram, NodeObs};
use canopus_sim::{Context, Effect, NodeId, Payload, Process, Time, Timer, TimerId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::fault::FaultRules;
use crate::wire::{Wire, WireError, MAX_FRAME};

/// How long the node loop waits before re-checking the shutdown signal.
const POLL_INTERVAL: StdDuration = StdDuration::from_millis(20);

/// Largest chunk a frame's payload buffer grows by per read. A corrupt
/// (or hostile) length prefix under [`MAX_FRAME`] therefore allocates in
/// proportion to the bytes that actually arrive, never the claimed length
/// up front.
const READ_CHUNK: usize = 64 << 10;

/// Reads one length-prefixed frame. Returns `Ok(None)` on clean EOF.
///
/// A length prefix above [`MAX_FRAME`] is rejected with an
/// `InvalidData` error before any payload allocation, and the payload
/// buffer grows incrementally ([`READ_CHUNK`] at a time) as bytes arrive,
/// so a corrupt prefix can never trigger an unbounded — or even a large
/// speculative — allocation.
pub fn read_frame<R: Read>(stream: &mut R) -> std::io::Result<Option<Bytes>> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(_) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            WireError::TooLarge(len),
        ));
    }
    let mut payload = Vec::with_capacity(len.min(READ_CHUNK));
    while payload.len() < len {
        let chunk = (len - payload.len()).min(READ_CHUNK);
        let start = payload.len();
        payload.resize(start + chunk, 0);
        stream.read_exact(&mut payload[start..])?;
    }
    Ok(Some(Bytes::from(payload)))
}

/// Writes one length-prefixed frame.
pub fn write_frame<W: Write>(stream: &mut W, payload: &[u8]) -> std::io::Result<()> {
    let len = payload.len() as u32;
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(payload)?;
    Ok(())
}

/// Largest coalesced write the per-peer writer builds before flushing.
/// Bounds both the batch buffer and the latency a queued frame can accrue
/// behind earlier ones in the same flush.
const MAX_COALESCE_BYTES: usize = 1 << 20;

/// Appends one length-prefixed frame to a coalescing buffer.
fn append_frame(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
}

/// Observability bundle for one TCP node: the node's hub plus a wall-clock
/// origin so writer threads can stamp flight events without access to the
/// node loop's clock. Clones share the underlying registry and recorder.
#[derive(Clone, Default)]
pub struct NetObs {
    hub: NodeObs,
    origin: Option<Instant>,
}

impl NetObs {
    /// A disabled bundle: every recording below is a single branch.
    pub fn disabled() -> Self {
        NetObs::default()
    }

    /// Wraps a node hub; timestamps count from this call.
    pub fn new(hub: NodeObs) -> Self {
        NetObs {
            hub,
            origin: Some(Instant::now()),
        }
    }

    /// The wrapped hub.
    pub fn hub(&self) -> &NodeObs {
        &self.hub
    }

    fn now_nanos(&self) -> u64 {
        self.origin
            .map(|o| o.elapsed().as_nanos() as u64)
            .unwrap_or(0)
    }
}

/// Per-node transport metrics, with per-(peer, kind) counter handles cached
/// so steady-state sends and receives never take the registry lock.
struct NodeNetMetrics {
    obs: NetObs,
    sent: HashMap<(u32, &'static str), (Counter, Counter)>,
    recv: HashMap<(u32, &'static str), (Counter, Counter)>,
    fault_drops_send: Counter,
    fault_drops_recv: Counter,
    flush_bytes: Histogram,
    no_addr_drops: Counter,
}

impl NodeNetMetrics {
    fn new(obs: NetObs) -> Self {
        let m = &obs.hub.metrics;
        NodeNetMetrics {
            sent: HashMap::new(),
            recv: HashMap::new(),
            fault_drops_send: m.counter("net.drops.fault.send"),
            fault_drops_recv: m.counter("net.drops.fault.recv"),
            flush_bytes: m.histogram("net.flush_bytes"),
            no_addr_drops: m.counter("net.drops.no_address"),
            obs,
        }
    }

    fn count_sent(&mut self, to: NodeId, kind: &'static str, bytes: u64) {
        if !self.obs.hub.is_enabled() {
            return;
        }
        let m = &self.obs.hub.metrics;
        let (msgs, by) = self.sent.entry((to.0, kind)).or_insert_with(|| {
            (
                m.counter(&format!("net.sent.msgs.p{}.{kind}", to.0)),
                m.counter(&format!("net.sent.bytes.p{}.{kind}", to.0)),
            )
        });
        msgs.inc();
        by.add(bytes);
    }

    fn count_recv(&mut self, from: NodeId, kind: &'static str, bytes: u64) {
        if !self.obs.hub.is_enabled() {
            return;
        }
        let m = &self.obs.hub.metrics;
        let (msgs, by) = self.recv.entry((from.0, kind)).or_insert_with(|| {
            (
                m.counter(&format!("net.recv.msgs.p{}.{kind}", from.0)),
                m.counter(&format!("net.recv.bytes.p{}.{kind}", from.0)),
            )
        });
        msgs.inc();
        by.add(bytes);
    }
}

/// Handles a writer thread records with: flush sizes, its queue depth, and
/// drops for peers missing from the address book.
#[derive(Clone)]
struct WriterObs {
    obs: NetObs,
    flush_bytes: Histogram,
    queue_depth: Gauge,
    no_addr_drops: Counter,
}

/// Static peer address book for a deployment.
#[derive(Clone, Debug, Default)]
pub struct PeerMap {
    addrs: HashMap<NodeId, SocketAddr>,
}

impl PeerMap {
    /// Empty map.
    pub fn new() -> Self {
        PeerMap::default()
    }

    /// Registers `node` at `addr`.
    pub fn insert(&mut self, node: NodeId, addr: SocketAddr) {
        self.addrs.insert(node, addr);
    }

    /// Looks up a peer address.
    pub fn get(&self, node: NodeId) -> Option<SocketAddr> {
        self.addrs.get(&node).copied()
    }
}

/// Handle to one running TCP node.
pub struct TcpNodeHandle<M: Payload> {
    /// The node's id.
    pub id: NodeId,
    /// The address the node listens on.
    pub addr: SocketAddr,
    shutdown: Option<Sender<()>>,
    join: JoinHandle<Box<dyn Process<M>>>,
}

impl<M: Payload> TcpNodeHandle<M> {
    /// Requests shutdown and returns the final process state.
    pub fn stop(mut self) -> Box<dyn Process<M>> {
        if let Some(tx) = self.shutdown.take() {
            let _ = tx.send(());
        }
        self.join.join().expect("node thread panicked")
    }
}

struct TimerEntry {
    at: Time,
    id: TimerId,
    token: u64,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.id.0) == (other.at, other.id.0)
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap on (at, id).
        (other.at, other.id.0).cmp(&(self.at, self.id.0))
    }
}

/// Runs one node over TCP until shutdown; returns the final process state.
///
/// `listener` must already be bound; `peers` maps every destination the
/// process will send to. Messages to unknown peers are dropped (consensus
/// protocols treat this as loss) with a flight-recorder event and a
/// `net.drops.no_address` count when observability is attached.
///
/// Equivalent to [`run_node_with_rules`] with an empty, never-activated
/// [`FaultRules`] table.
pub fn run_node<M>(
    id: NodeId,
    process: Box<dyn Process<M>>,
    listener: TcpListener,
    peers: PeerMap,
    shutdown: Receiver<()>,
    seed: u64,
) -> Box<dyn Process<M>>
where
    M: Wire + Payload + Send,
{
    let rules = Arc::new(FaultRules::new(seed));
    run_node_with_rules(id, process, listener, peers, shutdown, seed, rules)
}

/// Runs one node over TCP with a shared runtime fault table.
///
/// Equivalent to [`run_node_obs`] with a disabled [`NetObs`] bundle.
pub fn run_node_with_rules<M>(
    id: NodeId,
    process: Box<dyn Process<M>>,
    listener: TcpListener,
    peers: PeerMap,
    shutdown: Receiver<()>,
    seed: u64,
    rules: Arc<FaultRules>,
) -> Box<dyn Process<M>>
where
    M: Wire + Payload + Send,
{
    run_node_obs(
        id,
        process,
        listener,
        peers,
        shutdown,
        seed,
        rules,
        NetObs::disabled(),
    )
}

/// Runs one node over TCP with a shared runtime fault table and an
/// observability bundle.
///
/// `rules` is consulted on the send path (full verdict, including
/// probabilistic loss) and on the receive path (deterministic cuts,
/// isolation, and crash marks — so messages already in flight when a rule
/// lands are still dropped). With no rules installed both checks are a
/// single relaxed atomic load; see [`FaultRules`].
///
/// `obs` records per-peer message/byte counts by wire kind on both paths,
/// fault-rule drop counts, coalesced-flush sizes, and per-peer writer
/// queue depth. A disabled bundle costs one branch per recording.
#[allow(clippy::too_many_arguments)]
pub fn run_node_obs<M>(
    id: NodeId,
    mut process: Box<dyn Process<M>>,
    listener: TcpListener,
    peers: PeerMap,
    shutdown: Receiver<()>,
    seed: u64,
    rules: Arc<FaultRules>,
    obs: NetObs,
) -> Box<dyn Process<M>>
where
    M: Wire + Payload + Send,
{
    let mut metrics = NodeNetMetrics::new(obs);
    let start = Instant::now();
    let now_fn = move || Time::from_nanos(start.elapsed().as_nanos() as u64);

    let (inbox_tx, inbox_rx) = mpsc::channel::<(NodeId, M)>();

    // Accept loop: each inbound connection handshakes, then feeds the inbox.
    let stop_flag = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop_flag);
    let accept_inbox = inbox_tx.clone();
    listener
        .set_nonblocking(true)
        .expect("set listener nonblocking");
    let accept_thread = std::thread::spawn(move || {
        while !accept_stop.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    let inbox = accept_inbox.clone();
                    std::thread::spawn(move || {
                        // Connection errors are expected during
                        // shutdown/reconnect.
                        let _ = serve_connection(stream, inbox);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(_) => return,
            }
        }
    });

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut next_timer_id: u64 = 0;
    let mut timers: BinaryHeap<TimerEntry> = BinaryHeap::new();
    let mut armed: HashSet<u64> = HashSet::new();
    let mut outbox: HashMap<NodeId, (SyncSender<Bytes>, Gauge)> = HashMap::new();

    // Start the process.
    {
        let mut ctx = Context::detached(now_fn(), id, &mut rng, &mut next_timer_id);
        process.on_start(&mut ctx);
        let (effects, _) = ctx.into_effects();
        apply_effects(
            id,
            effects,
            now_fn(),
            &mut timers,
            &mut armed,
            &mut outbox,
            &peers,
            &rules,
            &mut metrics,
        );
    }

    'run: loop {
        // A dropped handle (sender disconnected) counts as shutdown, like
        // the closed-oneshot semantics this loop replaces — otherwise a
        // handle dropped without stop() would leak a live node forever.
        match shutdown.try_recv() {
            Ok(()) => break 'run,
            Err(mpsc::TryRecvError::Disconnected) => break 'run,
            Err(mpsc::TryRecvError::Empty) => {}
        }
        // Pop expired/cancelled timer heads to find the next real deadline.
        let next_deadline = loop {
            match timers.peek() {
                Some(entry) if !armed.contains(&entry.id.0) => {
                    timers.pop();
                }
                Some(entry) => break Some(entry.at),
                None => break None,
            }
        };
        let now = now_fn();
        if let Some(at) = next_deadline {
            if at <= now {
                if let Some(entry) = timers.pop() {
                    if armed.remove(&entry.id.0) {
                        let timer = Timer {
                            id: entry.id,
                            token: entry.token,
                        };
                        let mut ctx = Context::detached(now, id, &mut rng, &mut next_timer_id);
                        process.on_timer(timer, &mut ctx);
                        let (effects, _) = ctx.into_effects();
                        apply_effects(
                            id,
                            effects,
                            now_fn(),
                            &mut timers,
                            &mut armed,
                            &mut outbox,
                            &peers,
                            &rules,
                            &mut metrics,
                        );
                    }
                }
                continue 'run;
            }
        }
        // Wait for the next message, but never past the next timer deadline
        // or the shutdown-poll interval.
        let wait = match next_deadline {
            Some(at) => {
                StdDuration::from_nanos(at.saturating_since(now).as_nanos()).min(POLL_INTERVAL)
            }
            None => POLL_INTERVAL,
        };
        match inbox_rx.recv_timeout(wait) {
            Ok((from, msg)) => {
                // Receive-path fault check: deterministic rules only (loss
                // was already rolled once at the sender).
                if rules.should_drop_link(from, id) {
                    metrics.fault_drops_recv.inc();
                    continue 'run;
                }
                metrics.count_recv(from, msg.kind(), msg.wire_size() as u64);
                let mut ctx = Context::detached(now_fn(), id, &mut rng, &mut next_timer_id);
                process.on_message(from, msg, &mut ctx);
                let (effects, _) = ctx.into_effects();
                apply_effects(
                    id,
                    effects,
                    now_fn(),
                    &mut timers,
                    &mut armed,
                    &mut outbox,
                    &peers,
                    &rules,
                    &mut metrics,
                );
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break 'run,
        }
    }

    stop_flag.store(true, Ordering::Relaxed);
    drop(inbox_rx);
    let _ = accept_thread.join();
    process
}

fn serve_connection<M>(mut stream: TcpStream, inbox: Sender<(NodeId, M)>) -> std::io::Result<()>
where
    M: Wire + Payload + Send,
{
    // Buffer reads so a coalesced flush from the peer's writer (many small
    // frames in one segment) costs one syscall here too, not one per frame.
    let mut stream = std::io::BufReader::with_capacity(READ_CHUNK, &mut stream);
    let Some(hello) = read_frame(&mut stream)? else {
        return Ok(());
    };
    let peer = NodeId::from_bytes(hello)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    while let Some(frame) = read_frame(&mut stream)? {
        match M::from_bytes(frame) {
            Ok(msg) => {
                if inbox.send((peer, msg)).is_err() {
                    return Ok(()); // node shut down
                }
            }
            Err(e) => {
                return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e));
            }
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn apply_effects<M>(
    self_id: NodeId,
    effects: Vec<Effect<M>>,
    now: Time,
    timers: &mut BinaryHeap<TimerEntry>,
    armed: &mut HashSet<u64>,
    outbox: &mut HashMap<NodeId, (SyncSender<Bytes>, Gauge)>,
    peers: &PeerMap,
    rules: &FaultRules,
    metrics: &mut NodeNetMetrics,
) where
    M: Wire + Payload + Send,
{
    for effect in effects {
        match effect {
            Effect::Send { to, msg } => {
                // Send-path fault check: full verdict, including the
                // probabilistic loss roll (exactly once per message).
                if rules.should_drop(self_id, to) {
                    metrics.fault_drops_send.inc();
                    continue;
                }
                metrics.count_sent(to, msg.kind(), msg.wire_size() as u64);
                let (sender, depth) = outbox.entry(to).or_insert_with(|| {
                    let wobs = WriterObs {
                        obs: metrics.obs.clone(),
                        flush_bytes: metrics.flush_bytes.clone(),
                        queue_depth: metrics
                            .obs
                            .hub
                            .metrics
                            .gauge(&format!("net.queue_depth.p{}", to.0)),
                        no_addr_drops: metrics.no_addr_drops.clone(),
                    };
                    let depth = wobs.queue_depth.clone();
                    (spawn_writer(self_id, to, peers.get(to), wobs), depth)
                });
                // Non-blocking: a slow/unreachable peer sheds load instead of
                // stalling the protocol loop (equivalent to network loss).
                if sender.try_send(msg.to_bytes()).is_ok() {
                    depth.add(1);
                }
            }
            Effect::SetTimer { id, after, token } => {
                armed.insert(id.0);
                timers.push(TimerEntry {
                    at: now + after,
                    id,
                    token,
                });
            }
            Effect::CancelTimer { id } => {
                armed.remove(&id.0);
            }
        }
    }
}

/// Spawns the writer thread for one peer; returns the channel feeding it.
fn spawn_writer(
    self_id: NodeId,
    to: NodeId,
    addr: Option<SocketAddr>,
    wobs: WriterObs,
) -> SyncSender<Bytes> {
    let (tx, rx) = mpsc::sync_channel::<Bytes>(4096);
    std::thread::spawn(move || {
        let Some(addr) = addr else {
            // No address book entry: consensus treats this as loss, but it
            // is almost always a deployment bug, so leave a flight-recorder
            // event and count every message shed on this dead link.
            wobs.obs.hub.event(
                wobs.obs.now_nanos(),
                ObsEvent::NetDrop {
                    peer: to.0,
                    reason: "no_address",
                },
            );
            while rx.recv().is_ok() {
                wobs.no_addr_drops.inc();
                wobs.queue_depth.add(-1);
            }
            return;
        };
        let mut backoff = StdDuration::from_millis(10);
        let mut batch: Vec<u8> = Vec::with_capacity(READ_CHUNK);
        'reconnect: loop {
            let mut stream = loop {
                match TcpStream::connect(addr) {
                    Ok(s) => break s,
                    Err(_) => {
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(StdDuration::from_secs(1));
                        // Drain queued messages while unreachable (loss).
                        loop {
                            match rx.try_recv() {
                                Ok(_) => wobs.queue_depth.add(-1),
                                Err(mpsc::TryRecvError::Empty) => break,
                                Err(mpsc::TryRecvError::Disconnected) => return,
                            }
                        }
                    }
                }
            };
            backoff = StdDuration::from_millis(10);
            let _ = stream.set_nodelay(true);
            if write_frame(&mut stream, &self_id.to_bytes()).is_err() {
                continue 'reconnect;
            }
            // Block for the first queued frame, then coalesce everything
            // already waiting (bounded by MAX_COALESCE_BYTES) into one
            // write: a burst of small frames costs one syscall, while an
            // idle link still flushes each frame the moment it arrives.
            loop {
                let Ok(first) = rx.recv() else {
                    return; // channel closed: node shut down
                };
                wobs.queue_depth.add(-1);
                batch.clear();
                append_frame(&mut batch, &first);
                let mut closing = false;
                while batch.len() < MAX_COALESCE_BYTES {
                    match rx.try_recv() {
                        Ok(frame) => {
                            wobs.queue_depth.add(-1);
                            append_frame(&mut batch, &frame);
                        }
                        Err(mpsc::TryRecvError::Empty) => break,
                        Err(mpsc::TryRecvError::Disconnected) => {
                            closing = true;
                            break;
                        }
                    }
                }
                wobs.flush_bytes.observe(batch.len() as u64);
                if stream.write_all(&batch).is_err() {
                    continue 'reconnect;
                }
                if closing {
                    return; // final flush done; node shut down
                }
            }
        }
    });
    tx
}

/// Spawns [`run_node_with_rules`] on a fresh thread and returns the
/// node's handle. `listener` must already be bound (its local address
/// becomes the handle's `addr`).
pub fn spawn_node_with_rules<M>(
    id: NodeId,
    process: Box<dyn Process<M>>,
    listener: TcpListener,
    peers: PeerMap,
    seed: u64,
    rules: Arc<FaultRules>,
) -> TcpNodeHandle<M>
where
    M: Wire + Payload + Send,
{
    spawn_node_obs(
        id,
        process,
        listener,
        peers,
        seed,
        rules,
        NetObs::disabled(),
    )
}

/// [`spawn_node_with_rules`] with an observability bundle attached to the
/// node's transport.
pub fn spawn_node_obs<M>(
    id: NodeId,
    process: Box<dyn Process<M>>,
    listener: TcpListener,
    peers: PeerMap,
    seed: u64,
    rules: Arc<FaultRules>,
    obs: NetObs,
) -> TcpNodeHandle<M>
where
    M: Wire + Payload + Send,
{
    let addr = listener.local_addr().expect("local addr");
    let (tx, rx) = mpsc::channel();
    let join = std::thread::spawn(move || {
        run_node_obs(id, process, listener, peers, rx, seed, rules, obs)
    });
    TcpNodeHandle {
        id,
        addr,
        shutdown: Some(tx),
        join,
    }
}

/// Spawns a whole cluster on loopback TCP with ephemeral ports.
///
/// Returns one handle per process, in order. Intended for examples and
/// integration tests; production deployments would use [`run_node`] with
/// externally managed listeners and peer maps.
pub fn spawn_local_cluster<M>(
    processes: Vec<Box<dyn Process<M>>>,
    seed: u64,
) -> Vec<TcpNodeHandle<M>>
where
    M: Wire + Payload + Send,
{
    spawn_local_cluster_with_rules(processes, seed, Arc::new(FaultRules::new(seed)))
}

/// [`spawn_local_cluster`] with a shared [`FaultRules`] table, so a test
/// or nemesis driver can partition, impair, and heal the live cluster
/// mid-run.
pub fn spawn_local_cluster_with_rules<M>(
    processes: Vec<Box<dyn Process<M>>>,
    seed: u64,
    rules: Arc<FaultRules>,
) -> Vec<TcpNodeHandle<M>>
where
    M: Wire + Payload + Send,
{
    let obs = processes.iter().map(|_| NetObs::disabled()).collect();
    spawn_local_cluster_obs(processes, seed, rules, obs)
}

/// [`spawn_local_cluster_with_rules`] with one observability bundle per
/// node (`obs[i]` is attached to node `i`'s transport). Panics unless
/// `obs.len() == processes.len()`.
pub fn spawn_local_cluster_obs<M>(
    processes: Vec<Box<dyn Process<M>>>,
    seed: u64,
    rules: Arc<FaultRules>,
    obs: Vec<NetObs>,
) -> Vec<TcpNodeHandle<M>>
where
    M: Wire + Payload + Send,
{
    assert_eq!(obs.len(), processes.len(), "one NetObs per process");
    let mut listeners = Vec::new();
    let mut peers = PeerMap::new();
    for (i, _) in processes.iter().enumerate() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr");
        peers.insert(NodeId(i as u32), addr);
        listeners.push((listener, addr));
    }
    let mut handles = Vec::new();
    for (i, ((process, obs), (listener, _))) in
        processes.into_iter().zip(obs).zip(listeners).enumerate()
    {
        let id = NodeId(i as u32);
        handles.push(spawn_node_obs(
            id,
            process,
            listener,
            peers.clone(),
            seed.wrapping_add(i as u64),
            Arc::clone(&rules),
            obs,
        ));
    }
    handles
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use canopus_sim::impl_process_any;

    #[derive(Debug, Clone, PartialEq)]
    struct Num(u64);

    impl Payload for Num {
        fn wire_size(&self) -> usize {
            8
        }
    }

    impl Wire for Num {
        fn encode(&self, buf: &mut BytesMut) {
            self.0.encode(buf);
        }
        fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
            Ok(Num(u64::decode(buf)?))
        }
    }

    /// Sends 1..=count to the peer on start; records what it receives.
    struct Counter {
        peer: Option<NodeId>,
        count: u64,
        seen: Vec<u64>,
    }

    impl Process<Num> for Counter {
        fn on_start(&mut self, ctx: &mut Context<'_, Num>) {
            if let Some(peer) = self.peer {
                for i in 1..=self.count {
                    ctx.send(peer, Num(i));
                }
            }
        }
        fn on_message(&mut self, _from: NodeId, msg: Num, _ctx: &mut Context<'_, Num>) {
            self.seen.push(msg.0);
        }
        impl_process_any!();
    }

    #[test]
    fn frames_round_trip_over_tcp() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            read_frame(&mut stream).unwrap().unwrap()
        });
        let mut client = TcpStream::connect(addr).unwrap();
        write_frame(&mut client, b"hello").unwrap();
        let got = server.join().unwrap();
        assert_eq!(&got[..], b"hello");
    }

    #[test]
    fn coalesced_flush_parses_back_into_individual_frames() {
        // One buffer holding three frames — exactly what the writer thread
        // sends in a single write_all — must decode frame by frame.
        let mut buf = Vec::new();
        append_frame(&mut buf, b"alpha");
        append_frame(&mut buf, b"");
        append_frame(&mut buf, b"gamma!");
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(&read_frame(&mut cursor).unwrap().unwrap()[..], b"alpha");
        assert_eq!(&read_frame(&mut cursor).unwrap().unwrap()[..], b"");
        assert_eq!(&read_frame(&mut cursor).unwrap().unwrap()[..], b"gamma!");
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn read_frame_reports_clean_eof() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            read_frame(&mut stream).unwrap()
        });
        let client = TcpStream::connect(addr).unwrap();
        drop(client);
        assert!(server.join().unwrap().is_none());
    }

    #[test]
    fn oversized_frame_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            read_frame(&mut stream)
        });
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(&(u32::MAX).to_le_bytes()).unwrap();
        assert!(server.join().unwrap().is_err());
    }

    #[test]
    fn huge_prefix_with_short_body_errors_without_upfront_allocation() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            read_frame(&mut stream)
        });
        let mut client = TcpStream::connect(addr).unwrap();
        // A prefix just under the limit, but only 3 bytes of body: the
        // reader must fail with UnexpectedEof after allocating at most one
        // chunk, not reserve ~16 MiB for a stream that never delivers it.
        client
            .write_all(&((MAX_FRAME - 1) as u32).to_le_bytes())
            .unwrap();
        client.write_all(b"abc").unwrap();
        drop(client);
        let got = server.join().unwrap();
        assert!(got.is_err(), "truncated oversized frame must error");
    }

    #[test]
    fn fault_rules_cut_blocks_delivery_until_healed() {
        let a = Counter {
            peer: Some(NodeId(1)),
            count: 50,
            seen: Vec::new(),
        };
        let b = Counter {
            peer: None,
            count: 0,
            seen: Vec::new(),
        };
        let rules = Arc::new(FaultRules::new(3));
        rules.cut_groups(&[NodeId(0)], &[NodeId(1)]);
        let handles =
            spawn_local_cluster_with_rules::<Num>(vec![Box::new(a), Box::new(b)], 7, rules.clone());
        std::thread::sleep(StdDuration::from_millis(200));
        let mut processes = Vec::new();
        for h in handles {
            processes.push(h.stop());
        }
        let b_final = processes.pop().unwrap();
        let counter = b_final.as_any().downcast_ref::<Counter>().expect("counter");
        assert!(
            counter.seen.is_empty(),
            "cut link must drop everything, saw {:?}",
            counter.seen
        );
    }

    #[test]
    fn cluster_delivers_messages_in_order() {
        let a = Counter {
            peer: Some(NodeId(1)),
            count: 100,
            seen: Vec::new(),
        };
        let b = Counter {
            peer: None,
            count: 0,
            seen: Vec::new(),
        };
        let handles = spawn_local_cluster::<Num>(vec![Box::new(a), Box::new(b)], 7);
        // Give delivery a moment.
        std::thread::sleep(StdDuration::from_millis(300));
        let mut processes = Vec::new();
        for h in handles {
            processes.push(h.stop());
        }
        let b_final = processes.pop().unwrap();
        let counter = b_final.as_any().downcast_ref::<Counter>().expect("counter");
        assert_eq!(counter.seen, (1..=100).collect::<Vec<_>>());
    }
}
