//! The topology-aware fabric: propagation + serialization + queueing.
//!
//! [`ClosFabric`] implements [`canopus_sim::Fabric`] over a [`Topology`].
//! Every message serializes through an ordered chain of queueing points —
//! sender NIC, rack uplink (when leaving the rack), datacenter WAN egress
//! (when leaving the DC), receiver-rack downlink, receiver NIC — each a
//! FIFO link with finite rate. Oversubscription is therefore not a
//! parameter but an emergent property: nine 10 Gbps hosts sharing a
//! 20 Gbps uplink are 4.5× oversubscribed exactly as in §8.1 of the paper,
//! and throughput ceilings in the Figure 4 reproduction come from these
//! queues (and the CPU model) saturating.

use canopus_sim::{Dur, Fabric, NodeId, Payload, Route, Time};
use rand::rngs::SmallRng;

use crate::topology::Topology;

/// Per-message fixed overhead added to the payload's `wire_size` to account
/// for framing, TCP/IP headers, and ack traffic (bytes).
const PER_MESSAGE_OVERHEAD: usize = 66;

/// One FIFO link: a rate and a high-water mark of queued transmission time.
#[derive(Copy, Clone, Debug)]
struct Link {
    /// Rate in bits per nanosecond (== Gbit/s).
    gbps: f64,
    busy_until: Time,
}

impl Link {
    fn new(gbps: f64) -> Self {
        assert!(gbps > 0.0, "link rate must be positive");
        Link {
            gbps,
            busy_until: Time::ZERO,
        }
    }

    /// Serialization delay of `bytes` on this link.
    fn ser_delay(&self, bytes: usize) -> Dur {
        Dur::nanos(((bytes as f64) * 8.0 / self.gbps).ceil() as u64)
    }

    /// Passes a message of `bytes` through the link starting no earlier
    /// than `at`, returning when its last bit leaves the link.
    fn transmit(&mut self, at: Time, bytes: usize) -> Time {
        let start = if self.busy_until > at {
            self.busy_until
        } else {
            at
        };
        let done = start + self.ser_delay(bytes);
        self.busy_until = done;
        done
    }
}

/// Topology-aware network fabric with bandwidth queueing.
pub struct ClosFabric {
    topo: Topology,
    /// Host NIC egress, one per node.
    nic_tx: Vec<Link>,
    /// Host NIC ingress, one per node.
    nic_rx: Vec<Link>,
    /// Rack uplink egress (ToR → aggregation), one per rack.
    rack_tx: Vec<Link>,
    /// Rack downlink ingress (aggregation → ToR), one per rack.
    rack_rx: Vec<Link>,
    /// WAN egress, one per datacenter.
    wan_tx: Vec<Link>,
}

impl ClosFabric {
    /// Builds the fabric for `topo`. The topology must already contain all
    /// nodes (adding nodes later is not supported; build the topology first).
    pub fn new(topo: Topology) -> Self {
        let p = *topo.params();
        let nic_tx = vec![Link::new(p.nic_gbps); topo.node_count()];
        let nic_rx = vec![Link::new(p.nic_gbps); topo.node_count()];
        let rack_tx = vec![Link::new(p.rack_uplink_gbps); topo.rack_count()];
        let rack_rx = vec![Link::new(p.rack_uplink_gbps); topo.rack_count()];
        let wan_tx = vec![Link::new(p.wan_egress_gbps); topo.wan().len()];
        ClosFabric {
            topo,
            nic_tx,
            nic_rx,
            rack_tx,
            rack_rx,
            wan_tx,
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    fn route_bytes(&mut self, from: NodeId, to: NodeId, bytes: usize, now: Time) -> Time {
        if from == to {
            return now + self.topo.params().loopback;
        }
        let bytes = bytes + PER_MESSAGE_OVERHEAD;
        let rack_from = self.topo.rack_of(from);
        let rack_to = self.topo.rack_of(to);
        let site_from = self.topo.site_of(from);
        let site_to = self.topo.site_of(to);

        // Serialize through each queueing point in path order.
        let mut t = self.nic_tx[from.index()].transmit(now, bytes);
        if rack_from != rack_to {
            t = self.rack_tx[rack_from.index()].transmit(t, bytes);
        }
        if site_from != site_to {
            t = self.wan_tx[site_from.index()].transmit(t, bytes);
        }
        if rack_from != rack_to {
            t = self.rack_rx[rack_to.index()].transmit(t, bytes);
        }
        t = self.nic_rx[to.index()].transmit(t, bytes);

        t + self.topo.propagation(from, to)
    }
}

impl<M: Payload> Fabric<M> for ClosFabric {
    fn route(&mut self, from: NodeId, to: NodeId, msg: &M, now: Time, _: &mut SmallRng) -> Route {
        Route::Deliver(self.route_bytes(from, to, msg.wire_size(), now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkParams;
    use crate::wan::WanMatrix;
    use rand::SeedableRng;

    #[derive(Debug)]
    struct Blob(usize);
    impl Payload for Blob {
        fn wire_size(&self) -> usize {
            self.0
        }
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0)
    }

    fn deliver_at(f: &mut ClosFabric, from: u32, to: u32, bytes: usize, now: Time) -> Time {
        match Fabric::<Blob>::route(f, NodeId(from), NodeId(to), &Blob(bytes), now, &mut rng()) {
            Route::Deliver(t) => t,
            Route::Drop => panic!("clos fabric never drops"),
        }
    }

    #[test]
    fn intra_rack_latency_dominated_by_propagation_for_small_msgs() {
        let params = LinkParams::default();
        let topo = Topology::single_dc(1, 3, params);
        let mut f = ClosFabric::new(topo);
        let t = deliver_at(&mut f, 0, 1, 100, Time::ZERO);
        // 166 bytes over two 10Gbps links ~ 266ns; plus 25us propagation.
        let lat = t - Time::ZERO;
        assert!(lat >= params.intra_rack_one_way);
        assert!(lat < params.intra_rack_one_way + Dur::micros(1), "{lat}");
    }

    #[test]
    fn cross_dc_uses_wan_latency() {
        let params = LinkParams::default();
        let topo = Topology::multi_dc(WanMatrix::paper_sites(2), 3, params);
        let mut f = ClosFabric::new(topo);
        let t = deliver_at(&mut f, 0, 3, 16, Time::ZERO);
        let lat = t - Time::ZERO;
        // IR→CA one-way is 66.5ms.
        assert!(lat >= Dur::from_millis_f64(66.5));
        assert!(lat < Dur::from_millis_f64(67.0), "{lat}");
    }

    #[test]
    fn serialization_delay_scales_with_size() {
        let params = LinkParams::default();
        let topo = Topology::single_dc(1, 2, params);
        let mut f = ClosFabric::new(topo);
        let small = deliver_at(&mut f, 0, 1, 100, Time::ZERO);
        // Use a fresh fabric so queues are empty.
        let topo2 = Topology::single_dc(1, 2, params);
        let mut f2 = ClosFabric::new(topo2);
        // 10 MB at 10 Gbps is 8ms per link traversal.
        let big = deliver_at(&mut f2, 0, 1, 10_000_000, Time::ZERO);
        assert!(big - Time::ZERO > (small - Time::ZERO) + Dur::millis(15));
    }

    #[test]
    fn queueing_backs_up_under_load() {
        let params = LinkParams::default();
        let topo = Topology::single_dc(1, 2, params);
        let mut f = ClosFabric::new(topo);
        // Saturate node 0's NIC with 1MB messages back to back at t=0.
        let mut last = Time::ZERO;
        for _ in 0..10 {
            last = deliver_at(&mut f, 0, 1, 1_000_000, Time::ZERO);
        }
        // 10 x 1MB at 10Gbps = ~8ms of serialization, twice (tx + rx nic).
        assert!(last - Time::ZERO >= Dur::millis(8), "{}", last - Time::ZERO);
    }

    #[test]
    fn uplink_is_shared_across_rack_senders() {
        let params = LinkParams {
            rack_uplink_gbps: 1.0, // make the uplink the obvious bottleneck
            ..LinkParams::default()
        };
        let topo = Topology::single_dc(2, 3, params);
        let mut f = ClosFabric::new(topo);
        // Three nodes in rack 0 each send 1MB cross-rack at t=0.
        let t0 = deliver_at(&mut f, 0, 3, 1_000_000, Time::ZERO);
        let t1 = deliver_at(&mut f, 1, 4, 1_000_000, Time::ZERO);
        let t2 = deliver_at(&mut f, 2, 5, 1_000_000, Time::ZERO);
        // Each message takes ~8ms on the shared 1Gbps uplink; they serialize.
        assert!(t1 - Time::ZERO >= (t0 - Time::ZERO) + Dur::millis(7));
        assert!(t2 - Time::ZERO >= (t1 - Time::ZERO) + Dur::millis(7));
    }

    #[test]
    fn loopback_is_fast() {
        let params = LinkParams::default();
        let topo = Topology::single_dc(1, 1, params);
        let mut f = ClosFabric::new(topo);
        let t = deliver_at(&mut f, 0, 0, 1_000_000, Time::ZERO);
        assert_eq!(t - Time::ZERO, params.loopback);
    }

    #[test]
    fn delivery_is_monotone_in_send_time() {
        let params = LinkParams::default();
        let topo = Topology::single_dc(1, 2, params);
        let mut f = ClosFabric::new(topo);
        let a = deliver_at(&mut f, 0, 1, 1000, Time::ZERO);
        let b = deliver_at(&mut f, 0, 1, 1000, Time::ZERO + Dur::micros(10));
        assert!(b >= a, "FIFO order on the link");
    }
}
