//! Runtime fault injection for the real TCP transport.
//!
//! [`FaultRules`] is a shared, cluster-wide rule table — directional link
//! cuts, node isolation, a crashed-node set, global and per-sender loss
//! probabilities — consulted by every node loop spawned with
//! [`crate::tcp::run_node_with_rules`]. It is the live-socket analogue of
//! the simulator's `PartitionableFabric<LossyFabric<_>>` composition, and
//! the live nemesis driver in `canopus-harness` applies the same
//! `FaultPlan` actions to it that the virtual-time driver applies to a
//! simulation fabric.
//!
//! # Hot-path cost
//!
//! The no-fault path is one relaxed atomic load: [`FaultRules::should_drop`]
//! and [`FaultRules::should_drop_link`] first check an `active` flag that is
//! only set while at least one rule is installed, and return immediately
//! when it is clear. The mutex-guarded rule table is touched only while
//! faults are actually in force, so installing the rules object on a
//! production transport costs nothing measurable when no nemesis is running
//! (the `live_cluster` stress example runs with rules installed).
//!
//! Deterministic rules (cuts, isolation, crashes) are enforced on both the
//! send and the receive path — so a message in flight when a cut lands is
//! still dropped — while probabilistic loss is applied on the send path
//! only, to keep the configured rate from compounding.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use canopus_sim::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Default)]
struct RulesInner {
    /// Directed cut links: a message `from → to` is dropped when
    /// `(from, to)` is present.
    cut: HashSet<(NodeId, NodeId)>,
    /// Nodes cut off from everyone, both directions.
    isolated: HashSet<NodeId>,
    /// Nodes currently crash-stopped by the nemesis: traffic to and from
    /// them is dropped at every live peer (their own loops are not
    /// running), modelling loss of everything in flight.
    crashed: HashSet<NodeId>,
    /// Global message-loss probability.
    loss: f64,
    /// Extra per-sender outbound loss probability (asymmetric impairment).
    out_loss: Vec<(NodeId, f64)>,
}

impl RulesInner {
    fn any_active(&self) -> bool {
        !self.cut.is_empty()
            || !self.isolated.is_empty()
            || !self.crashed.is_empty()
            || self.loss > 0.0
            || !self.out_loss.is_empty()
    }

    fn drops_link(&self, from: NodeId, to: NodeId) -> bool {
        self.isolated.contains(&from)
            || self.isolated.contains(&to)
            || self.crashed.contains(&from)
            || self.crashed.contains(&to)
            || self.cut.contains(&(from, to))
    }

    fn loss_for(&self, from: NodeId) -> f64 {
        // A per-sender entry *overrides* the global rate — identical to
        // the simulator's `LossyFabric`, so the same `FaultPlan` injects
        // the same faults live and simulated (an entry of 0.0 shields a
        // sender from global loss).
        self.out_loss
            .iter()
            .find(|(n, _)| *n == from)
            .map(|&(_, p)| p)
            .unwrap_or(self.loss)
    }
}

/// Shared runtime fault table for a live TCP cluster. All methods take
/// `&self`; hand one instance (via `Arc`) to every node in the cluster.
#[derive(Debug)]
pub struct FaultRules {
    /// Fast-path guard: `true` iff at least one rule is installed.
    active: AtomicBool,
    inner: Mutex<RulesInner>,
    rng: Mutex<SmallRng>,
}

impl FaultRules {
    /// An empty rule table; `seed` drives the loss coin-flips.
    pub fn new(seed: u64) -> Self {
        FaultRules {
            active: AtomicBool::new(false),
            inner: Mutex::new(RulesInner::default()),
            rng: Mutex::new(SmallRng::seed_from_u64(seed ^ 0x4641554c54)),
        }
    }

    fn update(&self, f: impl FnOnce(&mut RulesInner)) {
        let mut inner = self.inner.lock().expect("fault rules poisoned");
        f(&mut inner);
        self.active.store(inner.any_active(), Ordering::Release);
    }

    /// Cuts one direction of one link: messages `from → to` are dropped.
    pub fn cut_one_way(&self, from: NodeId, to: NodeId) {
        self.update(|r| {
            r.cut.insert((from, to));
        });
    }

    /// Cuts every link with one endpoint in `a` and the other in `b`,
    /// both directions.
    pub fn cut_groups(&self, a: &[NodeId], b: &[NodeId]) {
        self.update(|r| {
            for &x in a {
                for &y in b {
                    r.cut.insert((x, y));
                    r.cut.insert((y, x));
                }
            }
        });
    }

    /// Heals every link with one endpoint in `a` and the other in `b`.
    pub fn heal_groups(&self, a: &[NodeId], b: &[NodeId]) {
        self.update(|r| {
            for &x in a {
                for &y in b {
                    r.cut.remove(&(x, y));
                    r.cut.remove(&(y, x));
                }
            }
        });
    }

    /// Cuts `node` off from everyone, both directions.
    pub fn isolate(&self, node: NodeId) {
        self.update(|r| {
            r.isolated.insert(node);
        });
    }

    /// Marks `node` crash-stopped (or clears the mark): while set, every
    /// live peer drops traffic to and from it.
    pub fn set_crashed(&self, node: NodeId, crashed: bool) {
        self.update(|r| {
            if crashed {
                r.crashed.insert(node);
            } else {
                r.crashed.remove(&node);
            }
        });
    }

    /// Sets the global loss probability.
    pub fn set_loss(&self, loss: f64) {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        self.update(|r| r.loss = loss);
    }

    /// Sets one node's outbound loss probability, overriding the global
    /// rate for that sender (0.0 shields it — same contract as the
    /// simulator's `LossyFabric::set_out_loss`). Cleared by
    /// [`FaultRules::heal_all`].
    pub fn set_out_loss(&self, node: NodeId, loss: f64) {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        self.update(|r| {
            r.out_loss.retain(|(n, _)| *n != node);
            r.out_loss.push((node, loss));
        });
    }

    /// Removes every cut and isolation and zeroes all loss. Crash marks are
    /// *not* cleared: a crashed node stays down until explicitly restarted.
    pub fn heal_all(&self) {
        self.update(|r| {
            r.cut.clear();
            r.isolated.clear();
            r.loss = 0.0;
            r.out_loss.clear();
        });
    }

    /// Whether any rule is currently installed (one relaxed atomic load).
    #[inline]
    pub fn any_active(&self) -> bool {
        self.active.load(Ordering::Relaxed)
    }

    /// Deterministic drop verdict for `from → to`: cuts, isolation, and
    /// crash marks, but no probabilistic loss. Safe to consult on both the
    /// send and the receive path.
    #[inline]
    pub fn should_drop_link(&self, from: NodeId, to: NodeId) -> bool {
        if !self.active.load(Ordering::Relaxed) {
            return false;
        }
        self.inner
            .lock()
            .expect("fault rules poisoned")
            .drops_link(from, to)
    }

    /// Full drop verdict for `from → to`, including probabilistic loss.
    /// Consult exactly once per message (the send path), or the loss rate
    /// compounds.
    #[inline]
    pub fn should_drop(&self, from: NodeId, to: NodeId) -> bool {
        if !self.active.load(Ordering::Relaxed) {
            return false;
        }
        let p = {
            let inner = self.inner.lock().expect("fault rules poisoned");
            if inner.drops_link(from, to) {
                return true;
            }
            inner.loss_for(from)
        };
        p > 0.0 && self.rng.lock().expect("fault rng poisoned").gen::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn empty_rules_drop_nothing_and_report_inactive() {
        let rules = FaultRules::new(1);
        assert!(!rules.any_active());
        assert!(!rules.should_drop(n(0), n(1)));
        assert!(!rules.should_drop_link(n(1), n(0)));
    }

    #[test]
    fn group_cut_is_bidirectional_and_heals() {
        let rules = FaultRules::new(1);
        rules.cut_groups(&[n(0), n(1)], &[n(2)]);
        assert!(rules.any_active());
        assert!(rules.should_drop_link(n(0), n(2)));
        assert!(rules.should_drop_link(n(2), n(1)));
        assert!(!rules.should_drop_link(n(0), n(1)));
        rules.heal_groups(&[n(0), n(1)], &[n(2)]);
        assert!(!rules.any_active());
        assert!(!rules.should_drop_link(n(0), n(2)));
    }

    #[test]
    fn one_way_cut_is_directional() {
        let rules = FaultRules::new(1);
        rules.cut_one_way(n(3), n(4));
        assert!(rules.should_drop_link(n(3), n(4)));
        assert!(!rules.should_drop_link(n(4), n(3)));
    }

    #[test]
    fn isolation_cuts_both_directions_until_heal_all() {
        let rules = FaultRules::new(1);
        rules.isolate(n(5));
        assert!(rules.should_drop_link(n(5), n(0)));
        assert!(rules.should_drop_link(n(0), n(5)));
        assert!(!rules.should_drop_link(n(0), n(1)));
        rules.heal_all();
        assert!(!rules.should_drop_link(n(5), n(0)));
    }

    #[test]
    fn crash_marks_survive_heal_all() {
        let rules = FaultRules::new(1);
        rules.set_crashed(n(2), true);
        rules.heal_all();
        assert!(rules.should_drop_link(n(0), n(2)));
        assert!(rules.should_drop_link(n(2), n(0)));
        rules.set_crashed(n(2), false);
        assert!(!rules.any_active());
    }

    #[test]
    fn loss_rates_drop_roughly_proportionally() {
        let rules = FaultRules::new(42);
        rules.set_loss(0.5);
        let dropped = (0..2000).filter(|_| rules.should_drop(n(0), n(1))).count();
        assert!(
            (700..1300).contains(&dropped),
            "p=0.5 dropped {dropped}/2000"
        );
        rules.heal_all();
        assert!(!rules.should_drop(n(0), n(1)));
    }

    #[test]
    fn out_loss_is_per_sender_and_link_check_ignores_loss() {
        let rules = FaultRules::new(7);
        rules.set_out_loss(n(4), 1.0);
        assert!(rules.should_drop(n(4), n(0)), "p=1 always drops");
        assert!(!rules.should_drop(n(0), n(4)), "other senders unaffected");
        // The deterministic link check never applies probabilistic loss.
        assert!(!rules.should_drop_link(n(4), n(0)));
        rules.heal_all();
        assert!(!rules.any_active());
    }

    #[test]
    fn out_loss_overrides_global_like_the_simulator_fabric() {
        // Mirrors LossyFabric: the per-sender rate replaces the global
        // rate, so an explicit 0.0 shields that sender entirely.
        let rules = FaultRules::new(7);
        rules.set_loss(1.0);
        rules.set_out_loss(n(4), 0.0);
        assert!(!rules.should_drop(n(4), n(0)), "override shields sender 4");
        assert!(rules.should_drop(n(0), n(1)), "global p=1 drops the rest");
        rules.heal_all();
        assert!(!rules.any_active(), "heal_all clears loss overrides");
    }
}
