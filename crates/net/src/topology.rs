//! Physical placement model: datacenters, racks, and nodes.
//!
//! Canopus is a *network-aware* protocol (§3 of the paper): nodes in the
//! same rack form a super-leaf, racks talk through oversubscribed
//! aggregation links, and datacenters are joined by WAN paths. This module
//! captures exactly that placement; the [`crate::ClosFabric`] turns it into
//! message delivery times.

use canopus_sim::{Dur, NodeId};

use crate::wan::{SiteId, WanMatrix};

/// Index of a rack within a [`Topology`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RackId(pub u16);

impl RackId {
    /// The index as `usize`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// Link rates and propagation delays of the fabric.
///
/// Defaults follow the paper's single-datacenter testbed (§8.1): 10 Gbps
/// host links, 2×10 Gbps rack uplinks (giving the stated 1.5–4.5
/// oversubscription as super-leaf size grows), and sub-100 µs intra-DC
/// latency.
#[derive(Copy, Clone, Debug)]
pub struct LinkParams {
    /// Host NIC rate, Gbit/s.
    pub nic_gbps: f64,
    /// Combined rack uplink rate (ToR → aggregation), Gbit/s.
    pub rack_uplink_gbps: f64,
    /// Per-datacenter WAN egress rate, Gbit/s.
    pub wan_egress_gbps: f64,
    /// One-way propagation between two nodes in the same rack.
    pub intra_rack_one_way: Dur,
    /// One-way propagation between racks in the same datacenter.
    pub cross_rack_one_way: Dur,
    /// Delivery delay for a node sending to itself.
    pub loopback: Dur,
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams {
            nic_gbps: 10.0,
            rack_uplink_gbps: 20.0,
            wan_egress_gbps: 5.0,
            intra_rack_one_way: Dur::micros(25),
            cross_rack_one_way: Dur::micros(75),
            loopback: Dur::micros(2),
        }
    }
}

#[derive(Clone, Debug)]
struct Rack {
    site: SiteId,
}

/// Placement of every node: which rack it sits in, which datacenter the
/// rack belongs to, and the latency matrix between datacenters.
#[derive(Clone, Debug)]
pub struct Topology {
    wan: WanMatrix,
    racks: Vec<Rack>,
    /// `node_rack[n]` = rack of node `n`; nodes are dense [`NodeId`]s.
    node_rack: Vec<RackId>,
    params: LinkParams,
}

impl Topology {
    /// Starts an empty topology over `wan` with the given link parameters.
    pub fn new(wan: WanMatrix, params: LinkParams) -> Self {
        Topology {
            wan,
            racks: Vec::new(),
            node_rack: Vec::new(),
            params,
        }
    }

    /// The paper's single-datacenter testbed: `racks` racks in one DC with
    /// `nodes_per_rack` protocol nodes each (plus, optionally, client nodes
    /// added afterwards with [`add_node`](Self::add_node)).
    pub fn single_dc(racks: usize, nodes_per_rack: usize, params: LinkParams) -> Self {
        let wan = WanMatrix::uniform(1, Dur::ZERO, params.intra_rack_one_way * 2);
        let mut t = Topology::new(wan, params);
        for _ in 0..racks {
            let rack = t.add_rack(SiteId(0));
            for _ in 0..nodes_per_rack {
                t.add_node(rack);
            }
        }
        t
    }

    /// The paper's multi-datacenter deployment: one rack per datacenter of
    /// `wan`, each holding `nodes_per_dc` nodes.
    pub fn multi_dc(wan: WanMatrix, nodes_per_dc: usize, params: LinkParams) -> Self {
        let sites: Vec<SiteId> = wan.sites().collect();
        let mut t = Topology::new(wan, params);
        for site in sites {
            let rack = t.add_rack(site);
            for _ in 0..nodes_per_dc {
                t.add_node(rack);
            }
        }
        t
    }

    /// Adds a rack in datacenter `site`, returning its id.
    pub fn add_rack(&mut self, site: SiteId) -> RackId {
        assert!(site.index() < self.wan.len(), "unknown site {site:?}");
        let id = RackId(self.racks.len() as u16);
        self.racks.push(Rack { site });
        id
    }

    /// Adds a node to `rack`. Node ids are assigned densely in call order
    /// and must match the order processes are added to the simulation.
    pub fn add_node(&mut self, rack: RackId) -> NodeId {
        assert!(rack.index() < self.racks.len(), "unknown rack {rack:?}");
        let id = NodeId(self.node_rack.len() as u32);
        self.node_rack.push(rack);
        id
    }

    /// Link parameters.
    pub fn params(&self) -> &LinkParams {
        &self.params
    }

    /// The WAN matrix.
    pub fn wan(&self) -> &WanMatrix {
        &self.wan
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.node_rack.len()
    }

    /// Total rack count.
    pub fn rack_count(&self) -> usize {
        self.racks.len()
    }

    /// Rack of a node.
    pub fn rack_of(&self, node: NodeId) -> RackId {
        self.node_rack[node.index()]
    }

    /// Datacenter of a node.
    pub fn site_of(&self, node: NodeId) -> SiteId {
        self.racks[self.rack_of(node).index()].site
    }

    /// Whether two nodes share a rack.
    pub fn same_rack(&self, a: NodeId, b: NodeId) -> bool {
        self.rack_of(a) == self.rack_of(b)
    }

    /// Whether two nodes share a datacenter.
    pub fn same_site(&self, a: NodeId, b: NodeId) -> bool {
        self.site_of(a) == self.site_of(b)
    }

    /// All nodes placed in `rack`, in id order.
    pub fn nodes_in_rack(&self, rack: RackId) -> Vec<NodeId> {
        (0..self.node_count())
            .map(|i| NodeId(i as u32))
            .filter(|&n| self.rack_of(n) == rack)
            .collect()
    }

    /// One-way propagation delay between two nodes, ignoring queueing.
    pub fn propagation(&self, a: NodeId, b: NodeId) -> Dur {
        if a == b {
            self.params.loopback
        } else if self.same_rack(a, b) {
            self.params.intra_rack_one_way
        } else if self.same_site(a, b) {
            self.params.cross_rack_one_way
        } else {
            self.wan.one_way(self.site_of(a), self.site_of(b))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_dc_layout() {
        let t = Topology::single_dc(3, 9, LinkParams::default());
        assert_eq!(t.node_count(), 27);
        assert_eq!(t.rack_count(), 3);
        assert_eq!(t.rack_of(NodeId(0)), RackId(0));
        assert_eq!(t.rack_of(NodeId(8)), RackId(0));
        assert_eq!(t.rack_of(NodeId(9)), RackId(1));
        assert!(t.same_rack(NodeId(0), NodeId(8)));
        assert!(!t.same_rack(NodeId(8), NodeId(9)));
        assert!(t.same_site(NodeId(0), NodeId(26)));
    }

    #[test]
    fn multi_dc_layout() {
        let t = Topology::multi_dc(WanMatrix::paper_sites(3), 3, LinkParams::default());
        assert_eq!(t.node_count(), 9);
        assert_eq!(t.rack_count(), 3);
        assert!(t.same_site(NodeId(0), NodeId(2)));
        assert!(!t.same_site(NodeId(2), NodeId(3)));
    }

    #[test]
    fn propagation_tiers() {
        let params = LinkParams::default();
        let t = Topology::multi_dc(WanMatrix::paper_sites(2), 3, params);
        // Same node.
        assert_eq!(t.propagation(NodeId(0), NodeId(0)), params.loopback);
        // Same rack.
        assert_eq!(
            t.propagation(NodeId(0), NodeId(1)),
            params.intra_rack_one_way
        );
        // Cross-DC: IR-CA is 133ms RTT -> 66.5ms one-way.
        assert_eq!(
            t.propagation(NodeId(0), NodeId(3)),
            Dur::from_millis_f64(66.5)
        );
    }

    #[test]
    fn cross_rack_same_site() {
        let params = LinkParams::default();
        let mut t = Topology::new(WanMatrix::uniform(1, Dur::ZERO, Dur::micros(100)), params);
        let r0 = t.add_rack(SiteId(0));
        let r1 = t.add_rack(SiteId(0));
        let a = t.add_node(r0);
        let b = t.add_node(r1);
        assert_eq!(t.propagation(a, b), params.cross_rack_one_way);
        assert_eq!(t.nodes_in_rack(r0), vec![a]);
        assert_eq!(t.nodes_in_rack(r1), vec![b]);
    }

    #[test]
    #[should_panic(expected = "unknown site")]
    fn add_rack_unknown_site_panics() {
        let mut t = Topology::single_dc(1, 1, LinkParams::default());
        t.add_rack(SiteId(5));
    }
}
