//! Poll-based reactor: a fixed pool of epoll event loops (one per core)
//! that carries every TCP connection in the process.
//!
//! The previous transport spawned ~2 threads per connection (a blocking
//! reader plus a per-peer writer), which capped live topologies at the
//! 9-node loopback suites. The reactor replaces all of that with
//! [`pool`]: `N` event loops, each owning an epoll instance, an eventfd
//! waker, and a command channel. Nodes register through [`NodeIo`]:
//!
//! - **Listeners** are readiness-driven: accept runs when epoll reports
//!   the listening socket readable, never on a sleep poll.
//! - **Inbound connections** stay on the loop that accepted them. Frames
//!   are reassembled incrementally (partial frames survive across
//!   readiness events; a length prefix over [`MAX_FRAME`] is rejected
//!   before any payload allocation) and handed to the node's dispatch
//!   closure, which decodes and forwards to the node-loop inbox.
//! - **Outbound connections** are sharded across loops by
//!   `hash(node, addr)` and deduplicated per remote address, so many
//!   virtual senders at one address share one socket. Connects are
//!   nonblocking with exponential backoff (10 ms → 1 s); while a peer is
//!   unreachable, queued frames are shed as loss, exactly like the old
//!   writer threads. Writes drain a bounded per-peer byte queue with
//!   coalesced flushes (one `write` for a burst of small frames, bounded
//!   by [`MAX_COALESCE_BYTES`]).
//! - **Backpressure** is explicit: when a peer's queue hits its
//!   high-water mark, [`NodeIo::send`] returns
//!   [`SendOutcome::Backpressure`] synchronously and raises the node's
//!   [`SendGate`] until the loop drains the queue below low water.
//!   Clients can watch the gate to shed or defer load instead of
//!   blocking.
//!
//! Loop-global health counters (iterations, readiness events,
//! queue-full incidents, connection churn) live in the process-wide
//! reactor registry: [`canopus_obs::reactor_snapshot`].

use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use bytes::Bytes;
use canopus_obs::{Histogram, ReactorObs};
use canopus_sim::NodeId;
use epoll_shim::{connect_nonblocking, Events, Interest, Poller, Waker};

use crate::wire::{Wire, MAX_FRAME};

/// Read buffer size per loop; also the growth bound for partial-frame
/// reassembly compaction.
const READ_CHUNK: usize = 64 << 10;

/// Largest unwritten coalesced batch a connection builds before it stops
/// pulling frames off its queue. Bounds both buffer growth and the
/// latency a queued frame can accrue behind earlier ones in one flush.
pub(crate) const MAX_COALESCE_BYTES: usize = 1 << 20;

/// Default per-peer write-queue bound in bytes (headers included). A
/// send that would exceed it gets an explicit [`SendOutcome::Backpressure`].
const DEFAULT_HIGH_WATER: usize = 2 << 20;

/// Epoll timeout when nothing else bounds the wait.
const IDLE_WAIT: Duration = Duration::from_millis(200);

const BACKOFF_MIN: Duration = Duration::from_millis(10);
const BACKOFF_MAX: Duration = Duration::from_secs(1);

/// Token reserved for each loop's eventfd waker.
const WAKER_TOKEN: u64 = 0;

/// Appends one length-prefixed frame to a coalescing buffer.
pub(crate) fn append_frame(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
}

/// Per-peer write-queue bound, overridable via `CANOPUS_NET_QUEUE_BYTES`.
pub(crate) fn high_water() -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| {
        std::env::var("CANOPUS_NET_QUEUE_BYTES")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_HIGH_WATER)
    })
}

fn low_water() -> usize {
    high_water() / 2
}

/// Transport saturation signal shared between a node's reactor
/// connections and its clients.
///
/// The reactor raises the gate when any of the node's peer queues hits
/// its high-water mark and lowers it once the queue drains below low
/// water. Open-loop clients consult [`SendGate::is_saturated`] to shed
/// or defer arrivals instead of piling onto a full queue; `incidents`
/// counts every raise for test assertions and capacity reports.
#[derive(Clone, Debug, Default)]
pub struct SendGate {
    saturated: Arc<AtomicUsize>,
    incidents: Arc<AtomicU64>,
}

impl SendGate {
    /// A fresh, open gate.
    pub fn new() -> SendGate {
        SendGate::default()
    }

    /// True while at least one of the node's peer queues is full.
    pub fn is_saturated(&self) -> bool {
        self.saturated.load(Ordering::Relaxed) > 0
    }

    /// Total number of queue-full transitions observed so far.
    pub fn incidents(&self) -> u64 {
        self.incidents.load(Ordering::Relaxed)
    }

    fn raise(&self) {
        self.saturated.fetch_add(1, Ordering::Relaxed);
        self.incidents.fetch_add(1, Ordering::Relaxed);
    }

    fn lower(&self) {
        self.saturated.fetch_sub(1, Ordering::Relaxed);
    }
}

/// What a node's dispatch closure tells the reactor after each inbound
/// frame.
pub(crate) enum DispatchVerdict {
    /// Keep reading.
    Continue,
    /// The node's inbox is gone (shutdown); close the connection.
    Closed,
    /// The frame failed to decode; close the connection (mirrors the old
    /// reader thread's `InvalidData` exit).
    Corrupt,
}

/// Decodes one inbound frame and forwards it to the node loop.
pub(crate) type Dispatch = Arc<dyn Fn(NodeId, Bytes) -> DispatchVerdict + Send + Sync>;

/// Immutable per-node state shared with every loop that carries one of
/// the node's connections.
pub(crate) struct Registration {
    key: u64,
    self_id: NodeId,
    dispatch: Dispatch,
    gate: Option<SendGate>,
    flush_bytes: Histogram,
}

/// Queue accounting shared between [`NodeIo::send`] (node-loop thread)
/// and the event loop that owns the connection.
struct ConnShared {
    /// Bytes (payload + 4-byte headers) accepted but not yet moved into
    /// the connection's write buffer.
    queued: AtomicUsize,
    /// True between a high-water raise and the matching low-water lower.
    full: AtomicBool,
}

impl ConnShared {
    fn new() -> Arc<ConnShared> {
        Arc::new(ConnShared {
            queued: AtomicUsize::new(0),
            full: AtomicBool::new(false),
        })
    }

    /// Loop-side: release `n` queued bytes and lower the gate once the
    /// queue drains below low water.
    fn release(&self, n: usize, gate: &Option<SendGate>) {
        let before = self.queued.fetch_sub(n, Ordering::Relaxed);
        if before.saturating_sub(n) <= low_water()
            && self
                .full
                .compare_exchange(true, false, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            if let Some(gate) = gate {
                gate.lower();
            }
        }
    }
}

/// Synchronous verdict for one [`NodeIo::send`].
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum SendOutcome {
    /// Queued for delivery (best-effort, like every transport send).
    Queued,
    /// The peer's bounded write queue is full; the frame was not queued.
    Backpressure,
}

enum Cmd {
    AddListener {
        listener: TcpListener,
        reg: Arc<Registration>,
    },
    Connect {
        addr: SocketAddr,
        reg: Arc<Registration>,
        shared: Arc<ConnShared>,
    },
    Send {
        key: u64,
        addr: SocketAddr,
        frame: Bytes,
    },
    CloseNode {
        key: u64,
        ack: mpsc::SyncSender<()>,
    },
}

struct LoopHandle {
    tx: Sender<Cmd>,
    waker: Arc<Waker>,
    /// Set by submitters after enqueueing; cleared by the loop after
    /// draining. Coalesces eventfd writes for command bursts.
    cmd_pending: Arc<AtomicBool>,
}

impl LoopHandle {
    fn submit(&self, cmd: Cmd) {
        if self.tx.send(cmd).is_ok() && !self.cmd_pending.swap(true, Ordering::AcqRel) {
            let _ = self.waker.wake();
        }
    }
}

/// The process-wide pool of reactor event loops.
pub(crate) struct ReactorPool {
    loops: Vec<LoopHandle>,
    next_key: AtomicU64,
}

impl ReactorPool {
    fn loop_for(&self, key: u64, addr: SocketAddr) -> usize {
        // FNV-1a over (key, addr) spreads connections across loops
        // without any coordination.
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |b: u64| {
            h ^= b;
            h = h.wrapping_mul(0x100000001b3);
        };
        mix(key);
        match addr {
            SocketAddr::V4(v4) => {
                mix(u32::from(*v4.ip()) as u64);
                mix(v4.port() as u64);
            }
            SocketAddr::V6(v6) => {
                for c in v6.ip().segments() {
                    mix(c as u64);
                }
                mix(v6.port() as u64);
            }
        }
        (h % self.loops.len() as u64) as usize
    }
}

/// Number of event loops: `CANOPUS_REACTOR_LOOPS` override, else one per
/// available core, clamped to `1..=16`.
pub fn loop_count() -> usize {
    if let Ok(n) = std::env::var("CANOPUS_REACTOR_LOOPS") {
        if let Ok(n) = n.parse::<usize>() {
            return n.clamp(1, 64);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(1, 16)
}

/// The lazily started global reactor pool.
pub(crate) fn pool() -> &'static ReactorPool {
    static POOL: OnceLock<ReactorPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let n = loop_count();
        let mut loops = Vec::with_capacity(n);
        for idx in 0..n {
            let poller = Poller::new().expect("epoll_create1");
            let waker = Arc::new(Waker::new(&poller, WAKER_TOKEN).expect("eventfd"));
            let (tx, rx) = mpsc::channel();
            let cmd_pending = Arc::new(AtomicBool::new(false));
            let handle_waker = Arc::clone(&waker);
            let handle_pending = Arc::clone(&cmd_pending);
            std::thread::Builder::new()
                .name(format!("canopus-reactor-{idx}"))
                .spawn(move || run_loop(poller, waker, rx, cmd_pending))
                .expect("spawn reactor loop");
            loops.push(LoopHandle {
                tx,
                waker: handle_waker,
                cmd_pending: handle_pending,
            });
        }
        ReactorPool {
            loops,
            next_key: AtomicU64::new(1),
        }
    })
}

struct OutRef {
    loop_idx: usize,
    shared: Arc<ConnShared>,
}

/// A node's handle into the reactor: registers the listener, opens and
/// reuses outbound connections (one per remote address), and reports
/// backpressure synchronously.
pub(crate) struct NodeIo {
    key: u64,
    reg: Arc<Registration>,
    conns: HashMap<SocketAddr, OutRef>,
    high_water: usize,
}

impl NodeIo {
    /// Registers `listener` for readiness-driven accept and returns the
    /// node's send handle. `dispatch` runs on reactor threads.
    pub(crate) fn register(
        self_id: NodeId,
        listener: TcpListener,
        dispatch: Dispatch,
        gate: Option<SendGate>,
        flush_bytes: Histogram,
    ) -> NodeIo {
        let pool = pool();
        let key = pool.next_key.fetch_add(1, Ordering::Relaxed);
        let reg = Arc::new(Registration {
            key,
            self_id,
            dispatch,
            gate,
            flush_bytes,
        });
        listener
            .set_nonblocking(true)
            .expect("set listener nonblocking");
        let idx = (key % pool.loops.len() as u64) as usize;
        pool.loops[idx].submit(Cmd::AddListener {
            listener,
            reg: Arc::clone(&reg),
        });
        NodeIo {
            key,
            reg,
            conns: HashMap::new(),
            high_water: high_water(),
        }
    }

    /// Queues one frame for `addr`, opening (and thereafter reusing) the
    /// connection on its sharded loop. Returns
    /// [`SendOutcome::Backpressure`] without queueing when the peer's
    /// write queue is at high water.
    pub(crate) fn send(&mut self, addr: SocketAddr, frame: Bytes) -> SendOutcome {
        let pool = pool();
        let entry = self.conns.entry(addr).or_insert_with(|| {
            let shared = ConnShared::new();
            let loop_idx = pool.loop_for(self.key, addr);
            pool.loops[loop_idx].submit(Cmd::Connect {
                addr,
                reg: Arc::clone(&self.reg),
                shared: Arc::clone(&shared),
            });
            OutRef { loop_idx, shared }
        });
        let cost = frame.len() + 4;
        if entry.shared.queued.load(Ordering::Relaxed) >= self.high_water {
            if entry
                .shared
                .full
                .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                if let Some(gate) = &self.reg.gate {
                    gate.raise();
                }
            }
            return SendOutcome::Backpressure;
        }
        entry.shared.queued.fetch_add(cost, Ordering::Relaxed);
        pool.loops[entry.loop_idx].submit(Cmd::Send {
            key: self.key,
            addr,
            frame,
        });
        SendOutcome::Queued
    }

    /// Current queue depth in bytes toward `addr` (0 if no connection).
    pub(crate) fn queued_bytes(&self, addr: SocketAddr) -> usize {
        self.conns
            .get(&addr)
            .map(|c| c.shared.queued.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Deregisters the node from every loop: the listener, all inbound
    /// connections dispatching to it, and all outbound connections. Waits
    /// for each loop's acknowledgement, so when this returns every fd the
    /// node owned is closed — shutdown leaks nothing.
    pub(crate) fn close(self) {
        let pool = pool();
        let (ack_tx, ack_rx) = mpsc::sync_channel(pool.loops.len());
        for l in &pool.loops {
            l.submit(Cmd::CloseNode {
                key: self.key,
                ack: ack_tx.clone(),
            });
        }
        drop(ack_tx);
        for _ in 0..pool.loops.len() {
            let _ = ack_rx.recv();
        }
    }
}

// ---------------------------------------------------------------------
// Event-loop internals.
// ---------------------------------------------------------------------

struct InConn {
    stream: TcpStream,
    reg: Arc<Registration>,
    /// Sender id from the handshake frame; `None` until it arrives.
    peer: Option<NodeId>,
    /// Partial-frame reassembly buffer; `start` is the parse cursor.
    buf: Vec<u8>,
    start: usize,
}

enum OutState {
    Connecting(TcpStream),
    Backoff,
    Ready(TcpStream),
}

struct OutConn {
    addr: SocketAddr,
    reg: Arc<Registration>,
    shared: Arc<ConnShared>,
    state: OutState,
    /// Frames accepted but not yet framed into `pending`.
    queue: VecDeque<Bytes>,
    /// Framed bytes being written; `pending_off` marks how much already
    /// reached the socket.
    pending: Vec<u8>,
    pending_off: usize,
    backoff: Duration,
}

impl OutConn {
    fn unwritten(&self) -> usize {
        self.pending.len() - self.pending_off
    }

    /// Sheds everything queued (the peer is unreachable: this is loss,
    /// exactly like the old writer threads draining while disconnected).
    /// Only queue frames carry accounting — bytes already coalesced into
    /// `pending` were released when they moved — so only those are freed.
    fn shed_queue(&mut self) {
        self.pending.clear();
        self.pending_off = 0;
        let mut freed = 0usize;
        for f in self.queue.drain(..) {
            freed += f.len() + 4;
        }
        if freed > 0 {
            self.shared.release(freed, &self.reg.gate);
        }
    }
}

enum Entry {
    Listener {
        listener: TcpListener,
        reg: Arc<Registration>,
    },
    In(InConn),
    Out(OutConn),
}

struct Retry {
    at: Instant,
    token: u64,
}

impl PartialEq for Retry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.token == other.token
    }
}
impl Eq for Retry {}
impl PartialOrd for Retry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Retry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap on deadline.
        (other.at, other.token).cmp(&(self.at, self.token))
    }
}

struct LoopState {
    poller: Poller,
    obs: ReactorObs,
    entries: HashMap<u64, Entry>,
    /// Outbound connection index: (node key, remote addr) → token.
    out_index: HashMap<(u64, SocketAddr), u64>,
    /// Every token belonging to a node key, for CloseNode teardown.
    node_tokens: HashMap<u64, HashSet<u64>>,
    retries: BinaryHeap<Retry>,
    next_token: u64,
}

impl LoopState {
    fn alloc_token(&mut self) -> u64 {
        self.next_token += 1;
        self.next_token
    }

    fn track(&mut self, key: u64, token: u64) {
        self.node_tokens.entry(key).or_default().insert(token);
    }

    fn untrack(&mut self, key: u64, token: u64) {
        if let Some(set) = self.node_tokens.get_mut(&key) {
            set.remove(&token);
            if set.is_empty() {
                self.node_tokens.remove(&key);
            }
        }
    }
}

fn run_loop(
    poller: Poller,
    waker: Arc<Waker>,
    cmd_rx: Receiver<Cmd>,
    cmd_pending: Arc<AtomicBool>,
) {
    let mut st = LoopState {
        poller,
        obs: ReactorObs::global(),
        entries: HashMap::new(),
        out_index: HashMap::new(),
        node_tokens: HashMap::new(),
        retries: BinaryHeap::new(),
        next_token: WAKER_TOKEN,
    };
    let mut events = Events::with_capacity(512);
    let mut scratch = vec![0u8; READ_CHUNK];
    loop {
        let timeout = match st.retries.peek() {
            Some(r) => {
                r.at.saturating_duration_since(Instant::now())
                    .min(IDLE_WAIT)
            }
            None => IDLE_WAIT,
        };
        if st.poller.wait(&mut events, Some(timeout)).is_err() {
            return;
        }
        st.obs.iterations.inc();

        // Drain commands (the waker is why most waits return early). The
        // pending flag is cleared before the final drain pass so a
        // submitter racing this point still produces a wakeup.
        loop {
            match cmd_rx.try_recv() {
                Ok(cmd) => handle_cmd(&mut st, cmd),
                Err(mpsc::TryRecvError::Empty) => {
                    cmd_pending.store(false, Ordering::Release);
                    match cmd_rx.try_recv() {
                        Ok(cmd) => {
                            handle_cmd(&mut st, cmd);
                            continue;
                        }
                        Err(mpsc::TryRecvError::Empty) => break,
                        Err(mpsc::TryRecvError::Disconnected) => return,
                    }
                }
                Err(mpsc::TryRecvError::Disconnected) => return,
            }
        }

        for ev in events.iter() {
            if ev.token == WAKER_TOKEN {
                waker.drain();
                st.obs.wakeups.inc();
                continue;
            }
            st.obs.readiness_events.inc();
            handle_event(
                &mut st,
                &mut scratch,
                ev.token,
                ev.readable(),
                ev.writable(),
            );
        }

        // Fire due reconnect timers.
        let now = Instant::now();
        while let Some(r) = st.retries.peek() {
            if r.at > now {
                break;
            }
            let token = st.retries.pop().expect("peeked").token;
            start_connect(&mut st, token);
        }
    }
}

fn handle_cmd(st: &mut LoopState, cmd: Cmd) {
    match cmd {
        Cmd::AddListener { listener, reg } => {
            let token = st.alloc_token();
            if st
                .poller
                .add(listener.as_raw_fd(), token, Interest::READ)
                .is_err()
            {
                return;
            }
            st.track(reg.key, token);
            st.entries.insert(token, Entry::Listener { listener, reg });
        }
        Cmd::Connect { addr, reg, shared } => {
            let token = st.alloc_token();
            st.out_index.insert((reg.key, addr), token);
            st.track(reg.key, token);
            st.entries.insert(
                token,
                Entry::Out(OutConn {
                    addr,
                    reg,
                    shared,
                    state: OutState::Backoff,
                    queue: VecDeque::new(),
                    pending: Vec::new(),
                    pending_off: 0,
                    backoff: BACKOFF_MIN,
                }),
            );
            start_connect(st, token);
        }
        Cmd::Send { key, addr, frame } => {
            let Some(&token) = st.out_index.get(&(key, addr)) else {
                return;
            };
            if let Some(Entry::Out(out)) = st.entries.get_mut(&token) {
                out.queue.push_back(frame);
                flush_out(st, token);
            }
        }
        Cmd::CloseNode { key, ack } => {
            if let Some(tokens) = st.node_tokens.remove(&key) {
                for token in tokens {
                    if let Some(entry) = st.entries.remove(&token) {
                        teardown_entry(st, entry);
                    }
                }
            }
            st.out_index.retain(|(k, _), _| *k != key);
            let _ = ack.send(());
        }
    }
}

/// Deregisters and drops an entry's socket (fd closes on drop).
fn teardown_entry(st: &mut LoopState, entry: Entry) {
    match entry {
        Entry::Listener { listener, .. } => {
            let _ = st.poller.delete(listener.as_raw_fd());
        }
        Entry::In(conn) => {
            let _ = st.poller.delete(conn.stream.as_raw_fd());
            st.obs.conns_closed.inc();
        }
        Entry::Out(mut conn) => {
            match &conn.state {
                OutState::Connecting(s) | OutState::Ready(s) => {
                    let _ = st.poller.delete(s.as_raw_fd());
                    st.obs.conns_closed.inc();
                }
                OutState::Backoff => {}
            }
            conn.shed_queue();
        }
    }
}

fn handle_event(
    st: &mut LoopState,
    scratch: &mut [u8],
    token: u64,
    readable: bool,
    writable: bool,
) {
    // Take the entry out so IO can run without aliasing the maps; it is
    // reinserted unless the connection closed.
    let Some(mut entry) = st.entries.remove(&token) else {
        return;
    };
    let keep = match &mut entry {
        Entry::Listener { listener, reg } => {
            accept_ready(st, listener, reg);
            true
        }
        Entry::In(conn) => handle_in_readable(st, scratch, conn),
        Entry::Out(_) => {
            st.entries.insert(token, entry);
            handle_out_event(st, scratch, token, readable, writable);
            return;
        }
    };
    if keep {
        st.entries.insert(token, entry);
    } else {
        let reg_key = match &entry {
            Entry::In(c) => c.reg.key,
            Entry::Listener { reg, .. } => reg.key,
            Entry::Out(o) => o.reg.key,
        };
        st.untrack(reg_key, token);
        teardown_entry(st, entry);
    }
}

fn accept_ready(st: &mut LoopState, listener: &TcpListener, reg: &Arc<Registration>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let token = st.alloc_token();
                if st
                    .poller
                    .add(stream.as_raw_fd(), token, Interest::READ)
                    .is_err()
                {
                    continue;
                }
                st.obs.accepted.inc();
                st.track(reg.key, token);
                st.entries.insert(
                    token,
                    Entry::In(InConn {
                        stream,
                        reg: Arc::clone(reg),
                        peer: None,
                        buf: Vec::new(),
                        start: 0,
                    }),
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// Reads everything available and dispatches complete frames. Returns
/// `false` when the connection must close.
fn handle_in_readable(st: &mut LoopState, scratch: &mut [u8], conn: &mut InConn) -> bool {
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => return false, // clean EOF
            Ok(n) => {
                conn.buf.extend_from_slice(&scratch[..n]);
                if !parse_frames(st, conn) {
                    return false;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
}

/// Drains complete frames out of the reassembly buffer. A partial frame
/// simply stays buffered until the next readiness event. Returns `false`
/// on a corrupt frame, an oversized length prefix, or a closed inbox.
fn parse_frames(st: &mut LoopState, conn: &mut InConn) -> bool {
    loop {
        let avail = conn.buf.len() - conn.start;
        if avail < 4 {
            break;
        }
        let len = u32::from_le_bytes(
            conn.buf[conn.start..conn.start + 4]
                .try_into()
                .expect("4 bytes"),
        ) as usize;
        if len > MAX_FRAME {
            // Rejected before any payload allocation: the buffer only
            // ever holds bytes that actually arrived.
            return false;
        }
        if avail - 4 < len {
            break;
        }
        let frame = Bytes::from(conn.buf[conn.start + 4..conn.start + 4 + len].to_vec());
        conn.start += 4 + len;
        match conn.peer {
            None => match NodeId::from_bytes(frame) {
                Ok(peer) => conn.peer = Some(peer),
                Err(_) => return false,
            },
            Some(peer) => {
                st.obs.frames_in.inc();
                match (conn.reg.dispatch)(peer, frame) {
                    DispatchVerdict::Continue => {}
                    DispatchVerdict::Closed | DispatchVerdict::Corrupt => return false,
                }
            }
        }
    }
    // Compact once the consumed prefix outgrows a read chunk.
    if conn.start == conn.buf.len() {
        conn.buf.clear();
        conn.start = 0;
    } else if conn.start > READ_CHUNK {
        conn.buf.copy_within(conn.start.., 0);
        let remain = conn.buf.len() - conn.start;
        conn.buf.truncate(remain);
        conn.start = 0;
    }
    true
}

fn handle_out_event(
    st: &mut LoopState,
    scratch: &mut [u8],
    token: u64,
    readable: bool,
    writable: bool,
) {
    let Some(Entry::Out(out)) = st.entries.get_mut(&token) else {
        return;
    };
    match &mut out.state {
        OutState::Connecting(stream) => {
            if writable || readable {
                match stream.take_error() {
                    Ok(None) => {
                        st.obs.conns_opened.inc();
                        establish(st, token);
                    }
                    _ => disconnect_out(st, token),
                }
            }
        }
        OutState::Ready(stream) => {
            if readable {
                // Peers never send on our outbound links; readable here
                // means EOF/error (or stray bytes we discard).
                loop {
                    match stream.read(scratch) {
                        Ok(0) => {
                            disconnect_out(st, token);
                            return;
                        }
                        Ok(_) => continue,
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            disconnect_out(st, token);
                            return;
                        }
                    }
                }
            }
            if writable {
                flush_out(st, token);
            }
        }
        OutState::Backoff => {}
    }
}

/// Starts (or restarts) the nonblocking connect for an outbound entry.
fn start_connect(st: &mut LoopState, token: u64) {
    let Some(Entry::Out(out)) = st.entries.get_mut(&token) else {
        return;
    };
    if !matches!(out.state, OutState::Backoff) {
        return;
    }
    match connect_nonblocking(out.addr) {
        Ok((stream, done)) => {
            if st
                .poller
                .add(stream.as_raw_fd(), token, Interest::BOTH)
                .is_err()
            {
                out.state = OutState::Backoff;
                schedule_retry(st, token);
                return;
            }
            if done {
                out.state = OutState::Ready(stream);
                st.obs.conns_opened.inc();
                establish(st, token);
            } else {
                out.state = OutState::Connecting(stream);
            }
        }
        Err(_) => schedule_retry(st, token),
    }
}

/// Transitions a connected outbound socket to `Ready`: handshake frame
/// first, then whatever is queued.
fn establish(st: &mut LoopState, token: u64) {
    let Some(Entry::Out(out)) = st.entries.get_mut(&token) else {
        return;
    };
    let stream = match std::mem::replace(&mut out.state, OutState::Backoff) {
        OutState::Connecting(s) | OutState::Ready(s) => s,
        OutState::Backoff => return,
    };
    let _ = stream.set_nodelay(true);
    out.state = OutState::Ready(stream);
    out.backoff = BACKOFF_MIN;
    let hello = out.reg.self_id.to_bytes();
    let mut framed = Vec::with_capacity(hello.len() + 4);
    append_frame(&mut framed, &hello);
    // Handshake goes ahead of anything already pending (there is nothing
    // pending on a fresh connection; this is belt and braces).
    framed.extend_from_slice(&out.pending[out.pending_off..]);
    out.pending = framed;
    out.pending_off = 0;
    flush_out(st, token);
}

/// Drops the socket, sheds the queue as loss, and schedules a retry.
fn disconnect_out(st: &mut LoopState, token: u64) {
    let Some(Entry::Out(out)) = st.entries.get_mut(&token) else {
        return;
    };
    match std::mem::replace(&mut out.state, OutState::Backoff) {
        OutState::Connecting(s) | OutState::Ready(s) => {
            let _ = st.poller.delete(s.as_raw_fd());
            st.obs.conns_closed.inc();
        }
        OutState::Backoff => {}
    }
    out.shed_queue();
    schedule_retry(st, token);
}

fn schedule_retry(st: &mut LoopState, token: u64) {
    let Some(Entry::Out(out)) = st.entries.get_mut(&token) else {
        return;
    };
    out.state = OutState::Backoff;
    // Frames queued while unreachable are shed as loss on each failed
    // attempt, mirroring the old writer threads.
    out.shed_queue();
    let at = Instant::now() + out.backoff;
    out.backoff = (out.backoff * 2).min(BACKOFF_MAX);
    st.obs.reconnects.inc();
    st.retries.push(Retry { at, token });
}

/// Moves queued frames into the coalescing buffer (bounded) and writes as
/// much as the socket accepts, keeping write interest armed only while
/// there is something left to send.
fn flush_out(st: &mut LoopState, token: u64) {
    let Some(Entry::Out(out)) = st.entries.get_mut(&token) else {
        return;
    };
    if !matches!(out.state, OutState::Ready(_)) {
        return;
    }
    // Frame queued payloads into `pending`, releasing their queue
    // accounting as they move (the queue bound covers un-coalesced
    // frames; `pending` is bounded by MAX_COALESCE_BYTES + one frame).
    while out.unwritten() < MAX_COALESCE_BYTES {
        let Some(frame) = out.queue.pop_front() else {
            break;
        };
        append_frame(&mut out.pending, &frame);
        st.obs.frames_out.inc();
        out.shared.release(frame.len() + 4, &out.reg.gate);
    }
    let mut wrote = 0usize;
    let mut broken = false;
    if let OutState::Ready(stream) = &mut out.state {
        while out.pending_off < out.pending.len() {
            match stream.write(&out.pending[out.pending_off..]) {
                Ok(0) => {
                    broken = true;
                    break;
                }
                Ok(n) => {
                    out.pending_off += n;
                    wrote += n;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    broken = true;
                    break;
                }
            }
        }
    }
    if wrote > 0 {
        out.reg.flush_bytes.observe(wrote as u64);
    }
    if out.pending_off == out.pending.len() {
        out.pending.clear();
        out.pending_off = 0;
    } else if out.pending_off > MAX_COALESCE_BYTES {
        out.pending.copy_within(out.pending_off.., 0);
        let remain = out.pending.len() - out.pending_off;
        out.pending.truncate(remain);
        out.pending_off = 0;
    }
    if broken {
        disconnect_out(st, token);
        return;
    }
    // Level-triggered epoll: keep write interest only while data waits,
    // otherwise an idle socket would wake the loop forever.
    let want_write = out.unwritten() > 0 || !out.queue.is_empty();
    if let OutState::Ready(stream) = &out.state {
        let interest = if want_write {
            Interest::BOTH
        } else {
            Interest::READ
        };
        let _ = st.poller.modify(stream.as_raw_fd(), token, interest);
    }
}
