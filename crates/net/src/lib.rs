//! # canopus-net — topology model, fabric, wire codec, and transports
//!
//! Canopus (§2.2, §4 of the paper) derives its scalability from being
//! *network topology aware*: nodes in one rack form a super-leaf, racks are
//! joined by oversubscribed aggregation links, and datacenters by WAN paths
//! whose latencies dominate wide-area deployments. This crate models that
//! world and carries messages across it:
//!
//! * [`WanMatrix`] — inter-datacenter RTTs, including the paper's Table 1
//!   ([`WanMatrix::paper_table1`]).
//! * [`Topology`] — placement of nodes into racks and datacenters, with the
//!   paper's single-DC and multi-DC builders.
//! * [`ClosFabric`] — a [`canopus_sim::Fabric`] that adds propagation,
//!   serialization, and FIFO queueing delay per link, so oversubscription
//!   and WAN bottlenecks emerge from first principles.
//! * [`wire`] — the hand-rolled binary codec shared by the simulator's
//!   size accounting and the real transport.
//! * [`tcp`] — a reactor-backed TCP driver (behind the `tcp` feature, on
//!   by default) that runs unmodified [`canopus_sim::Process`] state
//!   machines over real sockets: a fixed pool of epoll event loops (one
//!   per core) carries every connection, so live clusters scale to
//!   hundreds of nodes on one machine.
//! * [`fault`] — the runtime fault table ([`FaultRules`]) the TCP
//!   transport consults, so the nemesis engine can partition, impair, and
//!   crash a *live* cluster the same way it does a simulated one.

#![warn(missing_docs)]

pub mod clos;
pub mod fault;
#[cfg(feature = "tcp")]
pub mod reactor;
#[cfg(feature = "tcp")]
pub mod tcp;
pub mod topology;
pub mod wan;
pub mod wire;

pub use clos::ClosFabric;
pub use fault::FaultRules;
#[cfg(feature = "tcp")]
pub use reactor::SendGate;
pub use topology::{LinkParams, RackId, Topology};
pub use wan::{SiteId, WanMatrix};
pub use wire::{Wire, WireError, WireRead};
