//! Criterion micro-benchmarks of the protocol hot paths: the state merge
//! that defines the total order, the wire codec, LOT/emulation-table math,
//! and a full end-to-end simulated consensus cycle.

use bytes::Bytes;
use canopus::{
    CanopusConfig, CanopusMsg, CanopusNode, EmulationTable, LotShape, RequestSet, VnodeId,
    VnodeState,
};
use canopus_kv::{ClientRequest, Op, TimedOp};
use canopus_net::wire::Wire;
use canopus_sim::{Dur, NodeId, Simulation, Time, UniformFabric};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn proposal(origin: u32, number: u64, ops: usize) -> VnodeState {
    let set = RequestSet {
        origin: NodeId(origin),
        ops: (0..ops)
            .map(|k| TimedOp {
                req: ClientRequest {
                    client: NodeId(100),
                    op_id: k as u64,
                    op: Op::Put {
                        key: k as u64,
                        value: Bytes::from_static(b"12345678"),
                    },
                },
                arrival: Time::ZERO,
            })
            .collect(),
        lease_requests: Vec::new(),
    };
    VnodeState::round1(
        NodeId(origin),
        VnodeId(vec![0]),
        canopus::CycleId(1),
        number,
        set,
        Vec::new(),
    )
}

fn bench_merge(c: &mut Criterion) {
    c.bench_function("merge_9_proposals_of_100_ops", |b| {
        let children: Vec<VnodeState> = (0..9)
            .map(|i| proposal(i, 0x1000 + i as u64 * 7919, 100))
            .collect();
        b.iter_batched(
            || children.clone(),
            |children| black_box(VnodeState::merge(VnodeId(vec![0]), children)),
            BatchSize::SmallInput,
        );
    });
}

fn bench_wire(c: &mut Criterion) {
    let state = proposal(1, 12345, 100);
    let msg = CanopusMsg::ProposalResponse { state };
    c.bench_function("encode_proposal_100_ops", |b| {
        b.iter(|| black_box(msg.to_bytes()));
    });
    let bytes = msg.to_bytes();
    c.bench_function("decode_proposal_100_ops", |b| {
        b.iter(|| black_box(CanopusMsg::from_bytes(bytes.clone()).unwrap()));
    });
}

/// The zero-copy decode path against a local replica of the pre-refactor
/// copying path (length-prefixed payloads were `to_vec()`ed out of the
/// receive buffer before use; strings additionally validated the copy).
fn bench_zero_copy_decode(c: &mut Criterion) {
    use canopus_net::wire::{WireError, WireRead};

    fn copying_bytes(buf: &mut Bytes) -> Result<Vec<u8>, WireError> {
        let n = buf.read_u32()? as usize;
        Ok(buf.read_bytes(n)?.to_vec())
    }
    fn copying_string(buf: &mut Bytes) -> Result<String, WireError> {
        let n = buf.read_u32()? as usize;
        let raw = buf.read_bytes(n)?.to_vec();
        String::from_utf8(raw).map_err(|_| WireError::Invalid("utf8"))
    }

    let blob = {
        let mut buf = bytes::BytesMut::new();
        Bytes::from(vec![0x5Au8; 4096]).encode(&mut buf);
        buf.freeze()
    };
    c.bench_function("decode_bytes_4k_zero_copy", |b| {
        b.iter(|| black_box(Bytes::decode(&mut blob.clone()).unwrap()));
    });
    c.bench_function("decode_bytes_4k_copying", |b| {
        b.iter(|| black_box(copying_bytes(&mut blob.clone()).unwrap()));
    });

    let text = {
        let mut buf = bytes::BytesMut::new();
        "x".repeat(4096).encode(&mut buf);
        buf.freeze()
    };
    c.bench_function("decode_string_4k_validate_in_place", |b| {
        b.iter(|| black_box(String::decode(&mut text.clone()).unwrap()));
    });
    c.bench_function("decode_string_4k_copy_then_validate", |b| {
        b.iter(|| black_box(copying_string(&mut text.clone()).unwrap()));
    });
}

fn bench_lot_math(c: &mut Criterion) {
    let shape = LotShape::new(vec![4, 4, 4]);
    c.bench_function("lot_ancestor_and_emulators", |b| {
        let table = EmulationTable::new(
            shape.clone(),
            (0..64)
                .map(|s| (0..3).map(|i| NodeId(s * 3 + i)).collect())
                .collect(),
        );
        b.iter(|| {
            for s in 0..64usize {
                let v = shape.ancestor_of_superleaf(s, 2);
                black_box(table.emulators(&v));
            }
        });
    });
}

fn bench_consensus_cycle(c: &mut Criterion) {
    c.bench_function("six_node_cycle_end_to_end", |b| {
        b.iter_batched(
            || {
                let table = EmulationTable::new(
                    LotShape::flat(2),
                    vec![
                        vec![NodeId(0), NodeId(1), NodeId(2)],
                        vec![NodeId(3), NodeId(4), NodeId(5)],
                    ],
                );
                let mut sim = Simulation::new(UniformFabric::new(Dur::micros(25)), 7);
                for i in 0..6u32 {
                    sim.add_node(Box::new(CanopusNode::new(
                        NodeId(i),
                        table.clone(),
                        CanopusConfig::default(),
                        7,
                    )));
                }
                sim.inject(
                    NodeId(0),
                    CanopusMsg::Request(ClientRequest {
                        client: canopus_sim::EXTERNAL,
                        op_id: 1,
                        op: Op::Put {
                            key: 1,
                            value: Bytes::from_static(b"12345678"),
                        },
                    }),
                    Dur::ZERO,
                );
                sim
            },
            |mut sim| {
                sim.run_for(Dur::millis(5));
                black_box(sim.node::<CanopusNode>(NodeId(0)).stats().committed_cycles)
            },
            BatchSize::SmallInput,
        );
    });
}

/// The reactor transport's hot path: wakeup-to-dispatch round trips and
/// framed throughput through one shared event loop, against a local
/// replica of the pre-refactor per-connection blocking reader thread.
fn bench_reactor_transport(c: &mut Criterion) {
    use canopus_kv::{ClientReply, OpResult};
    use canopus_net::tcp::{read_frame, spawn_node_obs, write_frame, NetObs, PeerMap};
    use canopus_net::FaultRules;
    use canopus_sim::{Context, Process};
    use std::net::{TcpListener, TcpStream};
    use std::sync::{mpsc, Arc};

    const CLIENT: NodeId = NodeId(1);
    const BATCH: u64 = 1024;

    fn request(op_id: u64) -> Bytes {
        CanopusMsg::Request(ClientRequest {
            client: CLIENT,
            op_id,
            op: Op::Put {
                key: 1,
                value: Bytes::from_static(b"12345678"),
            },
        })
        .to_bytes()
    }

    fn ack(client: NodeId, op_id: u64, ctx: &mut Context<'_, CanopusMsg>) {
        ctx.send(
            client,
            CanopusMsg::Reply(ClientReply {
                op_id,
                weight: 1,
                result: OpResult::Written,
            }),
        );
    }

    /// Replies to every request: one reply per reactor dispatch.
    struct Echo;
    impl Process<CanopusMsg> for Echo {
        fn on_message(
            &mut self,
            _from: NodeId,
            msg: CanopusMsg,
            ctx: &mut Context<'_, CanopusMsg>,
        ) {
            if let CanopusMsg::Request(req) = msg {
                ack(req.client, req.op_id, ctx);
            }
        }
        canopus_sim::impl_process_any!();
    }

    /// Counts requests, replying once per `BATCH` of them.
    struct Sink {
        seen: u64,
    }
    impl Process<CanopusMsg> for Sink {
        fn on_message(
            &mut self,
            _from: NodeId,
            msg: CanopusMsg,
            ctx: &mut Context<'_, CanopusMsg>,
        ) {
            if let CanopusMsg::Request(req) = msg {
                self.seen += 1;
                if self.seen.is_multiple_of(BATCH) {
                    ack(req.client, self.seen, ctx);
                }
            }
        }
        canopus_sim::impl_process_any!();
    }

    /// Spawns `process` as reactor node 0 plus a raw client connection to
    /// it; returns (request stream, client listener, node handle).
    fn client_and_node(
        process: Box<dyn Process<CanopusMsg>>,
        seed: u64,
    ) -> (
        TcpStream,
        TcpListener,
        canopus_net::tcp::TcpNodeHandle<CanopusMsg>,
    ) {
        let mut peers = PeerMap::new();
        let node_l = TcpListener::bind("127.0.0.1:0").unwrap();
        peers.insert(NodeId(0), node_l.local_addr().unwrap());
        let client_l = TcpListener::bind("127.0.0.1:0").unwrap();
        peers.insert(CLIENT, client_l.local_addr().unwrap());
        let addr = peers.get(NodeId(0)).unwrap();
        let handle = spawn_node_obs::<CanopusMsg>(
            NodeId(0),
            process,
            node_l,
            peers,
            seed,
            Arc::new(FaultRules::new(seed)),
            NetObs::disabled(),
        );
        let tx = TcpStream::connect(addr).unwrap();
        tx.set_nodelay(true).unwrap();
        (tx, client_l, handle)
    }

    c.bench_function("reactor_rtt_wakeup_to_dispatch", |b| {
        let (mut tx, client_l, handle) = client_and_node(Box::new(Echo), 7);
        write_frame(&mut tx, &CLIENT.to_bytes()).unwrap();
        // Prime one round trip so the reply connection exists before the
        // measured loop (the node dials back lazily on first send).
        write_frame(&mut tx, &request(0)).unwrap();
        let (mut rx, _) = client_l.accept().unwrap();
        let _ = read_frame(&mut rx); // handshake
        let _ = read_frame(&mut rx); // primed reply
        let mut op = 1u64;
        b.iter(|| {
            write_frame(&mut tx, &request(op)).unwrap();
            op += 1;
            black_box(read_frame(&mut rx).unwrap())
        });
        drop(tx);
        handle.stop();
    });

    // Frames/sec through one reactor loop: each iteration pushes `BATCH`
    // framed requests and waits for the sink's ack, so per-frame cost is
    // the reported time divided by 1024.
    c.bench_function("reactor_frames_1k_one_loop", |b| {
        let (mut tx, client_l, handle) = client_and_node(Box::new(Sink { seen: 0 }), 8);
        write_frame(&mut tx, &CLIENT.to_bytes()).unwrap();
        let frame = request(1);
        let mut rx: Option<TcpStream> = None;
        b.iter(|| {
            for _ in 0..BATCH {
                write_frame(&mut tx, &frame).unwrap();
            }
            let rx = rx.get_or_insert_with(|| {
                let (mut s, _) = client_l.accept().unwrap();
                let _ = read_frame(&mut s); // handshake
                s
            });
            black_box(read_frame(rx).unwrap())
        });
        drop(tx);
        handle.stop();
    });

    // The pre-refactor shape: a dedicated blocking reader thread on the
    // connection, same framing and decode, acking every `BATCH` frames
    // over a channel.
    c.bench_function("reader_thread_frames_1k_baseline", |b| {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        let (done_tx, done_rx) = mpsc::channel();
        let reader = std::thread::spawn(move || {
            let (mut s, _) = l.accept().unwrap();
            let _ = read_frame(&mut s); // handshake
            let mut seen = 0u64;
            while let Ok(Some(frame)) = read_frame(&mut s) {
                if CanopusMsg::from_bytes(frame).is_ok() {
                    seen += 1;
                    if seen.is_multiple_of(BATCH) && done_tx.send(()).is_err() {
                        return;
                    }
                }
            }
        });
        let mut tx = TcpStream::connect(addr).unwrap();
        tx.set_nodelay(true).unwrap();
        write_frame(&mut tx, &CLIENT.to_bytes()).unwrap();
        let frame = request(1);
        b.iter(|| {
            for _ in 0..BATCH {
                write_frame(&mut tx, &frame).unwrap();
            }
            done_rx.recv().unwrap()
        });
        drop(tx);
        reader.join().unwrap();
    });
}

criterion_group!(
    benches,
    bench_merge,
    bench_wire,
    bench_zero_copy_decode,
    bench_lot_math,
    bench_consensus_cycle,
    bench_reactor_transport
);
criterion_main!(benches);
