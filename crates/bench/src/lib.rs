//! # canopus-bench — regenerating every table and figure
//!
//! One binary per measured artifact of the paper's evaluation:
//!
//! | binary | artifact |
//! |---|---|
//! | `table1_latencies` | Table 1 (fabric validation) |
//! | `fig4_single_dc`   | Figure 4(a)+(b): single-DC scaling |
//! | `fig5_zookeeper`   | Figure 5: ZooKeeper vs ZKCanopus |
//! | `fig6_multi_dc`    | Figure 6: multi-DC scaling |
//! | `fig7_write_ratio` | Figure 7: write-ratio sweep |
//! | `ssd_persistence`  | §8.1 SSD-vs-memory logging check |
//! | `throughput_knee`  | batching/pipelining knee sweep → `BENCH_canopus.json` |
//!
//! The figure sweeps accept `--quick` for a reduced ladder (the Table 1
//! and SSD checks are already fast); `throughput_knee` reads
//! `BENCH_SWEEP=smoke|full` instead and can regression-check a committed
//! baseline with `--check`. `cargo bench` additionally runs criterion
//! micro-benchmarks of the protocol hot paths (`benches/micro.rs`).

#![warn(missing_docs)]

pub mod json;
