//! Minimal JSON emission and extraction for the recorded bench files.
//!
//! The container has no serde; the bench results schema is flat enough
//! that hand-rolled helpers beat a vendored parser. Emission goes through
//! [`JsonObject`] (which owns quoting, separators, and nesting), and the
//! CI regression gate reads numbers back with [`extract_number`], which
//! only requires that the wanted keys are globally unique in the file —
//! the `BENCH_canopus.json` schema guarantees that for every `smoke_*`
//! key it gates on.

/// Escapes a string for inclusion in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a JSON number (`null` for non-finite values).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // Round-trippable and stable; trailing precision is harmless.
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

/// An object under construction. Values are pre-rendered JSON fragments;
/// the typed `field_*` helpers render the common cases.
#[derive(Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a field holding a raw, already-rendered JSON value.
    pub fn field_raw(&mut self, key: &str, value: impl Into<String>) -> &mut Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Adds a string field.
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.field_raw(key, format!("\"{}\"", escape(value)))
    }

    /// Adds a numeric field.
    pub fn field_num(&mut self, key: &str, value: f64) -> &mut Self {
        self.field_raw(key, number(value))
    }

    /// Adds an integer field (exact, no decimal point).
    pub fn field_int(&mut self, key: &str, value: u64) -> &mut Self {
        self.field_raw(key, value.to_string())
    }

    /// Adds an array field from pre-rendered element fragments.
    pub fn field_array(&mut self, key: &str, elems: &[String]) -> &mut Self {
        self.field_raw(key, format!("[{}]", elems.join(",")))
    }

    /// Renders the object with two-space indentation of its top level.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            out.push_str(&format!("  \"{}\": {}", escape(k), v));
            if i + 1 < self.fields.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push('}');
        out
    }
}

/// Extracts the numeric value of the first `"key": <number>` occurrence.
///
/// Sound for schemas whose gated keys appear exactly once (ours); returns
/// `None` when the key is absent or its value is not a plain number.
pub fn extract_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{}\"", escape(key));
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_renders_and_extracts() {
        let mut obj = JsonObject::new();
        obj.field_int("schema_version", 1)
            .field_str("bench", "knee \"quoted\"")
            .field_num("rate", 12345.678)
            .field_array("ladder", &["1".into(), "2.5".into()]);
        let doc = obj.render();
        assert_eq!(extract_number(&doc, "schema_version"), Some(1.0));
        assert_eq!(extract_number(&doc, "rate"), Some(12345.678));
        assert_eq!(extract_number(&doc, "missing"), None);
        assert!(doc.contains("\\\"quoted\\\""));
        assert!(doc.contains("[1,2.5]"));
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(extract_number("{\"x\": null}", "x"), None);
    }

    #[test]
    fn extract_handles_negative_and_exponent() {
        assert_eq!(extract_number("{\"a\": -2.5e3}", "a"), Some(-2500.0));
        assert_eq!(extract_number("{ \"a\" :  7 }", "a"), Some(7.0));
    }
}
