//! §8.1 persistence check — SSD logging vs in-memory filesystem.
//!
//! The paper verifies that writing logs to an SSD instead of an in-memory
//! filesystem leaves throughput unchanged and adds under 0.5 ms to the
//! median completion time. We reproduce this by charging a per-batch
//! storage cost (an SSD fsync) in the cost model and comparing.
//!
//! Usage: `cargo run --release -p canopus-bench --bin ssd_persistence`

use canopus_harness::*;
use canopus_sim::Dur;

fn main() {
    let spec = DeploymentSpec::paper_single_dc(3);
    let load = LoadSpec::new(200_000.0);

    let mem_cfg = canopus_config_for(&spec);
    let mut ssd_cfg = mem_cfg.clone();
    // One fsync per proposal batch on a 2013-era SSD (Intel S3700 class).
    ssd_cfg.costs.storage_per_batch = Dur::micros(120);

    let mem = run_canopus(&spec, &load, mem_cfg, 42);
    let ssd = run_canopus(&spec, &load, ssd_cfg, 42);

    let rows = vec![
        vec![
            "in-memory fs".to_string(),
            fmt_rate(mem.achieved),
            fmt_dur(mem.median),
        ],
        vec![
            "SSD log".to_string(),
            fmt_rate(ssd.achieved),
            fmt_dur(ssd.median),
        ],
    ];
    println!("§8.1 persistence — 9 nodes, 200 k/s offered, 20% writes");
    println!(
        "{}",
        render_table(&["log target", "achieved", "median"], &rows)
    );
    let delta = ssd.median.unwrap().as_millis_f64() - mem.median.unwrap().as_millis_f64();
    let tput_ratio = ssd.achieved / mem.achieved;
    println!("median delta = {delta:.3} ms, throughput ratio = {tput_ratio:.3}");
    assert!(
        delta.abs() < 0.5,
        "paper: SSD adds <0.5ms to the median (got {delta:.3})"
    );
    assert!(
        tput_ratio > 0.95,
        "paper: throughput is not affected (got {tput_ratio:.3})"
    );
    println!("matches the paper's §8.1 persistence result. ✓");
}
