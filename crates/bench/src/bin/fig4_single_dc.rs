//! Figure 4 — single-datacenter scaling (paper §8.1.1).
//!
//! (a) Maximum throughput vs group size {9, 15, 21, 27} for Canopus at
//!     20 %, 50 %, and 100 % writes, and EPaxos with 5 ms and 2 ms batching
//!     (0 % command interference, 20 % writes).
//! (b) Median request completion time at 70 % of each maximum.
//!
//! The paper's claims this must reproduce: Canopus read-heavy throughput
//! grows with group size while EPaxos stays flat; Canopus 100 %-write
//! throughput is roughly constant; EPaxos@2ms collapses with scale; at 27
//! nodes / 20 % writes Canopus exceeds 3× EPaxos@5ms.
//!
//! Usage: `cargo run --release -p canopus-bench --bin fig4_single_dc [--quick]`

use canopus_epaxos::EpaxosConfig;
use canopus_harness::*;
use canopus_sim::Dur;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[usize] = if quick { &[3, 9] } else { &[3, 5, 7, 9] };
    let search = SearchSpec {
        start_rate: 100_000.0,
        growth: 1.7,
        latency_limit: Dur::millis(10),
        max_steps: if quick { 8 } else { 12 },
    };

    let mut rows_a = Vec::new();
    let mut rows_b = Vec::new();
    for &per_rack in sizes {
        let spec = DeploymentSpec::paper_single_dc(per_rack);
        let n = spec.node_count();
        eprintln!("== {n} nodes ==");

        let mut row_a = vec![n.to_string()];
        let mut row_b = vec![n.to_string()];

        // Canopus at three write ratios.
        for writes in [0.2, 0.5, 1.0] {
            let cfg = canopus_config_for(&spec);
            let result = find_max_throughput(
                |rate| {
                    run_canopus(
                        &spec,
                        &LoadSpec::new(rate).with_writes(writes),
                        cfg.clone(),
                        42,
                    )
                },
                &search,
            );
            let max = result.max_throughput();
            let lat = latency_at_70pct(max, |rate| {
                run_canopus(
                    &spec,
                    &LoadSpec::new(rate).with_writes(writes),
                    cfg.clone(),
                    43,
                )
            });
            eprintln!(
                "  canopus {:.0}% writes: max={} med@70%={}",
                writes * 100.0,
                fmt_rate(max),
                fmt_dur(lat.median)
            );
            row_a.push(fmt_rate(max));
            row_b.push(fmt_dur(lat.median));
        }

        // EPaxos at 5 ms and 2 ms batch durations (20% writes).
        for batch_ms in [5u64, 2] {
            let cfg = EpaxosConfig {
                batch_duration: Dur::millis(batch_ms),
                record_log: false,
                ..EpaxosConfig::default()
            };
            let result = find_max_throughput(
                |rate| run_epaxos(&spec, &LoadSpec::new(rate), cfg.clone(), 42),
                &search,
            );
            let max = result.max_throughput();
            let lat = latency_at_70pct(max, |rate| {
                run_epaxos(&spec, &LoadSpec::new(rate), cfg.clone(), 43)
            });
            eprintln!(
                "  epaxos {batch_ms}ms batch: max={} med@70%={}",
                fmt_rate(max),
                fmt_dur(lat.median)
            );
            row_a.push(fmt_rate(max));
            row_b.push(fmt_dur(lat.median));
        }
        rows_a.push(row_a);
        rows_b.push(row_b);
    }

    let headers = [
        "nodes",
        "canopus 20%w",
        "canopus 50%w",
        "canopus 100%w",
        "epaxos 5ms",
        "epaxos 2ms",
    ];
    println!("\nFigure 4(a) — maximum throughput vs group size");
    println!("{}", render_table(&headers, &rows_a));
    println!("\nFigure 4(b) — median completion time at 70% of max throughput");
    println!("{}", render_table(&headers, &rows_b));
}
