//! Shard scaling: aggregate committed throughput of the shard-parallel
//! engine vs the single-pipeline baseline.
//!
//! Drives the paper's single-DC testbed (3 racks × 3 nodes) with the
//! batched configuration (1 ms linger, 1000-op batches, 4 cycles in
//! flight) at an offered rate far past one pipeline's knee, once with a
//! 1-shard engine and once with 4 shards. Each shard is an independent
//! LOT pipeline on its own CPU lane, so the 4-shard run should commit
//! close to 4× the baseline; the bench *asserts* at least 3× (the
//! acceptance bar) and records per-shard committed rates, including a
//! Zipf-skewed split showing the hot-shard imbalance the chaos suite
//! exercises.
//!
//! Results are spliced into `BENCH_canopus.json` as the top-level
//! `"sharded"` object; `--check` fails on a >20 % aggregate regression
//! against the committed file.
//!
//! Usage:
//!   cargo run --release -p canopus-bench --bin shard_scale -- \
//!       [--out BENCH_canopus.json] [--check BENCH_canopus.json]

use canopus::{CanopusConfig, ShardEngine};
use canopus_bench::json::{extract_number, JsonObject};
use canopus_harness::{
    build_sharded_canopus_obs, canopus_config_for, fmt_rate, ClusterObs, DeploymentSpec, LoadSpec,
};
use canopus_sim::Dur;

/// Allowed relative drop of the 4-shard aggregate before `--check` fails.
const REGRESSION_TOLERANCE: f64 = 0.20;

/// Required 4-shard / 1-shard aggregate committed-throughput ratio.
const MIN_SPEEDUP: f64 = 3.0;

/// Offered rate for both runs: far past one batched pipeline's knee, so
/// 1-shard run is capacity-bound and the 4-shard run has headroom to
/// show its parallelism.
const OFFERED_RATE: f64 = 16_000_000.0;

/// Zipf exponent of the skewed split (shard 0 hottest).
const SKEW_THETA: f64 = 0.99;

const BENCH_FLIGHT_CAP: usize = 64;

fn batched(spec: &DeploymentSpec) -> (CanopusConfig, u32) {
    let mut cfg = canopus_config_for(spec);
    cfg.max_batch = 1000;
    cfg.max_linger = Dur::millis(1);
    cfg.max_pipeline_depth = 4;
    (cfg, 1000)
}

struct ShardMeasured {
    /// Node 0's committed weight per second, summed over all shards.
    aggregate_per_sec: f64,
    /// The same, broken out per shard.
    per_shard_per_sec: Vec<f64>,
}

fn measure(spec: &DeploymentSpec, load: &LoadSpec, seed: u64) -> ShardMeasured {
    let (cfg, client_batch) = batched(spec);
    let load = load.clone().with_client_batch(client_batch);
    let mut cluster = build_sharded_canopus_obs(
        spec,
        &load,
        cfg,
        load.shards,
        seed,
        ClusterObs::on(BENCH_FLIGHT_CAP),
    );
    cluster.sim.run_for(load.warmup + load.duration);
    let secs = (load.warmup + load.duration).as_secs_f64();
    let engine = cluster
        .sim
        .node_any(cluster.nodes[0])
        .downcast_ref::<ShardEngine>()
        .expect("shard engine");
    let per_shard: Vec<f64> = (0..engine.shard_count())
        .map(|s| engine.shard(s).stats().committed_weight as f64 / secs)
        .collect();
    ShardMeasured {
        aggregate_per_sec: per_shard.iter().sum(),
        per_shard_per_sec: per_shard,
    }
}

/// Replaces (or appends) the top-level `"sharded"` object in the recorded
/// bench document (same brace-matching splice as the live_scale section).
fn splice_sharded(doc: &str, section: &str) -> String {
    let mut doc = doc.trim_end().to_string();
    if let Some(start) = doc.find("\"sharded\"") {
        let cut_start = doc[..start].rfind(',').unwrap_or(start);
        let open = start + doc[start..].find('{').expect("sharded object");
        let mut depth = 0usize;
        let mut end = open;
        for (i, c) in doc[open..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = open + i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        doc.replace_range(cut_start..end, "");
    }
    let close = doc.rfind('}').expect("bench file is a JSON object");
    let head = doc[..close].trim_end();
    let sep = if head.ends_with('{') { "" } else { "," };
    let indented = section.replace('\n', "\n  ");
    format!("{head}{sep}\n  \"sharded\": {indented}\n}}\n")
}

fn rates_array(rates: &[f64]) -> Vec<String> {
    rates.iter().map(|r| format!("{r:.0}")).collect()
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = Some(args.next().expect("--out takes a path")),
            "--check" => check_path = Some(args.next().expect("--check takes a path")),
            other => panic!("unknown argument {other}"),
        }
    }

    let spec = DeploymentSpec::paper_single_dc(3);
    let load = |shards: u16| {
        let mut l = LoadSpec::new(OFFERED_RATE).with_shards(shards);
        l.warmup = Dur::millis(100);
        l.duration = Dur::millis(400);
        l
    };

    // A single pipeline collapses when offered far past its knee (ingest
    // alone overcommits its one lane), so the baseline is its *best*
    // operating point across the sweep rate and half of it — comparing
    // the shard engine against a thrashing baseline would overstate the
    // speedup.
    let mut one = measure(&spec, &load(1), 42);
    let mut one_rate = OFFERED_RATE;
    eprintln!(
        "== 1 shard @ {} offered ==   committed {}",
        fmt_rate(OFFERED_RATE),
        fmt_rate(one.aggregate_per_sec)
    );
    let mut half = load(1);
    half.total_rate = OFFERED_RATE / 2.0;
    let one_half = measure(&spec, &half, 42);
    eprintln!(
        "== 1 shard @ {} offered ==   committed {}",
        fmt_rate(OFFERED_RATE / 2.0),
        fmt_rate(one_half.aggregate_per_sec)
    );
    if one_half.aggregate_per_sec > one.aggregate_per_sec {
        one = one_half;
        one_rate = OFFERED_RATE / 2.0;
    }

    eprintln!("== 4 shards @ {} offered ==", fmt_rate(OFFERED_RATE));
    let four = measure(&spec, &load(4), 42);
    eprintln!(
        "   committed {} aggregate, per shard: [{}]",
        fmt_rate(four.aggregate_per_sec),
        four.per_shard_per_sec
            .iter()
            .map(|r| fmt_rate(*r))
            .collect::<Vec<_>>()
            .join(", ")
    );

    let speedup = four.aggregate_per_sec / one.aggregate_per_sec;
    eprintln!("speedup: {speedup:.2}x (bar: {MIN_SPEEDUP:.1}x)");
    assert!(
        speedup >= MIN_SPEEDUP,
        "4-shard aggregate is only {speedup:.2}x the single pipeline \
         ({:.0}/s vs {:.0}/s); the shard-parallel engine must deliver {MIN_SPEEDUP}x",
        four.aggregate_per_sec,
        one.aggregate_per_sec,
    );

    eprintln!("== 4 shards, Zipf theta={SKEW_THETA} ==");
    let skewed = measure(&spec, &load(4).with_shard_skew(SKEW_THETA), 42);
    eprintln!(
        "   committed {} aggregate, per shard: [{}]",
        fmt_rate(skewed.aggregate_per_sec),
        skewed
            .per_shard_per_sec
            .iter()
            .map(|r| fmt_rate(*r))
            .collect::<Vec<_>>()
            .join(", ")
    );
    // The skew must actually land. Committed throughput is not monotone
    // in offered load (the hottest shard can be pushed past its knee),
    // so assert on the cold end, which stays under the knee: the shard
    // with the smallest Zipf share commits the least, and the per-shard
    // spread is far wider than the uniform run's.
    let coldest = *skewed.per_shard_per_sec.last().expect("4 shards");
    assert!(
        skewed
            .per_shard_per_sec
            .iter()
            .all(|&r| r >= coldest * 0.999),
        "Zipf split should make the last shard the coldest: {:?}",
        skewed.per_shard_per_sec
    );
    let spread = |rates: &[f64]| {
        rates.iter().cloned().fold(0.0f64, f64::max)
            / rates.iter().cloned().fold(f64::INFINITY, f64::min)
    };
    assert!(
        spread(&skewed.per_shard_per_sec) > spread(&four.per_shard_per_sec) * 1.1,
        "Zipf split should widen the per-shard spread: skewed {:?} vs uniform {:?}",
        skewed.per_shard_per_sec,
        four.per_shard_per_sec
    );

    let mut section = JsonObject::new();
    section
        .field_num("offered_rate_per_sec", OFFERED_RATE)
        .field_int("shards", 4)
        .field_num("sharded_1_offered_rate_per_sec", one_rate)
        .field_num("sharded_1_committed_ops_per_sec", one.aggregate_per_sec)
        .field_num("sharded_4_committed_ops_per_sec", four.aggregate_per_sec)
        .field_num("sharded_speedup", speedup)
        .field_array(
            "per_shard_committed_ops_per_sec",
            &rates_array(&four.per_shard_per_sec),
        )
        .field_num("skew_theta", SKEW_THETA)
        .field_num(
            "skewed_aggregate_committed_ops_per_sec",
            skewed.aggregate_per_sec,
        )
        .field_array(
            "per_shard_committed_skewed_ops_per_sec",
            &rates_array(&skewed.per_shard_per_sec),
        );
    let rendered = section.render();

    if let Some(path) = &check_path {
        let baseline = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let committed = extract_number(&baseline, "sharded_4_committed_ops_per_sec")
            .expect("baseline lacks a sharded section: run with --out first");
        if four.aggregate_per_sec < committed * (1.0 - REGRESSION_TOLERANCE) {
            eprintln!(
                "sharded aggregate regressed: fresh {:.0}/s vs committed {committed:.0}/s \
                 (> {:.0}% drop)",
                four.aggregate_per_sec,
                REGRESSION_TOLERANCE * 100.0
            );
            std::process::exit(1);
        }
        eprintln!(
            "check sharded_4_committed_ops_per_sec: fresh {:.0}/s vs committed {committed:.0}/s ok",
            four.aggregate_per_sec
        );
    }

    match &out_path {
        Some(path) => {
            let doc = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("cannot read bench doc {path}: {e}"));
            std::fs::write(path, splice_sharded(&doc, &rendered)).expect("write bench doc");
            eprintln!("spliced sharded section into {path}");
        }
        None => println!("{rendered}"),
    }
}
