//! Figure 7 — write-ratio sensitivity in the wide area (paper §8.2.1).
//!
//! Three datacenters, nine nodes: Canopus at 1 %, 20 %, and 50 % writes vs
//! EPaxos (whose throughput is write-ratio-insensitive because it
//! disseminates reads too; shown at 20 %).
//!
//! Claims to reproduce: Canopus throughput rises as the write ratio falls
//! (paper: 3.6 M at 1 % vs 2.65 M at 20 %); even at 50 % writes Canopus
//! sustains ≥2.5× EPaxos.
//!
//! Usage: `cargo run --release -p canopus-bench --bin fig7_write_ratio [--quick]`

use canopus_epaxos::EpaxosConfig;
use canopus_harness::*;
use canopus_sim::Dur;

fn wan_load(rate: f64, writes: f64) -> LoadSpec {
    let mut load = LoadSpec::new(rate).with_writes(writes);
    load.warmup = Dur::millis(900);
    load.duration = Dur::millis(1100);
    load
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let spec = DeploymentSpec::paper_multi_dc(3);
    let search = SearchSpec {
        start_rate: 100_000.0,
        growth: 1.8,
        latency_limit: Dur::millis(500),
        max_steps: if quick { 7 } else { 10 },
    };

    let mut rows = Vec::new();
    let cfg = canopus_config_for(&spec);
    for writes in [0.01, 0.2, 0.5] {
        let result = find_max_throughput(
            |rate| run_canopus(&spec, &wan_load(rate, writes), cfg.clone(), 42),
            &search,
        );
        let max = result.max_throughput();
        eprintln!("canopus {:.0}% writes: {}", writes * 100.0, fmt_rate(max));
        rows.push(vec![
            format!("canopus {:.0}% writes", writes * 100.0),
            fmt_rate(max),
        ]);
    }

    let ecfg = EpaxosConfig {
        record_log: false,
        ..EpaxosConfig::default()
    };
    let epaxos = find_max_throughput(
        |rate| run_epaxos(&spec, &wan_load(rate, 0.2), ecfg.clone(), 42),
        &search,
    );
    rows.push(vec![
        "epaxos 20% writes".to_string(),
        fmt_rate(epaxos.max_throughput()),
    ]);

    println!("\nFigure 7 — max throughput, 3 datacenters, by write ratio");
    println!(
        "{}",
        render_table(&["configuration", "max throughput"], &rows)
    );
}
