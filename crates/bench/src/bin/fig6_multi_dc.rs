//! Figure 6 — multi-datacenter scaling (paper §8.2).
//!
//! Median completion time vs throughput for 3, 5, and 7 datacenters
//! (3 nodes each, Table-1 latencies), Canopus (pipelined, 5 ms cycles)
//! vs EPaxos (5 ms batches), 20 % writes. The paper marks the throughput
//! where latency reaches 1.5× the base (low-load) latency.
//!
//! Claims to reproduce: Canopus reaches millions of requests/second and
//! *gains* throughput with more datacenters (the paper: ≈2.6/3.8/4.7 M);
//! EPaxos saturates 4×–13.6× lower.
//!
//! Usage: `cargo run --release -p canopus-bench --bin fig6_multi_dc [--quick]`

use canopus_epaxos::EpaxosConfig;
use canopus_harness::*;
use canopus_sim::Dur;

fn wan_load(rate: f64) -> LoadSpec {
    let mut load = LoadSpec::new(rate);
    // WAN cycles take ~a round trip; measure over a longer window.
    load.warmup = Dur::millis(900);
    load.duration = Dur::millis(1100);
    load
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sites_list: &[usize] = if quick { &[3] } else { &[3, 5, 7] };
    let search = SearchSpec {
        start_rate: 100_000.0,
        growth: 1.8,
        // WAN base latency is ~a round trip; the knee criterion follows the
        // paper: saturation relative to base, not an absolute 10 ms.
        latency_limit: Dur::millis(500),
        max_steps: if quick { 7 } else { 10 },
    };

    let mut summary = Vec::new();
    for &sites in sites_list {
        let spec = DeploymentSpec::paper_multi_dc(sites);
        println!(
            "\n===== {sites} datacenters ({} nodes), base RTT bound {} =====",
            spec.node_count(),
            spec.max_rtt()
        );

        let cfg = canopus_config_for(&spec);
        let canopus = find_max_throughput(
            |rate| run_canopus(&spec, &wan_load(rate), cfg.clone(), 42),
            &search,
        );
        println!("\nCanopus ladder:");
        let mut rows = Vec::new();
        for r in &canopus.ladder {
            rows.push(vec![
                fmt_rate(r.offered),
                fmt_rate(r.achieved),
                fmt_dur(r.median),
                fmt_dur(r.p95),
            ]);
        }
        println!(
            "{}",
            render_table(&["offered", "achieved", "median", "p95"], &rows)
        );

        let ecfg = EpaxosConfig {
            record_log: false,
            ..EpaxosConfig::default()
        };
        let epaxos = find_max_throughput(
            |rate| run_epaxos(&spec, &wan_load(rate), ecfg.clone(), 42),
            &search,
        );
        println!("EPaxos ladder:");
        let mut rows = Vec::new();
        for r in &epaxos.ladder {
            rows.push(vec![
                fmt_rate(r.offered),
                fmt_rate(r.achieved),
                fmt_dur(r.median),
                fmt_dur(r.p95),
            ]);
        }
        println!(
            "{}",
            render_table(&["offered", "achieved", "median", "p95"], &rows)
        );

        // 1.5x-base-latency crossings, as in the paper's vertical lines.
        let base = canopus
            .ladder
            .first()
            .and_then(|r| r.median)
            .unwrap_or(Dur::ZERO);
        let knee = canopus
            .ladder
            .iter()
            .take_while(|r| {
                r.median
                    .is_some_and(|m| m.as_nanos() <= base.as_nanos() * 3 / 2)
            })
            .last()
            .map(|r| r.achieved)
            .unwrap_or(0.0);
        let c_max = canopus.max_throughput();
        let e_max = epaxos.max_throughput();
        println!(
            "summary: canopus max {} (1.5x-base knee at {}), epaxos max {} => {:.1}x",
            fmt_rate(c_max),
            fmt_rate(knee),
            fmt_rate(e_max),
            if e_max > 0.0 { c_max / e_max } else { f64::NAN },
        );
        summary.push(vec![
            sites.to_string(),
            fmt_rate(c_max),
            fmt_rate(e_max),
            format!("{:.1}x", if e_max > 0.0 { c_max / e_max } else { f64::NAN }),
        ]);
    }
    println!("\nFigure 6 summary — max throughput per deployment");
    println!(
        "{}",
        render_table(&["DCs", "canopus", "epaxos", "ratio"], &summary)
    );
}
