//! Table 1 — inter-datacenter latencies (paper §8.2).
//!
//! The WAN matrix is a substrate *input*; this binary validates the fabric
//! by measuring round-trip times inside the simulator (ping-pong processes
//! in each datacenter) and printing the measured matrix next to the
//! configured one. Every cell must match Table 1 within the per-hop NIC
//! serialization slack.
//!
//! Usage: `cargo run --release -p canopus-bench --bin table1_latencies`

use canopus_harness::render_table;
use canopus_net::{ClosFabric, LinkParams, Topology, WanMatrix};
use canopus_sim::{impl_process_any, Context, Dur, NodeId, Payload, Process, Simulation, Time};

#[derive(Debug)]
enum PingMsg {
    Ping { seq: u64 },
    Pong { seq: u64 },
}

impl Payload for PingMsg {
    fn wire_size(&self) -> usize {
        64
    }
}

/// Sends one ping to each peer and records the RTT.
struct Pinger {
    peers: Vec<NodeId>,
    sent: std::collections::BTreeMap<u64, (NodeId, Time)>,
    rtts: Vec<(NodeId, Dur)>,
    next_seq: u64,
}

impl Process<PingMsg> for Pinger {
    fn on_start(&mut self, ctx: &mut Context<'_, PingMsg>) {
        for peer in self.peers.clone() {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.sent.insert(seq, (peer, ctx.now()));
            ctx.send(peer, PingMsg::Ping { seq });
        }
    }
    fn on_message(&mut self, from: NodeId, msg: PingMsg, ctx: &mut Context<'_, PingMsg>) {
        match msg {
            PingMsg::Ping { seq } => ctx.send(from, PingMsg::Pong { seq }),
            PingMsg::Pong { seq } => {
                if let Some((peer, at)) = self.sent.remove(&seq) {
                    self.rtts.push((peer, ctx.now().saturating_since(at)));
                }
            }
        }
    }
    impl_process_any!();
}

fn main() {
    let wan = WanMatrix::paper_table1();
    let sites = wan.len();
    let topo = Topology::multi_dc(wan.clone(), 1, LinkParams::default());
    let mut sim = Simulation::new(ClosFabric::new(topo), 1);
    let all: Vec<NodeId> = (0..sites as u32).map(NodeId).collect();
    for i in 0..sites as u32 {
        let peers = all.iter().copied().filter(|&p| p != NodeId(i)).collect();
        sim.add_node(Box::new(Pinger {
            peers,
            sent: Default::default(),
            rtts: Vec::new(),
            next_seq: 0,
        }));
    }
    sim.run_for(Dur::secs(2));

    let mut headers = vec!["RTT (ms)"];
    for s in wan.sites() {
        headers.push(wan.name(s));
    }
    let mut rows = Vec::new();
    let mut worst_err = 0.0f64;
    for (i, a) in wan.sites().enumerate() {
        let pinger = sim.node::<Pinger>(NodeId(i as u32));
        let mut row = vec![wan.name(a).to_string()];
        for (j, b) in wan.sites().enumerate() {
            if i == j {
                row.push(format!("({:.2})", wan.rtt(a, b).as_millis_f64()));
                continue;
            }
            let measured = pinger
                .rtts
                .iter()
                .find(|(p, _)| *p == NodeId(j as u32))
                .map(|(_, d)| *d)
                .expect("pong received");
            let expected = wan.rtt(a, b);
            let err_ms = (measured.as_millis_f64() - expected.as_millis_f64()).abs();
            worst_err = worst_err.max(err_ms);
            row.push(format!("{:.2}", measured.as_millis_f64()));
        }
        rows.push(row);
    }
    println!("Table 1 — measured RTTs in the simulated fabric");
    println!("{}", render_table(&headers, &rows));
    println!("worst deviation from the paper's matrix: {worst_err:.3} ms");
    assert!(
        worst_err < 0.5,
        "fabric deviates from Table 1 by {worst_err} ms"
    );
    println!("fabric matches Table 1. ✓");
}
