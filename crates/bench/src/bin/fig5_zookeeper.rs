//! Figure 5 — ZooKeeper vs ZKCanopus (paper §8.1.2).
//!
//! Median request completion time vs offered throughput at 9 and 27 nodes.
//! ZooKeeper: Zab with a leader + five followers, remaining nodes are
//! observers (the paper's configuration). ZKCanopus: the same deployment
//! and workload served by Canopus with every node a full participant.
//!
//! Claims to reproduce: ZooKeeper's centralized leader caps throughput at
//! a few hundred thousand requests/second regardless of group size;
//! ZKCanopus scales far beyond (the paper reports >16× at read-heavy
//! load); at light load ZKCanopus pays a small (sub-millisecond to
//! low-millisecond) latency premium over ZooKeeper's direct broadcast.
//!
//! Usage: `cargo run --release -p canopus-bench --bin fig5_zookeeper [--quick]`

use canopus_harness::*;
use canopus_sim::Dur;
use canopus_zab::ZabConfig;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[usize] = if quick { &[3] } else { &[3, 9] };
    let search = SearchSpec {
        start_rate: 30_000.0,
        growth: 1.7,
        latency_limit: Dur::millis(10),
        max_steps: if quick { 8 } else { 12 },
    };

    for &per_rack in sizes {
        let spec = DeploymentSpec::paper_single_dc(per_rack);
        let n = spec.node_count();
        println!("\n===== {n} nodes =====");

        // ZooKeeper (Zab, leader + 5 followers, rest observers).
        let zab_cfg = ZabConfig {
            participants: 6.min(n),
            ..ZabConfig::default()
        };
        let zk = find_max_throughput(
            |rate| run_zab(&spec, &LoadSpec::new(rate), zab_cfg.clone(), 42),
            &search,
        );

        // ZKCanopus (all nodes participate).
        let cfg = canopus_config_for(&spec);
        let zkc = find_max_throughput(
            |rate| run_canopus(&spec, &LoadSpec::new(rate), cfg.clone(), 42),
            &search,
        );

        println!("\nZooKeeper latency/throughput ladder:");
        let mut rows = Vec::new();
        for r in &zk.ladder {
            rows.push(vec![
                fmt_rate(r.offered),
                fmt_rate(r.achieved),
                fmt_dur(r.median),
                fmt_dur(r.p95),
            ]);
        }
        println!(
            "{}",
            render_table(&["offered", "achieved", "median", "p95"], &rows)
        );

        println!("ZKCanopus latency/throughput ladder:");
        let mut rows = Vec::new();
        for r in &zkc.ladder {
            rows.push(vec![
                fmt_rate(r.offered),
                fmt_rate(r.achieved),
                fmt_dur(r.median),
                fmt_dur(r.p95),
            ]);
        }
        println!(
            "{}",
            render_table(&["offered", "achieved", "median", "p95"], &rows)
        );

        let zk_max = zk.max_throughput();
        let zkc_max = zkc.max_throughput();
        println!(
            "summary: ZooKeeper max = {}, ZKCanopus max = {} ({:.1}x)",
            fmt_rate(zk_max),
            fmt_rate(zkc_max),
            if zk_max > 0.0 {
                zkc_max / zk_max
            } else {
                f64::NAN
            },
        );
        // Low-load latency premium (first ladder point of each).
        if let (Some(zk0), Some(zkc0)) = (zk.ladder.first(), zkc.ladder.first()) {
            if let (Some(a), Some(b)) = (zk0.median, zkc0.median) {
                println!(
                    "low-load medians: ZooKeeper {}, ZKCanopus {} (premium {:.2} ms)",
                    fmt_dur(Some(a)),
                    fmt_dur(Some(b)),
                    b.as_millis_f64() - a.as_millis_f64(),
                );
            }
        }
    }
}
