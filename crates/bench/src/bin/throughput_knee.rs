//! Throughput knee: batching + pipelining vs the unbatched baseline.
//!
//! Sweeps offered load on the paper's single-DC testbed (§8.1, 3 racks ×
//! 3 nodes) until the 10 ms saturation knee, for two Canopus
//! configurations:
//!
//! * **unbatched** — every client request is its own wire-level op
//!   (`client_max_batch = 1`), every op its own consensus proposal
//!   (`max_batch = 1`, no linger window), one cycle in flight;
//! * **batched** — 1 ms super-leaf batching windows, 1000-request
//!   overflow, 4 cycles in flight, clients aggregating up to 1000
//!   requests per op.
//!
//! Results — knees, per-node committed-op rates, the ladders, the Table-1
//! fabric validation, and a deterministic fixed-rate *smoke* section — are
//! emitted as schema-versioned JSON (committed as `BENCH_canopus.json` at
//! the repo root). The smoke numbers come from fixed seeds on the
//! deterministic simulator, so they reproduce bit-for-bit on any machine;
//! CI regenerates them with `BENCH_SWEEP=smoke` and `--check` fails the
//! build on a >20 % throughput regression against the committed file.
//!
//! Usage:
//!   cargo run --release -p canopus-bench --bin throughput_knee -- \
//!       [--out PATH] [--check BASELINE.json]
//!   BENCH_SWEEP=smoke|full   (default full; smoke skips the knee sweep)

use canopus::{CanopusConfig, CanopusMsg, CanopusNode};
use canopus_bench::json::{escape, extract_number, number, JsonObject};
use canopus_harness::{
    build_canopus_obs, canopus_config_for, fmt_rate, ClusterObs, DeploymentSpec, LoadSpec,
    RunResult, SearchSpec,
};
use canopus_net::{ClosFabric, LinkParams, Topology, WanMatrix};
use canopus_obs::{bucket_bounds, HistogramSnapshot, Snapshot};
use canopus_sim::{impl_process_any, Context, Dur, NodeId, Payload, Process, Simulation, Time};
use canopus_workload::{LatencyRecorder, OpenLoopClient};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The schema of the emitted JSON. Bump when keys change meaning.
const SCHEMA_VERSION: u64 = 1;

/// Allowed relative throughput drop before `--check` fails.
const REGRESSION_TOLERANCE: f64 = 0.20;

/// Offered rates of the deterministic smoke runs. Each config is driven
/// just under its own measured knee (from the committed full sweep:
/// unbatched saturates near 0.8 M/s offered, batched near 2.1 M/s), so
/// the recorded committed-op rates are capacity proxies — any protocol
/// slowdown pushes the config past its knee and the number collapses,
/// which is exactly what the CI regression gate wants to catch.
const SMOKE_RATE_UNBATCHED: f64 = 780_000.0;
const SMOKE_RATE_BATCHED: f64 = 2_000_000.0;

/// Flight-ring capacity for instrumented bench runs. The bench only
/// reads registries, but `ClusterObs::on` sizes the ring too.
const BENCH_FLIGHT_CAP: usize = 64;

/// One measured point, with the node-side commit rate the harness's
/// `RunResult` does not carry.
#[derive(Clone, Debug)]
struct Measured {
    run: RunResult,
    /// Node 0's committed weight per second of total run time — the
    /// "single-node committed ops/sec" measure the perf trajectory tracks.
    node0_committed_per_sec: f64,
    /// Merged cluster metrics at the end of the run (empty when the point
    /// was measured with observability off).
    metrics: Snapshot,
}

fn measure(
    spec: &DeploymentSpec,
    load: &LoadSpec,
    cfg: CanopusConfig,
    seed: u64,
    obs: ClusterObs,
) -> Measured {
    let mut cluster = build_canopus_obs(spec, load, cfg, seed, obs);
    cluster.sim.run_for(load.warmup + load.duration);
    let mut writes = LatencyRecorder::default();
    let mut reads = LatencyRecorder::default();
    let mut rng = SmallRng::seed_from_u64(0xA77E);
    for &c in &cluster.clients {
        let client = cluster.sim.node::<OpenLoopClient<CanopusMsg>>(c);
        writes.merge(&client.writes, &mut rng);
        reads.merge(&client.reads, &mut rng);
    }
    let mut total = writes.clone();
    total.merge(&reads, &mut rng);
    let healthy = cluster
        .nodes
        .iter()
        .all(|&n| cluster.sim.node::<CanopusNode>(n).stats().committed_cycles > 0);
    let node0 = cluster.sim.node::<CanopusNode>(cluster.nodes[0]).stats();
    let run = RunResult {
        offered: load.total_rate,
        achieved: total.completed() as f64 / load.duration.as_secs_f64(),
        median: total.median(),
        p95: total.percentile(95.0),
        mean: total.mean(),
        write_median: writes.median(),
        read_median: reads.median(),
        healthy,
    };
    Measured {
        run,
        node0_committed_per_sec: node0.committed_weight as f64
            / (load.warmup + load.duration).as_secs_f64(),
        metrics: cluster.metrics_snapshot(),
    }
}

// -------------------------------------------------------------------
// The `metrics` section: the observability evidence behind each number.
// -------------------------------------------------------------------

/// Compact JSON for one histogram: count, sum, mean, and the non-empty
/// log₂ buckets as `[lo, hi, samples]` triples.
fn hist_json(h: &HistogramSnapshot) -> String {
    let mut out = format!("{{\"count\":{},\"sum\":{}", h.count, h.sum);
    if let Some(mean) = h.mean() {
        out.push_str(&format!(",\"mean\":{}", number(mean)));
    }
    out.push_str(",\"buckets\":[");
    for (i, &(b, n)) in h.buckets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (lo, hi) = bucket_bounds(b);
        out.push_str(&format!("[{lo},{hi},{n}]"));
    }
    out.push_str("]}");
    out
}

/// The `metrics` object recorded next to each measured point: batch-size
/// and pipeline-occupancy histograms (summed over all nodes) plus wire
/// bytes broken down by message type. Empty object when the point was
/// measured with observability off.
fn metrics_json(snap: &Snapshot) -> String {
    let mut parts = Vec::new();
    for (key, name) in [
        ("batch_ops", "canopus.batch_ops"),
        ("batch_weight", "canopus.batch_weight"),
        ("pipeline_occupancy", "canopus.pipeline_occupancy"),
    ] {
        if let Some(h) = snap.histogram(name) {
            parts.push(format!("\"{key}\":{}", hist_json(h)));
        }
    }
    let bytes: Vec<String> = snap
        .counters
        .iter()
        .filter_map(|(name, v)| {
            name.strip_prefix("net.sent.bytes.")
                .map(|kind| format!("\"{}\":{v}", escape(kind)))
        })
        .collect();
    if !bytes.is_empty() {
        parts.push(format!("\"bytes_by_msg_type\":{{{}}}", bytes.join(",")));
    }
    format!("{{{}}}", parts.join(","))
}

/// The two compared configurations, as (node config, client batch cap).
fn unbatched(spec: &DeploymentSpec) -> (CanopusConfig, u32) {
    let mut cfg = canopus_config_for(spec);
    cfg.max_batch = 1;
    cfg.max_linger = Dur::ZERO;
    cfg.max_pipeline_depth = 1;
    (cfg, 1)
}

fn batched(spec: &DeploymentSpec) -> (CanopusConfig, u32) {
    let mut cfg = canopus_config_for(spec);
    cfg.max_batch = 1000;
    cfg.max_linger = Dur::millis(1);
    cfg.max_pipeline_depth = 4;
    (cfg, 1000)
}

/// Geometric ladder to the knee, keeping the node-side rates.
fn knee_sweep(
    spec: &DeploymentSpec,
    cfg: &CanopusConfig,
    client_batch: u32,
    search: &SearchSpec,
    seed: u64,
) -> (Vec<Measured>, Option<Measured>) {
    let mut ladder = Vec::new();
    let mut best: Option<Measured> = None;
    let mut rate = search.start_rate;
    for _ in 0..search.max_steps {
        let load = LoadSpec::new(rate).with_client_batch(client_batch);
        let m = measure(
            spec,
            &load,
            cfg.clone(),
            seed,
            ClusterObs::on(BENCH_FLIGHT_CAP),
        );
        let sustainable = m.run.is_sustainable(search.latency_limit);
        eprintln!(
            "  offered={} achieved={} median={:?} node0={}/s{}",
            fmt_rate(m.run.offered),
            fmt_rate(m.run.achieved),
            m.run.median,
            fmt_rate(m.node0_committed_per_sec),
            if sustainable { "" } else { "  [knee]" },
        );
        ladder.push(m.clone());
        if sustainable {
            best = Some(m);
            rate *= search.growth;
        } else {
            break;
        }
    }
    (ladder, best)
}

fn ladder_json(ladder: &[Measured]) -> Vec<String> {
    ladder
        .iter()
        .map(|m| {
            let mut o = JsonObject::new();
            o.field_num("offered_per_sec", m.run.offered)
                .field_num("achieved_per_sec", m.run.achieved)
                .field_num(
                    "median_us",
                    m.run
                        .median
                        .map(|d| d.as_nanos() as f64 / 1e3)
                        .unwrap_or(f64::NAN),
                )
                .field_num("node0_committed_per_sec", m.node0_committed_per_sec)
                .field_raw("metrics", metrics_json(&m.metrics));
            o.render().replace('\n', " ")
        })
        .collect()
}

// -------------------------------------------------------------------
// Table-1 fabric validation (the same ping-pong as `table1_latencies`,
// reduced to the numbers the JSON records).
// -------------------------------------------------------------------

#[derive(Debug)]
enum PingMsg {
    Ping { seq: u64 },
    Pong { seq: u64 },
}

impl Payload for PingMsg {
    fn wire_size(&self) -> usize {
        64
    }
}

struct Pinger {
    peers: Vec<NodeId>,
    sent: std::collections::BTreeMap<u64, (NodeId, Time)>,
    rtts: Vec<(NodeId, Dur)>,
    next_seq: u64,
}

impl Process<PingMsg> for Pinger {
    fn on_start(&mut self, ctx: &mut Context<'_, PingMsg>) {
        for peer in self.peers.clone() {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.sent.insert(seq, (peer, ctx.now()));
            ctx.send(peer, PingMsg::Ping { seq });
        }
    }
    fn on_message(&mut self, from: NodeId, msg: PingMsg, ctx: &mut Context<'_, PingMsg>) {
        match msg {
            PingMsg::Ping { seq } => ctx.send(from, PingMsg::Pong { seq }),
            PingMsg::Pong { seq } => {
                if let Some((peer, at)) = self.sent.remove(&seq) {
                    self.rtts.push((peer, ctx.now().saturating_since(at)));
                }
            }
        }
    }
    impl_process_any!();
}

/// Measures the Table-1 RTT matrix in the fabric; returns the measured
/// rows (ms) and the worst deviation from the paper's matrix (ms).
fn table1_measured() -> (Vec<Vec<f64>>, f64) {
    let wan = WanMatrix::paper_table1();
    let sites = wan.len();
    let topo = Topology::multi_dc(wan.clone(), 1, LinkParams::default());
    let mut sim = Simulation::new(ClosFabric::new(topo), 1);
    let all: Vec<NodeId> = (0..sites as u32).map(NodeId).collect();
    for i in 0..sites as u32 {
        let peers = all.iter().copied().filter(|&p| p != NodeId(i)).collect();
        sim.add_node(Box::new(Pinger {
            peers,
            sent: Default::default(),
            rtts: Vec::new(),
            next_seq: 0,
        }));
    }
    sim.run_for(Dur::secs(2));

    let mut rows = Vec::new();
    let mut worst = 0.0f64;
    for (i, a) in wan.sites().enumerate() {
        let pinger = sim.node::<Pinger>(NodeId(i as u32));
        let mut row = Vec::with_capacity(sites);
        for (j, b) in wan.sites().enumerate() {
            if i == j {
                row.push(0.0);
                continue;
            }
            let measured = pinger
                .rtts
                .iter()
                .find(|(p, _)| *p == NodeId(j as u32))
                .map(|(_, d)| d.as_millis_f64())
                .expect("pong received");
            worst = worst.max((measured - wan.rtt(a, b).as_millis_f64()).abs());
            row.push(measured);
        }
        rows.push(row);
    }
    (rows, worst)
}

// -------------------------------------------------------------------

fn check_baseline(doc: &str, fresh_unbatched: f64, fresh_batched: f64) -> Result<(), String> {
    let version = extract_number(doc, "schema_version")
        .ok_or("baseline is malformed: no numeric schema_version")?;
    if version != SCHEMA_VERSION as f64 {
        return Err(format!(
            "baseline has schema_version {version}, expected {SCHEMA_VERSION}"
        ));
    }
    for (key, fresh) in [
        ("smoke_unbatched_committed_ops_per_sec", fresh_unbatched),
        ("smoke_batched_committed_ops_per_sec", fresh_batched),
    ] {
        let committed =
            extract_number(doc, key).ok_or_else(|| format!("baseline lacks numeric {key}"))?;
        if fresh < committed * (1.0 - REGRESSION_TOLERANCE) {
            return Err(format!(
                "{key} regressed: fresh {fresh:.0}/s vs committed {committed:.0}/s \
                 (> {:.0}% drop)",
                REGRESSION_TOLERANCE * 100.0
            ));
        }
        eprintln!("check {key}: fresh {fresh:.0}/s vs committed {committed:.0}/s ok");
    }
    Ok(())
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = Some(args.next().expect("--out takes a path")),
            "--check" => check_path = Some(args.next().expect("--check takes a path")),
            other => panic!("unknown argument {other}"),
        }
    }
    let full = std::env::var("BENCH_SWEEP")
        .map(|v| v != "smoke")
        .unwrap_or(true);

    let spec = DeploymentSpec::paper_single_dc(3);
    let (cfg_unbatched, client_unbatched) = unbatched(&spec);
    let (cfg_batched, client_batched) = batched(&spec);

    let mut doc = JsonObject::new();
    doc.field_int("schema_version", SCHEMA_VERSION)
        .field_str("bench", "throughput_knee")
        .field_str("sweep", if full { "full" } else { "smoke" })
        .field_str("deployment", "paper_single_dc_3x3")
        .field_num("smoke_rate_unbatched_per_sec", SMOKE_RATE_UNBATCHED)
        .field_num("smoke_rate_batched_per_sec", SMOKE_RATE_BATCHED);

    // Deterministic fixed-rate smoke section (always present; the CI
    // regression gate reads exactly these keys).
    let smoke_load = |rate: f64| {
        let mut load = LoadSpec::new(rate);
        load.warmup = Dur::millis(100);
        load.duration = Dur::millis(400);
        load
    };
    eprintln!(
        "== smoke: unbatched @ {} ==",
        fmt_rate(SMOKE_RATE_UNBATCHED)
    );
    let smoke_u = measure(
        &spec,
        &smoke_load(SMOKE_RATE_UNBATCHED).with_client_batch(client_unbatched),
        cfg_unbatched.clone(),
        42,
        ClusterObs::on(BENCH_FLIGHT_CAP),
    );
    eprintln!("== smoke: batched @ {} ==", fmt_rate(SMOKE_RATE_BATCHED));
    let smoke_b = measure(
        &spec,
        &smoke_load(SMOKE_RATE_BATCHED).with_client_batch(client_batched),
        cfg_batched.clone(),
        42,
        ClusterObs::on(BENCH_FLIGHT_CAP),
    );
    let smoke_speedup = smoke_b.node0_committed_per_sec / smoke_u.node0_committed_per_sec;
    eprintln!(
        "smoke: unbatched {}/s, batched {}/s ({smoke_speedup:.2}x)",
        fmt_rate(smoke_u.node0_committed_per_sec),
        fmt_rate(smoke_b.node0_committed_per_sec),
    );
    doc.field_num(
        "smoke_unbatched_committed_ops_per_sec",
        smoke_u.node0_committed_per_sec,
    )
    .field_num(
        "smoke_batched_committed_ops_per_sec",
        smoke_b.node0_committed_per_sec,
    )
    .field_num("smoke_speedup", smoke_speedup)
    .field_raw("smoke_unbatched_metrics", metrics_json(&smoke_u.metrics))
    .field_raw("smoke_batched_metrics", metrics_json(&smoke_b.metrics));

    if full {
        let search = SearchSpec {
            start_rate: 30_000.0,
            growth: 1.6,
            latency_limit: Dur::millis(10),
            max_steps: 12,
        };
        eprintln!("== knee sweep: unbatched ==");
        let (ladder_u, best_u) = knee_sweep(&spec, &cfg_unbatched, client_unbatched, &search, 42);
        eprintln!("== knee sweep: batched ==");
        let (ladder_b, best_b) = knee_sweep(&spec, &cfg_batched, client_batched, &search, 42);

        let knee_u = best_u.as_ref().map(|m| m.run.achieved).unwrap_or(0.0);
        let knee_b = best_b.as_ref().map(|m| m.run.achieved).unwrap_or(0.0);
        let node0_u = best_u
            .as_ref()
            .map(|m| m.node0_committed_per_sec)
            .unwrap_or(0.0);
        let node0_b = best_b
            .as_ref()
            .map(|m| m.node0_committed_per_sec)
            .unwrap_or(0.0);
        eprintln!(
            "knee: unbatched {}/s, batched {}/s ({:.2}x); node0 committed {:.0}/s vs {:.0}/s ({:.2}x)",
            fmt_rate(knee_u),
            fmt_rate(knee_b),
            knee_b / knee_u,
            node0_u,
            node0_b,
            node0_b / node0_u,
        );

        // Latency at 70 % of each maximum (§8.1 reporting point).
        let lat = |rate: f64, cfg: &CanopusConfig, client: u32| {
            let load = LoadSpec::new(rate * 0.7).with_client_batch(client);
            measure(
                &spec,
                &load,
                cfg.clone(),
                43,
                ClusterObs::on(BENCH_FLIGHT_CAP),
            )
            .run
            .median
            .map(|d| d.as_nanos() as f64 / 1e3)
            .unwrap_or(f64::NAN)
        };
        doc.field_num("knee_unbatched_ops_per_sec", knee_u)
            .field_num("knee_batched_ops_per_sec", knee_b)
            .field_num("knee_speedup", knee_b / knee_u)
            .field_num("single_node_committed_ops_per_sec_unbatched", node0_u)
            .field_num("single_node_committed_ops_per_sec_batched", node0_b)
            .field_num("single_node_committed_speedup", node0_b / node0_u)
            .field_num(
                "latency70_unbatched_median_us",
                lat(knee_u, &cfg_unbatched, client_unbatched),
            )
            .field_num(
                "latency70_batched_median_us",
                lat(knee_b, &cfg_batched, client_batched),
            )
            .field_array("ladder_unbatched", &ladder_json(&ladder_u))
            .field_array("ladder_batched", &ladder_json(&ladder_b));

        // Table-1 fabric validation.
        eprintln!("== table 1 fabric validation ==");
        let (rtt_rows, worst) = table1_measured();
        let rows: Vec<String> = rtt_rows
            .iter()
            .map(|row| {
                format!(
                    "[{}]",
                    row.iter().map(|v| number(*v)).collect::<Vec<_>>().join(",")
                )
            })
            .collect();
        doc.field_num("table1_worst_rtt_deviation_ms", worst)
            .field_num(
                "table1_max_rtt_ms",
                WanMatrix::paper_table1().max_rtt().as_millis_f64(),
            )
            .field_array("table1_measured_rtt_ms", &rows);
        eprintln!("table 1 worst deviation: {worst:.3} ms");
    }

    let rendered = doc.render();
    match &out_path {
        Some(path) => {
            std::fs::write(path, format!("{rendered}\n")).expect("write output file");
            eprintln!("wrote {path}");
        }
        None => println!("{rendered}"),
    }

    if let Some(path) = check_path {
        // The instrumented runs above must be byte-for-byte the runs a
        // metrics-free build would do: rerun both smoke points with a
        // disabled registry and demand identical committed op counts.
        eprintln!("== check: observability must not perturb the run ==");
        for (name, rate, cfg, client, observed) in [
            (
                "unbatched",
                SMOKE_RATE_UNBATCHED,
                &cfg_unbatched,
                client_unbatched,
                &smoke_u,
            ),
            (
                "batched",
                SMOKE_RATE_BATCHED,
                &cfg_batched,
                client_batched,
                &smoke_b,
            ),
        ] {
            let bare = measure(
                &spec,
                &smoke_load(rate).with_client_batch(client),
                cfg.clone(),
                42,
                ClusterObs::off(),
            );
            assert!(
                bare.node0_committed_per_sec == observed.node0_committed_per_sec
                    && bare.run.achieved == observed.run.achieved,
                "metrics-enabled smoke ({name}) diverged from metrics-off: \
                 committed {}/s vs {}/s, achieved {}/s vs {}/s",
                observed.node0_committed_per_sec,
                bare.node0_committed_per_sec,
                observed.run.achieved,
                bare.run.achieved,
            );
            eprintln!(
                "check metrics-off {name}: identical committed ops ({:.0}/s)",
                bare.node0_committed_per_sec
            );
        }

        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        match check_baseline(
            &baseline,
            smoke_u.node0_committed_per_sec,
            smoke_b.node0_committed_per_sec,
        ) {
            Ok(()) => eprintln!("baseline check passed ({path})"),
            Err(why) => {
                eprintln!("baseline check FAILED: {why}");
                std::process::exit(1);
            }
        }
    }
}
