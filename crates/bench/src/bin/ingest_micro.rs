//! Parser micro-bench behind the amortized ingest cost model.
//!
//! `CostModel::ingest_cost` charges weight-1 requests a full per-request
//! parse (1200 ns) but aggregates only a per-batch base (1500 ns) plus a
//! small per-op marginal (120 ns): a batched frame is parsed *once*, and
//! each additional op inside it costs one length-prefixed slice read, not
//! another header/dispatch/route trip. This bin measures the real wire
//! codec to justify that split: it times decoding N separate single-put
//! `Request` frames against one `MultiPut` frame carrying the same N
//! puts, then fits the batched curve to `base + marginal × ops`.
//!
//! The absolute nanoseconds depend on the host; the *structure* is what
//! the cost model encodes, so the bench asserts the structural facts —
//! the per-op marginal inside a batch is a small fraction of a full
//! single-frame parse, and the batch base is the same order as one
//! frame — and prints the measured numbers next to the model's.
//!
//! Usage: cargo run --release -p canopus-bench --bin ingest_micro

use bytes::Bytes;
use canopus::CanopusMsg;
use canopus_kv::{ClientRequest, CostModel, Op};
use canopus_net::wire::Wire;
use canopus_sim::NodeId;
use std::time::Instant;

/// Wall-clock nanoseconds per decode of `frame`, best of `tries` batches
/// of `iters` decodes (best-of defeats scheduler noise).
fn time_decode(frame: &Bytes, iters: u32, tries: u32) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..tries {
        let start = Instant::now();
        for _ in 0..iters {
            let msg = CanopusMsg::from_bytes(frame.clone()).expect("valid frame");
            std::hint::black_box(&msg);
        }
        let per = start.elapsed().as_nanos() as f64 / f64::from(iters);
        best = best.min(per);
    }
    best
}

fn single_put_frame(key: u64) -> Bytes {
    CanopusMsg::Request(ClientRequest {
        client: NodeId(7),
        op_id: key,
        op: Op::Put {
            key,
            value: Bytes::from(vec![0xAB; 16]),
        },
    })
    .to_bytes()
}

fn multi_put_frame(ops: u64) -> Bytes {
    CanopusMsg::Request(ClientRequest {
        client: NodeId(7),
        op_id: 1,
        op: Op::MultiPut {
            puts: (0..ops).map(|k| (k, Bytes::from(vec![0xAB; 16]))).collect(),
        },
    })
    .to_bytes()
}

fn main() {
    const TRIES: u32 = 7;
    let single_ns = time_decode(&single_put_frame(3), 200_000, TRIES);

    // Two batch sizes fit the line: marginal = slope, base = intercept.
    let (k1, k2) = (64u64, 1024u64);
    let batch1_ns = time_decode(&multi_put_frame(k1), 20_000, TRIES);
    let batch2_ns = time_decode(&multi_put_frame(k2), 2_000, TRIES);
    let marginal_ns = (batch2_ns - batch1_ns) / (k2 - k1) as f64;
    let base_ns = batch1_ns - marginal_ns * k1 as f64;

    let model = CostModel::default();
    println!("ingest micro-bench (wall clock, best of {TRIES}):");
    println!("  single-put frame decode:   {single_ns:>8.1} ns");
    println!(
        "  multi-put {k1} ops:          {batch1_ns:>8.1} ns ({:.1} ns/op)",
        batch1_ns / k1 as f64
    );
    println!(
        "  multi-put {k2} ops:        {batch2_ns:>8.1} ns ({:.1} ns/op)",
        batch2_ns / k2 as f64
    );
    println!("  fitted batch base:         {base_ns:>8.1} ns");
    println!("  fitted per-op marginal:    {marginal_ns:>8.1} ns");
    println!(
        "  model: per_request={} ns, per_request_batch={} ns, per_batched_op={} ns",
        model.per_request.as_nanos(),
        model.per_request_batch.as_nanos(),
        model.per_batched_op.as_nanos()
    );
    println!(
        "  structure: marginal/single = {:.3} (model {:.3})",
        marginal_ns / single_ns,
        model.per_batched_op.as_nanos() as f64 / model.per_request.as_nanos() as f64
    );

    // The structural claims the cost model rests on. Wall-clock bounds
    // are deliberately loose — this gates the shape, not the host.
    assert!(
        marginal_ns < single_ns * 0.5,
        "per-op marginal inside a batch ({marginal_ns:.1} ns) should be well below a full \
         single-frame parse ({single_ns:.1} ns) — the amortized ingest split is unjustified"
    );
    assert!(
        base_ns < single_ns * 20.0,
        "batch base ({base_ns:.1} ns) should stay the same order as one frame parse \
         ({single_ns:.1} ns)"
    );
    println!("ok: amortized per-batch + per-op ingest split is justified");
}
