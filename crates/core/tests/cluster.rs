//! End-to-end Canopus cluster tests on the deterministic simulator.
//!
//! These exercise the §6 correctness properties (agreement, FIFO,
//! linearizability, liveness-or-stall) across LOT shapes, failure
//! scenarios, and both read modes.

use bytes::Bytes;
use canopus::{
    CanopusConfig, CanopusMsg, CanopusNode, CanopusStats, CommittedOp, CycleTrigger,
    EmulationTable, LotShape, ReadMode,
};
use canopus_kv::{
    check_agreement, check_client_fifo, ClientReply, ClientRequest, LinChecker, Op, OpResult,
    ReadObs, ReplyEvent, WriteObs,
};
use canopus_sim::{
    impl_process_any, Context, Dur, LossyFabric, NodeId, PartitionableFabric, Process, Simulation,
    Time, Timer, UniformFabric,
};

// ---------------------------------------------------------------------
// Test client
// ---------------------------------------------------------------------

/// A scripted client: sends each op at its scheduled time, records replies.
struct ScriptClient {
    target: NodeId,
    script: Vec<(Dur, Op)>, // must be sorted by time
    cursor: usize,
    sent: Vec<(u64, Time)>, // (op_id, send time)
    replies: Vec<(u64, OpResult, Time)>,
}

impl ScriptClient {
    fn new(target: NodeId, script: Vec<(Dur, Op)>) -> Self {
        ScriptClient {
            target,
            script,
            cursor: 0,
            sent: Vec::new(),
            replies: Vec::new(),
        }
    }

    fn arm_next(&self, ctx: &mut Context<'_, CanopusMsg>) {
        if let Some((when, _)) = self.script.get(self.cursor) {
            let delay = (Time::ZERO + *when).saturating_since(ctx.now());
            ctx.set_timer(delay, 0);
        }
    }
}

impl Process<CanopusMsg> for ScriptClient {
    fn on_start(&mut self, ctx: &mut Context<'_, CanopusMsg>) {
        self.arm_next(ctx);
    }

    fn on_timer(&mut self, _t: Timer, ctx: &mut Context<'_, CanopusMsg>) {
        let (_, op) = self.script[self.cursor].clone();
        let op_id = self.cursor as u64;
        self.cursor += 1;
        self.sent.push((op_id, ctx.now()));
        ctx.send(
            self.target,
            CanopusMsg::Request(ClientRequest {
                client: ctx.id(),
                op_id,
                op,
            }),
        );
        self.arm_next(ctx);
    }

    fn on_message(&mut self, _from: NodeId, msg: CanopusMsg, ctx: &mut Context<'_, CanopusMsg>) {
        if let CanopusMsg::Reply(ClientReply { op_id, result, .. }) = msg {
            self.replies.push((op_id, result, ctx.now()));
        }
    }

    impl_process_any!();
}

// ---------------------------------------------------------------------
// Cluster builder
// ---------------------------------------------------------------------

/// The same composed fault-injection fabric the harness `Cluster` uses,
/// over the uniform-latency fabric these protocol-level tests want.
type TestFabric = PartitionableFabric<LossyFabric<UniformFabric>>;

struct Cluster {
    sim: Simulation<CanopusMsg, TestFabric>,
    nodes: Vec<NodeId>,
}

impl Cluster {
    /// Fault-injection access, mirroring `canopus_harness::Cluster::fabric_mut`
    /// — partition setups go through this passthrough instead of reaching
    /// into `Simulation` internals.
    fn fabric_mut(&mut self) -> &mut TestFabric {
        self.sim.fabric_mut()
    }
}

fn build_cluster(shape: LotShape, per_leaf: usize, cfg: &CanopusConfig, seed: u64) -> Cluster {
    let leaves = shape.num_superleaves();
    let mut membership = Vec::new();
    let mut next = 0u32;
    for _ in 0..leaves {
        let members: Vec<NodeId> = (0..per_leaf).map(|i| NodeId(next + i as u32)).collect();
        next += per_leaf as u32;
        membership.push(members);
    }
    let table = EmulationTable::new(shape, membership);
    let fabric =
        PartitionableFabric::new(LossyFabric::new(UniformFabric::new(Dur::micros(50)), 0.0));
    let mut sim = Simulation::new(fabric, seed);
    let mut nodes = Vec::new();
    for i in 0..next {
        let node = CanopusNode::new(NodeId(i), table.clone(), cfg.clone(), seed ^ 0x9e37);
        let id = sim.add_node(Box::new(node));
        assert_eq!(id, NodeId(i));
        nodes.push(id);
    }
    Cluster { sim, nodes }
}

fn add_client(cluster: &mut Cluster, target: NodeId, script: Vec<(Dur, Op)>) -> NodeId {
    cluster
        .sim
        .add_node(Box::new(ScriptClient::new(target, script)))
}

fn put(key: u64, tag: u8) -> Op {
    Op::Put {
        key,
        value: Bytes::from(vec![tag; 8]),
    }
}

/// The per-node commit histories as comparable entries.
fn commit_histories(cluster: &Cluster) -> Vec<Vec<(u64, u32, u64)>> {
    cluster
        .nodes
        .iter()
        .map(|&n| {
            let node = cluster.sim.node::<CanopusNode>(n);
            node.committed_log()
                .iter()
                .flat_map(|c| {
                    c.sets.iter().flat_map(|s| {
                        s.ops.iter().map(|op| match *op {
                            CommittedOp::Put {
                                client, op_id, key, ..
                            } => (key, client.0, op_id),
                            CommittedOp::Synthetic { client, op_id, .. } => {
                                (u64::MAX, client.0, op_id)
                            }
                            CommittedOp::MultiPut { client, op_id, .. } => {
                                (u64::MAX - 1, client.0, op_id)
                            }
                        })
                    })
                })
                .collect()
        })
        .collect()
}

fn stats_of(cluster: &Cluster, n: NodeId) -> CanopusStats {
    cluster.sim.node::<CanopusNode>(n).stats()
}

// ---------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------

#[test]
fn single_superleaf_commits_writes() {
    let cfg = CanopusConfig::default();
    let mut cluster = build_cluster(LotShape::flat(1), 3, &cfg, 1);
    let script: Vec<(Dur, Op)> = (0..5)
        .map(|i| (Dur::millis(1 + i), put(i, i as u8)))
        .collect();
    add_client(&mut cluster, NodeId(0), script);
    cluster.sim.run_for(Dur::millis(200));

    for &n in &cluster.nodes {
        let s = stats_of(&cluster, n);
        assert_eq!(s.committed_weight, 5, "{n} committed all writes");
        assert!(s.committed_cycles >= 1);
    }
    assert!(check_agreement(&commit_histories(&cluster)).is_ok());
}

#[test]
fn two_superleaves_agree_on_total_order() {
    let cfg = CanopusConfig::default();
    let mut cluster = build_cluster(LotShape::flat(2), 3, &cfg, 2);
    // Clients on nodes in both super-leaves, writing concurrently.
    for (i, &target) in [NodeId(0), NodeId(1), NodeId(3), NodeId(5)]
        .iter()
        .enumerate()
    {
        let script: Vec<(Dur, Op)> = (0..8)
            .map(|k| {
                (
                    Dur::micros(500 + 137 * k + i as u64 * 53),
                    put(100 + k, i as u8),
                )
            })
            .collect();
        add_client(&mut cluster, target, script);
    }
    cluster.sim.run_for(Dur::millis(500));

    let histories = commit_histories(&cluster);
    assert!(check_agreement(&histories).is_ok(), "logs diverged");
    for (i, h) in histories.iter().enumerate() {
        assert_eq!(h.len(), 32, "node {i} committed all 32 writes");
    }
    // Digest equality across nodes.
    let d0 = stats_of(&cluster, NodeId(0)).commit_digest;
    for &n in &cluster.nodes {
        assert_eq!(stats_of(&cluster, n).commit_digest, d0);
    }
    // Emulation tables identical.
    let t0 = cluster
        .sim
        .node::<CanopusNode>(NodeId(0))
        .emulation_table()
        .digest();
    for &n in &cluster.nodes {
        assert_eq!(
            cluster
                .sim
                .node::<CanopusNode>(n)
                .emulation_table()
                .digest(),
            t0
        );
    }
}

#[test]
fn height_three_lot_agrees() {
    // Figure 1 shape scaled down: fanouts [2,2] => 4 super-leaves, h=3.
    let cfg = CanopusConfig::default();
    let shape = LotShape::new(vec![2, 2]);
    let mut cluster = build_cluster(shape, 3, &cfg, 3);
    for leaf in 0..4u32 {
        let target = NodeId(leaf * 3);
        let script: Vec<(Dur, Op)> = (0..6)
            .map(|k| {
                (
                    Dur::micros(300 + 211 * k),
                    put(leaf as u64 * 10 + k, leaf as u8),
                )
            })
            .collect();
        add_client(&mut cluster, target, script);
    }
    cluster.sim.run_for(Dur::millis(800));

    let histories = commit_histories(&cluster);
    assert!(check_agreement(&histories).is_ok());
    for h in &histories {
        assert_eq!(h.len(), 24, "all 24 writes committed everywhere");
    }
}

#[test]
fn reads_observe_writes_linearizably() {
    let cfg = CanopusConfig::default();
    let mut cluster = build_cluster(LotShape::flat(2), 3, &cfg, 4);
    // Writer client on node 0; reader clients on nodes in both leaves.
    let writes: Vec<(Dur, Op)> = (0..10)
        .map(|k| (Dur::millis(2 * k + 1), put(7, k as u8)))
        .collect();
    add_client(&mut cluster, NodeId(0), writes);
    let reads_a: Vec<(Dur, Op)> = (0..10)
        .map(|k| (Dur::millis(2 * k + 2), Op::Get { key: 7 }))
        .collect();
    let reader_a = add_client(&mut cluster, NodeId(4), reads_a);
    let reads_b: Vec<(Dur, Op)> = (0..10)
        .map(|k| (Dur::millis(2 * k + 2), Op::Get { key: 7 }))
        .collect();
    let reader_b = add_client(&mut cluster, NodeId(2), reads_b);
    cluster.sim.run_for(Dur::millis(500));

    // Build the linearizability checker from node 0's commit log.
    let mut checker = LinChecker::new();
    {
        let node = cluster.sim.node::<CanopusNode>(NodeId(0));
        for cc in node.committed_log() {
            for set in &cc.sets {
                for op in &set.ops {
                    if let CommittedOp::Put { key, version, .. } = *op {
                        checker.record_write(WriteObs {
                            key,
                            version,
                            committed: cc.at,
                        });
                    }
                }
            }
        }
    }
    // Validate all reads. Values encode the version via the write tag:
    // version v was written with tag v-1 (write k creates version k+1).
    let mut total_reads = 0;
    for reader in [reader_a, reader_b] {
        let client = cluster.sim.node::<ScriptClient>(reader);
        assert_eq!(client.replies.len(), 10, "all reads answered");
        for (op_id, result, at) in &client.replies {
            let (_, sent) = client.sent[*op_id as usize];
            let version = match result {
                OpResult::Value(None) => 0,
                OpResult::Value(Some(v)) => v[0] as u64 + 1,
                other => panic!("unexpected read result {other:?}"),
            };
            let obs = ReadObs {
                key: 7,
                version,
                invoke: sent,
                respond: *at,
            };
            checker
                .check_read(obs)
                .unwrap_or_else(|e| panic!("linearizability violation at reader {reader}: {e:?}"));
            total_reads += 1;
        }
    }
    assert_eq!(total_reads, 20);
}

#[test]
fn client_fifo_order_is_preserved() {
    let cfg = CanopusConfig::default();
    let mut cluster = build_cluster(LotShape::flat(2), 3, &cfg, 5);
    // One client interleaving writes and reads rapid-fire at one node.
    let mut script = Vec::new();
    for k in 0..20u64 {
        let op = if k % 3 == 0 {
            Op::Get { key: 1 }
        } else {
            put(1, k as u8)
        };
        script.push((Dur::micros(100 * k + 50), op));
    }
    let client = add_client(&mut cluster, NodeId(1), script);
    cluster.sim.run_for(Dur::millis(500));

    let c = cluster.sim.node::<ScriptClient>(client);
    assert_eq!(c.replies.len(), 20, "all ops answered");
    let events: Vec<ReplyEvent> = c
        .replies
        .iter()
        .map(|(op_id, _, at)| ReplyEvent {
            client,
            op_id: *op_id,
            at: *at,
        })
        .collect();
    check_client_fifo(&events).expect("client FIFO order");
}

#[test]
fn pipelined_mode_commits_under_load() {
    let cfg = CanopusConfig {
        trigger: CycleTrigger::Pipelined,
        cycle_interval: Dur::millis(2),
        max_pipeline_depth: 64,
        ..CanopusConfig::default()
    };
    let mut cluster = build_cluster(LotShape::flat(3), 3, &cfg, 6);
    for leaf in 0..3u32 {
        let target = NodeId(leaf * 3 + 1);
        let script: Vec<(Dur, Op)> = (0..30)
            .map(|k| {
                (
                    Dur::micros(200 * k + 79),
                    put(leaf as u64 * 100 + k, leaf as u8),
                )
            })
            .collect();
        add_client(&mut cluster, target, script);
    }
    cluster.sim.run_for(Dur::millis(500));

    let histories = commit_histories(&cluster);
    assert!(check_agreement(&histories).is_ok());
    for h in &histories {
        assert_eq!(h.len(), 90);
    }
    let s = stats_of(&cluster, NodeId(0));
    assert!(
        s.committed_cycles >= 3,
        "pipelined mode ran multiple cycles: {}",
        s.committed_cycles
    );
}

#[test]
fn linger_window_batches_writes_into_fewer_cycles() {
    // Same 40-write workload, with and without a batching window. Both must
    // commit everything and agree; the lingering run must need fewer cycles
    // because arrivals inside each 1 ms window share a proposal.
    let run = |linger: Dur| {
        let cfg = CanopusConfig {
            max_linger: linger,
            ..CanopusConfig::default()
        };
        let mut cluster = build_cluster(LotShape::flat(2), 3, &cfg, 11);
        let script: Vec<(Dur, Op)> = (0..40)
            .map(|k| (Dur::micros(150 * k + 97), put(k, 1)))
            .collect();
        add_client(&mut cluster, NodeId(1), script);
        cluster.sim.run_for(Dur::millis(400));
        let histories = commit_histories(&cluster);
        assert!(check_agreement(&histories).is_ok());
        assert_eq!(histories[0].len(), 40, "all writes committed");
        stats_of(&cluster, NodeId(0)).committed_cycles
    };
    let unbatched = run(Dur::ZERO);
    let batched = run(Dur::millis(1));
    assert!(
        batched < unbatched,
        "lingering must coalesce cycles: {batched} (1 ms window) vs {unbatched} (none)"
    );
}

#[test]
fn on_commit_pipelining_overlaps_cycles() {
    // Self-clocked mode with depth > 1: cycle N+1's exchange may begin
    // while cycle N drains. Correctness (agreement, no loss, FIFO of the
    // commit order) must be unaffected.
    let cfg = CanopusConfig {
        max_pipeline_depth: 4,
        ..CanopusConfig::default()
    };
    let mut cluster = build_cluster(LotShape::flat(3), 3, &cfg, 12);
    for leaf in 0..3u32 {
        let target = NodeId(leaf * 3);
        let script: Vec<(Dur, Op)> = (0..30)
            .map(|k| {
                (
                    Dur::micros(120 * k + 53),
                    put(leaf as u64 * 100 + k, leaf as u8),
                )
            })
            .collect();
        add_client(&mut cluster, target, script);
    }
    cluster.sim.run_for(Dur::millis(500));
    let histories = commit_histories(&cluster);
    assert!(check_agreement(&histories).is_ok());
    for h in &histories {
        assert_eq!(h.len(), 90, "all writes committed under pipelining");
    }
    let s = stats_of(&cluster, NodeId(0));
    assert!(
        s.committed_cycles >= 3,
        "pipelined self-clocked mode ran multiple cycles: {}",
        s.committed_cycles
    );
}

#[test]
fn node_failure_excludes_and_consensus_continues() {
    let cfg = CanopusConfig {
        failure_timeout: Dur::millis(15),
        fetch_timeout: Dur::millis(40),
        ..CanopusConfig::default()
    };
    let mut cluster = build_cluster(LotShape::flat(2), 3, &cfg, 7);
    // Client writes continuously to node 0 (super-leaf 0).
    let script: Vec<(Dur, Op)> = (0..40)
        .map(|k| (Dur::millis(2 * k + 1), put(k, k as u8)))
        .collect();
    let client = add_client(&mut cluster, NodeId(0), script);
    // Run a bit, then crash node 1 (same super-leaf as the loaded node).
    cluster.sim.run_for(Dur::millis(10));
    cluster.sim.crash(NodeId(1));
    cluster.sim.run_for(Dur::millis(400));

    // The survivors must keep committing: all 40 writes eventually commit.
    let c = cluster.sim.node::<ScriptClient>(client);
    assert_eq!(c.replies.len(), 40, "writes complete despite peer failure");
    // Survivor logs agree.
    let survivors: Vec<Vec<(u64, u32, u64)>> = cluster
        .nodes
        .iter()
        .filter(|&&n| n != NodeId(1))
        .map(|&n| {
            cluster
                .sim
                .node::<CanopusNode>(n)
                .committed_log()
                .iter()
                .flat_map(|cc| {
                    cc.sets.iter().flat_map(|s| {
                        s.ops.iter().map(|op| match *op {
                            CommittedOp::Put {
                                client, op_id, key, ..
                            } => (key, client.0, op_id),
                            CommittedOp::Synthetic { client, op_id, .. } => {
                                (u64::MAX, client.0, op_id)
                            }
                            CommittedOp::MultiPut { client, op_id, .. } => {
                                (u64::MAX - 1, client.0, op_id)
                            }
                        })
                    })
                })
                .collect()
        })
        .collect();
    assert!(check_agreement(&survivors).is_ok());
    // The failed node was removed from every surviving emulation table.
    for &n in cluster.nodes.iter().filter(|&&n| n != NodeId(1)) {
        let node = cluster.sim.node::<CanopusNode>(n);
        assert_eq!(
            node.emulation_table().superleaf_of(NodeId(1)),
            None,
            "{n} still lists the dead node"
        );
    }
}

#[test]
fn superleaf_failure_stalls_without_divergence() {
    let cfg = CanopusConfig {
        failure_timeout: Dur::millis(15),
        fetch_timeout: Dur::millis(50),
        ..CanopusConfig::default()
    };
    let mut cluster = build_cluster(LotShape::flat(2), 3, &cfg, 8);
    let script: Vec<(Dur, Op)> = (0..30)
        .map(|k| (Dur::millis(3 * k + 1), put(k, k as u8)))
        .collect();
    add_client(&mut cluster, NodeId(0), script);
    cluster.sim.run_for(Dur::millis(20));
    // Kill the entire second super-leaf.
    cluster.sim.crash(NodeId(3));
    cluster.sim.crash(NodeId(4));
    cluster.sim.crash(NodeId(5));
    cluster.sim.run_for(Dur::millis(300));
    let committed_mid = stats_of(&cluster, NodeId(0)).committed_cycles;
    cluster.sim.run_for(Dur::millis(300));
    let committed_late = stats_of(&cluster, NodeId(0)).committed_cycles;

    // Consensus stalls: no further cycles complete (§3.3: halt until the
    // rack recovers).
    assert_eq!(
        committed_mid, committed_late,
        "consensus must stall when a super-leaf fails"
    );
    // And the survivors never diverged.
    let survivors: Vec<Vec<(u64, u32, u64)>> = [NodeId(0), NodeId(1), NodeId(2)]
        .iter()
        .map(|&n| {
            cluster
                .sim
                .node::<CanopusNode>(n)
                .committed_log()
                .iter()
                .flat_map(|cc| {
                    cc.sets.iter().flat_map(|s| {
                        s.ops.iter().map(|op| match *op {
                            CommittedOp::Put {
                                client, op_id, key, ..
                            } => (key, client.0, op_id),
                            CommittedOp::Synthetic { client, op_id, .. } => {
                                (u64::MAX, client.0, op_id)
                            }
                            CommittedOp::MultiPut { client, op_id, .. } => {
                                (u64::MAX - 1, client.0, op_id)
                            }
                        })
                    })
                })
                .collect()
        })
        .collect();
    assert!(check_agreement(&survivors).is_ok());
}

#[test]
fn superleaf_partition_stalls_then_recovers_after_heal() {
    let cfg = CanopusConfig {
        fetch_timeout: Dur::millis(20),
        ..CanopusConfig::default()
    };
    let mut cluster = build_cluster(LotShape::flat(2), 3, &cfg, 21);
    let script: Vec<(Dur, Op)> = (0..60)
        .map(|k| (Dur::millis(2 * k + 1), put(k, k as u8)))
        .collect();
    let client = add_client(&mut cluster, NodeId(0), script);
    cluster.sim.run_for(Dur::millis(20));

    // Cut the two super-leaves apart through the fabric passthrough.
    let leaf0: Vec<NodeId> = (0..3).map(NodeId).collect();
    let leaf1: Vec<NodeId> = (3..6).map(NodeId).collect();
    cluster.fabric_mut().cut_groups(&leaf0, &leaf1);
    cluster.sim.run_for(Dur::millis(150));
    let stalled_at = stats_of(&cluster, NodeId(0)).committed_cycles;
    cluster.sim.run_for(Dur::millis(150));
    // Liveness is lost while the partition holds (§3.3: stall, not
    // diverge)…
    assert_eq!(
        stats_of(&cluster, NodeId(0)).committed_cycles,
        stalled_at,
        "no cycle may complete across a super-leaf partition"
    );
    assert!(check_agreement(&commit_histories(&cluster)).is_ok());

    // …and restored once the partition heals: every write completes.
    cluster.fabric_mut().heal_all();
    cluster.sim.run_for(Dur::millis(600));
    let c = cluster.sim.node::<ScriptClient>(client);
    assert_eq!(c.replies.len(), 60, "all writes commit after healing");
    assert!(check_agreement(&commit_histories(&cluster)).is_ok());
}

#[test]
fn intra_leaf_isolation_excludes_member_and_consensus_continues() {
    let cfg = CanopusConfig {
        failure_timeout: Dur::millis(15),
        fetch_timeout: Dur::millis(40),
        ..CanopusConfig::default()
    };
    let mut cluster = build_cluster(LotShape::flat(2), 3, &cfg, 22);
    let script: Vec<(Dur, Op)> = (0..40)
        .map(|k| (Dur::millis(2 * k + 1), put(k, k as u8)))
        .collect();
    let client = add_client(&mut cluster, NodeId(0), script);
    cluster.sim.run_for(Dur::millis(10));
    // Isolate node 1 (no crash: the process stays alive but unreachable).
    cluster.fabric_mut().isolate(NodeId(1));
    cluster.sim.run_for(Dur::millis(400));

    // The survivors tombstone the silent member and keep committing.
    let c = cluster.sim.node::<ScriptClient>(client);
    assert_eq!(c.replies.len(), 40, "writes complete despite isolation");
    for &n in cluster.nodes.iter().filter(|&&n| n != NodeId(1)) {
        let node = cluster.sim.node::<CanopusNode>(n);
        assert_eq!(
            node.emulation_table().superleaf_of(NodeId(1)),
            None,
            "{n} still lists the isolated node"
        );
    }
    // Survivor histories agree (the isolated node is merely behind).
    let survivors: Vec<Vec<(u64, u32, u64)>> = commit_histories(&cluster)
        .into_iter()
        .enumerate()
        .filter(|(i, _)| *i != 1)
        .map(|(_, h)| h)
        .collect();
    assert!(check_agreement(&survivors).is_ok());
}

#[test]
fn deterministic_replay() {
    let run = |seed: u64| {
        let cfg = CanopusConfig::default();
        let mut cluster = build_cluster(LotShape::flat(2), 3, &cfg, seed);
        for (i, &target) in [NodeId(0), NodeId(4)].iter().enumerate() {
            let script: Vec<(Dur, Op)> = (0..10)
                .map(|k| (Dur::micros(400 * k + 31), put(k, i as u8)))
                .collect();
            add_client(&mut cluster, target, script);
        }
        cluster.sim.run_for(Dur::millis(300));
        (
            commit_histories(&cluster),
            stats_of(&cluster, NodeId(0)).commit_digest,
            cluster.sim.events_processed(),
        )
    };
    assert_eq!(run(42), run(42), "same seed, same history");
}

#[test]
fn empty_cluster_stays_idle() {
    let cfg = CanopusConfig::default();
    let mut cluster = build_cluster(LotShape::flat(2), 3, &cfg, 9);
    cluster.sim.run_for(Dur::millis(200));
    for &n in &cluster.nodes {
        let s = stats_of(&cluster, n);
        assert_eq!(s.committed_cycles, 0, "no cycles without client traffic");
    }
}

#[test]
fn lease_mode_serves_uncontended_reads_fast_and_linearizably() {
    let cfg = CanopusConfig {
        read_mode: ReadMode::Leases,
        ..CanopusConfig::default()
    };
    let mut cluster = build_cluster(LotShape::flat(2), 3, &cfg, 10);
    // Writer hammers key 1; reader reads both key 1 (contended) and key 99
    // (never written -> always fast).
    let writes: Vec<(Dur, Op)> = (0..10)
        .map(|k| (Dur::millis(3 * k + 1), put(1, k as u8)))
        .collect();
    add_client(&mut cluster, NodeId(0), writes);
    let mut reads = Vec::new();
    for k in 0..10u64 {
        reads.push((Dur::millis(3 * k + 2), Op::Get { key: 1 }));
        reads.push((Dur::micros(3000 * k + 2500), Op::Get { key: 99 }));
    }
    reads.sort_by_key(|(d, _)| *d);
    let reader = add_client(&mut cluster, NodeId(4), reads);
    cluster.sim.run_for(Dur::millis(600));

    let mut checker = LinChecker::new();
    {
        let node = cluster.sim.node::<CanopusNode>(NodeId(0));
        for cc in node.committed_log() {
            for set in &cc.sets {
                for op in &set.ops {
                    if let CommittedOp::Put { key, version, .. } = *op {
                        checker.record_write(WriteObs {
                            key,
                            version,
                            committed: cc.at,
                        });
                    }
                }
            }
        }
    }
    let client = cluster.sim.node::<ScriptClient>(reader);
    assert_eq!(client.replies.len(), 20, "all reads answered");
    for (op_id, result, at) in &client.replies {
        let (_, sent) = client.sent[*op_id as usize];
        // Key is recoverable from the script.
        let key = match &client.script[*op_id as usize].1 {
            Op::Get { key } => *key,
            _ => unreachable!(),
        };
        let version = match result {
            OpResult::Value(None) => 0,
            OpResult::Value(Some(v)) => v[0] as u64 + 1,
            other => panic!("unexpected {other:?}"),
        };
        checker
            .check_read(ReadObs {
                key,
                version,
                invoke: sent,
                respond: *at,
            })
            .unwrap_or_else(|e| panic!("lease-mode linearizability violation: {e:?}"));
    }
    // The never-written key must have been served from the fast path.
    let node4 = cluster.sim.node::<CanopusNode>(NodeId(4));
    assert!(
        node4.stats().lease_fast_reads >= 10,
        "uncontended reads took the fast path: {}",
        node4.stats().lease_fast_reads
    );
}
