//! The emulation table (paper §4.6): vnode → live emulator pnodes.
//!
//! Every pnode holds an identical table mapping each super-leaf to its live
//! members; the emulators of a vnode are the members of all super-leaves
//! beneath it. The table changes only by applying the membership updates
//! agreed in a committed consensus cycle, so — as the paper's Appendix A
//! argues — all nodes hold the same table in every cycle. Tests assert
//! table digests match across nodes at every commit.

use std::collections::{BTreeMap, BTreeSet};

use canopus_sim::NodeId;

use crate::proposal::MembershipUpdate;
use crate::types::{LotShape, VnodeId};

/// Live membership of every super-leaf, with vnode→emulator queries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EmulationTable {
    shape: LotShape,
    members: Vec<BTreeSet<NodeId>>,
    home: BTreeMap<NodeId, u32>,
}

impl EmulationTable {
    /// Builds the initial table: `initial[s]` lists the pnodes of
    /// super-leaf `s`.
    ///
    /// # Panics
    /// Panics if the count mismatches the shape, a super-leaf is empty, or
    /// a node appears twice.
    pub fn new(shape: LotShape, initial: Vec<Vec<NodeId>>) -> Self {
        assert_eq!(
            initial.len(),
            shape.num_superleaves(),
            "one member list per super-leaf"
        );
        let mut home = BTreeMap::new();
        let mut members = Vec::with_capacity(initial.len());
        for (s, list) in initial.into_iter().enumerate() {
            assert!(!list.is_empty(), "super-leaf {s} must start non-empty");
            let set: BTreeSet<NodeId> = list.into_iter().collect();
            for &n in &set {
                let prev = home.insert(n, s as u32);
                assert!(prev.is_none(), "{n} appears in two super-leaves");
            }
            members.push(set);
        }
        EmulationTable {
            shape,
            members,
            home,
        }
    }

    /// The LOT shape.
    pub fn shape(&self) -> &LotShape {
        &self.shape
    }

    /// Which super-leaf a node belongs to, if it is currently a member.
    pub fn superleaf_of(&self, node: NodeId) -> Option<usize> {
        self.home.get(&node).map(|&s| s as usize)
    }

    /// Live members of super-leaf `s`, in id order.
    pub fn members_of(&self, s: usize) -> impl Iterator<Item = NodeId> + '_ {
        self.members[s].iter().copied()
    }

    /// Number of live members of super-leaf `s`.
    pub fn member_count(&self, s: usize) -> usize {
        self.members[s].len()
    }

    /// All live pnodes that emulate `vnode` (members of every super-leaf
    /// beneath it), in id order.
    pub fn emulators(&self, vnode: &VnodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        for s in self.shape.superleaves_under(vnode) {
            out.extend(self.members[s].iter().copied());
        }
        out
    }

    /// All live nodes in the tree.
    pub fn all_nodes(&self) -> Vec<NodeId> {
        self.home.keys().copied().collect()
    }

    /// Applies one committed membership update. Unknown leaves and
    /// duplicate joins are tolerated (updates may be proposed by several
    /// observers and merge idempotently).
    pub fn apply(&mut self, update: &MembershipUpdate) {
        match update {
            MembershipUpdate::Join { node, superleaf } => {
                let s = *superleaf as usize;
                assert!(s < self.members.len(), "join to unknown super-leaf");
                if let Some(&old) = self.home.get(node) {
                    if old as usize == s {
                        return; // duplicate join
                    }
                    self.members[old as usize].remove(node);
                }
                self.members[s].insert(*node);
                self.home.insert(*node, s as u32);
            }
            MembershipUpdate::Leave { node } => {
                if let Some(s) = self.home.remove(node) {
                    self.members[s as usize].remove(node);
                }
            }
        }
    }

    /// Applies a batch of committed updates in order.
    pub fn apply_all(&mut self, updates: &[MembershipUpdate]) {
        for u in updates {
            self.apply(u);
        }
    }

    /// Digest of the whole table, for cross-node agreement checks.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        for (s, set) in self.members.iter().enumerate() {
            mix(s as u64);
            for n in set {
                mix(n.0 as u64 + 1);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> EmulationTable {
        // Height-2 LOT, 2 super-leaves of 3.
        EmulationTable::new(
            LotShape::flat(2),
            vec![
                vec![NodeId(0), NodeId(1), NodeId(2)],
                vec![NodeId(3), NodeId(4), NodeId(5)],
            ],
        )
    }

    #[test]
    fn emulators_by_subtree() {
        let t = table();
        assert_eq!(
            t.emulators(&VnodeId(vec![0])),
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
        assert_eq!(t.emulators(&VnodeId::root()).len(), 6);
        assert_eq!(t.superleaf_of(NodeId(4)), Some(1));
        assert_eq!(t.superleaf_of(NodeId(9)), None);
    }

    #[test]
    fn leave_removes_everywhere() {
        let mut t = table();
        t.apply(&MembershipUpdate::Leave { node: NodeId(1) });
        assert_eq!(t.superleaf_of(NodeId(1)), None);
        assert_eq!(t.emulators(&VnodeId(vec![0])), vec![NodeId(0), NodeId(2)]);
        assert_eq!(t.member_count(0), 2);
        // Leave of an unknown node is a no-op.
        t.apply(&MembershipUpdate::Leave { node: NodeId(99) });
        assert_eq!(t.member_count(0), 2);
    }

    #[test]
    fn join_and_duplicate_join() {
        let mut t = table();
        t.apply(&MembershipUpdate::Join {
            node: NodeId(9),
            superleaf: 1,
        });
        assert_eq!(t.superleaf_of(NodeId(9)), Some(1));
        assert_eq!(t.member_count(1), 4);
        let digest = t.digest();
        t.apply(&MembershipUpdate::Join {
            node: NodeId(9),
            superleaf: 1,
        });
        assert_eq!(t.digest(), digest, "duplicate join is idempotent");
    }

    #[test]
    fn identical_update_sequences_converge() {
        let mut a = table();
        let mut b = table();
        let updates = vec![
            MembershipUpdate::Leave { node: NodeId(2) },
            MembershipUpdate::Join {
                node: NodeId(7),
                superleaf: 0,
            },
            MembershipUpdate::Leave { node: NodeId(3) },
        ];
        a.apply_all(&updates);
        b.apply_all(&updates);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a, b);
    }

    #[test]
    fn figure1_emulator_counts() {
        // Figure 1: height 3, fanouts [3,3], 3 pnodes per super-leaf; the
        // paper notes vnode 1.1 is emulated by nine pnodes and the root by
        // all 27.
        let shape = LotShape::new(vec![3, 3]);
        let initial: Vec<Vec<NodeId>> = (0..9)
            .map(|s| (0..3).map(|i| NodeId(s * 3 + i)).collect())
            .collect();
        let t = EmulationTable::new(shape, initial);
        assert_eq!(t.emulators(&VnodeId(vec![0])).len(), 9);
        assert_eq!(t.emulators(&VnodeId::root()).len(), 27);
        assert_eq!(t.emulators(&VnodeId(vec![1, 2])).len(), 3);
    }

    #[test]
    #[should_panic(expected = "two super-leaves")]
    fn duplicate_initial_member_rejected() {
        EmulationTable::new(LotShape::flat(2), vec![vec![NodeId(0)], vec![NodeId(0)]]);
    }
}
