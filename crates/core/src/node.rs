//! The Canopus pnode: the complete protocol state machine (paper §4–§7).
//!
//! One [`CanopusNode`] is one pnode. It embeds the super-leaf reliable
//! broadcast (per-member Raft groups, §4.3), executes consensus cycles of
//! `h` rounds over the LOT (§4.2), self-synchronizes on outside prompting
//! (§4.4), acts as a super-leaf representative fetching remote vnode states
//! (§4.5), maintains the emulation table through committed membership
//! updates (§4.6), linearizes reads by delaying them one or two cycles (§5)
//! or through write leases (§7.2), and pipelines cycles for wide-area
//! deployments (§7.1).
//!
//! Failure handling follows the paper's crash-stop model: peer silence is
//! detected by heartbeat timeout; the survivor that wins the dead member's
//! broadcast group election appends a **tombstone** to that group's log.
//! Because the tombstone is totally ordered with the member's own proposals
//! (same Raft log), every survivor draws the identical boundary between
//! cycles the dead member contributed to and cycles it is excluded from —
//! making the proof's "excluded from contributing to the state of the
//! super-leaf" step explicit and deterministic.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use canopus_kv::{ClientReply, ClientRequest, Key, KvStore, Op, OpResult};
use canopus_net::wire::Wire;
use canopus_obs::{Counter, EventKind as ObsEvent, Gauge, Histogram, NodeObs};
use canopus_raft::{FailureDetector, Outbox, SuperLeafBroadcast};
use canopus_sim::{impl_process_any, Context, Dur, NodeId, Process, Time, Timer};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::{CanopusConfig, CycleTrigger, ReadMode};
use crate::emulation::EmulationTable;
use crate::msg::{BroadcastItem, CanopusMsg};
use crate::proposal::{MembershipUpdate, RequestSet, TimedOp, VnodeState};
use crate::types::{CycleId, VnodeId};

/// Timer tokens.
const TICK: u64 = 1;
const CYCLE: u64 = 2;
const LINGER: u64 = 3;

/// One committed operation, as recorded in the commit log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommittedOp {
    /// A key-value write; `version` is the key's version after this write.
    Put {
        /// Requesting client.
        client: NodeId,
        /// Client-assigned id.
        op_id: u64,
        /// Key written.
        key: Key,
        /// Version produced.
        version: u64,
    },
    /// An aggregated synthetic write batch.
    Synthetic {
        /// Requesting client.
        client: NodeId,
        /// Client-assigned id.
        op_id: u64,
        /// Requests represented.
        count: u32,
    },
    /// An atomic multi-key write (the part of a cross-shard transaction
    /// sequenced in this instance's LOT, or a whole single-shard one).
    MultiPut {
        /// Requesting client.
        client: NodeId,
        /// Client-assigned id (shared across all shards' parts).
        op_id: u64,
        /// Keys written, in client order.
        keys: Vec<Key>,
    },
}

/// One origin's committed request set within a cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommittedSet {
    /// The origin node.
    pub origin: NodeId,
    /// Its operations, in FIFO order.
    pub ops: Vec<CommittedOp>,
}

/// The commit record of one cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommittedCycle {
    /// The cycle.
    pub cycle: CycleId,
    /// Local commit time.
    pub at: Time,
    /// The total order of request sets.
    pub sets: Vec<CommittedSet>,
}

/// Counters exposed by every node.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CanopusStats {
    /// Cycles committed.
    pub committed_cycles: u64,
    /// Client write requests committed (all origins, weighted).
    pub committed_weight: u64,
    /// Write requests from this node's own clients (weighted).
    pub own_writes: u64,
    /// Reads served to this node's clients (weighted).
    pub reads_served: u64,
    /// Reads served immediately under the lease optimization.
    pub lease_fast_reads: u64,
    /// Proposal-requests answered for other super-leaves.
    pub fetches_served: u64,
    /// Running FNV digest of the commit history (agreement checks).
    pub commit_digest: u64,
    /// Sum of (commit − start) across committed cycles, nanoseconds.
    pub cycle_latency_sum_ns: u64,
}

/// A buffered client read awaiting linearization (§5).
#[derive(Clone, Debug)]
struct PendingRead {
    req: ClientRequest,
    /// Commit of this cycle releases the read; 0 = not yet assigned.
    ordering_cycle: CycleId,
    /// Number of own-window writes received before this read — its
    /// interleaving position within the node's own request set.
    write_prefix: usize,
}

/// A representative's in-flight state fetch.
#[derive(Clone, Debug)]
struct Fetch {
    sent_at: Time,
    attempts: u32,
    target: NodeId,
    responded: bool,
}

/// Per-cycle protocol state.
#[derive(Debug, Default)]
struct CycleState {
    started: bool,
    /// When this node started the cycle (broadcast its round-1 proposal).
    started_at: Time,
    /// Last time this cycle made visible progress (used to age-gate the
    /// liveness rescue path).
    last_progress: Time,
    /// Round-1 proposals by proposer.
    round1: BTreeMap<NodeId, VnodeState>,
    /// `ancestors[k]` = computed state of the height-`k+1` ancestor.
    ancestors: Vec<Option<VnodeState>>,
    /// Sibling vnode states delivered via super-leaf broadcast.
    remote: BTreeMap<VnodeId, VnodeState>,
    /// This node's in-flight fetches (as representative).
    fetches: BTreeMap<VnodeId, Fetch>,
    root_done: bool,
    committed: bool,
}

/// The Canopus protocol node. Drive it with any [`Process`] runtime — the
/// deterministic simulator or the real TCP transport.
pub struct CanopusNode {
    cfg: CanopusConfig,
    me: NodeId,
    table: EmulationTable,
    my_superleaf: usize,
    my_parent: VnodeId,
    height: usize,
    rng: SmallRng,
    bcast: Option<SuperLeafBroadcast>,
    fd: FailureDetector,

    // Client intake.
    pending_writes: VecDeque<TimedOp>,
    pending_weight: u64,
    pending_reads: Vec<PendingRead>,
    pending_updates: Vec<MembershipUpdate>,
    /// Lease mode: writes parked until their key's lease activates.
    awaiting_lease: BTreeMap<Key, Vec<TimedOp>>,
    /// Lease mode: keys whose lease we will request in the next proposal.
    requested_leases: BTreeSet<Key>,
    /// Lease mode: key → last cycle its write lease covers.
    lease_until: BTreeMap<Key, u64>,

    // Cycle machinery.
    cycles: BTreeMap<CycleId, CycleState>,
    /// Batching window deadline (§ batching): set when the first request
    /// of a batch arrives under a nonzero `max_linger`, cleared when the
    /// cycle carrying the batch starts.
    linger_until: Option<Time>,
    last_started: CycleId,
    last_committed: CycleId,
    max_seen_cycle: CycleId,
    /// Buffered proposal-requests for states not yet computed.
    waiting_requests: Vec<(NodeId, CycleId, VnodeId)>,

    // Exclusion bookkeeping (see module docs). The roster is every node
    // that was ever a member of this super-leaf: round-1 expectations are
    // evaluated against it plus the tombstone/rejoin markers (which are
    // totally ordered within each member's broadcast group and therefore
    // identical at every survivor), never against the mutable emulation
    // table, whose update timing varies across nodes under pipelining.
    superleaf_roster: BTreeSet<NodeId>,
    tombstoned: BTreeMap<NodeId, CycleId>,
    rejoined: BTreeMap<NodeId, CycleId>,
    /// Peers the failure detector reported, whose tombstone has not yet
    /// been delivered: retried every tick until the dead member's group has
    /// a successor leader that lands the tombstone.
    pending_tombstones: BTreeMap<NodeId, Time>,
    /// Remote emulators that timed out a fetch; deprioritized when picking
    /// emulators until they are heard from again (paper §A.4: "marks it as
    /// such, and picks another live emulator").
    remote_suspects: BTreeSet<NodeId>,

    /// Broadcast items that could not be proposed while our own group's
    /// leadership was usurped; retried each tick after reclaiming.
    unsent_items: VecDeque<BroadcastItem>,

    // Commit products.
    store: KvStore,
    committed_log: Vec<CommittedCycle>,
    stats: CanopusStats,

    // Observability (disabled by default; see [`CanopusNode::with_obs`]).
    obs: CanopusObs,
}

/// Pre-registered observability handles. All of them are no-ops costing
/// one branch per update unless [`CanopusNode::with_obs`] installed an
/// enabled hub.
struct CanopusObs {
    hub: NodeObs,
    cycles_started: Counter,
    cycles_committed: Counter,
    linger_fires: Counter,
    tombstones: Counter,
    rejoins: Counter,
    batch_ops: Histogram,
    batch_weight: Histogram,
    pipeline_occupancy: Histogram,
    in_flight: Gauge,
}

impl CanopusObs {
    fn from_hub(hub: NodeObs) -> Self {
        let m = &hub.metrics;
        CanopusObs {
            cycles_started: m.counter("canopus.cycles_started"),
            cycles_committed: m.counter("canopus.cycles_committed"),
            linger_fires: m.counter("canopus.linger_fires"),
            tombstones: m.counter("canopus.tombstones"),
            rejoins: m.counter("canopus.rejoins"),
            batch_ops: m.histogram("canopus.batch_ops"),
            batch_weight: m.histogram("canopus.batch_weight"),
            pipeline_occupancy: m.histogram("canopus.pipeline_occupancy"),
            in_flight: m.gauge("canopus.in_flight"),
            hub,
        }
    }
}

impl CanopusNode {
    /// Creates a node. `table` must be the identical initial table at every
    /// node (paper assumption A1); `seed` feeds this node's deterministic
    /// RNG (proposal numbers, emulator choice, Raft timeouts).
    pub fn new(me: NodeId, table: EmulationTable, cfg: CanopusConfig, seed: u64) -> Self {
        let my_superleaf = table
            .superleaf_of(me)
            .unwrap_or_else(|| panic!("{me} is not in the emulation table"));
        let shape = table.shape().clone();
        let my_parent = shape.ancestor_of_superleaf(my_superleaf, 1);
        let height = shape.height();
        let peers: Vec<NodeId> = table
            .members_of(my_superleaf)
            .filter(|&p| p != me)
            .collect();
        let fd = FailureDetector::new(&peers, cfg.failure_timeout, Time::ZERO);
        let superleaf_roster: BTreeSet<NodeId> = table.members_of(my_superleaf).collect();
        CanopusNode {
            rng: SmallRng::seed_from_u64(seed ^ (me.0 as u64) << 32),
            cfg,
            me,
            my_superleaf,
            my_parent,
            height,
            table,
            bcast: None,
            fd,
            pending_writes: VecDeque::new(),
            pending_weight: 0,
            pending_reads: Vec::new(),
            pending_updates: Vec::new(),
            awaiting_lease: BTreeMap::new(),
            requested_leases: BTreeSet::new(),
            lease_until: BTreeMap::new(),
            cycles: BTreeMap::new(),
            linger_until: None,
            last_started: CycleId(0),
            last_committed: CycleId(0),
            max_seen_cycle: CycleId(0),
            waiting_requests: Vec::new(),
            superleaf_roster,
            tombstoned: BTreeMap::new(),
            rejoined: BTreeMap::new(),
            pending_tombstones: BTreeMap::new(),
            remote_suspects: BTreeSet::new(),
            unsent_items: VecDeque::new(),
            store: KvStore::new(),
            committed_log: Vec::new(),
            stats: CanopusStats::default(),
            obs: CanopusObs::from_hub(NodeObs::disabled()),
        }
    }

    /// Installs an observability hub (metrics registry + flight recorder).
    /// Builder-style so every existing `new` call site keeps compiling;
    /// without this call the node carries a disabled hub whose updates
    /// cost one branch each.
    pub fn with_obs(mut self, hub: NodeObs) -> Self {
        self.obs = CanopusObs::from_hub(hub);
        self
    }

    /// This node's observability hub (disabled unless installed).
    pub fn obs(&self) -> &NodeObs {
        &self.obs.hub
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// Current counters.
    pub fn stats(&self) -> CanopusStats {
        self.stats
    }

    /// The commit log (empty unless `cfg.record_log`).
    pub fn committed_log(&self) -> &[CommittedCycle] {
        &self.committed_log
    }

    /// The current emulation table (identical across nodes at equal commit
    /// points; tests compare digests).
    pub fn emulation_table(&self) -> &EmulationTable {
        &self.table
    }

    /// The replicated store.
    pub fn store(&self) -> &KvStore {
        &self.store
    }

    /// Highest committed cycle.
    pub fn last_committed(&self) -> CycleId {
        self.last_committed
    }

    /// Highest started cycle.
    pub fn last_started(&self) -> CycleId {
        self.last_started
    }

    /// Human-readable diagnostic of in-flight protocol state.
    pub fn debug_state(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = write!(
            out,
            "{}: started={} committed={} tombstoned={:?} pending_ts={:?} roster={:?}",
            self.me,
            self.last_started.0,
            self.last_committed.0,
            self.tombstoned,
            self.pending_tombstones.keys().collect::<Vec<_>>(),
            self.superleaf_roster,
        );
        for (c, e) in self.cycles.range(self.last_committed.next()..) {
            let _ = write!(
                out,
                "
  {c:?}: started={} r1_from={:?} anc={:?} remote={:?} fetches={:?} root={}",
                e.started,
                e.round1.keys().collect::<Vec<_>>(),
                e.ancestors.iter().map(|a| a.is_some()).collect::<Vec<_>>(),
                e.remote.keys().collect::<Vec<_>>(),
                e.fetches.keys().collect::<Vec<_>>(),
                e.root_done,
            );
        }
        out
    }

    // ------------------------------------------------------------------
    // Broadcast plumbing
    // ------------------------------------------------------------------

    fn flush_raft(&mut self, out: Outbox, ctx: &mut Context<'_, CanopusMsg>) {
        for (to, msg) in out {
            ctx.send(to, CanopusMsg::Raft(msg));
        }
    }

    fn broadcast_item(&mut self, item: &BroadcastItem, ctx: &mut Context<'_, CanopusMsg>) {
        let data = item.to_bytes();
        let mut out = Outbox::new();
        let bcast = self.bcast.as_mut().expect("started");
        if bcast.broadcast(data, ctx.now(), &mut out).is_none() {
            // Not currently leading our own group: a peer transiently
            // usurped it after a false failure suspicion (heavy CPU load
            // delays heartbeats). Queue the item; the tick loop reclaims
            // leadership and retries — proposals are never dropped.
            self.unsent_items.push_back(item.clone());
        }
        self.flush_raft(out, ctx);
    }

    // ------------------------------------------------------------------
    // Client intake
    // ------------------------------------------------------------------

    fn lease_active_for_next_cycles(&self, key: Key) -> bool {
        self.lease_until
            .get(&key)
            .is_some_and(|&until| until > self.last_started.0)
    }

    fn handle_client_request(&mut self, req: ClientRequest, ctx: &mut Context<'_, CanopusMsg>) {
        // Aggregates are parsed once, not per represented op; the cost
        // model amortizes their ingest (see CostModel::ingest_cost).
        ctx.charge(self.cfg.costs.ingest_cost(req.op.weight()));
        if req.op.is_write() {
            let op = TimedOp {
                req,
                arrival: ctx.now(),
            };
            let leased_write =
                self.cfg.read_mode == ReadMode::Leases && matches!(op.req.op, Op::Put { .. });
            if leased_write {
                if let Op::Put { key, .. } = op.req.op {
                    if self.lease_active_for_next_cycles(key) {
                        self.pending_weight += op.req.op.weight() as u64;
                        self.pending_writes.push_back(op);
                    } else {
                        // Park until the lease round grants coverage.
                        self.requested_leases.insert(key);
                        self.awaiting_lease.entry(key).or_default().push(op);
                    }
                }
            } else {
                self.pending_weight += op.req.op.weight() as u64;
                self.pending_writes.push_back(op);
            }
        } else {
            // Reads: lease mode may serve immediately; otherwise delay for
            // linearization (§5).
            let fast = match (&self.cfg.read_mode, &req.op) {
                (ReadMode::Leases, Op::Get { key }) => !self.lease_active_for_next_cycles(*key),
                (ReadMode::Leases, Op::SyntheticRead { .. }) => true,
                _ => false,
            };
            if fast {
                self.stats.lease_fast_reads += req.op.weight() as u64;
                self.serve_read(&req, ctx);
            } else {
                self.pending_reads.push(PendingRead {
                    write_prefix: self.pending_writes.len(),
                    req,
                    ordering_cycle: CycleId(0),
                });
            }
        }
        self.maybe_start_cycles(ctx);
    }

    fn serve_read(&mut self, req: &ClientRequest, ctx: &mut Context<'_, CanopusMsg>) {
        let weight = req.op.weight();
        ctx.charge(Dur::nanos(
            self.cfg.costs.per_read.as_nanos() * weight.min(4096) as u64,
        ));
        let result = match &req.op {
            Op::Get { key } => {
                let v = self.store.get(*key);
                OpResult::Value(v.map(|v| v.value.clone()))
            }
            Op::SyntheticRead { .. } => OpResult::Batch,
            _ => unreachable!("serve_read on a write"),
        };
        self.stats.reads_served += weight as u64;
        ctx.send(
            req.client,
            CanopusMsg::Reply(ClientReply {
                op_id: req.op_id,
                weight,
                result,
            }),
        );
    }

    // ------------------------------------------------------------------
    // Cycle lifecycle
    // ------------------------------------------------------------------

    fn in_flight(&self) -> u64 {
        self.last_started.0 - self.last_committed.0
    }

    fn has_local_work(&self) -> bool {
        !self.pending_writes.is_empty()
            || self
                .pending_reads
                .iter()
                .any(|r| r.ordering_cycle == CycleId(0))
            || !self.pending_updates.is_empty()
            || !self.requested_leases.is_empty()
    }

    /// Whether the batching window for the next self-clocked cycle has
    /// closed. Opens the window (and arms its timer) on the first call
    /// with pending work, so a request never waits longer than
    /// `max_linger` before its cycle starts.
    fn linger_elapsed(&mut self, ctx: &mut Context<'_, CanopusMsg>) -> bool {
        if self.cfg.max_linger.is_zero() {
            return true;
        }
        match self.linger_until {
            Some(deadline) => {
                let fired = ctx.now() >= deadline;
                if fired {
                    self.obs.linger_fires.inc();
                    self.obs.hub.event(
                        ctx.now().as_nanos(),
                        ObsEvent::LingerFire {
                            cycle: self.last_started.next().0,
                            ops: self.pending_writes.len() as u64,
                        },
                    );
                }
                fired
            }
            None => {
                self.linger_until = Some(ctx.now() + self.cfg.max_linger);
                ctx.set_timer(self.cfg.max_linger, LINGER);
                self.obs.hub.event(
                    ctx.now().as_nanos(),
                    ObsEvent::LingerArm {
                        cycle: self.last_started.next().0,
                        ops: self.pending_writes.len() as u64,
                    },
                );
                false
            }
        }
    }

    /// Starts as many cycles as policy allows (§4.4 prompting, §7.1
    /// pipelining, super-leaf batching via `max_linger`).
    fn maybe_start_cycles(&mut self, ctx: &mut Context<'_, CanopusMsg>) {
        if self.bcast.is_none() {
            return;
        }
        loop {
            // Both trigger modes bound cycles in flight by the same knob;
            // depth 1 reproduces the strict start-on-commit behavior.
            if self.in_flight() >= self.cfg.max_pipeline_depth.max(1) {
                return;
            }
            let prompted = self.max_seen_cycle > self.last_started;
            let overflow = self.pending_weight >= self.cfg.max_batch as u64;
            let start = prompted
                || overflow
                || (self.has_local_work()
                    && match self.cfg.trigger {
                        // Self-clocked: start once the batching window
                        // closes (immediately when `max_linger` is zero).
                        CycleTrigger::OnCommit => self.linger_elapsed(ctx),
                        // Pipelined starts on timer/prompt/overflow only,
                        // except for the very first cycle.
                        CycleTrigger::Pipelined => self.last_started == CycleId(0),
                    });
            if !start {
                return;
            }
            self.start_cycle(ctx);
        }
    }

    fn start_cycle(&mut self, ctx: &mut Context<'_, CanopusMsg>) {
        let c = self.last_started.next();
        self.last_started = c;
        self.linger_until = None;

        // Batch everything pending: writes, lease requests, membership
        // updates. Reads buffered during the previous window are ordered by
        // this cycle (§5).
        let batch_weight = self.pending_weight;
        let ops: Vec<TimedOp> = self.pending_writes.drain(..).collect();
        self.pending_weight = 0;

        let in_flight = self.in_flight();
        self.obs.cycles_started.inc();
        self.obs.batch_ops.observe(ops.len() as u64);
        self.obs.batch_weight.observe(batch_weight);
        self.obs.pipeline_occupancy.observe(in_flight);
        self.obs.in_flight.set(in_flight as i64);
        self.obs.hub.event(
            ctx.now().as_nanos(),
            ObsEvent::CycleStart {
                cycle: c.0,
                ops: ops.len() as u64,
                weight: batch_weight,
                in_flight,
            },
        );
        let lease_requests: Vec<Key> = std::mem::take(&mut self.requested_leases)
            .into_iter()
            .collect();
        let updates = std::mem::take(&mut self.pending_updates);
        for read in &mut self.pending_reads {
            if read.ordering_cycle == CycleId(0) {
                read.ordering_cycle = c;
                read.write_prefix = read.write_prefix.min(ops.len());
            }
        }

        let set = RequestSet {
            origin: self.me,
            ops,
            lease_requests,
        };
        let number = self.rng.gen::<u64>();
        let state = VnodeState::round1(self.me, self.my_parent.clone(), c, number, set, updates);

        if !self.cfg.costs.storage_per_batch.is_zero() {
            ctx.charge(self.cfg.costs.storage_per_batch);
        }

        let now = ctx.now();
        let entry = self.cycle_entry(c);
        entry.started = true;
        entry.started_at = now;
        self.broadcast_item(&BroadcastItem::Proposal(state), ctx);
        // Issue all remote fetches for this cycle up front (§4.7 event 2:
        // representatives request remote states as soon as the cycle
        // starts; emulators buffer until the state is ready).
        self.plan_fetches(c, ctx);
        self.note_cycle_seen(c);
    }

    /// Fetches-or-creates the cycle entry with its ancestor slots ready.
    fn cycle_entry(&mut self, c: CycleId) -> &mut CycleState {
        let height = self.height;
        let entry = self.cycles.entry(c).or_default();
        if entry.ancestors.is_empty() {
            entry.ancestors = vec![None; height];
        }
        entry
    }

    fn note_cycle_seen(&mut self, c: CycleId) {
        if c > self.max_seen_cycle {
            self.max_seen_cycle = c;
        }
    }

    /// The representative set: the first `representatives` non-excluded
    /// members of this super-leaf, in id order (§4.5: representatives are
    /// numbered and ordered; assignment needs no communication).
    fn representative_set(&self) -> Vec<NodeId> {
        self.superleaf_roster
            .iter()
            .copied()
            .filter(|m| !self.tombstoned.contains_key(m))
            .take(self.cfg.representatives.max(1))
            .collect()
    }

    /// Issues the proposal-requests this node is responsible for in cycle
    /// `c` (every round's fetches are issued immediately; responders buffer).
    fn plan_fetches(&mut self, c: CycleId, ctx: &mut Context<'_, CanopusMsg>) {
        if self.height < 2 {
            return;
        }
        let reps = self.representative_set();
        if reps.is_empty() {
            return;
        }
        let shape = self.table.shape().clone();
        for r in 2..=self.height {
            let target = shape.ancestor_of_superleaf(self.my_superleaf, r);
            let own_child = shape.ancestor_of_superleaf(self.my_superleaf, r - 1);
            let needed: Vec<VnodeId> = shape
                .children(&target)
                .into_iter()
                .filter(|v| *v != own_child)
                .collect();
            for (j, vnode) in needed.into_iter().enumerate() {
                let mut mine = false;
                for k in 0..self.cfg.fetch_redundancy.max(1) {
                    if reps[(j + k) % reps.len()] == self.me {
                        mine = true;
                    }
                }
                if !mine {
                    continue;
                }
                let entry = self.cycle_entry(c);
                if entry.remote.contains_key(&vnode) || entry.fetches.contains_key(&vnode) {
                    continue;
                }
                self.issue_fetch(c, vnode, 0, ctx);
            }
        }
    }

    fn issue_fetch(
        &mut self,
        c: CycleId,
        vnode: VnodeId,
        attempt: u32,
        ctx: &mut Context<'_, CanopusMsg>,
    ) {
        let all = self.table.emulators(&vnode);
        if all.is_empty() {
            return; // subtree fully departed; cycle will stall (§3.3)
        }
        let preferred: Vec<NodeId> = all
            .iter()
            .copied()
            .filter(|e| !self.remote_suspects.contains(e))
            .collect();
        let emulators = if preferred.is_empty() {
            &all
        } else {
            &preferred
        };
        let pick = (self.rng.gen::<u32>() as usize + attempt as usize) % emulators.len();
        let target = emulators[pick];
        ctx.send(
            target,
            CanopusMsg::ProposalRequest {
                cycle: c,
                vnode: vnode.clone(),
            },
        );
        let entry = self.cycle_entry(c);
        entry.fetches.insert(
            vnode,
            Fetch {
                sent_at: ctx.now(),
                attempts: attempt + 1,
                target,
                responded: false,
            },
        );
    }

    /// Exclusion rule (see module docs): `m` contributes to cycle `c`
    /// unless a tombstone covering `c` exists and no proposal from `m` for
    /// `c` was delivered.
    fn round1_complete(&self, c: CycleId) -> bool {
        let Some(entry) = self.cycles.get(&c) else {
            return false;
        };
        if !entry.started {
            return false; // our own proposal is required
        }
        for &m in &self.superleaf_roster {
            if let Some(&active_from) = self.rejoined.get(&m) {
                if active_from > c {
                    continue; // not yet participating
                }
            }
            if entry.round1.contains_key(&m) {
                continue;
            }
            match self.tombstoned.get(&m) {
                Some(&from) if from <= c => continue, // excluded
                _ => return false,
            }
        }
        true
    }

    fn handle_delivery(
        &mut self,
        origin: NodeId,
        item: BroadcastItem,
        ctx: &mut Context<'_, CanopusMsg>,
    ) {
        match item {
            BroadcastItem::Proposal(state) => {
                let c = state.cycle;
                if c <= self.last_committed {
                    return;
                }
                // A tombstoned member's later proposals must not resurrect
                // it. The tombstone is totally ordered with the member's
                // proposals inside its broadcast-group log, so every
                // survivor draws the identical line: proposals delivered
                // *before* the tombstone count (the designed boundary
                // window), anything after — a restarted zombie replaying
                // forward, an isolated node catching up — is dropped until
                // a `Rejoin` marker lifts the exclusion. Without this, a
                // revived proposal races into live round-1 maps at some
                // survivors but not others and diverges the merge order.
                if self.tombstoned.contains_key(&origin) {
                    return;
                }
                self.note_cycle_seen(c);
                let now = ctx.now();
                let entry = self.cycle_entry(c);
                entry.last_progress = now;
                entry.round1.insert(origin, state);
                self.maybe_start_cycles(ctx);
                self.advance_cycle(c, ctx);
            }
            BroadcastItem::Remote(state) => {
                let c = state.cycle;
                if c <= self.last_committed {
                    return;
                }
                self.note_cycle_seen(c);
                let now = ctx.now();
                let entry = self.cycle_entry(c);
                entry.last_progress = now;
                if let Some(fetch) = entry.fetches.get_mut(&state.vnode) {
                    fetch.responded = true;
                }
                entry.remote.insert(state.vnode.clone(), state);
                self.maybe_start_cycles(ctx);
                self.advance_cycle(c, ctx);
            }
            BroadcastItem::Tombstone { node, from_cycle } => {
                // Keep the earliest boundary if several survivors raced to
                // tombstone the same member (min is order-independent, so
                // every peer converges on the same exclusion range).
                let entry = self.tombstoned.entry(node).or_insert(from_cycle);
                if from_cycle < *entry {
                    *entry = from_cycle;
                }
                self.obs.tombstones.inc();
                self.obs.hub.event(
                    ctx.now().as_nanos(),
                    ObsEvent::Tombstone {
                        cycle: from_cycle.0,
                        group: node.0,
                    },
                );
                self.pending_tombstones.remove(&node);
                self.rejoined.remove(&node);
                // Propose the membership change for the emulation tables of
                // the whole tree (§4.6).
                let update = MembershipUpdate::Leave { node };
                if !self.pending_updates.contains(&update) {
                    self.pending_updates.push(update);
                }
                // The exclusion may unblock round 1 of in-flight cycles.
                let in_flight: Vec<CycleId> = self
                    .cycles
                    .keys()
                    .copied()
                    .filter(|&c| c > self.last_committed)
                    .collect();
                for c in in_flight {
                    self.advance_cycle(c, ctx);
                }
            }
            BroadcastItem::Rejoin { node, from_cycle } => {
                self.superleaf_roster.insert(node);
                self.tombstoned.remove(&node);
                self.rejoined.insert(node, from_cycle);
                self.obs.rejoins.inc();
                self.obs.hub.event(
                    ctx.now().as_nanos(),
                    ObsEvent::Rejoin {
                        cycle: from_cycle.0,
                        group: node.0,
                    },
                );
                let superleaf = self.my_superleaf as u32;
                let update = MembershipUpdate::Join { node, superleaf };
                if !self.pending_updates.contains(&update) {
                    self.pending_updates.push(update);
                }
            }
        }
    }

    /// Drives cycle `c` forward: completes round 1, merges any completable
    /// higher rounds, answers buffered proposal-requests, and commits.
    fn advance_cycle(&mut self, c: CycleId, ctx: &mut Context<'_, CanopusMsg>) {
        // Round 1.
        let need_h1 = {
            let Some(entry) = self.cycles.get(&c) else {
                return;
            };
            !entry.ancestors.is_empty() && entry.ancestors[0].is_none()
        };
        if need_h1 {
            if !self.round1_complete(c) {
                return;
            }
            let entry = self.cycles.get_mut(&c).expect("exists");
            let contributors: Vec<VnodeState> = entry.round1.values().cloned().collect();
            let h1 = VnodeState::merge(self.my_parent.clone(), contributors);
            entry.ancestors[0] = Some(h1);
            self.obs.hub.event(
                ctx.now().as_nanos(),
                ObsEvent::RoundComplete {
                    cycle: c.0,
                    round: 1,
                },
            );
            self.answer_waiting(c, ctx);
        }

        // Higher rounds.
        let shape = self.table.shape().clone();
        for r in 2..=self.height {
            let done = {
                let entry = self.cycles.get(&c).expect("exists");
                entry.ancestors[r - 1].is_some()
            };
            if done {
                continue;
            }
            let prev_ready = {
                let entry = self.cycles.get(&c).expect("exists");
                entry.ancestors[r - 2].is_some()
            };
            if !prev_ready {
                return;
            }
            let target = shape.ancestor_of_superleaf(self.my_superleaf, r);
            let own_child = shape.ancestor_of_superleaf(self.my_superleaf, r - 1);
            let children = shape.children(&target);
            let entry = self.cycles.get_mut(&c).expect("exists");
            let mut states = Vec::with_capacity(children.len());
            let mut complete = true;
            for child in &children {
                if *child == own_child {
                    let mut own = entry.ancestors[r - 2].clone().expect("prev ready");
                    // When a state rises a level, its tie-break becomes its
                    // position among its new siblings.
                    own.tie = own.vnode.last_digit() as u32;
                    states.push(own);
                } else if let Some(state) = entry.remote.get(child) {
                    let mut s = state.clone();
                    s.tie = s.vnode.last_digit() as u32;
                    states.push(s);
                } else {
                    complete = false;
                    break;
                }
            }
            if !complete {
                return;
            }
            let merged = VnodeState::merge(target, states);
            entry.ancestors[r - 1] = Some(merged);
            self.obs.hub.event(
                ctx.now().as_nanos(),
                ObsEvent::RoundComplete {
                    cycle: c.0,
                    round: r as u64,
                },
            );
            self.answer_waiting(c, ctx);
        }

        // Root reached.
        {
            let entry = self.cycles.get_mut(&c).expect("exists");
            if entry.ancestors[self.height - 1].is_some() {
                entry.root_done = true;
            }
        }
        self.try_commit(ctx);
    }

    /// Answers buffered proposal-requests that newly computed states satisfy.
    fn answer_waiting(&mut self, c: CycleId, ctx: &mut Context<'_, CanopusMsg>) {
        let mut still_waiting = Vec::new();
        let waiting = std::mem::take(&mut self.waiting_requests);
        for (from, cycle, vnode) in waiting {
            if cycle != c {
                still_waiting.push((from, cycle, vnode));
                continue;
            }
            match self.lookup_state(cycle, &vnode) {
                Some(state) => {
                    self.stats.fetches_served += 1;
                    ctx.send(from, CanopusMsg::ProposalResponse { state });
                }
                None => still_waiting.push((from, cycle, vnode)),
            }
        }
        self.waiting_requests = still_waiting;
    }

    fn lookup_state(&self, c: CycleId, vnode: &VnodeId) -> Option<VnodeState> {
        let entry = self.cycles.get(&c)?;
        let depth = vnode.depth();
        let height = self.height.checked_sub(depth)?;
        if height == 0 || height > self.height {
            return None;
        }
        let state = entry.ancestors.get(height - 1)?.as_ref()?;
        if state.vnode == *vnode {
            Some(state.clone())
        } else {
            None
        }
    }

    fn try_commit(&mut self, ctx: &mut Context<'_, CanopusMsg>) {
        loop {
            let next = self.last_committed.next();
            let ready = self
                .cycles
                .get(&next)
                .map(|e| e.root_done && !e.committed)
                .unwrap_or(false);
            if !ready {
                return;
            }
            self.commit_cycle(next, ctx);
            self.maybe_start_cycles(ctx);
        }
    }

    fn commit_cycle(&mut self, c: CycleId, ctx: &mut Context<'_, CanopusMsg>) {
        let root = {
            let entry = self.cycles.get_mut(&c).expect("ready");
            entry.committed = true;
            entry.ancestors[self.height - 1].clone().expect("root done")
        };
        let now = ctx.now();

        // 1. Membership updates (§4.6) — identical at every node.
        self.table.apply_all(&root.updates);

        // 2. Lease grants (§7.2): requests in this cycle cover the next
        //    `lease_span` cycles.
        let mut unlocked: Vec<Key> = Vec::new();
        for set in &root.sets {
            for &key in &set.lease_requests {
                self.lease_until.insert(key, c.0 + self.cfg.lease_span);
                if set.origin == self.me {
                    unlocked.push(key);
                }
            }
        }

        // 3. Apply the total order; interleave own reads at their recorded
        //    positions (§5).
        let mut own_reads: Vec<PendingRead> = Vec::new();
        let mut rest: Vec<PendingRead> = Vec::new();
        for r in std::mem::take(&mut self.pending_reads) {
            if r.ordering_cycle == c {
                own_reads.push(r);
            } else {
                rest.push(r);
            }
        }
        self.pending_reads = rest;
        own_reads.sort_by_key(|r| r.write_prefix);
        let mut read_iter = own_reads.into_iter().peekable();

        let mut total_weight: u64 = 0;
        let mut record_sets = Vec::new();
        for set in &root.sets {
            let is_own = set.origin == self.me;
            let mut record_ops = Vec::new();
            if is_own {
                // Serve reads positioned before the k-th own write.
                for (k, op) in set.ops.iter().enumerate() {
                    while read_iter.peek().is_some_and(|r| r.write_prefix <= k) {
                        let r = read_iter.next().expect("peeked");
                        self.serve_read(&r.req, ctx);
                    }
                    let rec = self.apply_write(op, true, ctx);
                    record_ops.push(rec);
                    total_weight += op.req.op.weight() as u64;
                }
                // Reads positioned after every own write.
                for r in read_iter.by_ref() {
                    self.serve_read(&r.req, ctx);
                }
            } else {
                for op in &set.ops {
                    let rec = self.apply_write(op, false, ctx);
                    record_ops.push(rec);
                    total_weight += op.req.op.weight() as u64;
                }
            }
            record_sets.push(CommittedSet {
                origin: set.origin,
                ops: record_ops,
            });
        }
        // If our own set was somehow absent (we never contributed — cannot
        // happen for cycles we committed), serve leftover reads anyway.
        for r in read_iter {
            self.serve_read(&r.req, ctx);
        }

        // 4. Lease mode: release parked writes whose lease now covers the
        //    upcoming cycles.
        for key in unlocked {
            if let Some(ops) = self.awaiting_lease.remove(&key) {
                for op in ops {
                    self.pending_weight += op.req.op.weight() as u64;
                    self.pending_writes.push_back(op);
                }
            }
        }

        // 5. Bookkeeping.
        let started_at = self.cycles.get(&c).map(|e| e.started_at).unwrap_or(now);
        self.stats.cycle_latency_sum_ns += now.saturating_since(started_at).as_nanos();
        self.stats.committed_cycles += 1;
        self.stats.committed_weight += total_weight;
        let mut digest = self.stats.commit_digest ^ 0xcbf29ce484222325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                digest ^= b as u64;
                digest = digest.wrapping_mul(0x100000001b3);
            }
        };
        mix(c.0);
        for set in &root.sets {
            mix(set.origin.0 as u64 + 1);
            for op in &set.ops {
                mix(op.req.op_id);
                mix(op.req.client.0 as u64);
                mix(op.req.op.weight() as u64);
            }
        }
        self.stats.commit_digest = digest;
        if self.cfg.record_log {
            self.committed_log.push(CommittedCycle {
                cycle: c,
                at: now,
                sets: record_sets,
            });
        }
        self.last_committed = c;
        self.obs.cycles_committed.inc();
        self.obs.in_flight.set(self.in_flight() as i64);
        self.obs.hub.event(
            now.as_nanos(),
            ObsEvent::Commit {
                cycle: c.0,
                weight: total_weight,
            },
        );

        // 6. Prune retired cycle state.
        let keep_from = CycleId(c.0.saturating_sub(self.cfg.state_retention));
        let stale: Vec<CycleId> = self.cycles.range(..keep_from).map(|(&k, _)| k).collect();
        for k in stale {
            self.cycles.remove(&k);
        }
    }

    fn apply_write(
        &mut self,
        op: &TimedOp,
        is_own: bool,
        ctx: &mut Context<'_, CanopusMsg>,
    ) -> CommittedOp {
        let weight = op.req.op.weight();
        ctx.charge(Dur::nanos(
            self.cfg.costs.per_commit.as_nanos() * weight.min(4096) as u64,
        ));
        let record = match &op.req.op {
            Op::Put { key, value } => {
                let version = self.store.put(*key, value.clone());
                CommittedOp::Put {
                    client: op.req.client,
                    op_id: op.req.op_id,
                    key: *key,
                    version,
                }
            }
            Op::SyntheticWrite { count, .. } => CommittedOp::Synthetic {
                client: op.req.client,
                op_id: op.req.op_id,
                count: *count,
            },
            Op::MultiPut { puts } => {
                // Commit work scales with touched keys, not request weight.
                ctx.charge(Dur::nanos(
                    self.cfg.costs.per_commit.as_nanos() * (puts.len().min(4096)) as u64,
                ));
                let mut keys = Vec::with_capacity(puts.len());
                for (key, value) in puts {
                    self.store.put(*key, value.clone());
                    keys.push(*key);
                }
                CommittedOp::MultiPut {
                    client: op.req.client,
                    op_id: op.req.op_id,
                    keys,
                }
            }
            _ => unreachable!("reads are never in request sets"),
        };
        if is_own {
            self.stats.own_writes += weight as u64;
            let result = match op.req.op {
                Op::Put { .. } | Op::MultiPut { .. } => OpResult::Written,
                _ => OpResult::Batch,
            };
            ctx.send(
                op.req.client,
                CanopusMsg::Reply(ClientReply {
                    op_id: op.req.op_id,
                    weight,
                    result,
                }),
            );
        }
        record
    }

    // ------------------------------------------------------------------
    // Proposal-request serving (emulator role)
    // ------------------------------------------------------------------

    fn handle_proposal_request(
        &mut self,
        from: NodeId,
        cycle: CycleId,
        vnode: VnodeId,
        ctx: &mut Context<'_, CanopusMsg>,
    ) {
        self.note_cycle_seen(cycle);
        match self.lookup_state(cycle, &vnode) {
            Some(state) => {
                self.stats.fetches_served += 1;
                ctx.send(from, CanopusMsg::ProposalResponse { state });
            }
            None => {
                // Buffer until computed (§4.7 events 3 and 5); the request
                // is also outside prompting to start the cycle (§4.4).
                self.waiting_requests.push((from, cycle, vnode));
                self.maybe_start_cycles(ctx);
            }
        }
    }

    fn handle_proposal_response(&mut self, state: VnodeState, ctx: &mut Context<'_, CanopusMsg>) {
        let c = state.cycle;
        if c <= self.last_committed {
            return;
        }
        let already = self
            .cycles
            .get(&c)
            .map(|e| {
                e.remote.contains_key(&state.vnode)
                    || e.fetches.get(&state.vnode).is_some_and(|f| f.responded)
            })
            .unwrap_or(false);
        if already {
            return; // redundant fetch answered twice
        }
        if let Some(entry) = self.cycles.get_mut(&c) {
            if let Some(f) = entry.fetches.get_mut(&state.vnode) {
                f.responded = true;
            }
        }
        // Share with the super-leaf (self-delivery comes back through the
        // broadcast, keeping every member's view identical).
        self.broadcast_item(&BroadcastItem::Remote(state), ctx);
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    fn on_tick(&mut self, ctx: &mut Context<'_, CanopusMsg>) {
        let now = ctx.now();
        let mut out = Outbox::new();
        let deliveries = {
            let bcast = self.bcast.as_mut().expect("started");
            bcast.tick(now, &mut self.rng, &mut out)
        };
        self.flush_raft(out, ctx);

        // Reclaim our broadcast group if usurped, then flush queued items.
        if !self.unsent_items.is_empty() {
            let mut out = Outbox::new();
            {
                let bcast = self.bcast.as_mut().expect("started");
                if !bcast.leads_own_group() {
                    bcast.reclaim_own_group(now, &mut self.rng, &mut out);
                } else {
                    while let Some(item) = self.unsent_items.pop_front() {
                        let data = item.to_bytes();
                        if bcast.broadcast(data, now, &mut out).is_none() {
                            self.unsent_items.push_front(item);
                            break;
                        }
                    }
                }
            }
            self.flush_raft(out, ctx);
        }
        for d in deliveries {
            // Corrupt payloads cannot occur internally; ignore decode errors.
            if let Ok(item) = BroadcastItem::from_bytes(d.data) {
                self.handle_delivery(d.origin, item, ctx);
            }
        }

        // Failure detection: the survivor that wins the dead member's group
        // election appends the tombstone. Detection usually precedes the
        // election finishing, so proposals are retried until delivery.
        for peer in self.fd.newly_failed(now) {
            if !self.tombstoned.contains_key(&peer) {
                self.pending_tombstones.entry(peer).or_insert(Time::ZERO);
            }
        }
        let retry_gap = self.cfg.failure_timeout;
        let due: Vec<NodeId> = self
            .pending_tombstones
            .iter()
            .filter(|(_, &last)| now.saturating_since(last) >= retry_gap)
            .map(|(&p, _)| p)
            .collect();
        for peer in due {
            if self.tombstoned.contains_key(&peer) {
                self.pending_tombstones.remove(&peer);
                continue;
            }
            if self.fd.live_peers(now).contains(&peer) {
                // Heard from it again: false suspicion, drop the intent.
                self.pending_tombstones.remove(&peer);
                continue;
            }
            self.pending_tombstones.insert(peer, now);
            if self.bcast.as_ref().expect("started").leads_group_of(peer) {
                let item = BroadcastItem::Tombstone {
                    node: peer,
                    from_cycle: self.last_committed.next(),
                };
                let data = item.to_bytes();
                let mut out = Outbox::new();
                self.bcast
                    .as_mut()
                    .expect("started")
                    .propose_into(peer, data, now, &mut out);
                self.flush_raft(out, ctx);
            }
        }

        // Fetch retries: re-ask a different emulator after timeout.
        let timeout = self.cfg.fetch_timeout;
        let mut retries: Vec<(CycleId, VnodeId, u32, NodeId)> = Vec::new();
        for (&c, entry) in self.cycles.range(self.last_committed.next()..) {
            for (vnode, fetch) in &entry.fetches {
                if !fetch.responded
                    && !entry.remote.contains_key(vnode)
                    && now.saturating_since(fetch.sent_at) >= timeout
                {
                    retries.push((c, vnode.clone(), fetch.attempts, fetch.target));
                }
            }
        }
        for (c, vnode, attempts, target) in retries {
            self.remote_suspects.insert(target);
            self.issue_fetch(c, vnode, attempts, ctx);
        }

        // Liveness safety net: if the oldest uncommitted cycle has a round
        // whose sibling state is missing with no fetch in flight anywhere we
        // can see (possible transiently when representative views diverge
        // during membership churn), fetch it ourselves after a timeout.
        // Duplicate Remote broadcasts are idempotent.
        self.rescue_stalled_cycle(ctx);

        ctx.set_timer(self.cfg.tick_interval, TICK);
    }

    /// Fetches any long-missing sibling state of the oldest uncommitted
    /// cycle regardless of representative assignment.
    fn rescue_stalled_cycle(&mut self, ctx: &mut Context<'_, CanopusMsg>) {
        let c = self.last_committed.next();
        if c > self.last_started {
            return;
        }
        let stuck_for = self.cfg.fetch_timeout;
        let now = ctx.now();
        let shape = self.table.shape().clone();
        let mut to_fetch: Vec<VnodeId> = Vec::new();
        {
            let Some(entry) = self.cycles.get(&c) else {
                return;
            };
            if entry.root_done || entry.ancestors.is_empty() {
                return;
            }
            if now.saturating_since(entry.last_progress) < stuck_for {
                return;
            }
            for r in 2..=self.height {
                if entry.ancestors[r - 1].is_some() {
                    continue;
                }
                if entry.ancestors[r - 2].is_none() {
                    break; // earlier round still pending
                }
                let target = shape.ancestor_of_superleaf(self.my_superleaf, r);
                let own_child = shape.ancestor_of_superleaf(self.my_superleaf, r - 1);
                for v in shape.children(&target) {
                    if v == own_child || entry.remote.contains_key(&v) {
                        continue;
                    }
                    match entry.fetches.get(&v) {
                        Some(f) if now.saturating_since(f.sent_at) < stuck_for => {}
                        Some(_) => {} // retry path handles it
                        None => to_fetch.push(v),
                    }
                }
                break; // only rescue the lowest incomplete round
            }
        }
        for v in to_fetch {
            self.issue_fetch(c, v, 0, ctx);
        }
    }

    fn on_cycle_timer(&mut self, ctx: &mut Context<'_, CanopusMsg>) {
        if self.cfg.trigger == CycleTrigger::Pipelined {
            let depth_ok = self.in_flight() < self.cfg.max_pipeline_depth;
            // The periodic timer is the upper bound between cycle starts
            // (§7.1); it fires a new cycle whenever local work is waiting.
            // Idle datacenters still participate in cycles started
            // elsewhere through outside prompting (§4.4), so a fully idle
            // system quiesces instead of free-running empty cycles.
            if depth_ok && self.has_local_work() {
                self.start_cycle(ctx);
            }
            ctx.set_timer(self.cfg.cycle_interval, CYCLE);
        }
    }
}

impl Process<CanopusMsg> for CanopusNode {
    fn on_start(&mut self, ctx: &mut Context<'_, CanopusMsg>) {
        let members: Vec<NodeId> = self.table.members_of(self.my_superleaf).collect();
        let mut bcast_rng = SmallRng::seed_from_u64(self.rng.gen());
        self.bcast = Some(SuperLeafBroadcast::new(
            self.me,
            &members,
            self.cfg.raft,
            ctx.now(),
            &mut bcast_rng,
        ));
        let peers: Vec<NodeId> = members.into_iter().filter(|&p| p != self.me).collect();
        self.fd = FailureDetector::new(&peers, self.cfg.failure_timeout, ctx.now());
        ctx.set_timer(self.cfg.tick_interval, TICK);
        if self.cfg.trigger == CycleTrigger::Pipelined {
            ctx.set_timer(self.cfg.cycle_interval, CYCLE);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: CanopusMsg, ctx: &mut Context<'_, CanopusMsg>) {
        self.fd.record(from, ctx.now());
        self.remote_suspects.remove(&from);
        ctx.charge(self.cfg.costs.per_protocol_msg);
        match msg {
            CanopusMsg::Raft(raft_msg) => {
                let mut out = Outbox::new();
                let deliveries = {
                    let bcast = self.bcast.as_mut().expect("started");
                    bcast.handle(from, raft_msg, ctx.now(), &mut self.rng, &mut out)
                };
                self.flush_raft(out, ctx);
                for d in deliveries {
                    if let Ok(item) = BroadcastItem::from_bytes(d.data) {
                        self.handle_delivery(d.origin, item, ctx);
                    }
                }
            }
            CanopusMsg::Request(req) => self.handle_client_request(req, ctx),
            CanopusMsg::Reply(_) => {} // nodes never receive replies
            CanopusMsg::ProposalRequest { cycle, vnode } => {
                self.handle_proposal_request(from, cycle, vnode, ctx)
            }
            CanopusMsg::ProposalResponse { state } => self.handle_proposal_response(state, ctx),
        }
    }

    fn on_timer(&mut self, timer: Timer, ctx: &mut Context<'_, CanopusMsg>) {
        match timer.token {
            TICK => self.on_tick(ctx),
            CYCLE => self.on_cycle_timer(ctx),
            // The batching window closed; the deadline check inside
            // `linger_elapsed` ignores stale timers from already-started
            // cycles (their `linger_until` was cleared).
            LINGER => self.maybe_start_cycles(ctx),
            _ => {}
        }
    }

    impl_process_any!();
}
