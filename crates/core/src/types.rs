//! Core identifiers and the Leaf-Only Tree (LOT) geometry (paper §4.1).
//!
//! Only leaf nodes (*pnodes*) exist physically; interior *vnodes* are
//! virtual and emulated by every descendant pnode. Pnodes in one rack form
//! a *super-leaf* sharing a height-1 parent vnode. A consensus cycle of a
//! height-`h` LOT runs `h` rounds: after round `r` every pnode holds the
//! state of its height-`r` ancestor, and round `h` yields the root state —
//! the cycle's total order.

use bytes::{Bytes, BytesMut};
use canopus_net::wire::{Wire, WireError, WireRead};
use std::fmt;

/// Identifier of one consensus cycle; cycles are numbered from 1 and
/// execute strictly in sequence.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CycleId(pub u64);

impl CycleId {
    /// The next cycle.
    pub fn next(self) -> CycleId {
        CycleId(self.0 + 1)
    }
}

impl fmt::Debug for CycleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for CycleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Wire for CycleId {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(CycleId(u64::decode(buf)?))
    }
}

/// Identifier of a vnode: the path of child indices from the root.
///
/// The root is the empty path; the paper's vnode `1.2.3` (under a root
/// named `1`) is `VnodeId(vec![1, 2])` here with 0-based digits. A vnode at
/// depth `d` in a height-`h` LOT has height `h - d`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VnodeId(pub Vec<u16>);

impl VnodeId {
    /// The root vnode.
    pub fn root() -> VnodeId {
        VnodeId(Vec::new())
    }

    /// Depth below the root (root = 0).
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// The parent vnode, or `None` for the root.
    pub fn parent(&self) -> Option<VnodeId> {
        if self.0.is_empty() {
            None
        } else {
            Some(VnodeId(self.0[..self.0.len() - 1].to_vec()))
        }
    }

    /// The `i`-th child.
    pub fn child(&self, i: u16) -> VnodeId {
        let mut path = self.0.clone();
        path.push(i);
        VnodeId(path)
    }

    /// Whether `self` is an ancestor of (or equal to) `other`.
    pub fn is_prefix_of(&self, other: &VnodeId) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == self.0[..]
    }

    /// The last path digit (used as a deterministic merge tie-break among
    /// siblings), or 0 for the root.
    pub fn last_digit(&self) -> u16 {
        self.0.last().copied().unwrap_or(0)
    }
}

impl fmt::Debug for VnodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "v:root");
        }
        write!(f, "v:")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl fmt::Display for VnodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Wire for VnodeId {
    fn encode(&self, buf: &mut BytesMut) {
        (self.0.len() as u8).encode(buf);
        for &d in &self.0 {
            d.encode(buf);
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let n = buf.read_u8()? as usize;
        let mut path = Vec::with_capacity(n);
        for _ in 0..n {
            path.push(u16::decode(buf)?);
        }
        Ok(VnodeId(path))
    }
}

/// The shape of a LOT: interior fanouts from the root down to the
/// super-leaf parents.
///
/// * `fanouts = []` — height 1: a single super-leaf whose parent is the root.
/// * `fanouts = [n]` — height 2: `n` super-leaves under the root (the
///   paper's evaluation shape, Figure 2 / §8).
/// * `fanouts = [a, b]` — height 3: `a` height-2 vnodes, each with `b`
///   height-1 children: `a*b` super-leaves (Figure 1 is `[3, 3]` with
///   3-node super-leaves).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LotShape {
    fanouts: Vec<u16>,
}

impl LotShape {
    /// Builds a shape; all fanouts must be ≥ 1.
    pub fn new(fanouts: Vec<u16>) -> LotShape {
        assert!(
            fanouts.iter().all(|&f| f >= 1),
            "fanouts must be at least 1"
        );
        LotShape { fanouts }
    }

    /// A height-2 LOT with `n` super-leaves (the common deployment shape).
    pub fn flat(n: u16) -> LotShape {
        if n == 1 {
            LotShape::new(vec![])
        } else {
            LotShape::new(vec![n])
        }
    }

    /// Tree height `h` (number of rounds per consensus cycle).
    pub fn height(&self) -> usize {
        self.fanouts.len() + 1
    }

    /// Total number of super-leaves.
    pub fn num_superleaves(&self) -> usize {
        self.fanouts.iter().map(|&f| f as usize).product()
    }

    /// Fanout at `depth` (children per vnode at that depth). Depth 0 is the
    /// root. Panics if `depth` addresses the leaf level.
    pub fn fanout_at(&self, depth: usize) -> u16 {
        self.fanouts[depth]
    }

    /// The height-1 parent vnode of super-leaf `s` (mixed-radix digits of
    /// `s`, most significant first).
    pub fn superleaf_vnode(&self, s: usize) -> VnodeId {
        assert!(s < self.num_superleaves(), "superleaf {s} out of range");
        let mut digits = vec![0u16; self.fanouts.len()];
        let mut rem = s;
        for (i, &f) in self.fanouts.iter().enumerate().rev() {
            digits[i] = (rem % f as usize) as u16;
            rem /= f as usize;
        }
        VnodeId(digits)
    }

    /// Inverse of [`superleaf_vnode`](Self::superleaf_vnode).
    pub fn superleaf_index(&self, v: &VnodeId) -> usize {
        assert_eq!(v.depth(), self.fanouts.len(), "not a super-leaf vnode");
        let mut s = 0usize;
        for (i, &d) in v.0.iter().enumerate() {
            s = s * self.fanouts[i] as usize + d as usize;
        }
        s
    }

    /// The height-`height` ancestor vnode of super-leaf `s`.
    /// `height` ranges from 1 (the super-leaf's parent) to `h` (the root).
    pub fn ancestor_of_superleaf(&self, s: usize, height: usize) -> VnodeId {
        assert!((1..=self.height()).contains(&height), "bad height");
        let leaf_parent = self.superleaf_vnode(s);
        let keep = self.height() - height;
        VnodeId(leaf_parent.0[..keep].to_vec())
    }

    /// The children of a vnode (all vnodes; callers never need leaf
    /// children since round 1 is handled by super-leaf broadcast).
    pub fn children(&self, v: &VnodeId) -> Vec<VnodeId> {
        let depth = v.depth();
        assert!(
            depth < self.fanouts.len(),
            "height-1 vnodes have no vnode children"
        );
        (0..self.fanouts[depth]).map(|i| v.child(i)).collect()
    }

    /// The contiguous range of super-leaf indices descending from `v`.
    pub fn superleaves_under(&self, v: &VnodeId) -> std::ops::Range<usize> {
        let depth = v.depth();
        assert!(depth <= self.fanouts.len());
        let below: usize = self.fanouts[depth..].iter().map(|&f| f as usize).product();
        let mut start = 0usize;
        for (i, &d) in v.0.iter().enumerate() {
            start = start * self.fanouts[i] as usize + d as usize;
        }
        start *= below;
        start..start + below
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_shape_basics() {
        let s = LotShape::flat(3);
        assert_eq!(s.height(), 2);
        assert_eq!(s.num_superleaves(), 3);
        assert_eq!(s.superleaf_vnode(0), VnodeId(vec![0]));
        assert_eq!(s.superleaf_vnode(2), VnodeId(vec![2]));
        assert_eq!(s.superleaf_index(&VnodeId(vec![1])), 1);
        assert_eq!(s.ancestor_of_superleaf(1, 1), VnodeId(vec![1]));
        assert_eq!(s.ancestor_of_superleaf(1, 2), VnodeId::root());
    }

    #[test]
    fn single_superleaf_shape() {
        let s = LotShape::flat(1);
        assert_eq!(s.height(), 1);
        assert_eq!(s.num_superleaves(), 1);
        assert_eq!(s.superleaf_vnode(0), VnodeId::root());
        assert_eq!(s.ancestor_of_superleaf(0, 1), VnodeId::root());
    }

    #[test]
    fn figure1_shape() {
        // Figure 1: 27 pnodes, 3 per super-leaf, height 3 => fanouts [3,3].
        let s = LotShape::new(vec![3, 3]);
        assert_eq!(s.height(), 3);
        assert_eq!(s.num_superleaves(), 9);
        // Super-leaf 4 = digits [1,1]: the "1.1.2"-style middle of the tree.
        assert_eq!(s.superleaf_vnode(4), VnodeId(vec![1, 1]));
        assert_eq!(s.superleaf_index(&VnodeId(vec![1, 1])), 4);
        assert_eq!(s.ancestor_of_superleaf(4, 2), VnodeId(vec![1]));
        assert_eq!(s.ancestor_of_superleaf(4, 3), VnodeId::root());
        assert_eq!(
            s.children(&VnodeId(vec![1])),
            vec![
                VnodeId(vec![1, 0]),
                VnodeId(vec![1, 1]),
                VnodeId(vec![1, 2])
            ]
        );
        assert_eq!(s.superleaves_under(&VnodeId(vec![1])), 3..6);
        assert_eq!(s.superleaves_under(&VnodeId::root()), 0..9);
        assert_eq!(s.superleaves_under(&VnodeId(vec![2, 1])), 7..8);
    }

    #[test]
    fn vnode_relationships() {
        let v = VnodeId(vec![1, 2]);
        assert_eq!(v.parent(), Some(VnodeId(vec![1])));
        assert_eq!(VnodeId::root().parent(), None);
        assert_eq!(v.child(0), VnodeId(vec![1, 2, 0]));
        assert!(VnodeId(vec![1]).is_prefix_of(&v));
        assert!(!VnodeId(vec![2]).is_prefix_of(&v));
        assert!(VnodeId::root().is_prefix_of(&v));
        assert_eq!(v.depth(), 2);
        assert_eq!(v.last_digit(), 2);
    }

    #[test]
    fn uneven_radix_round_trips() {
        let s = LotShape::new(vec![2, 5]);
        for i in 0..s.num_superleaves() {
            assert_eq!(s.superleaf_index(&s.superleaf_vnode(i)), i);
        }
    }

    #[test]
    fn wire_round_trips() {
        for v in [VnodeId::root(), VnodeId(vec![3]), VnodeId(vec![1, 2, 3])] {
            assert_eq!(VnodeId::from_bytes(v.to_bytes()).unwrap(), v);
        }
        assert_eq!(
            CycleId::from_bytes(CycleId(77).to_bytes()).unwrap(),
            CycleId(77)
        );
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", VnodeId::root()), "v:root");
        assert_eq!(format!("{:?}", VnodeId(vec![1, 0, 2])), "v:1.0.2");
        assert_eq!(format!("{}", CycleId(9)), "c9");
    }
}
