//! Canopus node configuration.

use canopus_raft::RaftConfig;
use canopus_sim::Dur;

pub use canopus_kv::CostModel;

/// When a node starts its next consensus cycle.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CycleTrigger {
    /// Self-clocked (§4.4): start the next cycle when the previous one
    /// commits, if there is pending work — plus on outside prompting.
    /// Used for single-datacenter deployments where cycles are short.
    OnCommit,
    /// Pipelined (§7.1): multiple cycles in flight; a new cycle starts on a
    /// periodic timer, on batch overflow, or on seeing a later-cycle
    /// message. Used for wide-area deployments where the cycle time is
    /// dominated by WAN round trips.
    Pipelined,
}

/// How reads are linearized.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ReadMode {
    /// §5: delay each read until the cycle that orders the concurrent
    /// writes commits, then interleave it at its position in the node's own
    /// request order. No read ever crosses the network.
    Delayed,
    /// §7.2: write leases. Reads to keys without an active write lease are
    /// served immediately from committed state; writes pay an extra lease
    /// round. Synthetic operations are treated as immediately servable
    /// reads / lease-free writes.
    Leases,
}

/// Full configuration of a Canopus node.
#[derive(Clone, Debug)]
pub struct CanopusConfig {
    /// Cycle start policy.
    pub trigger: CycleTrigger,
    /// Pipelined mode: interval between cycle starts (the paper's
    /// multi-datacenter runs use 5 ms).
    pub cycle_interval: Dur,
    /// Start a new cycle early once this many client requests are pending
    /// (the paper uses 1000).
    pub max_batch: usize,
    /// Self-clocked batching window: after the first request of a batch
    /// arrives, hold the cycle open this long so later arrivals aggregate
    /// into the same proposal. Zero starts a cycle the moment work exists
    /// (the seed behavior). Overflow ([`CanopusConfig::max_batch`]) and
    /// outside prompting (§4.4) still start a cycle immediately — lingering
    /// never delays joining a cycle the rest of the tree already started.
    /// Ignored in [`CycleTrigger::Pipelined`] mode, where `cycle_interval`
    /// plays this role.
    pub max_linger: Dur,
    /// Cap on consensus cycles in flight at once, in either trigger mode.
    /// At 1, cycle N+1 starts only after cycle N commits (the self-clocked
    /// single-DC behavior). Above 1, cycle N+1's LOT exchange overlaps
    /// cycle N's result drain (§7.1 pipelining) — the cycle rate is then
    /// bounded by the slowest round, not the full commit latency.
    pub max_pipeline_depth: u64,
    /// Number of super-leaf representatives fetching remote vnode states.
    pub representatives: usize,
    /// How many representatives redundantly fetch each vnode state
    /// (the paper's example uses 2 for fault tolerance; 1 is leanest).
    pub fetch_redundancy: usize,
    /// Re-issue a proposal-request if unanswered for this long (covers
    /// emulator failure; must exceed the largest RTT in the deployment).
    pub fetch_timeout: Dur,
    /// Internal housekeeping tick (drives Raft timeouts, failure detection,
    /// and fetch retries).
    pub tick_interval: Dur,
    /// Peer silence threshold for the failure detector.
    pub failure_timeout: Dur,
    /// Raft parameters for super-leaf reliable broadcast.
    pub raft: RaftConfig,
    /// Read linearization mode.
    pub read_mode: ReadMode,
    /// Cycles a write lease stays active after its granting cycle
    /// (lease mode only).
    pub lease_span: u64,
    /// CPU cost model.
    pub costs: CostModel,
    /// Keep per-cycle commit records for inspection by tests (disable for
    /// long benchmark runs; the commit digest is always maintained).
    pub record_log: bool,
    /// How many completed cycles to retain for answering late
    /// proposal-requests from lagging super-leaves.
    pub state_retention: u64,
}

impl Default for CanopusConfig {
    fn default() -> Self {
        CanopusConfig {
            trigger: CycleTrigger::OnCommit,
            cycle_interval: Dur::millis(5),
            max_batch: 1000,
            max_linger: Dur::ZERO,
            max_pipeline_depth: 1,
            representatives: 2,
            fetch_redundancy: 1,
            fetch_timeout: Dur::millis(700),
            tick_interval: Dur::millis(1),
            failure_timeout: Dur::millis(25),
            raft: RaftConfig::default(),
            read_mode: ReadMode::Delayed,
            lease_span: 8,
            costs: CostModel::default(),
            record_log: true,
            state_retention: 64,
        }
    }
}

impl CanopusConfig {
    /// The paper's multi-datacenter configuration: pipelining on, 5 ms
    /// cycle timer, 1000-request batches (§8.2). Failure and election
    /// timeouts are relaxed so heavy load degrades gracefully instead of
    /// triggering false failovers.
    pub fn wide_area() -> Self {
        CanopusConfig {
            trigger: CycleTrigger::Pipelined,
            cycle_interval: Dur::millis(5),
            max_batch: 1000,
            max_pipeline_depth: 64,
            fetch_timeout: Dur::millis(900),
            failure_timeout: Dur::millis(150),
            raft: RaftConfig {
                heartbeat_interval: Dur::millis(5),
                election_timeout_min: Dur::millis(50),
                election_timeout_max: Dur::millis(100),
            },
            ..Self::default()
        }
    }

    /// Throughput-tuned self-clocked configuration: super-leaf batching
    /// (1 ms linger, 1000-request overflow) plus cross-round pipelining
    /// (`depth` cycles in flight). `depth` must be ≥ 1. This is the
    /// configuration the `throughput_knee` bench and the batched chaos
    /// scenarios exercise; every other knob keeps its default.
    pub fn batched_pipelined(depth: u64) -> Self {
        CanopusConfig {
            max_linger: Dur::millis(1),
            max_pipeline_depth: depth.max(1),
            ..Self::default()
        }
    }
}
