//! Shard-parallel consensus: N independent LOT pipelines per node.
//!
//! Canopus totally orders *everything* through one LOT pipeline, but most
//! KV traffic is single-key and only needs per-key order. [`ShardEngine`]
//! runs one complete [`CanopusNode`] per key-space shard inside a single
//! process: every shard has its own cycle pipeline, linger timer, batching
//! window, and broadcast-group log, all multiplexed over one transport
//! identity (one socket set on TCP, one sim node). Shard `s`'s traffic
//! carries `s` in the wire frame ([`ShardMsg::Shard`]) and is steered to
//! CPU lane `s` of a multi-lane node, so shards commit concurrently
//! instead of queueing behind one per-node CPU clock.
//!
//! ## Cross-shard transactions: the anchor-shard protocol
//!
//! A multi-key write ([`Op::MultiPut`]) touching several shards is split
//! into per-shard parts that share the client's `(client, op_id)`
//! identity, and runs a deterministic two-phase commit with no extra
//! wire messages:
//!
//! 1. **Sequence** — every touched shard independently orders its part in
//!    its own LOT. LOT cycles never abort, so once a part is in a shard's
//!    request set its commitment is inevitable; there is no prepare/abort
//!    vote to take.
//! 2. **Anchor** — the *anchor shard* (the lowest touched shard id, a
//!    pure function of the key set) fixes the transaction's position in
//!    the cross-shard serialization: the transaction is considered
//!    committed at the anchor part's commit position, and the engine
//!    releases the single client reply only when every part has applied.
//!
//! Atomicity follows from the no-abort property: either the client's
//! request reached the engine (and then every part eventually commits on
//! every correct node of its shard) or it did not; the chaos verdict
//! checks exactly this all-or-nothing presence across per-shard logs.
//!
//! ## Determinism
//!
//! Inner nodes run under detached [`Context`]s (the same mechanism the
//! harness's `ClientMux` uses): effects are translated, never reordered.
//! Timer armings are multiplexed by packing the shard id into the outer
//! token's high bits — Canopus nodes discriminate timers by token only
//! and never cancel them, so the engine synthesizes the inner delivery on
//! fire without any per-arming state.

use std::collections::BTreeMap;

use bytes::{Bytes, BytesMut};
use canopus_kv::shard::ShardRouter;
use canopus_kv::{shard_hash, ClientReply, ClientRequest, Op, OpResult};
use canopus_net::wire::{Wire, WireError, WireRead};
use canopus_obs::NodeObs;
use canopus_sim::{Context, Effect, NodeId, Payload, Process, Timer};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::config::CanopusConfig;
use crate::emulation::EmulationTable;
use crate::msg::CanopusMsg;
use crate::node::{CanopusNode, CanopusStats};

/// Salt folded into client-id lane hints; must match
/// `canopus_kv::shard`'s client routing so the lane a synthetic request
/// queues on is the lane its shard runs on.
const CLIENT_SALT: u64 = 0xC11E_17A0_5EED_0001;

/// Wire messages of a sharded deployment: the client plane plus every
/// shard's inner Canopus traffic, tagged with its shard id.
#[derive(Clone, Debug, PartialEq)]
pub enum ShardMsg {
    /// A client submits an operation; the engine routes it to the owning
    /// shard (or splits a cross-shard `MultiPut`).
    Client(ClientRequest),
    /// Inner protocol traffic of one shard, multiplexed on the shared
    /// transport. The two-byte shard id is part of the wire frame.
    Shard {
        /// Which LOT instance this belongs to.
        shard: u16,
        /// The shard's Canopus message.
        inner: CanopusMsg,
    },
    /// The engine answers a client (one reply per client request, even
    /// for cross-shard transactions).
    Reply(ClientReply),
}

impl Payload for ShardMsg {
    fn wire_size(&self) -> usize {
        match self {
            // Same framing as CanopusMsg::Request — the client plane is
            // not sharded.
            ShardMsg::Client(r) => 1 + 13 + r.op.payload_bytes().min(64),
            ShardMsg::Shard { inner, .. } => 1 + 2 + inner.wire_size(),
            ShardMsg::Reply(_) => 1 + 14,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            ShardMsg::Client(_) => "request",
            ShardMsg::Shard { inner, .. } => inner.kind(),
            ShardMsg::Reply(_) => "reply",
        }
    }

    fn lane_hint(&self) -> u64 {
        match self {
            // Mirror ShardRouter: keyed ops by key hash, keyless
            // aggregates by client hash (a client's whole synthetic
            // stream stays on one shard), multi-key writes by their
            // first key (the engine splits them; all split work is
            // charged to that lane).
            ShardMsg::Client(r) => match &r.op {
                Op::Put { key, .. } | Op::Get { key } => shard_hash(*key),
                Op::SyntheticWrite { .. } | Op::SyntheticRead { .. } => {
                    shard_hash(u64::from(r.client.0) ^ CLIENT_SALT)
                }
                Op::MultiPut { puts } => shard_hash(puts.first().map(|(k, _)| *k).unwrap_or(0)),
            },
            ShardMsg::Shard { shard, .. } => u64::from(*shard),
            ShardMsg::Reply(_) => 0,
        }
    }
}

impl Wire for ShardMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ShardMsg::Client(r) => {
                0u8.encode(buf);
                r.encode(buf);
            }
            ShardMsg::Shard { shard, inner } => {
                1u8.encode(buf);
                shard.encode(buf);
                inner.encode(buf);
            }
            ShardMsg::Reply(r) => {
                2u8.encode(buf);
                r.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match buf.read_u8()? {
            0 => Ok(ShardMsg::Client(ClientRequest::decode(buf)?)),
            1 => Ok(ShardMsg::Shard {
                shard: u16::decode(buf)?,
                inner: CanopusMsg::decode(buf)?,
            }),
            2 => Ok(ShardMsg::Reply(ClientReply::decode(buf)?)),
            _ => Err(WireError::Invalid("shard msg tag")),
        }
    }
}

/// A cross-shard transaction awaiting its remaining parts.
#[derive(Debug)]
struct TxnState {
    parts_remaining: u32,
}

/// Aggregate counters across all shards of one engine.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardEngineStats {
    /// Cross-shard transactions started (split into >1 part).
    pub txns_started: u64,
    /// Cross-shard transactions fully committed (client reply released).
    pub txns_committed: u64,
    /// Client requests routed to a single shard.
    pub routed_single: u64,
}

/// N independent Canopus LOT instances behind one node identity.
pub struct ShardEngine {
    me: NodeId,
    router: ShardRouter,
    shards: Vec<CanopusNode>,
    rng: SmallRng,
    /// Shared detached-context timer counter: inner timer ids stay unique
    /// across shards for the engine's lifetime.
    timer_seq: u64,
    txns: BTreeMap<(NodeId, u64), TxnState>,
    /// Where to deliver a reply when the request's `client` field is not
    /// the transport-level sender: shard-aware workload generators issue
    /// each shard's stream under a distinct *pseudo* client identity (the
    /// router maps keyless synthetics by client hash), and the reply must
    /// still reach the real process. Keyed `(pseudo client, op_id)`,
    /// removed when the reply is released.
    reply_via: BTreeMap<(NodeId, u64), NodeId>,
    stats: ShardEngineStats,
}

/// Bits of the outer timer token holding the inner token; the shard id
/// lives above them. Canopus tokens are tiny constants (TICK/CYCLE/
/// LINGER), so 32 bits is generous.
const TOKEN_SHIFT: u32 = 32;

impl ShardEngine {
    /// An engine hosting `shards` LOT instances on node `me`, each
    /// configured by `cfg_of(shard)` — per-shard `max_linger` /
    /// `max_pipeline_depth` tuning goes through that closure. All shards
    /// share the node roster in `table`.
    pub fn with_configs(
        me: NodeId,
        table: EmulationTable,
        shards: u16,
        seed: u64,
        mut cfg_of: impl FnMut(u16) -> CanopusConfig,
    ) -> Self {
        let shards = shards.max(1);
        let instances = (0..shards)
            .map(|s| {
                // Distinct RNG stream per shard: proposal numbers and
                // Raft timeouts must not correlate across shards.
                let shard_seed = seed ^ shard_hash(0x5AD0_0000 + u64::from(s));
                CanopusNode::new(me, table.clone(), cfg_of(s), shard_seed)
            })
            .collect();
        ShardEngine {
            me,
            router: ShardRouter::new(shards),
            shards: instances,
            rng: SmallRng::seed_from_u64(seed ^ shard_hash(0xE16)),
            timer_seq: 0,
            txns: BTreeMap::new(),
            reply_via: BTreeMap::new(),
            stats: ShardEngineStats::default(),
        }
    }

    /// An engine whose shards all share one configuration.
    pub fn new(
        me: NodeId,
        table: EmulationTable,
        cfg: CanopusConfig,
        shards: u16,
        seed: u64,
    ) -> Self {
        Self::with_configs(me, table, shards, seed, |_| cfg.clone())
    }

    /// Installs a per-shard observability hub (`hub_of(shard)`), so each
    /// LOT instance records to its own metrics registry and flight
    /// recorder.
    pub fn with_obs(mut self, mut hub_of: impl FnMut(u16) -> NodeObs) -> Self {
        self.shards = self
            .shards
            .drain(..)
            .enumerate()
            .map(|(s, n)| n.with_obs(hub_of(s as u16)))
            .collect();
        self
    }

    /// This engine's node id.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// The shared key→shard router.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// Number of hosted shards.
    pub fn shard_count(&self) -> u16 {
        self.shards.len() as u16
    }

    /// One shard's LOT instance, for per-shard inspection (logs, stats,
    /// stores).
    pub fn shard(&self, s: u16) -> &CanopusNode {
        &self.shards[s as usize]
    }

    /// Engine-level counters.
    pub fn stats(&self) -> ShardEngineStats {
        self.stats
    }

    /// Sum of a per-shard statistic across all shards.
    pub fn aggregate<T: std::iter::Sum>(&self, f: impl Fn(&CanopusStats) -> T) -> T {
        self.shards.iter().map(|n| f(&n.stats())).sum()
    }

    /// Runs one inner-node callback on shard `s` under a detached context
    /// and replays its effects onto the real context: protocol sends are
    /// wrapped with the shard id, replies are filtered through the
    /// cross-shard transaction table, timers are re-tokenized.
    fn drive(
        &mut self,
        s: u16,
        ctx: &mut Context<'_, ShardMsg>,
        f: impl FnOnce(&mut CanopusNode, &mut Context<'_, CanopusMsg>),
    ) {
        let mut sub = Context::detached(ctx.now(), self.me, &mut self.rng, &mut self.timer_seq);
        f(&mut self.shards[s as usize], &mut sub);
        let (effects, charged) = sub.into_effects();
        ctx.charge(charged);
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => match msg {
                    CanopusMsg::Reply(reply) => {
                        if let Some(reply) = self.resolve_reply(to, reply) {
                            let dest = self.reply_via.remove(&(to, reply.op_id)).unwrap_or(to);
                            ctx.send(dest, ShardMsg::Reply(reply));
                        }
                    }
                    inner => ctx.send(to, ShardMsg::Shard { shard: s, inner }),
                },
                Effect::SetTimer { after, token, .. } => {
                    debug_assert!(token < 1 << TOKEN_SHIFT, "inner token too wide");
                    ctx.set_timer(after, (u64::from(s) << TOKEN_SHIFT) | token);
                }
                Effect::CancelTimer { .. } => {
                    // Canopus nodes never cancel timers; if that ever
                    // changes this multiplexer needs an id map like the
                    // harness ClientMux.
                    debug_assert!(false, "unexpected inner cancel_timer");
                }
            }
        }
    }

    /// Passes a shard's client reply through the transaction table: a
    /// part of a cross-shard transaction releases the single client
    /// reply only when it is the last part to commit.
    fn resolve_reply(&mut self, client: NodeId, reply: ClientReply) -> Option<ClientReply> {
        let key = (client, reply.op_id);
        let Some(txn) = self.txns.get_mut(&key) else {
            return Some(reply); // single-shard op: pass through
        };
        txn.parts_remaining -= 1;
        if txn.parts_remaining > 0 {
            return None;
        }
        self.txns.remove(&key);
        self.stats.txns_committed += 1;
        Some(ClientReply {
            op_id: reply.op_id,
            weight: 1,
            result: OpResult::Written,
        })
    }

    /// Routes one client request: single-shard ops go straight to their
    /// owner; a cross-shard `MultiPut` is split into per-shard parts
    /// sharing the client identity, registered in the transaction table.
    fn route_client(&mut self, from: NodeId, req: ClientRequest, ctx: &mut Context<'_, ShardMsg>) {
        if from != req.client {
            // Pseudo-client stream: remember the real sender for the reply.
            self.reply_via.insert((req.client, req.op_id), from);
        }
        if let Some(s) = self.router.shard_of(req.client, &req.op) {
            self.stats.routed_single += 1;
            self.drive(s, ctx, |n, sub| {
                n.on_message(from, CanopusMsg::Request(req), sub)
            });
            return;
        }
        // Cross-shard MultiPut. The anchor (lowest touched shard) is
        // implicit in the split: BTreeMap iteration order delivers the
        // anchor part first, and the reply releases when all parts have
        // committed.
        let Op::MultiPut { puts } = &req.op else {
            unreachable!("only MultiPut can span shards");
        };
        let parts = self.router.split_multi(puts);
        debug_assert!(parts.len() > 1, "single-shard multiput routed above");
        self.txns.insert(
            (req.client, req.op_id),
            TxnState {
                parts_remaining: parts.len() as u32,
            },
        );
        self.stats.txns_started += 1;
        for (s, shard_puts) in parts {
            let part = ClientRequest {
                client: req.client,
                op_id: req.op_id,
                op: Op::MultiPut { puts: shard_puts },
            };
            self.drive(s, ctx, |n, sub| {
                n.on_message(from, CanopusMsg::Request(part), sub)
            });
        }
    }
}

impl Process<ShardMsg> for ShardEngine {
    fn on_start(&mut self, ctx: &mut Context<'_, ShardMsg>) {
        for s in 0..self.shard_count() {
            self.drive(s, ctx, |n, sub| n.on_start(sub));
        }
    }

    fn on_message(&mut self, from: NodeId, msg: ShardMsg, ctx: &mut Context<'_, ShardMsg>) {
        match msg {
            ShardMsg::Client(req) => self.route_client(from, req, ctx),
            ShardMsg::Shard { shard, inner } => {
                if shard < self.shard_count() {
                    self.drive(shard, ctx, |n, sub| n.on_message(from, inner, sub));
                }
            }
            // Replies terminate at clients; an engine receiving one
            // (e.g. echoed by a confused peer) drops it.
            ShardMsg::Reply(_) => {}
        }
    }

    fn on_timer(&mut self, timer: Timer, ctx: &mut Context<'_, ShardMsg>) {
        let s = (timer.token >> TOKEN_SHIFT) as u16;
        let token = timer.token & ((1 << TOKEN_SHIFT) - 1);
        if s >= self.shard_count() {
            return;
        }
        // Timer work belongs to the shard's lane (cycle starts, linger
        // fires — the CPU-heavy paths).
        ctx.use_lane(u64::from(s));
        self.drive(s, ctx, |n, sub| {
            n.on_timer(
                Timer {
                    id: timer.id,
                    token,
                },
                sub,
            )
        });
    }

    canopus_sim::impl_process_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::LotShape;
    use canopus_sim::Time;

    fn table() -> EmulationTable {
        EmulationTable::new(
            LotShape::flat(1),
            vec![vec![NodeId(0), NodeId(1), NodeId(2)]],
        )
    }

    #[test]
    fn shard_msgs_round_trip() {
        let msgs = vec![
            ShardMsg::Client(ClientRequest {
                client: NodeId(9),
                op_id: 7,
                op: Op::Get { key: 3 },
            }),
            ShardMsg::Shard {
                shard: 3,
                inner: CanopusMsg::ProposalRequest {
                    cycle: crate::types::CycleId(4),
                    vnode: crate::types::VnodeId(vec![0]),
                },
            },
            ShardMsg::Reply(ClientReply {
                op_id: 7,
                weight: 1,
                result: OpResult::Written,
            }),
        ];
        for msg in msgs {
            assert_eq!(ShardMsg::from_bytes(msg.to_bytes()).unwrap(), msg);
        }
    }

    #[test]
    fn lane_hint_matches_router() {
        let router = ShardRouter::new(4);
        for key in 0..200u64 {
            let msg = ShardMsg::Client(ClientRequest {
                client: NodeId(50),
                op_id: 1,
                op: Op::Put {
                    key,
                    value: Bytes::new(),
                },
            });
            assert_eq!(
                (msg.lane_hint() % 4) as u16,
                router.shard_of_key(key),
                "lane and shard must agree for key {key}"
            );
        }
        // Synthetic streams: lane follows the client hash.
        for c in 0..50u32 {
            let msg = ShardMsg::Client(ClientRequest {
                client: NodeId(c),
                op_id: 1,
                op: Op::SyntheticRead { count: 4 },
            });
            assert_eq!(
                (msg.lane_hint() % 4) as u16,
                router.shard_of_client(NodeId(c))
            );
        }
        // Shard traffic rides its own lane.
        let m = ShardMsg::Shard {
            shard: 2,
            inner: CanopusMsg::ProposalRequest {
                cycle: crate::types::CycleId(1),
                vnode: crate::types::VnodeId(vec![0]),
            },
        };
        assert_eq!(m.lane_hint(), 2);
    }

    #[test]
    fn timer_tokens_pack_shard_and_inner() {
        let mut engine = ShardEngine::new(NodeId(0), table(), CanopusConfig::default(), 4, 11);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seq = 0;
        let mut ctx: Context<'_, ShardMsg> =
            Context::detached(Time::ZERO, NodeId(0), &mut rng, &mut seq);
        engine.on_start(&mut ctx);
        let (effects, _) = ctx.into_effects();
        let tokens: Vec<u64> = effects
            .iter()
            .filter_map(|e| match e {
                Effect::SetTimer { token, .. } => Some(*token),
                _ => None,
            })
            .collect();
        assert!(!tokens.is_empty(), "startup arms per-shard timers");
        // Every shard armed at least one timer and the shard id is
        // recoverable from the token's high bits.
        let shards: std::collections::BTreeSet<u64> =
            tokens.iter().map(|t| t >> TOKEN_SHIFT).collect();
        assert_eq!(shards, (0..4u64).collect());
    }

    #[test]
    fn cross_shard_txn_releases_one_reply_when_all_parts_commit() {
        let mut engine = ShardEngine::new(NodeId(0), table(), CanopusConfig::default(), 4, 11);
        let router = engine.router();
        let k0 = (0..).find(|k| router.shard_of_key(*k) == 0).unwrap();
        let k3 = (0..).find(|k| router.shard_of_key(*k) == 3).unwrap();
        let client = NodeId(40);
        let req = ClientRequest {
            client,
            op_id: 5,
            op: Op::MultiPut {
                puts: vec![
                    (k0, Bytes::from_static(b"a")),
                    (k3, Bytes::from_static(b"b")),
                ],
            },
        };
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seq = 0;
        let mut ctx: Context<'_, ShardMsg> =
            Context::detached(Time::ZERO, NodeId(0), &mut rng, &mut seq);
        engine.on_message(client, ShardMsg::Client(req), &mut ctx);
        assert_eq!(engine.stats().txns_started, 1);
        assert_eq!(engine.txns.len(), 1);

        // Simulate both parts committing: the inner nodes would emit one
        // reply each; the resolver must swallow the first and release
        // exactly one aggregated reply on the last.
        let part_reply = ClientReply {
            op_id: 5,
            weight: 1,
            result: OpResult::Written,
        };
        assert!(engine.resolve_reply(client, part_reply.clone()).is_none());
        let released = engine
            .resolve_reply(client, part_reply)
            .expect("final part");
        assert_eq!(released.op_id, 5);
        assert_eq!(released.result, OpResult::Written);
        assert_eq!(engine.stats().txns_committed, 1);
        assert!(engine.txns.is_empty());

        // Unrelated replies pass through untouched.
        let plain = ClientReply {
            op_id: 99,
            weight: 1,
            result: OpResult::Batch,
        };
        assert_eq!(engine.resolve_reply(client, plain.clone()), Some(plain));
    }
}
