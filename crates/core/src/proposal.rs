//! Proposals, vnode states, and the merge that defines the total order
//! (paper §4.2).
//!
//! A round-1 proposal carries the requests a pnode batched before the cycle
//! started, a fresh 64-bit random *proposal number*, and pending membership
//! updates. The state of a height-`r` vnode is the merge of its children's
//! states, ordered by `(proposal number, tie-break id)` — request sets are
//! never interleaved, only concatenated, which is what keeps each client's
//! requests contiguous ("requests in a request set are never separated",
//! §5). The merged state's number is the *largest* number among its
//! children, so ordering at the next level is again by fresh randomness.

use bytes::{Bytes, BytesMut};
use canopus_net::wire::{Wire, WireError, WireRead};
use canopus_sim::NodeId;

pub use canopus_kv::TimedOp;

use crate::types::{CycleId, VnodeId};

/// A membership change carried through a consensus cycle (§4.6) and applied
/// by every node to its emulation table at cycle commit.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum MembershipUpdate {
    /// `node` joined super-leaf `superleaf`.
    Join {
        /// The joining node.
        node: NodeId,
        /// Index of the super-leaf it joins.
        superleaf: u32,
    },
    /// `node` left (crashed out of) the tree.
    Leave {
        /// The departing node.
        node: NodeId,
    },
}

impl Wire for MembershipUpdate {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            MembershipUpdate::Join { node, superleaf } => {
                0u8.encode(buf);
                node.encode(buf);
                superleaf.encode(buf);
            }
            MembershipUpdate::Leave { node } => {
                1u8.encode(buf);
                node.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match buf.read_u8()? {
            0 => Ok(MembershipUpdate::Join {
                node: NodeId::decode(buf)?,
                superleaf: u32::decode(buf)?,
            }),
            1 => Ok(MembershipUpdate::Leave {
                node: NodeId::decode(buf)?,
            }),
            _ => Err(WireError::Invalid("membership tag")),
        }
    }
}

/// One node's batched writes for one cycle. Request sets travel and commit
/// as units; the consensus orders sets, never individual requests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestSet {
    /// The node that received these requests from its clients.
    pub origin: NodeId,
    /// The writes, in arrival (client-FIFO) order.
    pub ops: Vec<TimedOp>,
    /// Keys for which this origin requests write leases (§7.2; empty unless
    /// the lease optimization is enabled).
    pub lease_requests: Vec<u64>,
}

impl RequestSet {
    /// An empty set for `origin` (empty proposals still occupy a position
    /// in the total order, as in the paper's example `PC = {∅ | NC | 1}`).
    pub fn empty(origin: NodeId) -> Self {
        RequestSet {
            origin,
            ops: Vec::new(),
            lease_requests: Vec::new(),
        }
    }

    /// Total client requests represented (synthetic batches count fully).
    pub fn weight(&self) -> u64 {
        self.ops.iter().map(|op| op.req.op.weight() as u64).sum()
    }

    /// Payload bytes represented.
    pub fn payload_bytes(&self) -> usize {
        self.ops
            .iter()
            .map(|op| op.req.op.payload_bytes() + 21)
            .sum::<usize>()
            + self.lease_requests.len() * 8
            + 16
    }
}

impl Wire for RequestSet {
    fn encode(&self, buf: &mut BytesMut) {
        self.origin.encode(buf);
        self.ops.encode(buf);
        self.lease_requests.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(RequestSet {
            origin: NodeId::decode(buf)?,
            ops: Vec::<TimedOp>::decode(buf)?,
            lease_requests: Vec::<u64>::decode(buf)?,
        })
    }
}

/// The state of a vnode in one cycle, as computed by a pnode (the paper's
/// `Π(s, n, c, r)`): an ordered list of request sets, the dominating
/// proposal number, and the merged membership updates.
///
/// A round-1 proposal is the degenerate case: `vnode` is the pnode's
/// height-1 parent, `sets` holds the single origin set, and `(number, tie)`
/// is the fresh random draw with the pnode id as tie-break.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VnodeState {
    /// Which vnode this state belongs to.
    pub vnode: VnodeId,
    /// The cycle it was computed in.
    pub cycle: CycleId,
    /// Dominating proposal number (the max among merged children).
    pub number: u64,
    /// Deterministic tie-break: the pnode id (round 1) or the child vnode's
    /// last path digit (later rounds) accompanying `number`.
    pub tie: u32,
    /// Ordered request sets.
    pub sets: Vec<RequestSet>,
    /// Merged membership updates (sorted, deduplicated).
    pub updates: Vec<MembershipUpdate>,
}

impl VnodeState {
    /// Builds a round-1 proposal for pnode `origin`.
    pub fn round1(
        origin: NodeId,
        parent: VnodeId,
        cycle: CycleId,
        number: u64,
        set: RequestSet,
        updates: Vec<MembershipUpdate>,
    ) -> VnodeState {
        debug_assert_eq!(set.origin, origin);
        let mut updates = updates;
        updates.sort();
        updates.dedup();
        VnodeState {
            vnode: parent,
            cycle,
            number,
            tie: origin.0,
            sets: vec![set],
            updates,
        }
    }

    /// The key children are ordered by when merging.
    pub fn order_key(&self) -> (u64, u32) {
        (self.number, self.tie)
    }

    /// Total client requests across all sets.
    pub fn weight(&self) -> u64 {
        self.sets.iter().map(RequestSet::weight).sum()
    }

    /// Approximate encoded size, for network modelling.
    pub fn wire_bytes(&self) -> usize {
        32 + 2 * self.vnode.depth()
            + self
                .sets
                .iter()
                .map(RequestSet::payload_bytes)
                .sum::<usize>()
            + self.updates.len() * 9
    }

    /// Merges sibling states into their parent's state (one consensus
    /// round, §4.2): children sorted by `(number, tie)`, sets concatenated
    /// in that order, updates unioned, number = max.
    ///
    /// # Panics
    /// Panics if `children` is empty or the children disagree on the cycle.
    pub fn merge(parent: VnodeId, mut children: Vec<VnodeState>) -> VnodeState {
        assert!(!children.is_empty(), "merge of zero children");
        let cycle = children[0].cycle;
        assert!(
            children.iter().all(|c| c.cycle == cycle),
            "cycle mismatch in merge"
        );
        children.sort_by_key(|c| c.order_key());
        let (number, tie) = children
            .last()
            .map(|c| (c.number, c.tie))
            .expect("non-empty");
        let mut sets = Vec::with_capacity(children.iter().map(|c| c.sets.len()).sum());
        let mut updates = Vec::new();
        for child in children {
            sets.extend(child.sets);
            updates.extend(child.updates);
        }
        updates.sort();
        updates.dedup();
        VnodeState {
            vnode: parent,
            cycle,
            number,
            tie,
            sets,
            updates,
        }
    }
}

impl Wire for VnodeState {
    fn encode(&self, buf: &mut BytesMut) {
        self.vnode.encode(buf);
        self.cycle.encode(buf);
        self.number.encode(buf);
        self.tie.encode(buf);
        self.sets.encode(buf);
        self.updates.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(VnodeState {
            vnode: VnodeId::decode(buf)?,
            cycle: CycleId::decode(buf)?,
            number: u64::decode(buf)?,
            tie: u32::decode(buf)?,
            sets: Vec::<RequestSet>::decode(buf)?,
            updates: Vec::<MembershipUpdate>::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canopus_kv::{ClientRequest, Op};
    use canopus_sim::Time;

    fn set_with(origin: u32, keys: &[u64]) -> RequestSet {
        RequestSet {
            origin: NodeId(origin),
            ops: keys
                .iter()
                .map(|&k| TimedOp {
                    req: ClientRequest {
                        client: NodeId(100 + origin),
                        op_id: k,
                        op: Op::Put {
                            key: k,
                            value: Bytes::from_static(b"12345678"),
                        },
                    },
                    arrival: Time::ZERO,
                })
                .collect(),
            lease_requests: Vec::new(),
        }
    }

    fn proposal(origin: u32, number: u64, keys: &[u64]) -> VnodeState {
        VnodeState::round1(
            NodeId(origin),
            VnodeId(vec![0]),
            CycleId(1),
            number,
            set_with(origin, keys),
            Vec::new(),
        )
    }

    #[test]
    fn merge_orders_by_proposal_number() {
        let a = proposal(0, 500, &[1]);
        let b = proposal(1, 100, &[2]);
        let c = proposal(2, 300, &[3]);
        let merged = VnodeState::merge(VnodeId(vec![0]), vec![a, b, c]);
        let origins: Vec<u32> = merged.sets.iter().map(|s| s.origin.0).collect();
        assert_eq!(origins, vec![1, 2, 0], "sorted by random number");
        assert_eq!(merged.number, 500, "max number propagates");
        assert_eq!(merged.tie, 0, "tie of the max-number child");
    }

    #[test]
    fn merge_breaks_ties_by_id() {
        let a = proposal(7, 100, &[1]);
        let b = proposal(3, 100, &[2]);
        let merged = VnodeState::merge(VnodeId(vec![0]), vec![a, b]);
        let origins: Vec<u32> = merged.sets.iter().map(|s| s.origin.0).collect();
        assert_eq!(origins, vec![3, 7], "equal numbers break by node id");
    }

    #[test]
    fn merge_keeps_sets_contiguous() {
        // Two height-1 states each with multiple sets; merging must not
        // interleave their sets.
        let x = VnodeState::merge(
            VnodeId(vec![0]),
            vec![proposal(0, 10, &[1]), proposal(1, 20, &[2])],
        );
        let y = VnodeState::merge(
            VnodeId(vec![1]),
            vec![proposal(2, 5, &[3]), proposal(3, 15, &[4])],
        );
        // x has number 20, y has 15: y's block comes first, intact.
        let mut x2 = x.clone();
        x2.tie = x.vnode.last_digit() as u32;
        let mut y2 = y.clone();
        y2.tie = y.vnode.last_digit() as u32;
        let root = VnodeState::merge(VnodeId::root(), vec![x2, y2]);
        let origins: Vec<u32> = root.sets.iter().map(|s| s.origin.0).collect();
        assert_eq!(origins, vec![2, 3, 0, 1], "blocks stay contiguous");
    }

    #[test]
    fn merge_is_deterministic_regardless_of_input_order() {
        let children = vec![
            proposal(0, 50, &[1]),
            proposal(1, 10, &[2]),
            proposal(2, 90, &[3]),
        ];
        let m1 = VnodeState::merge(VnodeId(vec![0]), children.clone());
        let mut rev = children;
        rev.reverse();
        let m2 = VnodeState::merge(VnodeId(vec![0]), rev);
        assert_eq!(m1, m2);
    }

    #[test]
    fn merge_unions_membership_updates() {
        let mut a = proposal(0, 1, &[]);
        a.updates = vec![MembershipUpdate::Leave { node: NodeId(9) }];
        let mut b = proposal(1, 2, &[]);
        b.updates = vec![
            MembershipUpdate::Leave { node: NodeId(9) },
            MembershipUpdate::Join {
                node: NodeId(4),
                superleaf: 1,
            },
        ];
        let merged = VnodeState::merge(VnodeId(vec![0]), vec![a, b]);
        assert_eq!(merged.updates.len(), 2, "deduplicated");
    }

    #[test]
    #[should_panic(expected = "cycle mismatch")]
    fn merge_rejects_mixed_cycles() {
        let a = proposal(0, 1, &[]);
        let mut b = proposal(1, 2, &[]);
        b.cycle = CycleId(2);
        VnodeState::merge(VnodeId(vec![0]), vec![a, b]);
    }

    #[test]
    fn wire_round_trip() {
        let mut state = proposal(3, 0xDEADBEEF, &[5, 6]);
        state.updates = vec![MembershipUpdate::Join {
            node: NodeId(8),
            superleaf: 2,
        }];
        state.sets[0].lease_requests = vec![42, 43];
        let back = VnodeState::from_bytes(state.to_bytes()).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn weights_aggregate() {
        let mut s = set_with(0, &[1, 2]);
        s.ops.push(TimedOp {
            req: ClientRequest {
                client: NodeId(5),
                op_id: 9,
                op: Op::SyntheticWrite {
                    count: 100,
                    op_bytes: 16,
                },
            },
            arrival: Time::ZERO,
        });
        assert_eq!(s.weight(), 102);
    }
}
