//! Canopus protocol messages.
//!
//! Three planes share one message enum so a single transport carries them:
//! the super-leaf reliable-broadcast plane (Raft traffic), the inter-super-
//! leaf plane (proposal-request / proposal-response, §4.2), and the client
//! plane (requests in, replies out).

use bytes::{Bytes, BytesMut};
use canopus_kv::{ClientReply, ClientRequest};
use canopus_net::wire::{Wire, WireError, WireRead};
use canopus_raft::RaftMsg;
use canopus_sim::{NodeId, Payload};

use crate::proposal::VnodeState;
use crate::types::{CycleId, VnodeId};

/// An item disseminated through super-leaf reliable broadcast (the payload
/// of a Raft log entry).
#[derive(Clone, Debug, PartialEq)]
pub enum BroadcastItem {
    /// A round-1 proposal from a super-leaf member.
    Proposal(VnodeState),
    /// A remote vnode state fetched by a representative.
    Remote(VnodeState),
    /// Proposed into a failed member's group by the successor leader:
    /// the member contributes no proposals from `from_cycle` on, until a
    /// `Rejoin` appears later in the same group's log. Because it is
    /// totally ordered with the member's own proposals, every survivor
    /// draws the same boundary (§4.6 exclusion, made explicit).
    Tombstone {
        /// The failed member.
        node: NodeId,
        /// First cycle it is excluded from.
        from_cycle: CycleId,
    },
    /// The member is active again starting at `from_cycle`.
    Rejoin {
        /// The rejoining member.
        node: NodeId,
        /// First cycle it participates in again.
        from_cycle: CycleId,
    },
}

impl Wire for BroadcastItem {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            BroadcastItem::Proposal(state) => {
                0u8.encode(buf);
                state.encode(buf);
            }
            BroadcastItem::Remote(state) => {
                1u8.encode(buf);
                state.encode(buf);
            }
            BroadcastItem::Tombstone { node, from_cycle } => {
                2u8.encode(buf);
                node.encode(buf);
                from_cycle.encode(buf);
            }
            BroadcastItem::Rejoin { node, from_cycle } => {
                3u8.encode(buf);
                node.encode(buf);
                from_cycle.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match buf.read_u8()? {
            0 => Ok(BroadcastItem::Proposal(VnodeState::decode(buf)?)),
            1 => Ok(BroadcastItem::Remote(VnodeState::decode(buf)?)),
            2 => Ok(BroadcastItem::Tombstone {
                node: NodeId::decode(buf)?,
                from_cycle: CycleId::decode(buf)?,
            }),
            3 => Ok(BroadcastItem::Rejoin {
                node: NodeId::decode(buf)?,
                from_cycle: CycleId::decode(buf)?,
            }),
            _ => Err(WireError::Invalid("broadcast item tag")),
        }
    }
}

/// All Canopus wire messages.
#[derive(Clone, Debug, PartialEq)]
pub enum CanopusMsg {
    /// Super-leaf reliable-broadcast traffic.
    Raft(RaftMsg),
    /// A client submits an operation.
    Request(ClientRequest),
    /// The node answers a client.
    Reply(ClientReply),
    /// A representative asks an emulator for a vnode's state (§4.2).
    ProposalRequest {
        /// Cycle the state is needed for.
        cycle: CycleId,
        /// The vnode whose state is requested.
        vnode: VnodeId,
    },
    /// The emulator's answer (sent once the state is computed).
    ProposalResponse {
        /// The requested state.
        state: VnodeState,
    },
}

impl Payload for CanopusMsg {
    fn wire_size(&self) -> usize {
        match self {
            CanopusMsg::Raft(m) => 1 + m.wire_size(),
            CanopusMsg::Request(r) => 1 + 13 + r.op.payload_bytes().min(64),
            CanopusMsg::Reply(_) => 1 + 14,
            CanopusMsg::ProposalRequest { vnode, .. } => 1 + 9 + 2 * vnode.depth(),
            CanopusMsg::ProposalResponse { state } => 1 + state.wire_bytes(),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            CanopusMsg::Raft(_) => "raft",
            CanopusMsg::Request(_) => "request",
            CanopusMsg::Reply(_) => "reply",
            CanopusMsg::ProposalRequest { .. } => "proposal_request",
            CanopusMsg::ProposalResponse { .. } => "proposal_response",
        }
    }
}

impl Wire for CanopusMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            CanopusMsg::Raft(m) => {
                0u8.encode(buf);
                m.encode(buf);
            }
            CanopusMsg::Request(r) => {
                1u8.encode(buf);
                r.encode(buf);
            }
            CanopusMsg::Reply(r) => {
                2u8.encode(buf);
                r.encode(buf);
            }
            CanopusMsg::ProposalRequest { cycle, vnode } => {
                3u8.encode(buf);
                cycle.encode(buf);
                vnode.encode(buf);
            }
            CanopusMsg::ProposalResponse { state } => {
                4u8.encode(buf);
                state.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match buf.read_u8()? {
            0 => Ok(CanopusMsg::Raft(RaftMsg::decode(buf)?)),
            1 => Ok(CanopusMsg::Request(ClientRequest::decode(buf)?)),
            2 => Ok(CanopusMsg::Reply(ClientReply::decode(buf)?)),
            3 => Ok(CanopusMsg::ProposalRequest {
                cycle: CycleId::decode(buf)?,
                vnode: VnodeId::decode(buf)?,
            }),
            4 => Ok(CanopusMsg::ProposalResponse {
                state: VnodeState::decode(buf)?,
            }),
            _ => Err(WireError::Invalid("canopus msg tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proposal::RequestSet;
    use canopus_kv::Op;
    use canopus_raft::GroupId;

    fn sample_state() -> VnodeState {
        VnodeState::round1(
            NodeId(2),
            VnodeId(vec![1]),
            CycleId(4),
            12345,
            RequestSet {
                origin: NodeId(2),
                ops: vec![crate::proposal::TimedOp {
                    req: ClientRequest {
                        client: NodeId(30),
                        op_id: 7,
                        op: Op::Put {
                            key: 9,
                            value: Bytes::from_static(b"12345678"),
                        },
                    },
                    arrival: canopus_sim::Time::from_nanos(500),
                }],
                lease_requests: vec![],
            },
            vec![],
        )
    }

    #[test]
    fn all_variants_round_trip() {
        let msgs = vec![
            CanopusMsg::Raft(RaftMsg::VoteReply {
                group: GroupId(3),
                term: 9,
                granted: false,
            }),
            CanopusMsg::Request(ClientRequest {
                client: NodeId(44),
                op_id: 1,
                op: Op::Get { key: 5 },
            }),
            CanopusMsg::Reply(ClientReply {
                op_id: 1,
                weight: 1,
                result: canopus_kv::OpResult::Value(None),
            }),
            CanopusMsg::ProposalRequest {
                cycle: CycleId(8),
                vnode: VnodeId(vec![0, 2]),
            },
            CanopusMsg::ProposalResponse {
                state: sample_state(),
            },
        ];
        for msg in msgs {
            let back = CanopusMsg::from_bytes(msg.to_bytes()).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn broadcast_items_round_trip() {
        let items = vec![
            BroadcastItem::Proposal(sample_state()),
            BroadcastItem::Remote(sample_state()),
            BroadcastItem::Tombstone {
                node: NodeId(3),
                from_cycle: CycleId(12),
            },
            BroadcastItem::Rejoin {
                node: NodeId(3),
                from_cycle: CycleId(20),
            },
        ];
        for item in items {
            let back = BroadcastItem::from_bytes(item.to_bytes()).unwrap();
            assert_eq!(back, item);
        }
    }

    #[test]
    fn payload_sizes_track_content() {
        let small = CanopusMsg::ProposalRequest {
            cycle: CycleId(1),
            vnode: VnodeId(vec![0]),
        };
        let big = CanopusMsg::ProposalResponse {
            state: sample_state(),
        };
        assert!(small.wire_size() < big.wire_size());
        assert!(small.wire_size() < 32);
    }
}
