//! # canopus — the Canopus consensus protocol
//!
//! A from-scratch Rust implementation of *Canopus: A Scalable and Massively
//! Parallel Consensus Protocol* (Rizvi, Wong, Keshav — CoNEXT 2017).
//!
//! Canopus reaches consensus without a central leader by arranging nodes in
//! a topology-aware **Leaf-Only Tree** (LOT): physical nodes (*pnodes*) in
//! one rack form a *super-leaf*; interior *vnodes* are virtual, emulated by
//! every descendant. A consensus cycle runs one round per tree level —
//! reliable broadcast inside the super-leaf first (via per-member Raft
//! groups), then representatives exchange merged states between
//! super-leaves, so each proposal crosses each oversubscribed or wide-area
//! link once. Writes are ordered by fresh per-cycle random numbers; reads
//! are never disseminated at all — they are delayed one or two cycles and
//! interleaved locally (§5), or served immediately under write leases
//! (§7.2).
//!
//! ## Quick start
//!
//! ```
//! use canopus::{CanopusConfig, CanopusNode, EmulationTable, LotShape};
//! use canopus_sim::NodeId;
//!
//! // A height-2 LOT: two super-leaves of three nodes each.
//! let table = EmulationTable::new(
//!     LotShape::flat(2),
//!     vec![
//!         vec![NodeId(0), NodeId(1), NodeId(2)],
//!         vec![NodeId(3), NodeId(4), NodeId(5)],
//!     ],
//! );
//! let node = CanopusNode::new(NodeId(0), table, CanopusConfig::default(), 42);
//! assert_eq!(node.id(), NodeId(0));
//! ```
//!
//! Nodes are sans-IO [`canopus_sim::Process`] state machines: run them on
//! the deterministic simulator (`canopus-sim` + `canopus-net`) or on real
//! sockets (`canopus_net::tcp`). See `examples/` for complete clusters.

#![warn(missing_docs)]

pub mod config;
pub mod emulation;
pub mod msg;
pub mod node;
pub mod proposal;
pub mod shard;
pub mod types;

pub use config::{CanopusConfig, CostModel, CycleTrigger, ReadMode};
pub use emulation::EmulationTable;
pub use msg::{BroadcastItem, CanopusMsg};
pub use node::{CanopusNode, CanopusStats, CommittedCycle, CommittedOp, CommittedSet};
pub use proposal::{MembershipUpdate, RequestSet, TimedOp, VnodeState};
pub use shard::{ShardEngine, ShardEngineStats, ShardMsg};
pub use types::{CycleId, LotShape, VnodeId};
