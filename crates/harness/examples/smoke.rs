use canopus_harness::*;
use canopus_sim::Dur;
use std::time::Instant;

fn main() {
    for per_rack in [3usize, 9] {
        let spec = DeploymentSpec::paper_single_dc(per_rack);
        for rate in [200_000.0, 800_000.0, 1_600_000.0, 3_200_000.0] {
            let load = LoadSpec::new(rate);
            let t0 = Instant::now();
            let cfg = canopus_config_for(&spec);
            let r = run_canopus(&spec, &load, cfg, 1);
            println!(
                "canopus n={} rate={} achieved={} med={} wmed={} rmed={} healthy={} wall={:?}",
                spec.node_count(),
                fmt_rate(rate),
                fmt_rate(r.achieved),
                fmt_dur(r.median),
                fmt_dur(r.write_median),
                fmt_dur(r.read_median),
                r.healthy,
                t0.elapsed()
            );
        }
        for rate in [200_000.0, 800_000.0] {
            let load = LoadSpec::new(rate);
            let t0 = Instant::now();
            let r = run_epaxos(&spec, &load, canopus_epaxos::EpaxosConfig::default(), 1);
            println!(
                "epaxos  n={} rate={} achieved={} med={} healthy={} wall={:?}",
                spec.node_count(),
                fmt_rate(rate),
                fmt_rate(r.achieved),
                fmt_dur(r.median),
                r.healthy,
                t0.elapsed()
            );
            let t0 = Instant::now();
            let zcfg = canopus_zab::ZabConfig {
                participants: 6.min(spec.node_count()),
                ..canopus_zab::ZabConfig::default()
            };
            let r = run_zab(&spec, &load, zcfg, 1);
            println!(
                "zab     n={} rate={} achieved={} med={} healthy={} wall={:?}",
                spec.node_count(),
                fmt_rate(rate),
                fmt_rate(r.achieved),
                fmt_dur(r.median),
                r.healthy,
                t0.elapsed()
            );
        }
    }
    let spec = DeploymentSpec::paper_multi_dc(3);
    for rate in [500_000.0, 2_000_000.0] {
        let mut load = LoadSpec::new(rate);
        load.warmup = Dur::millis(800);
        load.duration = Dur::millis(1200);
        let t0 = Instant::now();
        let cfg = canopus_config_for(&spec);
        let r = run_canopus(&spec, &load, cfg, 1);
        println!(
            "canopus-wan n=9 rate={} achieved={} med={} wmed={} rmed={} healthy={} wall={:?}",
            fmt_rate(rate),
            fmt_rate(r.achieved),
            fmt_dur(r.median),
            fmt_dur(r.write_median),
            fmt_dur(r.read_median),
            r.healthy,
            t0.elapsed()
        );
        let t0 = Instant::now();
        let r = run_epaxos(&spec, &load, canopus_epaxos::EpaxosConfig::default(), 1);
        println!(
            "epaxos-wan  n=9 rate={} achieved={} med={} healthy={} wall={:?}",
            fmt_rate(rate),
            fmt_rate(r.achieved),
            fmt_dur(r.median),
            r.healthy,
            t0.elapsed()
        );
    }
}
