use canopus::{CanopusMsg, CanopusNode};
use canopus_harness::*;
use canopus_sim::Dur;
use canopus_workload::OpenLoopClient;

fn main() {
    let spec = DeploymentSpec::paper_multi_dc(3);
    let mut load = LoadSpec::new(200_000.0);
    load.warmup = Dur::millis(800);
    load.duration = Dur::millis(1200);
    let cfg = canopus_config_for(&spec);
    let mut cluster = build_canopus(&spec, &load, cfg, 1);
    cluster.sim.run_for(Dur::millis(2000));
    for &n in &cluster.nodes {
        let node = cluster.sim.node::<CanopusNode>(n);
        let s = node.stats();
        let avg_cycle_ms = if s.committed_cycles > 0 {
            s.cycle_latency_sum_ns as f64 / s.committed_cycles as f64 / 1e6
        } else {
            0.0
        };
        println!(
            "node {n}: cycles={} started={} committed={} avg_cycle_latency={avg_cycle_ms:.1}ms",
            s.committed_cycles,
            node.last_started().0,
            node.last_committed().0
        );
    }
    for &c in cluster.clients.iter().take(4) {
        let client = cluster.sim.node::<OpenLoopClient<CanopusMsg>>(c);
        println!(
            "client {c}: w[p10={:?} p50={:?} p90={:?}] r[p50={:?}] completed w={} r={}",
            client.writes.percentile(10.0),
            client.writes.percentile(50.0),
            client.writes.percentile(90.0),
            client.reads.percentile(50.0),
            client.writes.completed(),
            client.reads.completed()
        );
    }
}
