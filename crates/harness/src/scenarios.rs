//! The shared chaos scenario catalog.
//!
//! PR 2's chaos suite defined its fault scenarios inline in
//! `tests/chaos.rs`; this module extracts them so the simulator suite,
//! the live-TCP suite (`tests/live_chaos.rs`), and the examples all draw
//! from one catalog. Scenarios are parameterized by:
//!
//! * a [`ChaosTopology`] — how many super-leaves/racks and nodes per
//!   group the deployment has (the simulator suite uses 3 × 3, the live
//!   suite a lighter 2 × 3), and
//! * a [`ChaosTimeline`] — when faults land, heal, and when the
//!   convergence probes begin. Virtual-time runs use the tight PR 2
//!   schedule; wall-clock runs use a stretched schedule matched to the
//!   relaxed live timeouts (see `crate::live`).
//!
//! The interior instants of multi-event scenarios (a mid-window restart,
//! the churn cadence, the flap period) are derived as fixed fractions of
//! the fault window so that the simulator timeline reproduces PR 2's
//! tuned schedule *exactly* (preserving its trace-hash regressions) while
//! the live timeline scales the same shape to real seconds.

use std::collections::BTreeSet;

use canopus_sim::fault::{FaultEvent, FaultPlan};
use canopus_sim::{Dur, NodeId, Time};

/// Node placement the scenarios cut along: `groups` super-leaves of
/// `per_group` nodes, ids dense and group-major (node `g * per_group + i`).
#[derive(Copy, Clone, Debug)]
pub struct ChaosTopology {
    /// Number of super-leaves/racks.
    pub groups: u32,
    /// Protocol nodes per super-leaf.
    pub per_group: u32,
}

impl ChaosTopology {
    /// The simulator suite's 3 racks × 3 nodes.
    pub fn sim_default() -> Self {
        ChaosTopology {
            groups: 3,
            per_group: 3,
        }
    }

    /// The members of super-leaf `g`.
    pub fn leaf(&self, g: u32) -> Vec<NodeId> {
        (0..self.per_group)
            .map(|i| NodeId(g * self.per_group + i))
            .collect()
    }

    /// The members of several super-leaves.
    pub fn leaves(&self, gs: impl IntoIterator<Item = u32>) -> Vec<NodeId> {
        gs.into_iter().flat_map(|g| self.leaf(g)).collect()
    }

    /// Total protocol nodes.
    pub fn node_count(&self) -> usize {
        (self.groups * self.per_group) as usize
    }
}

/// The phase instants of one chaos run, as offsets from its start.
#[derive(Copy, Clone, Debug)]
pub struct ChaosTimeline {
    /// First fault lands.
    pub fault_at: Dur,
    /// Network fully heals.
    pub heal_at: Dur,
    /// Clients move to fresh probe keys (the convergence phase).
    pub probe_at: Dur,
    /// Clients stop issuing operations.
    pub stop_at: Dur,
    /// Total run length (quiesce margin after `stop_at`).
    pub run_for: Dur,
}

impl ChaosTimeline {
    /// PR 2's virtual-time schedule: fault 200 ms, heal 900 ms, probes
    /// 1100 ms, stop 1800 ms, verdict at 2100 ms.
    pub fn sim_default() -> Self {
        ChaosTimeline {
            fault_at: Dur::millis(200),
            heal_at: Dur::millis(900),
            probe_at: Dur::millis(1100),
            stop_at: Dur::millis(1800),
            run_for: Dur::millis(2100),
        }
    }

    /// The fault window.
    pub fn window(&self) -> Dur {
        self.heal_at - self.fault_at
    }

    /// `probe_at` as an absolute instant of a run started at [`Time::ZERO`].
    pub fn converge_after(&self) -> Time {
        Time::ZERO + self.probe_at
    }
}

/// A named fault plan plus its per-protocol convergence exemptions.
pub struct ChaosScenario {
    /// Scenario name for reports and test output.
    pub name: &'static str,
    /// The fault schedule.
    pub plan: FaultPlan,
    /// Trusted nodes whose clients are excused from the convergence check
    /// for `protocol` (safety is still enforced for them). A closure so
    /// scenarios can bind the exemption to the node the plan actually
    /// impairs in the given topology.
    pub exempt: Box<dyn Fn(&str) -> BTreeSet<NodeId>>,
}

fn no_exemptions() -> Box<dyn Fn(&str) -> BTreeSet<NodeId>> {
    Box::new(|_| BTreeSet::new())
}

/// One whole super-leaf cut off from all the others, then healed.
pub fn superleaf_partition(topo: &ChaosTopology, t: &ChaosTimeline) -> ChaosScenario {
    ChaosScenario {
        name: "superleaf_partition",
        plan: FaultPlan::new()
            .at(
                t.fault_at,
                FaultEvent::CutGroups {
                    a: topo.leaf(0),
                    b: topo.leaves(1..topo.groups),
                },
            )
            .at(t.heal_at, FaultEvent::HealAll),
        exempt: no_exemptions(),
    }
}

/// A majority split from a single-super-leaf minority along group
/// boundaries (identical to [`superleaf_partition`] when only two groups
/// exist).
pub fn majority_minority_split(topo: &ChaosTopology, t: &ChaosTimeline) -> ChaosScenario {
    ChaosScenario {
        name: "majority_minority_split",
        plan: FaultPlan::new()
            .at(
                t.fault_at,
                FaultEvent::CutGroups {
                    a: topo.leaves(0..topo.groups - 1),
                    b: topo.leaf(topo.groups - 1),
                },
            )
            .at(t.heal_at, FaultEvent::HealAll),
        exempt: no_exemptions(),
    }
}

/// The bootstrap leader (node 0: Raft/Zab leader, a Canopus super-leaf
/// member, an EPaxos command leader) crashes mid-round under load and
/// restarts late in the fault window.
pub fn leader_crash_mid_round(_topo: &ChaosTopology, t: &ChaosTimeline) -> ChaosScenario {
    let w = t.window();
    ChaosScenario {
        name: "leader_crash_mid_round",
        plan: FaultPlan::new()
            .at(t.fault_at + w / 14, FaultEvent::Crash(NodeId(0)))
            .at(t.fault_at + (w * 6) / 7, FaultEvent::Restart(NodeId(0)))
            .at(t.heal_at, FaultEvent::HealAll),
        exempt: no_exemptions(),
    }
}

/// One node crash-restarts three times in quick succession.
pub fn crash_restart_churn(_topo: &ChaosTopology, t: &ChaosTimeline) -> ChaosScenario {
    let w = t.window();
    ChaosScenario {
        name: "crash_restart_churn",
        plan: FaultPlan::new()
            .at(t.fault_at, FaultEvent::Crash(NodeId(1)))
            .then((w * 2) / 7, FaultEvent::Restart(NodeId(1)))
            .repeat(2, (w * 3) / 7)
            .at(t.fault_at + (w * 17) / 14, FaultEvent::HealAll),
        exempt: no_exemptions(),
    }
}

/// Global background loss plus a heavily impaired sender (asymmetric:
/// only one node's outbound traffic is extra-lossy), then healed.
pub fn asymmetric_loss(topo: &ChaosTopology, t: &ChaosTimeline) -> ChaosScenario {
    let impaired = NodeId(topo.per_group + 1);
    ChaosScenario {
        name: "asymmetric_loss",
        plan: FaultPlan::new()
            .at(t.fault_at, FaultEvent::SetLoss(0.12))
            .at(
                t.fault_at,
                FaultEvent::SetNodeOutLoss {
                    node: impaired,
                    loss: 0.35,
                },
            )
            .at(t.heal_at, FaultEvent::HealAll),
        exempt: Box::new(move |protocol| {
            // Canopus may tombstone the impaired node if every heartbeat in
            // a detection window drops; tombstoned nodes stay excluded
            // until a rejoin path exists (ROADMAP), so its client is
            // excused from convergence.
            if protocol == "canopus" {
                BTreeSet::from([impaired])
            } else {
                BTreeSet::new()
            }
        }),
    }
}

/// The leaf-0 ↔ leaf-1 links flap until the final heal.
pub fn link_flapping(topo: &ChaosTopology, t: &ChaosTimeline) -> ChaosScenario {
    ChaosScenario {
        name: "link_flapping",
        plan: FaultPlan::new()
            .at(
                t.fault_at,
                FaultEvent::FlapLink {
                    a: topo.leaf(0),
                    b: topo.leaf(1),
                    period: (t.window() * 3) / 35,
                },
            )
            .at(t.heal_at, FaultEvent::HealAll),
        exempt: no_exemptions(),
    }
}

/// One node is cut off from everyone (its clients included), then healed.
pub fn node_isolated(_topo: &ChaosTopology, t: &ChaosTimeline) -> ChaosScenario {
    ChaosScenario {
        name: "node_isolated",
        plan: FaultPlan::new()
            .at(t.fault_at, FaultEvent::IsolateNode(NodeId(2)))
            .at(t.heal_at, FaultEvent::HealAll),
        exempt: Box::new(|protocol| {
            // An isolated Canopus node is tombstoned by its super-leaf
            // peers and stays excluded (no rejoin path yet).
            if protocol == "canopus" {
                BTreeSet::from([NodeId(2)])
            } else {
                BTreeSet::new()
            }
        }),
    }
}

/// A super-leaf partition followed, after the network heals, by a
/// crash-restart of the bootstrap node — the two classic timelines
/// stacked into one run. Originally built for the batched/pipelined
/// Canopus configuration only; since catalog v2 it is part of
/// [`all_scenarios`], so every protocol sweep exercises the stacked
/// faults (the catalog pin below versions that change).
pub fn partition_then_crash_restart(topo: &ChaosTopology, t: &ChaosTimeline) -> ChaosScenario {
    let w = t.window();
    ChaosScenario {
        name: "partition_then_crash_restart",
        plan: FaultPlan::new()
            .at(
                t.fault_at,
                FaultEvent::CutGroups {
                    a: topo.leaf(0),
                    b: topo.leaves(1..topo.groups),
                },
            )
            .at(t.fault_at + w / 2, FaultEvent::HealAll)
            .at(t.fault_at + (w * 4) / 7, FaultEvent::Crash(NodeId(0)))
            .at(t.fault_at + (w * 6) / 7, FaultEvent::Restart(NodeId(0)))
            .at(t.heal_at, FaultEvent::HealAll),
        exempt: no_exemptions(),
    }
}

/// Uniform background loss while the workload concentrates on one shard
/// (the sharded chaos suite pairs this plan with a hot-shard
/// [`crate::history::HistoryConfig`]): the hot shard's pipeline runs at
/// full linger-free cadence while loss forces Raft re-broadcasts, so any
/// cross-shard interference in the engine's multiplexing shows up as a
/// verdict failure on the *cold* shards.
pub fn hot_shard_skew(_topo: &ChaosTopology, t: &ChaosTimeline) -> ChaosScenario {
    ChaosScenario {
        name: "hot_shard_skew",
        plan: FaultPlan::new()
            .at(t.fault_at, FaultEvent::SetLoss(0.12))
            .at(t.heal_at, FaultEvent::HealAll),
        exempt: no_exemptions(),
    }
}

/// Two back-to-back partitions along *different* super-leaf boundaries.
/// Paired with multi-key transaction traffic, this stresses the anchor
/// shard protocol: a transaction's parts can straddle both cuts, and
/// atomicity (all-or-nothing on every trusted replica) must survive the
/// boundary shift.
pub fn cross_shard_atomicity_partition(topo: &ChaosTopology, t: &ChaosTimeline) -> ChaosScenario {
    let w = t.window();
    ChaosScenario {
        name: "cross_shard_atomicity_partition",
        plan: FaultPlan::new()
            .at(
                t.fault_at,
                FaultEvent::CutGroups {
                    a: topo.leaf(0),
                    b: topo.leaves(1..topo.groups),
                },
            )
            .at(t.fault_at + w / 2, FaultEvent::HealAll)
            .at(
                t.fault_at + (w * 4) / 7,
                FaultEvent::CutGroups {
                    a: topo.leaves(0..topo.groups - 1),
                    b: topo.leaf(topo.groups - 1),
                },
            )
            .at(t.heal_at, FaultEvent::HealAll),
        exempt: no_exemptions(),
    }
}

/// Version of the scenario catalog. Bumped whenever [`all_scenarios`]
/// changes membership or any scenario's schedule changes — the pinned
/// catalog hash below (and the trace-hash pins in the chaos suites) are
/// valid only for a specific version.
///
/// * v1 — PR 2's seven-scenario catalog.
/// * v2 — folds `partition_then_crash_restart` into the sweep; adds the
///   sharded-suite scenarios (`hot_shard_skew`,
///   `cross_shard_atomicity_partition`) as named extras.
pub const CATALOG_VERSION: u32 = 2;

/// Every scenario in the per-protocol sweep catalog.
pub fn all_scenarios(topo: &ChaosTopology, t: &ChaosTimeline) -> Vec<ChaosScenario> {
    vec![
        superleaf_partition(topo, t),
        majority_minority_split(topo, t),
        leader_crash_mid_round(topo, t),
        crash_restart_churn(topo, t),
        asymmetric_loss(topo, t),
        link_flapping(topo, t),
        node_isolated(topo, t),
        partition_then_crash_restart(topo, t),
    ]
}

/// The sharded chaos suite's extra scenarios (run against the
/// shard-parallel engine with skewed / multi-key traffic, on top of the
/// shared catalog).
pub fn sharded_scenarios(topo: &ChaosTopology, t: &ChaosTimeline) -> Vec<ChaosScenario> {
    vec![
        hot_shard_skew(topo, t),
        cross_shard_atomicity_partition(topo, t),
    ]
}

/// A stable fingerprint of the catalog's names and fault schedules for
/// the default sim topology/timeline: FNV-1a over each scenario's name
/// and rendered event timeline. Pinned by a test so membership or
/// schedule drift forces an explicit [`CATALOG_VERSION`] bump.
pub fn catalog_fingerprint(topo: &ChaosTopology, t: &ChaosTimeline) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for sc in all_scenarios(topo, t)
        .iter()
        .chain(sharded_scenarios(topo, t).iter())
    {
        eat(sc.name.as_bytes());
        for (at, action) in sc.plan.timeline(Time::ZERO, t.run_for) {
            eat(format!("@{}:{action:?}", at.as_millis()).as_bytes());
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use canopus_sim::fault::FaultAction;

    /// The parameterized catalog must reproduce PR 2's hand-written sim
    /// schedule exactly — the chaos suite's trace hashes depend on it.
    #[test]
    fn sim_defaults_reproduce_pr2_schedule() {
        let topo = ChaosTopology::sim_default();
        let t = ChaosTimeline::sim_default();

        let crash = leader_crash_mid_round(&topo, &t);
        let tl = crash.plan.timeline(Time::ZERO, t.run_for);
        assert_eq!(tl[0].0, Time::ZERO + Dur::millis(250), "crash at 250 ms");
        assert_eq!(tl[1].0, Time::ZERO + Dur::millis(800), "restart at 800 ms");

        let churn = crash_restart_churn(&topo, &t);
        let times: Vec<u64> = churn
            .plan
            .timeline(Time::ZERO, t.run_for)
            .iter()
            .map(|(at, _)| at.as_millis())
            .collect();
        assert_eq!(times, vec![200, 400, 500, 700, 800, 1000, 1050]);

        let flap = link_flapping(&topo, &t);
        let tl = flap.plan.timeline(Time::ZERO, t.run_for);
        assert_eq!(tl[0].0, Time::ZERO + Dur::millis(200));
        assert_eq!(tl[1].0, Time::ZERO + Dur::millis(260), "60 ms flap period");

        let loss = asymmetric_loss(&topo, &t);
        assert!(loss
            .plan
            .timeline(Time::ZERO, t.run_for)
            .iter()
            .any(|(_, a)| matches!(a, FaultAction::SetNodeOutLoss(NodeId(4), _))));
    }

    /// The catalog is versioned: any change to sweep membership or a
    /// scenario's fault schedule must bump [`CATALOG_VERSION`] and re-pin
    /// this fingerprint (and re-derive the chaos suites' trace hashes).
    #[test]
    fn catalog_v2_fingerprint_is_pinned() {
        assert_eq!(CATALOG_VERSION, 2);
        let topo = ChaosTopology::sim_default();
        let t = ChaosTimeline::sim_default();
        assert_eq!(
            catalog_fingerprint(&topo, &t),
            0x22bf_b69b_05bf_f154,
            "catalog drifted: bump CATALOG_VERSION and re-pin"
        );
    }

    #[test]
    fn topology_groups_are_dense_and_group_major() {
        let topo = ChaosTopology {
            groups: 2,
            per_group: 3,
        };
        assert_eq!(topo.leaf(1), vec![NodeId(3), NodeId(4), NodeId(5)]);
        assert_eq!(topo.leaves(0..2).len(), 6);
        assert_eq!(topo.node_count(), 6);
    }
}
