//! Cluster builders: a full protocol deployment plus its clients on the
//! topology-aware simulator.
//!
//! Per the paper's client model (§8.1), every protocol node has clients in
//! its own rack/datacenter; we aggregate them into one open-loop Poisson
//! client process per node, splitting the offered load evenly.

use canopus::{CanopusConfig, CanopusMsg, CanopusNode, CycleTrigger, EmulationTable, LotShape};
use canopus_epaxos::{EpaxosConfig, EpaxosMsg, EpaxosNode};
use canopus_net::ClosFabric;
use canopus_sim::{Dur, NodeConfig, NodeId, Payload, Process, Simulation};
use canopus_workload::{OpenLoopClient, OpenLoopConfig, ProtocolMsg};

use canopus_zab::{ZabConfig, ZabMsg, ZabNode};

use crate::spec::{DeploymentSpec, LoadSpec, TopoSpec};

/// A built cluster: the simulation, the protocol node ids, and the client
/// process ids (parallel to the node list).
pub struct Cluster<M: Payload> {
    /// The simulation, ready to run.
    pub sim: Simulation<M, ClosFabric>,
    /// Protocol node ids (dense, starting at 0).
    pub nodes: Vec<NodeId>,
    /// One aggregated client per node, in node order.
    pub clients: Vec<NodeId>,
}

/// Tuning knobs common to all protocol builders.
fn client_node_config() -> NodeConfig {
    // Client machines are dedicated (15 machines for 180 clients in the
    // paper); don't let them become the bottleneck.
    NodeConfig {
        base_msg_cost: Dur::nanos(200),
        per_send_cost: Dur::nanos(100),
    }
}

fn build_generic<M, F>(
    spec: &DeploymentSpec,
    load: &LoadSpec,
    seed: u64,
    mut make_node: F,
) -> Cluster<M>
where
    M: Payload,
    OpenLoopClient<M>: Process<M>,
    M: ProtocolMsg,
    F: FnMut(NodeId) -> Box<dyn Process<M>>,
{
    let mut topo = spec.build_topology();
    let n = spec.node_count();
    // Place one client per protocol node in the same rack.
    let mut client_slots = Vec::with_capacity(n);
    for i in 0..n {
        let rack = topo.rack_of(NodeId(i as u32));
        client_slots.push(topo.add_node(rack));
    }
    let fabric = ClosFabric::new(topo);
    let mut sim = Simulation::new(fabric, seed);
    let mut nodes = Vec::with_capacity(n);
    for i in 0..n {
        let id = sim.add_node(make_node(NodeId(i as u32)));
        assert_eq!(id, NodeId(i as u32), "node ids must match topology");
        nodes.push(id);
    }
    let mut clients = Vec::with_capacity(n);
    let per_client_rate = load.total_rate / n as f64;
    for (i, &slot) in client_slots.iter().enumerate() {
        let cfg = OpenLoopConfig {
            rate_per_sec: per_client_rate,
            write_ratio: load.write_ratio,
            tick: Dur::millis(1),
            op_bytes: 16,
            warmup: load.warmup,
        };
        let client = OpenLoopClient::<M>::new(nodes[i], cfg, seed ^ (0xC11E47 + i as u64));
        let id = sim.add_node_with(Box::new(client), client_node_config());
        assert_eq!(id, slot, "client ids must match topology");
        clients.push(id);
    }
    Cluster {
        sim,
        nodes,
        clients,
    }
}

/// The default Canopus configuration for a deployment: self-clocked cycles
/// in a single datacenter, pipelined 5 ms cycles across datacenters (§8.2).
pub fn canopus_config_for(spec: &DeploymentSpec) -> CanopusConfig {
    match spec.topo {
        TopoSpec::SingleDc { .. } => CanopusConfig {
            trigger: CycleTrigger::OnCommit,
            fetch_timeout: Dur::millis(25),
            failure_timeout: Dur::millis(60),
            raft: canopus_raft::RaftConfig {
                heartbeat_interval: Dur::millis(5),
                election_timeout_min: Dur::millis(25),
                election_timeout_max: Dur::millis(50),
            },
            record_log: false,
            ..CanopusConfig::default()
        },
        TopoSpec::MultiDc { .. } => CanopusConfig {
            record_log: false,
            ..CanopusConfig::wide_area()
        },
    }
}

/// Builds a Canopus cluster: one super-leaf per rack/datacenter.
pub fn build_canopus(
    spec: &DeploymentSpec,
    load: &LoadSpec,
    cfg: CanopusConfig,
    seed: u64,
) -> Cluster<CanopusMsg> {
    let groups = spec.group_count();
    let per = spec.per_group();
    let shape = LotShape::flat(groups as u16);
    let membership: Vec<Vec<NodeId>> = (0..groups)
        .map(|g| (0..per).map(|i| NodeId((g * per + i) as u32)).collect())
        .collect();
    let table = EmulationTable::new(shape, membership);
    build_generic(spec, load, seed, |id| {
        Box::new(CanopusNode::new(id, table.clone(), cfg.clone(), seed))
    })
}

/// Builds an EPaxos cluster over the same deployment.
pub fn build_epaxos(
    spec: &DeploymentSpec,
    load: &LoadSpec,
    cfg: EpaxosConfig,
    seed: u64,
) -> Cluster<EpaxosMsg> {
    let n = spec.node_count();
    let replicas: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    build_generic(spec, load, seed, |id| {
        Box::new(EpaxosNode::new(id, replicas.clone(), cfg.clone()))
    })
}

/// Builds a ZooKeeper-model cluster: `participants` quorum members (leader
/// = node 0), the rest observers — the paper's Figure 5 configuration.
pub fn build_zab(
    spec: &DeploymentSpec,
    load: &LoadSpec,
    cfg: ZabConfig,
    seed: u64,
) -> Cluster<ZabMsg> {
    let n = spec.node_count();
    let ensemble: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    build_generic(spec, load, seed, |id| {
        Box::new(ZabNode::new(id, ensemble.clone(), cfg.clone()))
    })
}
