//! Cluster builders: a full protocol deployment plus its clients on the
//! topology-aware simulator.
//!
//! Per the paper's client model (§8.1), every protocol node has clients in
//! its own rack/datacenter; we aggregate them into one open-loop Poisson
//! client process per node, splitting the offered load evenly.
//!
//! Every cluster is built over the composed fault-injection fabric
//! [`ChaosFabric`] — a [`PartitionableFabric`] over a [`LossyFabric`] over
//! the Clos topology — so the nemesis engine ([`canopus_sim::fault`]) can
//! partition, impair, and heal any deployment mid-run. With no faults
//! installed the decorators are pass-through and the event schedule is
//! identical to the bare [`ClosFabric`].

use std::collections::BTreeSet;

use canopus::{CanopusConfig, CanopusMsg, CanopusNode, CycleTrigger, EmulationTable, LotShape};
use canopus_epaxos::{EpaxosConfig, EpaxosMsg, EpaxosNode};
use canopus_net::ClosFabric;
use canopus_obs::{NodeObs, Registry, Snapshot};
use canopus_sim::fault::{FaultAction, FaultPlan, NemesisDriver};
use canopus_sim::{
    impl_process_any, Dur, LossyFabric, NodeConfig, NodeId, PartitionableFabric, Payload, Process,
    Simulation, Time,
};
use canopus_workload::{OpenLoopClient, OpenLoopConfig, ProtocolMsg};

use canopus_zab::{ZabConfig, ZabMsg, ZabNode};

use crate::raftkv::{RaftKvConfig, RaftKvMsg, RaftKvNode};
use crate::spec::{DeploymentSpec, LoadSpec, TopoSpec};

/// The default fabric of every built cluster: partitions over loss over
/// the Clos topology.
pub type ChaosFabric = PartitionableFabric<LossyFabric<ClosFabric>>;

/// Observability configuration for a cluster build: disabled (the
/// default for benchmarks — every recording is one branch) or enabled
/// with per-node flight rings of `flight_cap` events.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClusterObs {
    /// Capacity of each node's flight-recorder ring; 0 disables obs.
    pub flight_cap: usize,
}

impl ClusterObs {
    /// Fully disabled: nodes carry inert hubs.
    pub fn off() -> Self {
        ClusterObs { flight_cap: 0 }
    }

    /// Enabled with the given flight-ring capacity per node.
    pub fn on(flight_cap: usize) -> Self {
        ClusterObs { flight_cap }
    }

    fn hub(&self, node: u32) -> NodeObs {
        if self.flight_cap == 0 {
            NodeObs::disabled()
        } else {
            NodeObs::enabled(node, self.flight_cap)
        }
    }

    fn hubs(&self, n: usize) -> Vec<NodeObs> {
        (0..n as u32).map(|i| self.hub(i)).collect()
    }

    fn net_registry(&self) -> Registry {
        if self.flight_cap == 0 {
            Registry::disabled()
        } else {
            Registry::new()
        }
    }
}

/// Builds the replacement process when the nemesis restarts a crashed
/// node. Receives the crashed process when the kernel still holds it, so
/// protocols with durable state can model recovery.
pub type RestartFactory<M> =
    Box<dyn FnMut(NodeId, Option<Box<dyn Process<M>>>) -> Box<dyn Process<M>>>;

/// A process that ignores every message: stands in for a replica whose
/// protocol has no crash-recovery path (EPaxos, whose paper-scoped
/// implementation is failure-free), so a "restarted" node behaves as
/// crash-stop instead of silently corrupting quorum intersection.
pub struct SilentNode<M> {
    _marker: std::marker::PhantomData<fn() -> M>,
}

impl<M> Default for SilentNode<M> {
    fn default() -> Self {
        SilentNode {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<M: Payload> Process<M> for SilentNode<M> {
    fn on_message(&mut self, _from: NodeId, _msg: M, _ctx: &mut canopus_sim::Context<'_, M>) {}
    impl_process_any!();
}

/// A built cluster: the simulation, the protocol node ids, the client
/// process ids (parallel to the node list), and the restart policy the
/// nemesis uses when a fault plan revives a crashed node.
pub struct Cluster<M: Payload> {
    /// The simulation, ready to run.
    pub sim: Simulation<M, ChaosFabric>,
    /// Protocol node ids (dense, starting at 0).
    pub nodes: Vec<NodeId>,
    /// One aggregated client per node, in node order.
    pub clients: Vec<NodeId>,
    restart_factory: RestartFactory<M>,
    ever_crashed: BTreeSet<NodeId>,
    /// One observability hub per protocol node (all disabled unless the
    /// cluster was built with [`ClusterObs::on`]).
    hubs: Vec<NodeObs>,
    /// The registry the simulator's network layer counts sent messages
    /// and bytes into (by wire kind).
    net_registry: Registry,
}

impl<M: Payload> Cluster<M> {
    /// Mutable access to the fault-injection fabric — the supported way
    /// for tests to install partitions, loss, and isolation, instead of
    /// reaching through `Simulation` internals.
    pub fn fabric_mut(&mut self) -> &mut ChaosFabric {
        self.sim.fabric_mut()
    }

    /// Immutable access to the fault-injection fabric.
    pub fn fabric(&self) -> &ChaosFabric {
        self.sim.fabric()
    }

    /// Applies `plan` while running the simulation for `horizon` of
    /// virtual time from now, restarting crashed nodes through the
    /// cluster's per-protocol restart policy. Returns the concrete action
    /// timeline that was applied.
    pub fn apply_plan(&mut self, plan: &FaultPlan, horizon: Dur) -> Vec<(Time, FaultAction)> {
        let mut driver = NemesisDriver::new(plan, self.sim.now(), horizon);
        let until = self.sim.now() + horizon;
        driver.run(&mut self.sim, until, &mut *self.restart_factory);
        self.ever_crashed
            .extend(driver.ever_crashed().iter().copied());
        driver.applied().to_vec()
    }

    /// Nodes the nemesis has crashed at least once.
    pub fn ever_crashed(&self) -> &BTreeSet<NodeId> {
        &self.ever_crashed
    }

    /// Protocol nodes that are alive and were never crashed — the set the
    /// chaos verdict holds to the full safety and convergence bar.
    pub fn trusted_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .copied()
            .filter(|&n| self.sim.is_alive(n) && !self.ever_crashed.contains(&n))
            .collect()
    }

    /// Per-node observability hubs (empty or inert when obs is off).
    pub fn obs_hubs(&self) -> &[NodeObs] {
        &self.hubs
    }

    /// The registry the simulated network counts into.
    pub fn net_registry(&self) -> &Registry {
        &self.net_registry
    }

    /// Every node's flight recorder, dumped (`last` events each) into one
    /// string — the panic artifact chaos failures attach.
    pub fn flight_dump(&self, last: usize) -> String {
        let mut out = String::new();
        for hub in &self.hubs {
            out.push_str(&hub.flight.dump_last(last));
        }
        out
    }

    /// One merged snapshot: every node's registry plus the network
    /// registry, aggregated by metric name.
    pub fn metrics_snapshot(&self) -> Snapshot {
        let mut snap = self.net_registry.snapshot();
        for hub in &self.hubs {
            snap.merge(&hub.metrics.snapshot());
        }
        snap
    }
}

/// Tuning knobs common to all protocol builders.
fn client_node_config() -> NodeConfig {
    // Client machines are dedicated (15 machines for 180 clients in the
    // paper); don't let them become the bottleneck.
    NodeConfig {
        base_msg_cost: Dur::nanos(200),
        per_send_cost: Dur::nanos(100),
        lanes: 1,
    }
}

/// Builds a cluster from explicit node, client, and restart factories —
/// the generic assembly the per-protocol builders and the chaos harness
/// share. `make_client(i, target)` builds the client co-located with node
/// `i`. Protocol nodes get the default single-lane [`NodeConfig`]; the
/// sharded builders use [`build_custom_cfg`] to give each node one CPU
/// lane per hosted shard.
pub fn build_custom<M>(
    spec: &DeploymentSpec,
    seed: u64,
    make_node: impl FnMut(NodeId) -> Box<dyn Process<M>>,
    make_client: impl FnMut(usize, NodeId) -> Box<dyn Process<M>>,
    restart_factory: RestartFactory<M>,
) -> Cluster<M>
where
    M: Payload,
{
    build_custom_cfg(
        spec,
        seed,
        NodeConfig::default(),
        make_node,
        make_client,
        restart_factory,
    )
}

/// [`build_custom`] with an explicit [`NodeConfig`] for the protocol
/// nodes (clients keep their own dedicated-machine config).
pub fn build_custom_cfg<M>(
    spec: &DeploymentSpec,
    seed: u64,
    node_cfg: NodeConfig,
    mut make_node: impl FnMut(NodeId) -> Box<dyn Process<M>>,
    mut make_client: impl FnMut(usize, NodeId) -> Box<dyn Process<M>>,
    restart_factory: RestartFactory<M>,
) -> Cluster<M>
where
    M: Payload,
{
    let mut topo = spec.build_topology();
    let n = spec.node_count();
    // Place one client per protocol node in the same rack.
    let mut client_slots = Vec::with_capacity(n);
    for i in 0..n {
        let rack = topo.rack_of(NodeId(i as u32));
        client_slots.push(topo.add_node(rack));
    }
    let fabric = PartitionableFabric::new(LossyFabric::new(ClosFabric::new(topo), 0.0));
    let mut sim = Simulation::new(fabric, seed);
    let mut nodes = Vec::with_capacity(n);
    for i in 0..n {
        let id = sim.add_node_with(make_node(NodeId(i as u32)), node_cfg);
        assert_eq!(id, NodeId(i as u32), "node ids must match topology");
        nodes.push(id);
    }
    let mut clients = Vec::with_capacity(n);
    for (i, &slot) in client_slots.iter().enumerate() {
        let id = sim.add_node_with(make_client(i, nodes[i]), client_node_config());
        assert_eq!(id, slot, "client ids must match topology");
        clients.push(id);
    }
    Cluster {
        sim,
        nodes,
        clients,
        restart_factory,
        ever_crashed: BTreeSet::new(),
        hubs: Vec::new(),
        net_registry: Registry::disabled(),
    }
}

/// Attaches pre-built hubs and a network registry to a freshly built
/// cluster: the hubs become visible through [`Cluster::obs_hubs`] and the
/// simulated network starts counting into `net_registry`. Recording is
/// observation-only — it never touches the RNG, the event queue, or the
/// trace hash, so enabling obs cannot change an execution.
fn install_obs<M: Payload>(cluster: &mut Cluster<M>, hubs: Vec<NodeObs>, net_registry: Registry) {
    cluster.sim.set_net_metrics(net_registry.clone());
    cluster.hubs = hubs;
    cluster.net_registry = net_registry;
}

fn open_loop_client_factory<M>(
    load: &LoadSpec,
    n: usize,
    seed: u64,
) -> impl FnMut(usize, NodeId) -> Box<dyn Process<M>>
where
    M: Payload + ProtocolMsg,
    OpenLoopClient<M>: Process<M>,
{
    let per_client_rate = load.total_rate / n as f64;
    let load = load.clone();
    move |i, target| {
        let cfg = OpenLoopConfig {
            rate_per_sec: per_client_rate,
            write_ratio: load.write_ratio,
            tick: Dur::millis(1),
            op_bytes: 16,
            warmup: load.warmup,
            max_batch: load.client_max_batch,
            shards: load.shards,
            shard_theta: load.shard_theta,
            ..OpenLoopConfig::default()
        };
        Box::new(OpenLoopClient::<M>::new(
            target,
            cfg,
            seed ^ (0xC11E47 + i as u64),
        ))
    }
}

/// The default Canopus configuration for a deployment: self-clocked cycles
/// in a single datacenter, pipelined 5 ms cycles across datacenters (§8.2).
pub fn canopus_config_for(spec: &DeploymentSpec) -> CanopusConfig {
    match spec.topo {
        TopoSpec::SingleDc { .. } => CanopusConfig {
            trigger: CycleTrigger::OnCommit,
            fetch_timeout: Dur::millis(25),
            failure_timeout: Dur::millis(60),
            raft: canopus_raft::RaftConfig {
                heartbeat_interval: Dur::millis(5),
                election_timeout_min: Dur::millis(25),
                election_timeout_max: Dur::millis(50),
            },
            record_log: false,
            ..CanopusConfig::default()
        },
        TopoSpec::MultiDc { .. } => CanopusConfig {
            record_log: false,
            ..CanopusConfig::wide_area()
        },
    }
}

/// The emulation table for a deployment: one super-leaf per rack/DC.
pub fn emulation_table_for(spec: &DeploymentSpec) -> EmulationTable {
    let groups = spec.group_count();
    let per = spec.per_group();
    let shape = LotShape::flat(groups as u16);
    let membership: Vec<Vec<NodeId>> = (0..groups)
        .map(|g| (0..per).map(|i| NodeId((g * per + i) as u32)).collect())
        .collect();
    EmulationTable::new(shape, membership)
}

/// Builds a Canopus cluster over custom clients (the chaos harness path).
/// A restarted node comes back as a fresh process; the survivors'
/// tombstone machinery keeps it excluded (crash-stop rejoin is a ROADMAP
/// item), which is safe but means its clients see no further progress.
pub fn build_canopus_with(
    spec: &DeploymentSpec,
    cfg: CanopusConfig,
    seed: u64,
    make_client: impl FnMut(usize, NodeId) -> Box<dyn Process<CanopusMsg>>,
    obs: ClusterObs,
) -> Cluster<CanopusMsg> {
    let table = emulation_table_for(spec);
    let restart_table = table.clone();
    let restart_cfg = cfg.clone();
    let hubs = obs.hubs(spec.node_count());
    let node_hubs = hubs.clone();
    let restart_hubs = hubs.clone();
    let mut cluster = build_custom(
        spec,
        seed,
        |id| {
            Box::new(
                CanopusNode::new(id, table.clone(), cfg.clone(), seed)
                    .with_obs(node_hubs[id.0 as usize].clone()),
            )
        },
        make_client,
        Box::new(move |id, _old| {
            Box::new(
                CanopusNode::new(id, restart_table.clone(), restart_cfg.clone(), seed)
                    .with_obs(restart_hubs[id.0 as usize].clone()),
            )
        }),
    );
    install_obs(&mut cluster, hubs, obs.net_registry());
    cluster
}

/// Builds a Canopus cluster: one super-leaf per rack/datacenter.
pub fn build_canopus(
    spec: &DeploymentSpec,
    load: &LoadSpec,
    cfg: CanopusConfig,
    seed: u64,
) -> Cluster<CanopusMsg> {
    let clients = open_loop_client_factory(load, spec.node_count(), seed);
    build_canopus_with(spec, cfg, seed, clients, ClusterObs::off())
}

/// [`build_canopus`] with observability attached — the benchmark path
/// uses this to emit batch-size and pipeline-occupancy metrics next to
/// each ladder point.
pub fn build_canopus_obs(
    spec: &DeploymentSpec,
    load: &LoadSpec,
    cfg: CanopusConfig,
    seed: u64,
    obs: ClusterObs,
) -> Cluster<CanopusMsg> {
    let clients = open_loop_client_factory(load, spec.node_count(), seed);
    build_canopus_with(spec, cfg, seed, clients, obs)
}

/// Observability hubs for a sharded cluster: one hub per (node, shard)
/// pair, node-major, so each LOT instance records to its own registry and
/// flight recorder. Flight events are tagged `node * 256 + shard`, which
/// keeps per-shard streams distinguishable in a failure dump.
fn sharded_hubs(obs: &ClusterObs, n: usize, shards: u16) -> Vec<NodeObs> {
    (0..n as u32)
        .flat_map(|node| (0..u32::from(shards)).map(move |s| (node, s)))
        .map(|(node, s)| {
            if obs.flight_cap == 0 {
                NodeObs::disabled()
            } else {
                NodeObs::enabled(node * 256 + s, obs.flight_cap)
            }
        })
        .collect()
}

/// Builds a shard-parallel Canopus cluster over custom clients: every
/// node hosts `shards` independent LOT instances behind one transport
/// identity ([`canopus::ShardEngine`]), with one CPU lane per shard so
/// the pipelines commit concurrently. Per-shard configuration goes
/// through `cfg_of(shard)` — uniform tuning passes the same config for
/// every shard. A restarted node comes back as a fresh engine (the
/// survivors' per-shard tombstone machinery keeps it excluded, exactly
/// as in the unsharded builder).
pub fn build_sharded_canopus_with(
    spec: &DeploymentSpec,
    mut cfg_of: impl FnMut(u16) -> CanopusConfig,
    shards: u16,
    seed: u64,
    make_client: impl FnMut(usize, NodeId) -> Box<dyn Process<canopus::ShardMsg>>,
    obs: ClusterObs,
) -> Cluster<canopus::ShardMsg> {
    let shards = shards.max(1);
    let table = emulation_table_for(spec);
    let restart_table = table.clone();
    let cfgs: Vec<CanopusConfig> = (0..shards).map(&mut cfg_of).collect();
    let restart_cfgs = cfgs.clone();
    let hubs = sharded_hubs(&obs, spec.node_count(), shards);
    let node_hubs = hubs.clone();
    let restart_hubs = hubs.clone();
    let engine =
        move |id: NodeId, table: &EmulationTable, cfgs: &[CanopusConfig], hubs: &[NodeObs]| {
            let per_node = hubs[id.0 as usize * shards as usize..].to_vec();
            Box::new(
                canopus::ShardEngine::with_configs(id, table.clone(), shards, seed, |s| {
                    cfgs[s as usize].clone()
                })
                .with_obs(move |s| per_node[s as usize].clone()),
            )
        };
    let restart_engine = engine;
    let mut cluster = build_custom_cfg(
        spec,
        seed,
        NodeConfig::default().with_lanes(u32::from(shards)),
        |id| engine(id, &table, &cfgs, &node_hubs),
        make_client,
        Box::new(move |id, _old| restart_engine(id, &restart_table, &restart_cfgs, &restart_hubs)),
    );
    install_obs(&mut cluster, hubs, obs.net_registry());
    cluster
}

/// Builds a shard-parallel Canopus cluster driven by the paper's
/// open-loop client model, with the clients splitting their offered load
/// across the shards per the [`LoadSpec`]'s shard routing (uniform or
/// Zipf-skewed).
pub fn build_sharded_canopus(
    spec: &DeploymentSpec,
    load: &LoadSpec,
    cfg: CanopusConfig,
    shards: u16,
    seed: u64,
) -> Cluster<canopus::ShardMsg> {
    build_sharded_canopus_obs(spec, load, cfg, shards, seed, ClusterObs::off())
}

/// [`build_sharded_canopus`] with observability attached — the shard
/// scaling bench reads per-shard batch and pipeline metrics from the
/// per-(node, shard) hubs.
pub fn build_sharded_canopus_obs(
    spec: &DeploymentSpec,
    load: &LoadSpec,
    cfg: CanopusConfig,
    shards: u16,
    seed: u64,
    obs: ClusterObs,
) -> Cluster<canopus::ShardMsg> {
    let clients = open_loop_client_factory(load, spec.node_count(), seed);
    build_sharded_canopus_with(spec, |_| cfg.clone(), shards, seed, clients, obs)
}

/// Builds an EPaxos cluster over custom clients. EPaxos has no recovery
/// protocol (failure-free scope, see the crate docs), so a restarted
/// replica is re-installed as a permanently silent crash-stop process —
/// restarting it with empty state would silently break quorum-
/// intersection memory and could corrupt the dependency graph.
pub fn build_epaxos_with(
    spec: &DeploymentSpec,
    cfg: EpaxosConfig,
    seed: u64,
    make_client: impl FnMut(usize, NodeId) -> Box<dyn Process<EpaxosMsg>>,
    obs: ClusterObs,
) -> Cluster<EpaxosMsg> {
    let n = spec.node_count();
    let replicas: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    let hubs = obs.hubs(n);
    let node_hubs = hubs.clone();
    let mut cluster = build_custom(
        spec,
        seed,
        |id| {
            Box::new(
                EpaxosNode::new(id, replicas.clone(), cfg.clone())
                    .with_obs(node_hubs[id.0 as usize].clone()),
            )
        },
        make_client,
        Box::new(|_id, _old| Box::new(SilentNode::<EpaxosMsg>::default())),
    );
    install_obs(&mut cluster, hubs, obs.net_registry());
    cluster
}

/// Builds an EPaxos cluster over the same deployment.
pub fn build_epaxos(
    spec: &DeploymentSpec,
    load: &LoadSpec,
    cfg: EpaxosConfig,
    seed: u64,
) -> Cluster<EpaxosMsg> {
    let clients = open_loop_client_factory(load, spec.node_count(), seed);
    build_epaxos_with(spec, cfg, seed, clients, ClusterObs::off())
}

/// Builds a ZooKeeper-model cluster over custom clients. A restarted node
/// comes back amnesiac as a *follower* ([`ZabNode::recovering`] — even a
/// former leader must not reclaim leadership with an empty log) and
/// resyncs its full history from the current leader (gap detection +
/// `ResyncRequest`), modelling Zab's synchronization phase.
pub fn build_zab_with(
    spec: &DeploymentSpec,
    cfg: ZabConfig,
    seed: u64,
    make_client: impl FnMut(usize, NodeId) -> Box<dyn Process<ZabMsg>>,
    obs: ClusterObs,
) -> Cluster<ZabMsg> {
    let n = spec.node_count();
    let ensemble: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    let restart_ensemble = ensemble.clone();
    let restart_cfg = cfg.clone();
    let hubs = obs.hubs(n);
    let node_hubs = hubs.clone();
    let restart_hubs = hubs.clone();
    let mut cluster = build_custom(
        spec,
        seed,
        |id| {
            Box::new(
                ZabNode::new(id, ensemble.clone(), cfg.clone())
                    .with_obs(node_hubs[id.0 as usize].clone()),
            )
        },
        make_client,
        Box::new(move |id, _old| {
            Box::new(
                ZabNode::recovering(id, restart_ensemble.clone(), restart_cfg.clone())
                    .with_obs(restart_hubs[id.0 as usize].clone()),
            )
        }),
    );
    install_obs(&mut cluster, hubs, obs.net_registry());
    cluster
}

/// Builds a ZooKeeper-model cluster: `participants` quorum members (leader
/// = node 0), the rest observers — the paper's Figure 5 configuration.
pub fn build_zab(
    spec: &DeploymentSpec,
    load: &LoadSpec,
    cfg: ZabConfig,
    seed: u64,
) -> Cluster<ZabMsg> {
    let clients = open_loop_client_factory(load, spec.node_count(), seed);
    build_zab_with(spec, cfg, seed, clients, ClusterObs::off())
}

/// Builds a Raft KV cluster over custom clients. A restarted node
/// recovers its durable Raft state (term, vote, log) from the crashed
/// process and rejoins as a follower.
pub fn build_raftkv_with(
    spec: &DeploymentSpec,
    cfg: RaftKvConfig,
    seed: u64,
    make_client: impl FnMut(usize, NodeId) -> Box<dyn Process<RaftKvMsg>>,
    obs: ClusterObs,
) -> Cluster<RaftKvMsg> {
    let n = spec.node_count();
    let members: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    let restart_members = members.clone();
    let restart_cfg = cfg.clone();
    let hubs = obs.hubs(n);
    let node_hubs = hubs.clone();
    let restart_hubs = hubs.clone();
    let mut cluster = build_custom(
        spec,
        seed,
        |id| {
            Box::new(
                RaftKvNode::new(id, members.clone(), cfg.clone(), seed)
                    .with_obs(node_hubs[id.0 as usize].clone()),
            )
        },
        make_client,
        Box::new(move |id, old| {
            let recovered = old.and_then(|p| p.into_any().downcast::<RaftKvNode>().ok());
            let hub = restart_hubs[id.0 as usize].clone();
            match recovered {
                Some(node) => Box::new(RaftKvNode::recover(&node, seed).with_obs(hub)),
                None => Box::new(
                    RaftKvNode::new(id, restart_members.clone(), restart_cfg.clone(), seed)
                        .with_obs(hub),
                ),
            }
        }),
    );
    install_obs(&mut cluster, hubs, obs.net_registry());
    cluster
}

/// Builds a Raft KV cluster driven by the paper's open-loop client model.
pub fn build_raftkv(
    spec: &DeploymentSpec,
    load: &LoadSpec,
    cfg: RaftKvConfig,
    seed: u64,
) -> Cluster<RaftKvMsg> {
    let clients = open_loop_client_factory(load, spec.node_count(), seed);
    build_raftkv_with(spec, cfg, seed, clients, ClusterObs::off())
}
