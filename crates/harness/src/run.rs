//! Running experiments and searching for maximum throughput.
//!
//! Reproduces the paper's methodology (§8.1): offered load is increased
//! until the median request completion time exceeds 10 ms; the last point
//! is the system's maximum throughput, and representative latency is
//! reported at 70 % of that maximum.

use canopus::{CanopusConfig, CanopusMsg, CanopusNode};
use canopus_epaxos::{EpaxosConfig, EpaxosMsg, EpaxosNode};
use canopus_sim::{Dur, Payload};
use canopus_workload::{LatencyRecorder, OpenLoopClient, ProtocolMsg};
use canopus_zab::{ZabConfig, ZabMsg, ZabNode};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::cluster::{build_canopus, build_epaxos, build_zab, Cluster};
use crate::spec::{DeploymentSpec, LoadSpec};

/// The outcome of one measured run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Offered load (requests/second, whole deployment).
    pub offered: f64,
    /// Achieved completion rate over the measured window.
    pub achieved: f64,
    /// Median completion time across all requests.
    pub median: Option<Dur>,
    /// 95th percentile completion time.
    pub p95: Option<Dur>,
    /// Mean completion time.
    pub mean: Option<Dur>,
    /// Median for writes only.
    pub write_median: Option<Dur>,
    /// Median for reads only.
    pub read_median: Option<Dur>,
    /// Whether every protocol node made progress.
    pub healthy: bool,
}

impl RunResult {
    /// Whether this point is below the paper's 10 ms saturation knee and
    /// the system kept up with the offered load.
    ///
    /// The write median is checked separately: in systems that serve reads
    /// locally (ZooKeeper, lease-mode Canopus) a read-heavy mix keeps the
    /// combined median low even after the write path has collapsed, which
    /// would otherwise report absurd "sustained" rates.
    pub fn is_sustainable(&self, limit: Dur) -> bool {
        self.healthy
            && self.achieved >= 0.75 * self.offered
            && self.median.is_some_and(|m| m <= limit)
            && self.write_median.is_none_or(|m| m <= limit * 3)
    }
}

/// Collects client recorders into a [`RunResult`].
fn collect<M>(
    cluster: &Cluster<M>,
    load: &LoadSpec,
    progressed: impl Fn(&Cluster<M>) -> bool,
) -> RunResult
where
    M: Payload + ProtocolMsg,
{
    let mut writes = LatencyRecorder::default();
    let mut reads = LatencyRecorder::default();
    let mut rng = SmallRng::seed_from_u64(0xA77E);
    for &c in &cluster.clients {
        let client = cluster.sim.node::<OpenLoopClient<M>>(c);
        writes.merge(&client.writes, &mut rng);
        reads.merge(&client.reads, &mut rng);
    }
    let mut total = writes.clone();
    total.merge(&reads, &mut rng);
    let achieved = total.completed() as f64 / load.duration.as_secs_f64();
    RunResult {
        offered: load.total_rate,
        achieved,
        median: total.median(),
        p95: total.percentile(95.0),
        mean: total.mean(),
        write_median: writes.median(),
        read_median: reads.median(),
        healthy: progressed(cluster),
    }
}

/// Runs a Canopus deployment and measures it.
pub fn run_canopus(
    spec: &DeploymentSpec,
    load: &LoadSpec,
    cfg: CanopusConfig,
    seed: u64,
) -> RunResult {
    let mut cluster = build_canopus(spec, load, cfg, seed);
    cluster.sim.run_for(load.warmup + load.duration);
    collect::<CanopusMsg>(&cluster, load, |c| {
        c.nodes
            .iter()
            .all(|&n| c.sim.node::<CanopusNode>(n).stats().committed_cycles > 0)
    })
}

/// Runs an EPaxos deployment and measures it.
pub fn run_epaxos(
    spec: &DeploymentSpec,
    load: &LoadSpec,
    cfg: EpaxosConfig,
    seed: u64,
) -> RunResult {
    let mut cluster = build_epaxos(spec, load, cfg, seed);
    cluster.sim.run_for(load.warmup + load.duration);
    collect::<EpaxosMsg>(&cluster, load, |c| {
        c.nodes
            .iter()
            .all(|&n| c.sim.node::<EpaxosNode>(n).stats().executed_weight > 0)
    })
}

/// Runs a ZooKeeper-model deployment and measures it.
pub fn run_zab(spec: &DeploymentSpec, load: &LoadSpec, cfg: ZabConfig, seed: u64) -> RunResult {
    let mut cluster = build_zab(spec, load, cfg, seed);
    cluster.sim.run_for(load.warmup + load.duration);
    collect::<ZabMsg>(&cluster, load, |c| {
        c.nodes
            .iter()
            .any(|&n| c.sim.node::<ZabNode>(n).stats().applied_weight > 0)
    })
}

/// Parameters of the max-throughput search.
#[derive(Clone, Debug)]
pub struct SearchSpec {
    /// First offered rate tried.
    pub start_rate: f64,
    /// Geometric growth factor between steps.
    pub growth: f64,
    /// The paper's saturation knee.
    pub latency_limit: Dur,
    /// Upper bound on steps.
    pub max_steps: usize,
}

impl Default for SearchSpec {
    fn default() -> Self {
        SearchSpec {
            start_rate: 20_000.0,
            growth: 1.6,
            latency_limit: Dur::millis(10),
            max_steps: 14,
        }
    }
}

/// Result of a throughput search: the best sustainable point and the whole
/// measured ladder (for latency-vs-throughput curves).
#[derive(Clone, Debug)]
pub struct SearchResult {
    /// The highest sustainable point (§8.1's "maximum throughput").
    pub best: Option<RunResult>,
    /// All measured points, in increasing offered load.
    pub ladder: Vec<RunResult>,
}

impl SearchResult {
    /// Max throughput (achieved rate at the best point), or 0.
    pub fn max_throughput(&self) -> f64 {
        self.best.as_ref().map(|b| b.achieved).unwrap_or(0.0)
    }
}

/// Geometric load ladder until the latency knee (the paper's §8.1 search).
pub fn find_max_throughput(
    mut run: impl FnMut(f64) -> RunResult,
    search: &SearchSpec,
) -> SearchResult {
    let mut ladder = Vec::new();
    let mut best: Option<RunResult> = None;
    let mut rate = search.start_rate;
    for _ in 0..search.max_steps {
        let result = run(rate);
        let sustainable = result.is_sustainable(search.latency_limit);
        ladder.push(result.clone());
        if sustainable {
            best = Some(result);
            rate *= search.growth;
        } else {
            break;
        }
    }
    SearchResult { best, ladder }
}

/// Runs the representative-latency measurement at 70 % of max throughput
/// (the paper reports medians at that operating point).
pub fn latency_at_70pct(max_rate: f64, mut run: impl FnMut(f64) -> RunResult) -> RunResult {
    run(max_rate * 0.7)
}

/// Identity and health check used by tests: same seed twice ⇒ identical
/// measurements (whole-stack determinism).
pub fn deterministic_check(
    spec: &DeploymentSpec,
    load: &LoadSpec,
    cfg: CanopusConfig,
    seed: u64,
) -> bool {
    let a = run_canopus(spec, load, cfg.clone(), seed);
    let b = run_canopus(spec, load, cfg, seed);
    a.achieved == b.achieved && a.median == b.median && a.p95 == b.p95
}
