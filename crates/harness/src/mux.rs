//! Multiplexed client sessions: many [`HistoryClient`]s on one transport
//! node.
//!
//! The first live clusters ran one TCP node — listener, reactor
//! registration, inbox thread — *per client*. That model caps a machine at
//! a few hundred clients long before the protocol does. [`ClientMux`]
//! hosts every history client of a live cluster inside a single
//! [`Process`]: each session keeps its own virtual [`NodeId`] (so write
//! tags and the chaos verdict are unchanged) and is driven through a
//! detached [`Context`], while the mux owns the one real transport context
//! and fans effects in and out:
//!
//! * **requests** — a session's `Send` effects are forwarded verbatim; the
//!   peer map points every virtual client id at the mux's listener, so
//!   protocol nodes reply over the one multiplexed connection;
//! * **replies** — routed back by op id alone: session `i` issues ops from
//!   base `(i + 1) << 48` ([`session_op_base`]), so `op_id >> 48` names
//!   the session with no per-message bookkeeping;
//! * **timers** — each session arming is re-armed on the real context and
//!   remembered in a forward map (real [`TimerId`] → session delivery), so
//!   a firing is replayed to the right session with its original id and
//!   token; cancellations follow a reverse map.
//!
//! The mux is pure state-machine plumbing (no sockets, no threads), so it
//! runs — and is tested — under detached contexts directly.

use std::collections::HashMap;

use canopus_sim::{Context, Effect, NodeId, Process, Timer, TimerId};
use canopus_workload::ProtocolMsg;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::history::{HistoryClient, HistoryConfig};

/// Bits reserved for the per-session op counter. 48 bits of ops per
/// session and 65535 sessions per mux — both far beyond any run.
const SESSION_SHIFT: u32 = 48;

/// The op-id base for session `index`: a disjoint `1 << 48`-wide id space
/// per session, starting at 1 so base zero keeps meaning "no namespacing".
pub fn session_op_base(index: usize) -> u64 {
    ((index + 1) as u64) << SESSION_SHIFT
}

/// The session index that owns `op_id`, if it falls in a session's space.
fn session_of(op_id: u64, sessions: usize) -> Option<usize> {
    (op_id >> SESSION_SHIFT)
        .checked_sub(1)
        .map(|i| i as usize)
        .filter(|&i| i < sessions)
}

/// All of a live cluster's history clients, multiplexed onto one
/// transport node.
pub struct ClientMux<M: ProtocolMsg> {
    /// Virtual id of session 0; session `i` is `NodeId(first_id + i)`.
    first_id: u32,
    sessions: Vec<HistoryClient<M>>,
    rng: SmallRng,
    /// Shared detached-context timer counter, so session timer ids stay
    /// unique across the whole mux lifetime.
    timer_seq: u64,
    /// Real arming → `(session, delivery)` to replay on fire.
    fwd: HashMap<TimerId, (usize, Timer)>,
    /// Session arming → real arming, for cancellation.
    rev: HashMap<TimerId, TimerId>,
}

impl<M: ProtocolMsg + 'static> ClientMux<M> {
    /// A mux hosting `n` history clients: session `i` has virtual id
    /// `NodeId(first_id + i)`, targets `NodeId(i)`, and issues op ids from
    /// [`session_op_base`]`(i)`.
    pub fn new(n: usize, first_id: u32, hcfg: &HistoryConfig, seed: u64) -> Self {
        let sessions = (0..n)
            .map(|i| {
                let cfg = HistoryConfig {
                    op_id_base: session_op_base(i),
                    ..hcfg.clone()
                };
                HistoryClient::new(i, n, NodeId(i as u32), cfg)
            })
            .collect();
        ClientMux {
            first_id,
            sessions,
            rng: SmallRng::seed_from_u64(seed),
            timer_seq: 0,
            fwd: HashMap::new(),
            rev: HashMap::new(),
        }
    }

    /// The hosted sessions, in index order.
    pub fn sessions(&self) -> &[HistoryClient<M>] {
        &self.sessions
    }

    /// Unpacks the mux into its sessions (for the post-run verdict).
    pub fn into_sessions(self) -> Vec<HistoryClient<M>> {
        self.sessions
    }

    /// Runs one session callback under a detached context carrying the
    /// session's virtual id, then replays its effects onto the real
    /// context: sends pass through, timers are re-armed and mapped.
    fn drive(
        &mut self,
        i: usize,
        ctx: &mut Context<'_, M>,
        f: impl FnOnce(&mut HistoryClient<M>, &mut Context<'_, M>),
    ) {
        let id = NodeId(self.first_id + i as u32);
        let mut sub = Context::detached(ctx.now(), id, &mut self.rng, &mut self.timer_seq);
        f(&mut self.sessions[i], &mut sub);
        let (effects, charged) = sub.into_effects();
        ctx.charge(charged);
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => ctx.send(to, msg),
                Effect::SetTimer { id, after, token } => {
                    let real = ctx.set_timer(after, token);
                    self.fwd.insert(real, (i, Timer { id, token }));
                    self.rev.insert(id, real);
                }
                Effect::CancelTimer { id } => {
                    if let Some(real) = self.rev.remove(&id) {
                        self.fwd.remove(&real);
                        ctx.cancel_timer(real);
                    }
                }
            }
        }
    }
}

impl<M: ProtocolMsg + 'static> Process<M> for ClientMux<M> {
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        for i in 0..self.sessions.len() {
            self.drive(i, ctx, |s, sub| s.on_start(sub));
        }
    }

    fn on_timer(&mut self, t: Timer, ctx: &mut Context<'_, M>) {
        let Some((i, delivery)) = self.fwd.remove(&t.id) else {
            return;
        };
        self.rev.remove(&delivery.id);
        self.drive(i, ctx, |s, sub| s.on_timer(delivery, sub));
    }

    fn on_message(&mut self, from: NodeId, msg: M, ctx: &mut Context<'_, M>) {
        let Some(reply) = msg.reply() else { return };
        let Some(i) = session_of(reply.op_id, self.sessions.len()) else {
            return;
        };
        self.drive(i, ctx, |s, sub| s.on_message(from, msg, sub));
    }

    canopus_sim::impl_process_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use canopus::CanopusMsg;
    use canopus_kv::{ClientReply, OpResult};
    use canopus_sim::{Dur, Time};

    fn hcfg() -> HistoryConfig {
        HistoryConfig {
            probe_at: Time::ZERO + Dur::secs(3600),
            stop_at: Time::ZERO + Dur::secs(7200),
            ..HistoryConfig::default()
        }
    }

    /// Drives `mux` through one callback under a detached "real" context
    /// and returns the effects it produced.
    fn step(
        mux: &mut ClientMux<CanopusMsg>,
        now: Time,
        seq: &mut u64,
        f: impl FnOnce(&mut ClientMux<CanopusMsg>, &mut Context<'_, CanopusMsg>),
    ) -> Vec<Effect<CanopusMsg>> {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut ctx = Context::detached(now, NodeId(100), &mut rng, seq);
        f(mux, &mut ctx);
        ctx.into_effects().0
    }

    #[test]
    fn sessions_get_disjoint_op_id_spaces() {
        assert_eq!(session_op_base(0), 1 << 48);
        assert_eq!(session_op_base(1), 2 << 48);
        assert_eq!(session_of(session_op_base(0) + 5, 3), Some(0));
        assert_eq!(session_of(session_op_base(2) + 1, 3), Some(2));
        assert_eq!(session_of(session_op_base(3) + 1, 3), None);
        assert_eq!(session_of(17, 3), None); // un-namespaced id: no session
    }

    #[test]
    fn timers_route_back_to_the_arming_session() {
        let mut mux = ClientMux::<CanopusMsg>::new(3, 10, &hcfg(), 1);
        let mut seq = 0;
        let effects = step(&mut mux, Time::ZERO, &mut seq, |m, ctx| m.on_start(ctx));
        // Every session armed its phase timer on the real context.
        let armed: Vec<(TimerId, Dur, u64)> = effects
            .iter()
            .filter_map(|e| match e {
                Effect::SetTimer { id, after, token } => Some((*id, *after, *token)),
                _ => None,
            })
            .collect();
        assert_eq!(armed.len(), 3);
        assert_eq!(mux.fwd.len(), 3);

        // Fire session 1's arming: exactly one session issues its first
        // op, and the request carries that session's virtual id and base.
        let (real, after, token) = armed[1];
        let now = Time::ZERO + after;
        let effects = step(&mut mux, now, &mut seq, |m, ctx| {
            m.on_timer(Timer { id: real, token }, ctx)
        });
        let sent: Vec<&CanopusMsg> = effects
            .iter()
            .filter_map(|e| match e {
                Effect::Send { msg, .. } => Some(msg),
                _ => None,
            })
            .collect();
        assert_eq!(sent.len(), 1, "only the fired session acts");
        assert_eq!(mux.sessions[1].ops().len(), 1);
        assert_eq!(mux.sessions[0].ops().len(), 0);
        assert_eq!(mux.sessions[1].ops()[0].op_id, session_op_base(1) + 1);
        // A stale real id routes nowhere.
        let effects = step(&mut mux, now, &mut seq, |m, ctx| {
            m.on_timer(Timer { id: real, token }, ctx)
        });
        assert!(effects.is_empty());
    }

    #[test]
    fn replies_route_by_op_id_namespace() {
        let mut mux = ClientMux::<CanopusMsg>::new(2, 10, &hcfg(), 1);
        let mut seq = 0;
        let effects = step(&mut mux, Time::ZERO, &mut seq, |m, ctx| m.on_start(ctx));
        // Fire both phase timers so both sessions have an op in flight.
        for e in effects {
            if let Effect::SetTimer { id, after, token } = e {
                let now = Time::ZERO + after;
                step(&mut mux, now, &mut seq, |m, ctx| {
                    m.on_timer(Timer { id, token }, ctx)
                });
            }
        }
        assert_eq!(mux.sessions[0].ops().len(), 1);
        assert_eq!(mux.sessions[1].ops().len(), 1);

        let reply = |op_id| {
            CanopusMsg::Reply(ClientReply {
                op_id,
                weight: 1,
                result: OpResult::Written,
            })
        };
        let now = Time::ZERO + Dur::millis(1);
        // Session 1's reply completes session 1's op only.
        step(&mut mux, now, &mut seq, |m, ctx| {
            m.on_message(NodeId(1), reply(session_op_base(1) + 1), ctx)
        });
        assert!(mux.sessions[1].ops()[0].complete.is_some());
        assert!(mux.sessions[0].ops()[0].complete.is_none());
        // A reply outside any session's namespace is ignored.
        step(&mut mux, now, &mut seq, |m, ctx| {
            m.on_message(NodeId(1), reply(1), ctx)
        });
        assert!(mux.sessions[0].ops()[0].complete.is_none());
    }
}
