//! Live-cluster chaos: the nemesis engine over real TCP sockets.
//!
//! [`LiveCluster`] spawns a protocol deployment on the reactor-backed TCP
//! transport (`canopus_net::tcp`), plus one [`HistoryClient`] per node —
//! all of them multiplexed onto a single extra transport node by a
//! [`ClientMux`] — every loop sharing one [`FaultRules`] table.
//! [`LiveCluster::run_plan`] then replays the *same* [`FaultPlan`]s the
//! simulator suite uses, on the wall clock:
//!
//! * network actions (cuts, isolation, loss) are installed into the
//!   shared [`FaultRules`], which the transport consults on its send and
//!   receive paths — the live analogue of the simulator's
//!   `PartitionableFabric<LossyFabric<_>>`;
//! * `Crash` stops the node's loop (keeping its final process state) and
//!   marks it crashed in the rules so peers drop its traffic;
//! * `Restart` rebuilds a replacement process through the cluster's
//!   per-protocol [`RestartFactory`] — the same policies the simulator
//!   uses (ZAB resyncs as a recovering follower, Raft KV recovers its
//!   durable state, EPaxos re-installs a crash-stop silent node) — and
//!   respawns the loop on the *same* listening socket (kept alive across
//!   the crash via `TcpListener::try_clone`, so no rebind race).
//!
//! After the run, [`LiveCluster::shutdown`] collects every final process
//! and [`LiveOutcome::verdict`] runs the shared chaos verdict: agreement,
//! client FIFO, read validity, and post-heal convergence. The
//! linearizability *timing* check is skipped — live nodes measure time
//! from their own spawn instants, and cross-node clock-base skew makes
//! read/write interval comparisons unsound (see
//! [`crate::history::chaos_verdict_parts`]).
//!
//! # Timing
//!
//! All real-time-sensitive timeouts derive from one value,
//! [`live_time_unit`] (default [`LIVE_TIME_UNIT`], overridable with the
//! `LIVE_TIME_UNIT_MS` environment variable): the simulator's
//! microsecond-scale defaults assume a deterministic scheduler, and on a
//! real OS a descheduled thread would trigger false failovers (PR 1
//! learned this with `examples/live_cluster.rs`; this module centralizes
//! the relaxed values instead of scattering magic numbers).
//!
//! # Canopus crash scenarios
//!
//! Canopus restarts are *not* driven over live sockets yet: the
//! simulator relies on the crashed node being tombstoned before its
//! fresh replacement boots (its failure detector fires in tens of
//! milliseconds of virtual time), while the live failure timeout is
//! deliberately long to avoid false positives — so an amnesiac super-leaf
//! Raft member could rejoin un-tombstoned. Until the rejoin protocol
//! lands (ROADMAP), the live suite exercises Canopus under partitions and
//! loss, and crash/restart under ZAB and Raft KV, whose recovery paths
//! are sound without a failure-detector race.

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};
use std::net::TcpListener;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use canopus::{CanopusConfig, CanopusMsg, CanopusNode, CycleTrigger, EmulationTable, LotShape};
use canopus_net::tcp::{spawn_node_obs, NetObs, PeerMap, TcpNodeHandle};
use canopus_net::{FaultRules, Wire};
use canopus_obs::{EventKind as ObsEvent, NodeObs, Snapshot};
use canopus_raft::RaftConfig;
use canopus_sim::fault::{FaultAction, FaultPlan, NemesisFabric, NemesisSchedule};
use canopus_sim::{Dur, NodeId, Payload, Process, Time};
use canopus_zab::{ZabConfig, ZabMsg, ZabNode};

use crate::cluster::RestartFactory;
use crate::history::{
    chaos_verdict_parts, ChaosProtocol, ChaosReport, ClientHistory, HistoryClient, HistoryConfig,
};
use crate::mux::ClientMux;
use crate::raftkv::{RaftKvConfig, RaftKvMsg, RaftKvNode};
use crate::scenarios::{ChaosTimeline, ChaosTopology};

/// Flight-ring capacity per live node: the tail of a run's consensus
/// events, kept small because each live node is a handful of OS threads.
pub const LIVE_FLIGHT_CAP: usize = 256;

/// Re-attaches a node's observability hub to a freshly built process —
/// needed on restart because the per-protocol restart factories build
/// bare processes. Each live builder supplies the protocol's downcast.
pub type AttachObs<M> = Box<dyn Fn(Box<dyn Process<M>>, NodeObs) -> Box<dyn Process<M>>>;

/// The default real-time "tick" for live clusters. Every live election,
/// failure, and fetch timeout is a multiple of the unit; runs read it via
/// [`live_time_unit`], which allows an environment override.
pub const LIVE_TIME_UNIT: Dur = Dur::millis(50);

/// One real-time "tick" for live clusters: [`LIVE_TIME_UNIT`] unless the
/// `LIVE_TIME_UNIT_MS` environment variable names a positive whole number
/// of milliseconds — the retune knob for slow or oversubscribed CI
/// machines (e.g. `LIVE_TIME_UNIT_MS=100` doubles every live timeout).
/// Read once; the first call pins the unit for the process lifetime so a
/// cluster can never see two different units.
pub fn live_time_unit() -> Dur {
    static UNIT: OnceLock<Dur> = OnceLock::new();
    *UNIT.get_or_init(|| match std::env::var("LIVE_TIME_UNIT_MS") {
        Ok(raw) => match raw.trim().parse::<u64>() {
            Ok(ms) if ms > 0 => Dur::millis(ms),
            _ => {
                eprintln!("ignoring invalid LIVE_TIME_UNIT_MS={raw:?} (want a positive integer)");
                LIVE_TIME_UNIT
            }
        },
        Err(_) => LIVE_TIME_UNIT,
    })
}

/// Raft timing for live sockets: 1-unit heartbeats, 6–12-unit elections
/// (the values PR 1 validated under concurrent stress on loaded hosts).
pub fn live_raft_config() -> RaftConfig {
    let unit = live_time_unit();
    RaftConfig {
        heartbeat_interval: unit,
        election_timeout_min: unit * 6,
        election_timeout_max: unit * 12,
    }
}

/// Canopus configuration for live sockets: self-clocked cycles, 4-unit
/// fetch retries, and a 40-unit (2 s) failure detector so OS scheduling
/// hiccups never look like node failures.
pub fn live_canopus_config() -> CanopusConfig {
    let unit = live_time_unit();
    CanopusConfig {
        trigger: CycleTrigger::OnCommit,
        fetch_timeout: unit * 4,
        failure_timeout: unit * 40,
        tick_interval: unit / 5,
        raft: live_raft_config(),
        record_log: false,
        ..CanopusConfig::default()
    }
}

/// ZAB configuration for live sockets (8-unit election silence).
pub fn live_zab_config(participants: usize) -> ZabConfig {
    let unit = live_time_unit();
    ZabConfig {
        participants,
        heartbeat: unit,
        election_timeout: unit * 8,
        tick_interval: unit / 5,
        ..ZabConfig::default()
    }
}

/// Raft KV configuration for live sockets.
pub fn live_raftkv_config() -> RaftKvConfig {
    let unit = live_time_unit();
    RaftKvConfig {
        raft: live_raft_config(),
        tick_interval: unit / 5,
        ..RaftKvConfig::default()
    }
}

/// The wall-clock chaos schedule matched to the live timeouts: faults at
/// 6 units, heal at 24, convergence probes from 30, clients stop at 40,
/// run ends at 45 (2.25 s per run with the default unit).
pub fn live_timeline() -> ChaosTimeline {
    let unit = live_time_unit();
    ChaosTimeline {
        fault_at: unit * 6,
        heal_at: unit * 24,
        probe_at: unit * 30,
        stop_at: unit * 40,
        run_for: unit * 45,
    }
}

/// The live suite's deployment: two super-leaves of three — the smallest
/// shape where every live protocol tolerates the catalog faults, kept
/// lean because each node is a handful of real OS threads.
pub fn live_topology() -> ChaosTopology {
    ChaosTopology {
        groups: 2,
        per_group: 3,
    }
}

/// History-client parameters matched to [`live_timeline`] — like every
/// other live timeout they derive from [`live_time_unit`], so raising the
/// unit retunes the clients along with the protocols (at the default
/// 50 ms unit: 150 ms op timeout, 6.25 ms gap, 3.125 ms tick — the same
/// scale as the simulator suite's 150/6/3 ms).
pub fn live_history_config() -> HistoryConfig {
    let unit = live_time_unit();
    let t = live_timeline();
    HistoryConfig {
        op_timeout: unit * 3,
        gap: unit / 8,
        tick: unit / 16,
        probe_at: Time::ZERO + t.probe_at,
        stop_at: Time::ZERO + t.stop_at,
        ..HistoryConfig::default()
    }
}

struct LiveSlot<M: Payload> {
    id: NodeId,
    /// Keeps the listening socket alive across crash/restart cycles; the
    /// running loop gets a `try_clone` of it.
    listener: TcpListener,
    handle: Option<TcpNodeHandle<M>>,
}

/// A protocol deployment plus its history clients on loopback TCP, with
/// runtime fault injection.
pub struct LiveCluster<M: ChaosProtocol + Wire + Send> {
    seed: u64,
    start: Instant,
    rules: Arc<FaultRules>,
    peers: PeerMap,
    nodes: Vec<LiveSlot<M>>,
    /// The single transport node hosting every history client (sessions
    /// keep their classic virtual ids `n..2n` inside the [`ClientMux`]).
    mux: LiveSlot<M>,
    /// Final states of currently-crashed nodes (fed to the restart
    /// factory, mirroring `Simulation::take_crashed`).
    down: BTreeMap<NodeId, Box<dyn Process<M>>>,
    ever_crashed: BTreeSet<NodeId>,
    restart_factory: RestartFactory<M>,
    /// One observability hub per protocol node (inert unless spawned via
    /// [`LiveCluster::spawn_obs`]).
    hubs: Vec<NodeObs>,
    attach: Option<AttachObs<M>>,
}

impl<M: ChaosProtocol + Wire + Send> LiveCluster<M> {
    /// Binds `n` protocol nodes plus one client-mux node on loopback
    /// ephemeral ports and spawns every loop. `make_node(id)` builds the
    /// protocol processes; the mux hosts `n` [`HistoryClient`] sessions
    /// (virtual ids `n..2n`, each targeting its co-indexed node) behind a
    /// single listener — the peer map points every virtual client id at
    /// that listener, so replies multiplex over one connection per node.
    pub fn spawn(
        n: usize,
        hcfg: &HistoryConfig,
        seed: u64,
        make_node: impl FnMut(NodeId) -> Box<dyn Process<M>>,
        restart_factory: RestartFactory<M>,
    ) -> Self {
        Self::spawn_obs(n, hcfg, seed, make_node, restart_factory, None)
    }

    /// [`LiveCluster::spawn`] with observability: when `attach` is given,
    /// every protocol node gets an enabled hub ([`LIVE_FLIGHT_CAP`]-event
    /// flight ring + registry) wired into both its process (via `attach`)
    /// and its transport (per-peer traffic, flush sizes, queue depth).
    pub fn spawn_obs(
        n: usize,
        hcfg: &HistoryConfig,
        seed: u64,
        mut make_node: impl FnMut(NodeId) -> Box<dyn Process<M>>,
        restart_factory: RestartFactory<M>,
        attach: Option<AttachObs<M>>,
    ) -> Self {
        let hubs: Vec<NodeObs> = (0..n as u32)
            .map(|i| {
                if attach.is_some() {
                    NodeObs::enabled(i, LIVE_FLIGHT_CAP)
                } else {
                    NodeObs::disabled()
                }
            })
            .collect();
        let rules = Arc::new(FaultRules::new(seed));
        let mut peers = PeerMap::new();
        let bind = |id: NodeId, peers: &mut PeerMap| {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
            peers.insert(id, listener.local_addr().expect("local addr"));
            listener
        };
        let node_listeners: Vec<TcpListener> =
            (0..n).map(|i| bind(NodeId(i as u32), &mut peers)).collect();
        // One listener carries every client session: all virtual client
        // ids map to the mux's address, so each protocol node keeps a
        // single connection to the whole client population.
        let mux_id = NodeId(n as u32);
        let mux_listener = bind(mux_id, &mut peers);
        let mux_addr = peers.get(mux_id).expect("mux addr");
        for i in 1..n {
            peers.insert(NodeId((n + i) as u32), mux_addr);
        }

        let mut cluster = LiveCluster {
            seed,
            start: Instant::now(),
            rules,
            peers,
            nodes: Vec::with_capacity(n),
            mux: LiveSlot {
                id: mux_id,
                listener: mux_listener,
                handle: None,
            },
            down: BTreeMap::new(),
            ever_crashed: BTreeSet::new(),
            restart_factory,
            hubs,
            attach,
        };
        for (i, listener) in node_listeners.into_iter().enumerate() {
            let id = NodeId(i as u32);
            let process = cluster.attach_obs(id, make_node(id));
            let handle = cluster.launch(id, &listener, process);
            cluster.nodes.push(LiveSlot {
                id,
                listener,
                handle: Some(handle),
            });
        }
        let mux = ClientMux::<M>::new(n, n as u32, hcfg, seed);
        let handle = cluster.launch(mux_id, &cluster.mux.listener, Box::new(mux));
        cluster.mux.handle = Some(handle);
        cluster
    }

    /// Runs a fresh process through the obs attach hook, when both exist.
    fn attach_obs(&self, id: NodeId, process: Box<dyn Process<M>>) -> Box<dyn Process<M>> {
        match (&self.attach, self.hubs.get(id.0 as usize)) {
            (Some(attach), Some(hub)) if hub.is_enabled() => attach(process, hub.clone()),
            _ => process,
        }
    }

    fn launch(
        &self,
        id: NodeId,
        listener: &TcpListener,
        process: Box<dyn Process<M>>,
    ) -> TcpNodeHandle<M> {
        let listener = listener.try_clone().expect("clone listener");
        let net_obs = self
            .hubs
            .get(id.0 as usize)
            .filter(|hub| hub.is_enabled())
            .map(|hub| NetObs::new(hub.clone()))
            .unwrap_or_default();
        spawn_node_obs(
            id,
            process,
            listener,
            self.peers.clone(),
            self.seed.wrapping_add(id.0 as u64),
            Arc::clone(&self.rules),
            net_obs,
        )
    }

    /// Wall-clock time since the cluster started, as a [`Time`].
    pub fn now(&self) -> Time {
        Time::from_nanos(self.start.elapsed().as_nanos() as u64)
    }

    /// The shared fault table (e.g. for ad-hoc faults outside a plan).
    pub fn rules(&self) -> &Arc<FaultRules> {
        &self.rules
    }

    /// Protocol node ids.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.iter().map(|s| s.id).collect()
    }

    /// Per-node observability hubs (inert unless spawned with obs).
    pub fn obs_hubs(&self) -> &[NodeObs] {
        &self.hubs
    }

    /// Every node's metrics registry, snapshotted: `(node id, snapshot)`.
    pub fn metrics_snapshots(&self) -> Vec<(NodeId, Snapshot)> {
        self.hubs
            .iter()
            .enumerate()
            .map(|(i, hub)| (NodeId(i as u32), hub.metrics.snapshot()))
            .collect()
    }

    /// Every node's flight recorder, dumped (`last` events each) into one
    /// string — the panic artifact chaos failures attach.
    pub fn flight_dump(&self, last: usize) -> String {
        let mut out = String::new();
        for hub in &self.hubs {
            out.push_str(&hub.flight.dump_last(last));
        }
        out
    }

    /// Replays `plan` against the live cluster over the next `horizon` of
    /// wall-clock time, sleeping between actions and applying each at its
    /// scheduled instant (±OS scheduling). Returns the applied timeline.
    pub fn run_plan(&mut self, plan: &FaultPlan, horizon: Dur) -> Vec<(Time, FaultAction)> {
        let anchor = self.now();
        let end = anchor + horizon;
        let mut sched = NemesisSchedule::new(plan, anchor, horizon);
        loop {
            let target = match sched.next_at() {
                Some(at) if at <= end => at,
                _ => break,
            };
            self.sleep_until(target);
            while let Some((at, action)) = sched.pop_due(self.now()) {
                self.apply(at, action, &mut sched);
            }
        }
        self.sleep_until(end);
        sched.applied().to_vec()
    }

    fn sleep_until(&self, at: Time) {
        let now = self.now();
        if at > now {
            std::thread::sleep(std::time::Duration::from_nanos(
                at.saturating_since(now).as_nanos(),
            ));
        }
    }

    fn apply(&mut self, at: Time, action: FaultAction, sched: &mut NemesisSchedule) {
        match &action {
            FaultAction::Cut(a, b) => self.nemesis_cut_groups(a, b),
            FaultAction::Heal(a, b) => self.nemesis_heal_groups(a, b),
            FaultAction::HealAll => self.nemesis_heal_all(),
            FaultAction::SetLoss(p) => self.nemesis_set_loss(*p),
            FaultAction::SetNodeOutLoss(n, p) => self.nemesis_set_node_out_loss(*n, *p),
            FaultAction::Isolate(n) => self.nemesis_isolate(*n),
            FaultAction::Crash(n) => {
                if self.crash(*n) {
                    self.ever_crashed.insert(*n);
                }
            }
            FaultAction::Restart(n) => self.restart(*n),
        }
        sched.record(at, action);
    }

    /// Crash-stops a live node: peers start dropping its traffic, then its
    /// loop is stopped and its final state kept for the restart factory.
    /// Returns `false` if the node was already down.
    fn crash(&mut self, id: NodeId) -> bool {
        let slot = &mut self.nodes[id.0 as usize];
        let Some(handle) = slot.handle.take() else {
            return false;
        };
        // Mark first so in-flight traffic is dropped while the loop winds
        // down — the closest live analogue of an instantaneous crash.
        self.rules.set_crashed(id, true);
        if let Some(hub) = self.hubs.get(id.0 as usize) {
            hub.event(self.now().as_nanos(), ObsEvent::Crash);
        }
        let process = handle.stop();
        self.down.insert(id, process);
        true
    }

    /// Restarts a crashed node through the restart factory, on the same
    /// listening socket. No-op if the node is up.
    fn restart(&mut self, id: NodeId) {
        if self.nodes[id.0 as usize].handle.is_some() {
            return;
        }
        let old = self.down.remove(&id);
        let process = (self.restart_factory)(id, old);
        let process = self.attach_obs(id, process);
        if let Some(hub) = self.hubs.get(id.0 as usize) {
            hub.event(self.now().as_nanos(), ObsEvent::Restart);
        }
        let listener = self.nodes[id.0 as usize]
            .listener
            .try_clone()
            .expect("clone listener");
        // Clear the crash mark before the replacement loop starts, or its
        // first sends and receives race the still-set mark and get
        // dropped (the mirror of crash()'s mark-before-stop ordering).
        self.rules.set_crashed(id, false);
        let handle = self.launch(id, &listener, process);
        self.nodes[id.0 as usize].handle = Some(handle);
    }

    /// Stops every loop (the client mux first, so no new operations race
    /// the teardown) and returns the final processes for the verdict. The
    /// mux is unpacked into its sessions, so the outcome keeps its
    /// one-entry-per-client shape.
    pub fn shutdown(mut self) -> LiveOutcome<M> {
        let n = self.nodes.len();
        let handle = self.mux.handle.take().expect("mux is never crashed");
        let mux = handle
            .stop()
            .into_any()
            .downcast::<ClientMux<M>>()
            .expect("client mux");
        let clients: Vec<(NodeId, NodeId, Box<dyn Process<M>>)> = mux
            .into_sessions()
            .into_iter()
            .enumerate()
            .map(|(i, session)| {
                (
                    NodeId((n + i) as u32),
                    NodeId(i as u32),
                    Box::new(session) as Box<dyn Process<M>>,
                )
            })
            .collect();
        let mut nodes = Vec::with_capacity(self.nodes.len());
        for slot in &mut self.nodes {
            match slot.handle.take() {
                Some(handle) => nodes.push((slot.id, handle.stop(), true)),
                None => {
                    let process = self
                        .down
                        .remove(&slot.id)
                        .expect("crashed node state retained");
                    nodes.push((slot.id, process, false));
                }
            }
        }
        LiveOutcome {
            nodes,
            clients,
            ever_crashed: self.ever_crashed,
            hubs: self.hubs,
        }
    }
}

/// Network fault actions map straight onto the shared [`FaultRules`]
/// table — the live counterpart of the simulator fabric's implementation.
impl<M: ChaosProtocol + Wire + Send> NemesisFabric for LiveCluster<M> {
    fn nemesis_cut_groups(&mut self, a: &[NodeId], b: &[NodeId]) {
        self.rules.cut_groups(a, b);
    }
    fn nemesis_heal_groups(&mut self, a: &[NodeId], b: &[NodeId]) {
        self.rules.heal_groups(a, b);
    }
    fn nemesis_heal_all(&mut self) {
        self.rules.heal_all();
    }
    fn nemesis_set_loss(&mut self, loss: f64) {
        self.rules.set_loss(loss);
    }
    fn nemesis_set_node_out_loss(&mut self, node: NodeId, loss: f64) {
        self.rules.set_out_loss(node, loss);
    }
    fn nemesis_isolate(&mut self, node: NodeId) {
        self.rules.isolate(node);
    }
}

/// The final state of a live run: every node's and client's process,
/// ready for the chaos verdict.
pub struct LiveOutcome<M: ChaosProtocol> {
    /// `(id, final process, was up at shutdown)` for every protocol node.
    pub nodes: Vec<(NodeId, Box<dyn Process<M>>, bool)>,
    /// `(client id, its node, final process)` for every client.
    pub clients: Vec<(NodeId, NodeId, Box<dyn Process<M>>)>,
    /// Nodes the nemesis crashed at least once.
    pub ever_crashed: BTreeSet<NodeId>,
    /// Per-node observability hubs, retained across shutdown so a failing
    /// verdict can still dump flight recorders and collect metrics.
    pub hubs: Vec<NodeObs>,
}

impl<M: ChaosProtocol> LiveOutcome<M> {
    /// Every node's flight recorder, dumped (`last` events each) into one
    /// string — the panic artifact chaos failures attach.
    pub fn flight_dump(&self, last: usize) -> String {
        let mut out = String::new();
        for hub in &self.hubs {
            out.push_str(&hub.flight.dump_last(last));
        }
        out
    }

    /// Every node's metrics registry, snapshotted: `(node id, snapshot)`.
    pub fn metrics_snapshots(&self) -> Vec<(NodeId, Snapshot)> {
        self.hubs
            .iter()
            .enumerate()
            .map(|(i, hub)| (NodeId(i as u32), hub.metrics.snapshot()))
            .collect()
    }

    /// Nodes held to the full safety and convergence bar: up at shutdown
    /// and never crashed.
    pub fn trusted_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|(id, _, up)| *up && !self.ever_crashed.contains(id))
            .map(|&(id, _, _)| id)
            .collect()
    }

    /// A client's recorded history.
    pub fn client_ops(&self, client: NodeId) -> &[crate::history::HistoryOp] {
        let (_, _, p) = self
            .clients
            .iter()
            .find(|(id, _, _)| *id == client)
            .expect("known client");
        p.as_any()
            .downcast_ref::<HistoryClient<M>>()
            .expect("history client")
            .ops()
    }

    /// Runs the shared chaos verdict over the recovered states: agreement
    /// (global + per-key), client FIFO, read validity, and post-heal
    /// convergence. Linearizability timing is skipped (no common clock
    /// across live nodes).
    pub fn verdict(
        &self,
        converge_after: Time,
        convergence_exempt: &BTreeSet<NodeId>,
    ) -> ChaosReport {
        let trusted_ids = self.trusted_nodes();
        let trusted: Vec<(NodeId, &dyn Any)> = self
            .nodes
            .iter()
            .filter(|(id, _, _)| trusted_ids.contains(id))
            .map(|(id, p, _)| (*id, p.as_any()))
            .collect();
        let clients: Vec<ClientHistory<'_>> = self
            .clients
            .iter()
            .filter(|(_, node, _)| trusted_ids.contains(node))
            .map(|(client, node, p)| ClientHistory {
                node: *node,
                client: *client,
                ops: p
                    .as_any()
                    .downcast_ref::<HistoryClient<M>>()
                    .expect("history client")
                    .ops(),
            })
            .collect();
        chaos_verdict_parts::<M>(
            &trusted,
            &clients,
            converge_after,
            convergence_exempt,
            false,
        )
    }
}

// ---------------------------------------------------------------------
// Per-protocol live builders
// ---------------------------------------------------------------------

/// A live Canopus cluster (commit-log recording on, for the verdict).
pub fn live_chaos_canopus(
    topo: &ChaosTopology,
    hcfg: &HistoryConfig,
    seed: u64,
) -> LiveCluster<CanopusMsg> {
    let cfg = CanopusConfig {
        record_log: true,
        ..live_canopus_config()
    };
    live_chaos_canopus_with(topo, hcfg, seed, cfg)
}

/// [`live_chaos_canopus`] with the throughput knobs engaged: an
/// eighth-unit batching window (the same scale as the clients' issue gap,
/// so windows really do aggregate concurrent clients) and `depth` cycles
/// in flight, over real sockets. The live chaos suite runs partition
/// scenarios against this builder to show batching and pipelining leave
/// the verdict unchanged outside the simulator too.
pub fn live_chaos_canopus_batched(
    topo: &ChaosTopology,
    hcfg: &HistoryConfig,
    seed: u64,
    depth: u64,
) -> LiveCluster<CanopusMsg> {
    let cfg = CanopusConfig {
        record_log: true,
        max_linger: live_time_unit() / 8,
        max_pipeline_depth: depth.max(1),
        ..live_canopus_config()
    };
    live_chaos_canopus_with(topo, hcfg, seed, cfg)
}

fn live_chaos_canopus_with(
    topo: &ChaosTopology,
    hcfg: &HistoryConfig,
    seed: u64,
    cfg: CanopusConfig,
) -> LiveCluster<CanopusMsg> {
    let shape = LotShape::flat(topo.groups as u16);
    let membership: Vec<Vec<NodeId>> = (0..topo.groups).map(|g| topo.leaf(g)).collect();
    let table = EmulationTable::new(shape, membership);
    let restart_table = table.clone();
    let restart_cfg = cfg.clone();
    LiveCluster::spawn_obs(
        topo.node_count(),
        hcfg,
        seed,
        |id| Box::new(CanopusNode::new(id, table.clone(), cfg.clone(), seed)),
        Box::new(move |id, _old| {
            Box::new(CanopusNode::new(
                id,
                restart_table.clone(),
                restart_cfg.clone(),
                seed,
            ))
        }),
        Some(Box::new(|p, hub| {
            let node = p
                .into_any()
                .downcast::<CanopusNode>()
                .expect("canopus node");
            Box::new(node.with_obs(hub))
        })),
    )
}

/// A live ZAB cluster (≤ 5 quorum participants, the rest observers); a
/// restarted node boots as a recovering follower and resyncs its history.
pub fn live_chaos_zab(
    topo: &ChaosTopology,
    hcfg: &HistoryConfig,
    seed: u64,
) -> LiveCluster<ZabMsg> {
    let n = topo.node_count();
    let cfg = live_zab_config(n.min(5));
    let ensemble: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    let restart_ensemble = ensemble.clone();
    let restart_cfg = cfg.clone();
    LiveCluster::spawn_obs(
        n,
        hcfg,
        seed,
        |id| Box::new(ZabNode::new(id, ensemble.clone(), cfg.clone())),
        Box::new(move |id, _old| {
            Box::new(ZabNode::recovering(
                id,
                restart_ensemble.clone(),
                restart_cfg.clone(),
            ))
        }),
        Some(Box::new(|p, hub| {
            let node = p.into_any().downcast::<ZabNode>().expect("zab node");
            Box::new(node.with_obs(hub))
        })),
    )
}

/// A live Raft KV cluster; a restarted node recovers its durable Raft
/// state (term, vote, log) from the crashed process.
pub fn live_chaos_raftkv(
    topo: &ChaosTopology,
    hcfg: &HistoryConfig,
    seed: u64,
) -> LiveCluster<RaftKvMsg> {
    let n = topo.node_count();
    let cfg = live_raftkv_config();
    let members: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    let restart_members = members.clone();
    let restart_cfg = cfg.clone();
    LiveCluster::spawn_obs(
        n,
        hcfg,
        seed,
        |id| Box::new(RaftKvNode::new(id, members.clone(), cfg.clone(), seed)),
        Box::new(move |id, old| {
            let recovered = old.and_then(|p| p.into_any().downcast::<RaftKvNode>().ok());
            match recovered {
                Some(node) => Box::new(RaftKvNode::recover(&node, seed)),
                None => Box::new(RaftKvNode::new(
                    id,
                    restart_members.clone(),
                    restart_cfg.clone(),
                    seed,
                )),
            }
        }),
        Some(Box::new(|p, hub| {
            let node = p.into_any().downcast::<RaftKvNode>().expect("raft kv node");
            Box::new(node.with_obs(hub))
        })),
    )
}
