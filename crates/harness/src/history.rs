//! Client-visible operation histories and the chaos verdict.
//!
//! [`HistoryClient`] is a deterministic closed-loop client that records
//! the full invoke/ok/timeout history of every operation it issues —
//! writes carry a globally unique 12-byte tag (client id + op id) so a
//! read's observed value maps back to exactly one write. After a run,
//! [`chaos_verdict`] replays those histories against the replicas'
//! committed state and checks the paper's §6 properties mechanically:
//!
//! * **agreement** ([`check_agreement`]) over each protocol's global
//!   and/or per-key committed orders,
//! * **client FIFO** ([`check_client_fifo`]) over cleanly completed
//!   replies,
//! * **linearizability** ([`LinChecker`]) of reads, for the protocols
//!   whose read path promises it (Canopus, EPaxos, Raft KV — the
//!   ZooKeeper model serves reads locally and only promises sequential
//!   consistency, so its reads are exempt by construction),
//! * **convergence**: after the nemesis heals the network, every client
//!   of a trusted node must complete fresh writes again.
//!
//! Soundness of the linearizability feed: version `v` of a key is the
//! `v`-th write in the (prefix-agreed) committed order, and its
//! "commit time" is the *earliest* time any trusted replica applied it —
//! a lower bound on visibility, which can never flag a legal read as
//! from-the-future, and any read a trusted replica serves is ordered at
//! or after its own apply point, so staleness flags are genuine.

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};

use bytes::Bytes;
use canopus::{CanopusMsg, CanopusNode, CommittedOp, ShardEngine, ShardMsg};
use canopus_epaxos::{EpaxosMsg, EpaxosNode};
use canopus_kv::{
    check_agreement, check_client_fifo, ClientRequest, Key, LinChecker, Op, OpResult, ReadObs,
    ReplyEvent, ShardRouter, WriteObs,
};
use canopus_sim::{impl_process_any, Context, Dur, NodeId, Process, Time, Timer};
use canopus_workload::ProtocolMsg;
use canopus_zab::{ZabMsg, ZabNode};

use crate::cluster::Cluster;
use crate::raftkv::{RaftKvMsg, RaftKvNode};

const TICK: u64 = 1;

/// Keys below this base belong to the steady-state workload; probe-phase
/// keys start here so they are guaranteed fresh (no wedged dependencies
/// from the fault window can block them).
const PROBE_KEY_BASE: Key = 1 << 32;

/// Encodes the globally unique write tag carried as a value.
pub fn encode_tag(client: NodeId, op_id: u64) -> Bytes {
    let mut v = Vec::with_capacity(12);
    v.extend_from_slice(&client.0.to_le_bytes());
    v.extend_from_slice(&op_id.to_le_bytes());
    Bytes::from(v)
}

/// Decodes a write tag back to `(client, op_id)`.
pub fn decode_tag(value: &[u8]) -> Option<(NodeId, u64)> {
    if value.len() != 12 {
        return None;
    }
    let client = u32::from_le_bytes(value[0..4].try_into().ok()?);
    let op_id = u64::from_le_bytes(value[4..12].try_into().ok()?);
    Some((NodeId(client), op_id))
}

/// History client parameters.
#[derive(Clone, Debug)]
pub struct HistoryConfig {
    /// Give up on an operation after this long (the op stays in the
    /// history as a timeout; a later reply is recorded as late).
    pub op_timeout: Dur,
    /// Pause between an operation completing and the next one.
    pub gap: Dur,
    /// Timeout-check cadence.
    pub tick: Dur,
    /// Distinct steady-state keys owned by each client.
    pub keys_per_client: u64,
    /// From this instant, operations move to fresh probe keys (the
    /// convergence phase after the nemesis heals).
    pub probe_at: Time,
    /// Stop issuing operations at this instant (quiesce before verdict).
    pub stop_at: Time,
    /// Offset added to every op id this client assigns (ids are
    /// `base+1, base+2, ...`). Zero — the default — preserves the classic
    /// dense 1-based ids. A client multiplexer ([`crate::mux::ClientMux`])
    /// gives each hosted session a disjoint base so replies arriving on
    /// the shared transport can be routed back by op id alone.
    pub op_id_base: u64,
    /// Issue every `n`-th write as an [`Op::MultiPut`] spanning the
    /// client's steady-state keys (0 — the default — never does). Against
    /// a sharded deployment this exercises the cross-shard anchor
    /// protocol; the sharded verdict then checks all-or-nothing presence
    /// of every transaction's parts across per-shard logs.
    pub multi_put_every: u64,
    /// When set to `(shard, shards)`, every steady-state and probe key is
    /// remapped to the nearest key the [`ShardRouter`] assigns to that
    /// shard — the hot-shard skew harness, concentrating the entire
    /// client population on one LOT pipeline.
    pub hot_shard: Option<(u16, u16)>,
}

impl Default for HistoryConfig {
    fn default() -> Self {
        HistoryConfig {
            op_timeout: Dur::millis(150),
            gap: Dur::millis(6),
            tick: Dur::millis(3),
            keys_per_client: 2,
            probe_at: Time::ZERO + Dur::millis(1100),
            stop_at: Time::ZERO + Dur::millis(1800),
            op_id_base: 0,
            multi_put_every: 0,
            hot_shard: None,
        }
    }
}

/// One recorded operation.
#[derive(Clone, Debug)]
pub struct HistoryOp {
    /// Client-assigned id (dense from `op_id_base + 1`; 1-based with the
    /// default base of zero).
    pub op_id: u64,
    /// Key operated on.
    pub key: Key,
    /// Whether this is a write.
    pub is_write: bool,
    /// Invocation time.
    pub invoke: Time,
    /// First reply, whenever it arrived (possibly after the timeout).
    pub complete: Option<(Time, OpResult)>,
    /// Client-local arrival sequence of that reply — preserves the real
    /// delivery order even when two replies land at the same virtual
    /// instant (the FIFO check orders by this, not by timestamp).
    pub complete_seq: Option<u64>,
    /// Set when the client gave up before any reply.
    pub timed_out_at: Option<Time>,
}

impl HistoryOp {
    /// Completed before the client's timeout — the ops the verdict checks.
    pub fn clean(&self) -> bool {
        self.complete.is_some() && self.timed_out_at.is_none()
    }
}

/// Deterministic closed-loop client recording a full op history.
pub struct HistoryClient<M: ProtocolMsg> {
    cfg: HistoryConfig,
    target: NodeId,
    index: usize,
    total: usize,
    counter: u64,
    replies_seen: u64,
    ops: Vec<HistoryOp>,
    outstanding: Option<usize>,
    next_issue: Time,
    _marker: std::marker::PhantomData<fn() -> M>,
}

impl<M: ProtocolMsg> HistoryClient<M> {
    /// Creates the client with index `index` of `total`, bound to `target`.
    pub fn new(index: usize, total: usize, target: NodeId, cfg: HistoryConfig) -> Self {
        HistoryClient {
            cfg,
            target,
            index,
            total,
            counter: 0,
            replies_seen: 0,
            ops: Vec::new(),
            outstanding: None,
            next_issue: Time::ZERO,
            _marker: std::marker::PhantomData,
        }
    }

    /// The recorded history.
    pub fn ops(&self) -> &[HistoryOp] {
        &self.ops
    }

    /// Remaps `key` onto the configured hot shard: each base key owns a
    /// disjoint window of 256 candidates, and the first candidate the
    /// router assigns to the hot shard wins. Deterministic, and distinct
    /// base keys collide only with vanishing probability (a miss needs
    /// 256 consecutive hash misses); the verdict is collision-safe
    /// anyway — shared keys just share a per-key order.
    fn pin_hot(&self, key: Key) -> Key {
        let Some((shard, shards)) = self.cfg.hot_shard else {
            return key;
        };
        let router = ShardRouter::new(shards);
        let base = key * 256;
        (base..base + 256)
            .find(|&k| router.shard_of_key(k) == shard)
            .unwrap_or(base)
    }

    fn own_key(&self, j: u64) -> Key {
        self.pin_hot(1 + self.index as u64 * self.cfg.keys_per_client + j)
    }

    fn peer_key(&self, j: u64) -> Key {
        let peer = (self.index + 1) % self.total;
        self.pin_hot(1 + peer as u64 * self.cfg.keys_per_client + j)
    }

    fn probe_key(&self, j: u64) -> Key {
        self.pin_hot(PROBE_KEY_BASE + self.index as u64 * self.cfg.keys_per_client + j)
    }

    fn issue(&mut self, ctx: &mut Context<'_, M>) {
        let c = self.counter;
        self.counter += 1;
        let op_id = self.cfg.op_id_base + c + 1;
        let j = c % self.cfg.keys_per_client;
        let probing = ctx.now() >= self.cfg.probe_at;
        let (key, is_write) = if probing {
            // Alternate write/read *pairs on the same probe key*: op c
            // (even) writes probe_key((c/2) % K), op c+1 reads it back —
            // the post-heal reads must exercise freshly written keys or
            // the probe-phase linearizability check is vacuous.
            (
                self.probe_key((c / 2) % self.cfg.keys_per_client),
                c.is_multiple_of(2),
            )
        } else {
            match c % 3 {
                0 | 1 => (self.own_key(j), true),
                _ => {
                    // Alternate between re-reading an own key and reading a
                    // peer's key (cross-client reads are where
                    // linearizability checking has teeth).
                    let key = if (c / 3).is_multiple_of(2) {
                        self.own_key(j)
                    } else {
                        self.peer_key(j)
                    };
                    (key, false)
                }
            }
        };
        // Every n-th steady-state write becomes a multi-key transaction
        // over all of this client's own keys (same tag on every key, so
        // reads of any key map back to this op).
        let multi = is_write
            && !probing
            && self.cfg.multi_put_every > 0
            && c.is_multiple_of(self.cfg.multi_put_every)
            && self.cfg.keys_per_client > 1;
        let op = if multi {
            let value = encode_tag(ctx.id(), op_id);
            Op::MultiPut {
                puts: (0..self.cfg.keys_per_client)
                    .map(|j| (self.own_key(j), value.clone()))
                    .collect(),
            }
        } else if is_write {
            Op::Put {
                key,
                value: encode_tag(ctx.id(), op_id),
            }
        } else {
            Op::Get { key }
        };
        self.ops.push(HistoryOp {
            op_id,
            key,
            is_write,
            invoke: ctx.now(),
            complete: None,
            complete_seq: None,
            timed_out_at: None,
        });
        self.outstanding = Some(self.ops.len() - 1);
        ctx.send(
            self.target,
            M::request(ClientRequest {
                client: ctx.id(),
                op_id,
                op,
            }),
        );
    }
}

impl<M: ProtocolMsg + 'static> Process<M> for HistoryClient<M> {
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        // Stagger client phases deterministically by index.
        let phase = Dur::micros(173 * self.index as u64 + 211);
        self.next_issue = ctx.now() + phase;
        ctx.set_timer(phase, TICK);
    }

    fn on_timer(&mut self, _t: Timer, ctx: &mut Context<'_, M>) {
        let now = ctx.now();
        if let Some(i) = self.outstanding {
            if self.ops[i].invoke + self.cfg.op_timeout <= now {
                self.ops[i].timed_out_at = Some(now);
                self.outstanding = None;
                self.next_issue = now + self.cfg.gap;
            }
        }
        if now < self.cfg.stop_at {
            if self.outstanding.is_none() && now >= self.next_issue {
                self.issue(ctx);
            }
            ctx.set_timer(self.cfg.tick, TICK);
        } else if self.outstanding.is_some() {
            // One more pass so a hanging final op gets its timeout mark.
            ctx.set_timer(self.cfg.op_timeout, TICK);
        }
    }

    fn on_message(&mut self, _from: NodeId, msg: M, ctx: &mut Context<'_, M>) {
        let Some(reply) = msg.reply() else { return };
        let Some(idx) = reply
            .op_id
            .checked_sub(self.cfg.op_id_base + 1)
            .map(|i| i as usize)
        else {
            return;
        };
        let Some(op) = self.ops.get_mut(idx) else {
            return;
        };
        if op.complete.is_none() {
            op.complete = Some((ctx.now(), reply.result.clone()));
            op.complete_seq = Some(self.replies_seen);
            self.replies_seen += 1;
        }
        if self.outstanding == Some(idx) {
            self.outstanding = None;
            self.next_issue = ctx.now() + self.cfg.gap;
        }
    }

    impl_process_any!();
}

// ---------------------------------------------------------------------
// Protocol state extraction
// ---------------------------------------------------------------------

/// Per-replica committed-state extraction the verdict needs, implemented
/// for all four protocols.
///
/// Extraction takes the replica's process as `&dyn Any` so the same
/// verdict runs over a [`Cluster`]'s simulated nodes *and* over the final
/// processes recovered from a live TCP cluster ([`crate::live`]).
pub trait ChaosProtocol: ProtocolMsg + Sized + 'static {
    /// Short protocol name for reports.
    const NAME: &'static str;
    /// Whether the protocol's read path promises linearizability (the
    /// ZooKeeper model only promises sequential consistency).
    const LINEARIZABLE_READS: bool;

    /// Per-key committed write order at a replica, as
    /// `(client, op_id, local apply/commit time)`.
    fn write_records(process: &dyn Any) -> BTreeMap<Key, Vec<(NodeId, u64, Time)>>;

    /// The full committed order at a replica as `(client, op_id)` pairs,
    /// for protocols with a total order (`None` where only per-key order
    /// is defined, i.e. EPaxos).
    fn global_log(process: &dyn Any) -> Option<Vec<(NodeId, u64)>>;
}

/// Folds one Canopus node's committed log into per-key write records
/// (shared by the plain and sharded extractions — a sharded engine merges
/// this across every hosted LOT instance).
fn canopus_write_records_into(n: &CanopusNode, out: &mut BTreeMap<Key, Vec<(NodeId, u64, Time)>>) {
    for cc in n.committed_log() {
        for set in &cc.sets {
            for op in &set.ops {
                match op {
                    CommittedOp::Put {
                        client, op_id, key, ..
                    } => {
                        out.entry(*key).or_default().push((*client, *op_id, cc.at));
                    }
                    CommittedOp::MultiPut {
                        client,
                        op_id,
                        keys,
                    } => {
                        for key in keys {
                            out.entry(*key).or_default().push((*client, *op_id, cc.at));
                        }
                    }
                    CommittedOp::Synthetic { .. } => {}
                }
            }
        }
    }
}

/// One Canopus node's total committed order as `(client, op_id)` pairs.
fn canopus_global_log(n: &CanopusNode) -> Vec<(NodeId, u64)> {
    n.committed_log()
        .iter()
        .flat_map(|cc| {
            cc.sets.iter().flat_map(|s| {
                s.ops.iter().map(|op| match *op {
                    CommittedOp::Put { client, op_id, .. }
                    | CommittedOp::Synthetic { client, op_id, .. }
                    | CommittedOp::MultiPut { client, op_id, .. } => (client, op_id),
                })
            })
        })
        .collect()
}

impl ChaosProtocol for CanopusMsg {
    const NAME: &'static str = "canopus";
    const LINEARIZABLE_READS: bool = true;

    fn write_records(process: &dyn Any) -> BTreeMap<Key, Vec<(NodeId, u64, Time)>> {
        let mut out = BTreeMap::new();
        canopus_write_records_into(
            process.downcast_ref::<CanopusNode>().expect("canopus node"),
            &mut out,
        );
        out
    }

    fn global_log(process: &dyn Any) -> Option<Vec<(NodeId, u64)>> {
        let n = process.downcast_ref::<CanopusNode>().expect("canopus node");
        Some(canopus_global_log(n))
    }
}

impl ChaosProtocol for ShardMsg {
    const NAME: &'static str = "canopus_sharded";
    const LINEARIZABLE_READS: bool = true;

    /// Per-key records merged across every hosted shard: keys are
    /// disjoint across shards (the router is a pure function of the key),
    /// so the merge never interleaves two shards' orders on one key.
    fn write_records(process: &dyn Any) -> BTreeMap<Key, Vec<(NodeId, u64, Time)>> {
        let e = process.downcast_ref::<ShardEngine>().expect("shard engine");
        let mut out = BTreeMap::new();
        for s in 0..e.shard_count() {
            canopus_write_records_into(e.shard(s), &mut out);
        }
        out
    }

    /// No cross-shard total order is promised — each shard totally orders
    /// its own traffic; the sharded extras check per-shard agreement.
    fn global_log(_process: &dyn Any) -> Option<Vec<(NodeId, u64)>> {
        None
    }
}

impl ChaosProtocol for EpaxosMsg {
    const NAME: &'static str = "epaxos";
    const LINEARIZABLE_READS: bool = true;

    fn write_records(process: &dyn Any) -> BTreeMap<Key, Vec<(NodeId, u64, Time)>> {
        process
            .downcast_ref::<EpaxosNode>()
            .expect("epaxos node")
            .write_log_timed()
            .clone()
    }

    fn global_log(_process: &dyn Any) -> Option<Vec<(NodeId, u64)>> {
        None // EPaxos only orders interfering commands; per-key order is the contract.
    }
}

impl ChaosProtocol for ZabMsg {
    const NAME: &'static str = "zab";
    const LINEARIZABLE_READS: bool = false; // local reads: sequential consistency.

    fn write_records(process: &dyn Any) -> BTreeMap<Key, Vec<(NodeId, u64, Time)>> {
        let mut out: BTreeMap<Key, Vec<(NodeId, u64, Time)>> = BTreeMap::new();
        let n = process.downcast_ref::<ZabNode>().expect("zab node");
        for (key, client, op_id) in n.applied_ops() {
            if let Some(key) = key {
                out.entry(key)
                    .or_default()
                    .push((client, op_id, Time::ZERO));
            }
        }
        out
    }

    fn global_log(process: &dyn Any) -> Option<Vec<(NodeId, u64)>> {
        Some(
            process
                .downcast_ref::<ZabNode>()
                .expect("zab node")
                .applied_log(),
        )
    }
}

impl ChaosProtocol for RaftKvMsg {
    const NAME: &'static str = "raftkv";
    const LINEARIZABLE_READS: bool = true;

    fn write_records(process: &dyn Any) -> BTreeMap<Key, Vec<(NodeId, u64, Time)>> {
        process
            .downcast_ref::<RaftKvNode>()
            .expect("raftkv node")
            .write_log_timed()
            .clone()
    }

    fn global_log(process: &dyn Any) -> Option<Vec<(NodeId, u64)>> {
        Some(
            process
                .downcast_ref::<RaftKvNode>()
                .expect("raftkv node")
                .applied_log()
                .to_vec(),
        )
    }
}

// ---------------------------------------------------------------------
// Verdict
// ---------------------------------------------------------------------

/// The outcome of replaying a chaos run's histories against the replicas'
/// committed state.
#[derive(Debug)]
pub struct ChaosReport {
    /// Protocol name.
    pub protocol: &'static str,
    /// Cleanly completed operations across trusted clients.
    pub ops_ok: u64,
    /// Timed-out operations across trusted clients.
    pub ops_timed_out: u64,
    /// Reads fed to the linearizability checker.
    pub reads_checked: usize,
    /// Every safety or convergence failure, described.
    pub violations: Vec<String>,
}

impl ChaosReport {
    /// No violations of any kind.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// One client's recorded history, bound to the protocol node it talked to.
pub struct ClientHistory<'a> {
    /// The protocol node this client targets (drives convergence
    /// exemptions).
    pub node: NodeId,
    /// The client's own node id.
    pub client: NodeId,
    /// The recorded operation history.
    pub ops: &'a [HistoryOp],
}

/// Runs the full verdict: agreement (global and per-key), client FIFO,
/// linearizability of reads (where the protocol promises it), and
/// post-heal convergence.
///
/// Only **trusted** nodes — alive and never crashed — are held to the
/// bar: a restarted node's log legitimately restarts mid-history, and its
/// recovery semantics are protocol-specific. `convergence_exempt` names
/// trusted nodes whose clients are excused from the convergence check
/// (e.g. a Canopus node that was isolated from its super-leaf peers gets
/// tombstoned and, by design, stays excluded until a rejoin path exists).
pub fn chaos_verdict<M: ChaosProtocol>(
    cluster: &Cluster<M>,
    converge_after: Time,
    convergence_exempt: &BTreeSet<NodeId>,
) -> ChaosReport {
    let trusted_ids = cluster.trusted_nodes();
    let trusted: Vec<(NodeId, &dyn Any)> = trusted_ids
        .iter()
        .map(|&n| (n, cluster.sim.node_any(n)))
        .collect();
    let clients: Vec<ClientHistory<'_>> = cluster
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, node)| trusted_ids.contains(node))
        .map(|(i, &node)| {
            let client = cluster.clients[i];
            ClientHistory {
                node,
                client,
                ops: cluster.sim.node::<HistoryClient<M>>(client).ops(),
            }
        })
        .collect();
    chaos_verdict_parts::<M>(&trusted, &clients, converge_after, convergence_exempt, true)
}

/// The verdict core, decoupled from any cluster representation.
///
/// `trusted` holds the trusted replicas' final processes; `clients` the
/// trusted clients' recorded histories. `check_lin` gates the
/// [`LinChecker`] pass: virtual-time runs enable it (one shared clock),
/// while live TCP runs disable it — each live node measures time from its
/// own spawn instant, and millisecond-level clock-base skew would make
/// cross-node read/write timing comparisons unsound. Read *validity*
/// (every read observes a value some trusted replica committed) is
/// checked regardless, it needs no common clock.
pub fn chaos_verdict_parts<M: ChaosProtocol>(
    trusted: &[(NodeId, &dyn Any)],
    clients: &[ClientHistory<'_>],
    converge_after: Time,
    convergence_exempt: &BTreeSet<NodeId>,
    check_lin: bool,
) -> ChaosReport {
    let mut report = ChaosReport {
        protocol: M::NAME,
        ops_ok: 0,
        ops_timed_out: 0,
        reads_checked: 0,
        violations: Vec::new(),
    };

    // 1. Global agreement, where the protocol defines a total order.
    let global: Vec<Vec<(NodeId, u64)>> = trusted
        .iter()
        .filter_map(|&(_, p)| M::global_log(p))
        .collect();
    if !global.is_empty() {
        if let Err(d) = check_agreement(&global) {
            report.violations.push(format!(
                "global agreement violated at index {} by replica {} ({:?})",
                d.index, d.replica, trusted[d.replica].0
            ));
        }
    }

    // 2. Per-key agreement, and the reference write order for versioning.
    let per_node: Vec<BTreeMap<Key, Vec<(NodeId, u64, Time)>>> =
        trusted.iter().map(|&(_, p)| M::write_records(p)).collect();
    let all_keys: BTreeSet<Key> = per_node.iter().flat_map(|m| m.keys().copied()).collect();
    // Per key: the agreed order (longest replica) and, per version, the
    // earliest apply time across trusted replicas.
    let mut reference: BTreeMap<Key, Vec<(NodeId, u64, Time)>> = BTreeMap::new();
    for &key in &all_keys {
        let seqs: Vec<Vec<(NodeId, u64)>> = per_node
            .iter()
            .map(|m| {
                m.get(&key)
                    .map(|v| v.iter().map(|&(c, o, _)| (c, o)).collect())
                    .unwrap_or_default()
            })
            .collect();
        if let Err(d) = check_agreement(&seqs) {
            report.violations.push(format!(
                "per-key write order diverged on key {key} at version {} (replica {:?})",
                d.index + 1,
                trusted[d.replica].0
            ));
        }
        let longest = per_node
            .iter()
            .filter_map(|m| m.get(&key))
            .max_by_key(|v| v.len())
            .cloned()
            .unwrap_or_default();
        let mut with_min_times = longest;
        for (v, slot) in with_min_times.iter_mut().enumerate() {
            let min_at = per_node
                .iter()
                .filter_map(|m| m.get(&key).and_then(|s| s.get(v)).map(|&(_, _, t)| t))
                .min()
                .unwrap_or(slot.2);
            slot.2 = min_at;
        }
        reference.insert(key, with_min_times);
    }

    // 3. Walk trusted clients' histories.
    let mut checker = LinChecker::new();
    if M::LINEARIZABLE_READS && check_lin {
        for (&key, order) in &reference {
            for (v, &(_, _, at)) in order.iter().enumerate() {
                checker.record_write(WriteObs {
                    key,
                    version: (v + 1) as u64,
                    committed: at,
                });
            }
        }
    }
    let mut reads: Vec<ReadObs> = Vec::new();
    for ch in clients {
        let node = ch.node;
        let client_id = ch.client;
        let mut replies: Vec<(u64, ReplyEvent)> = Vec::new();
        let mut converged = false;
        for op in ch.ops {
            if op.timed_out_at.is_some() {
                report.ops_timed_out += 1;
            }
            if !op.clean() {
                continue;
            }
            report.ops_ok += 1;
            let (at, result) = op.complete.clone().expect("clean implies complete");
            let seq = op.complete_seq.expect("clean implies a recorded arrival");
            replies.push((
                seq,
                ReplyEvent {
                    client: client_id,
                    op_id: op.op_id,
                    at,
                },
            ));
            if op.is_write && op.invoke >= converge_after {
                converged = true;
            }
            if op.is_write || !M::LINEARIZABLE_READS {
                continue;
            }
            let OpResult::Value(observed) = &result else {
                continue;
            };
            let version = match observed {
                None => 0,
                Some(bytes) => {
                    let Some(tag) = decode_tag(bytes) else {
                        report.violations.push(format!(
                            "client {client_id} read an undecodable value on key {}",
                            op.key
                        ));
                        continue;
                    };
                    let order = reference.get(&op.key).map(Vec::as_slice).unwrap_or(&[]);
                    match order.iter().position(|&(c, o, _)| (c, o) == tag) {
                        Some(pos) => (pos + 1) as u64,
                        None => {
                            report.violations.push(format!(
                                "client {client_id} read a value on key {} that no trusted \
                                 replica committed (writer {:?} op {})",
                                op.key, tag.0, tag.1
                            ));
                            continue;
                        }
                    }
                }
            };
            reads.push(ReadObs {
                key: op.key,
                version,
                invoke: op.invoke,
                respond: at,
            });
        }
        // Order replies by their recorded arrival sequence, not by
        // timestamp: two replies can land at the same virtual instant, and
        // a timestamp sort would silently mask a same-instant inversion.
        replies.sort_by_key(|&(seq, _)| seq);
        let replies: Vec<ReplyEvent> = replies.into_iter().map(|(_, e)| e).collect();
        if let Err((a, b)) = check_client_fifo(&replies) {
            report.violations.push(format!(
                "client {client_id} FIFO violated: op {} replied before op {}",
                b.op_id, a.op_id
            ));
        }
        if !converged && !convergence_exempt.contains(&node) {
            report.violations.push(format!(
                "no post-heal write completed for client {client_id} (node {node}) after \
                 {} ms",
                converge_after.as_millis()
            ));
        }
    }

    // 4. Linearizability of the collected reads.
    report.reads_checked = reads.len();
    if M::LINEARIZABLE_READS && check_lin {
        for v in checker.check_all(&reads) {
            report
                .violations
                .push(format!("linearizability violation: {v:?}"));
        }
    }
    report
}

// ---------------------------------------------------------------------
// Sharded verdict
// ---------------------------------------------------------------------

/// The sharding-specific safety checks, layered on top of the base
/// verdict: per-shard total-order agreement (the sharded engine promises
/// a total order *within* each shard, not across them), key→shard routing
/// stability (every committed key lives on the shard the router maps it
/// to — a drifting hash would silently split a key's history), and
/// cross-shard atomicity (a multi-key transaction's parts land on every
/// trusted replica all-or-nothing).
fn sharded_verdict_extras(trusted: &[(NodeId, &dyn Any)]) -> Vec<String> {
    let mut violations = Vec::new();
    let engines: Vec<(NodeId, &ShardEngine)> = trusted
        .iter()
        .map(|&(n, p)| (n, p.downcast_ref::<ShardEngine>().expect("shard engine")))
        .collect();
    let Some(&(_, first)) = engines.first() else {
        return violations;
    };
    let shards = first.shard_count();
    let router = first.router();

    // Per-shard agreement: each shard's log is a totally ordered
    // mini-Canopus; all trusted replicas must agree on its prefix.
    for s in 0..shards {
        let logs: Vec<Vec<(NodeId, u64)>> = engines
            .iter()
            .map(|&(_, e)| canopus_global_log(e.shard(s)))
            .collect();
        if let Err(d) = check_agreement(&logs) {
            violations.push(format!(
                "shard {s} commit order diverged at index {} (replica {:?})",
                d.index, engines[d.replica].0
            ));
        }
    }

    // Routing stability + cross-shard transaction key sets, one walk.
    let mut per_engine: Vec<(NodeId, BTreeMap<(NodeId, u64), BTreeSet<Key>>)> = Vec::new();
    let mut full: BTreeMap<(NodeId, u64), BTreeSet<Key>> = BTreeMap::new();
    for &(node, e) in &engines {
        let mut txns: BTreeMap<(NodeId, u64), BTreeSet<Key>> = BTreeMap::new();
        for s in 0..shards {
            for cc in e.shard(s).committed_log() {
                for set in &cc.sets {
                    for op in &set.ops {
                        let keys: &[Key] = match op {
                            CommittedOp::Put { key, .. } => std::slice::from_ref(key),
                            CommittedOp::MultiPut { keys, .. } => keys,
                            CommittedOp::Synthetic { .. } => &[],
                        };
                        for &key in keys {
                            if router.shard_of_key(key) != s {
                                violations.push(format!(
                                    "key {key} committed on shard {s} of node {node} but \
                                     routes to shard {}",
                                    router.shard_of_key(key)
                                ));
                            }
                        }
                        if let CommittedOp::MultiPut {
                            client,
                            op_id,
                            keys,
                        } = op
                        {
                            txns.entry((*client, *op_id))
                                .or_default()
                                .extend(keys.iter().copied());
                        }
                    }
                }
            }
        }
        for (t, keys) in &txns {
            full.entry(*t).or_default().extend(keys.iter().copied());
        }
        per_engine.push((node, txns));
    }

    // All-or-nothing: a replica that committed *any* part of a
    // transaction must have committed every part some trusted replica
    // saw. The run leaves 300 ms of virtual drain after clients stop, so
    // a lingering half-applied transaction is a protocol bug, not tail
    // latency.
    for (node, txns) in &per_engine {
        for (t, keys) in txns {
            let want = &full[t];
            if keys != want {
                violations.push(format!(
                    "cross-shard txn (client {:?}, op {}) partially applied on node \
                     {node}: {} of {} keys",
                    t.0,
                    t.1,
                    keys.len(),
                    want.len()
                ));
            }
        }
    }
    violations
}

/// [`chaos_verdict`] plus the sharding extras: per-shard agreement,
/// routing stability, and cross-shard atomicity.
pub fn chaos_verdict_sharded(
    cluster: &Cluster<ShardMsg>,
    converge_after: Time,
    convergence_exempt: &BTreeSet<NodeId>,
) -> ChaosReport {
    let mut report = chaos_verdict::<ShardMsg>(cluster, converge_after, convergence_exempt);
    let trusted: Vec<(NodeId, &dyn Any)> = cluster
        .trusted_nodes()
        .iter()
        .map(|&n| (n, cluster.sim.node_any(n)))
        .collect();
    report.violations.extend(sharded_verdict_extras(&trusted));
    report
}

// ---------------------------------------------------------------------
// Chaos cluster builders
// ---------------------------------------------------------------------

fn history_clients<M: ProtocolMsg + 'static>(
    total: usize,
    cfg: HistoryConfig,
) -> impl FnMut(usize, NodeId) -> Box<dyn Process<M>> {
    move |i, target| Box::new(HistoryClient::<M>::new(i, total, target, cfg.clone()))
}

/// Flight-ring capacity for chaos clusters: enough to hold the tail of a
/// run's consensus events for the failure dump without unbounded memory.
pub const CHAOS_FLIGHT_CAP: usize = 256;

fn chaos_obs() -> crate::cluster::ClusterObs {
    crate::cluster::ClusterObs::on(CHAOS_FLIGHT_CAP)
}

/// A Canopus cluster driven by history clients (commit log recording on).
/// Observability is enabled so a failing verdict can dump each node's
/// flight recorder; recording is observation-only, so the execution is
/// identical to an unobserved run (the determinism suite proves it).
pub fn chaos_canopus(
    spec: &crate::spec::DeploymentSpec,
    hcfg: &HistoryConfig,
    seed: u64,
) -> Cluster<CanopusMsg> {
    chaos_canopus_with_obs(spec, hcfg, seed, chaos_obs())
}

/// [`chaos_canopus`] with explicit observability configuration — the
/// determinism regression compares an observed and an unobserved run.
pub fn chaos_canopus_with_obs(
    spec: &crate::spec::DeploymentSpec,
    hcfg: &HistoryConfig,
    seed: u64,
    obs: crate::cluster::ClusterObs,
) -> Cluster<CanopusMsg> {
    let mut cfg = crate::cluster::canopus_config_for(spec);
    cfg.record_log = true;
    crate::cluster::build_canopus_with(
        spec,
        cfg,
        seed,
        history_clients(spec.node_count(), hcfg.clone()),
        obs,
    )
}

/// [`chaos_canopus`] with the throughput knobs engaged: a 1 ms batching
/// window and `depth` consensus cycles in flight. The chaos suites run
/// the same scenarios against this builder to show the knobs change
/// performance, not the verdict.
pub fn chaos_canopus_batched(
    spec: &crate::spec::DeploymentSpec,
    hcfg: &HistoryConfig,
    seed: u64,
    depth: u64,
) -> Cluster<CanopusMsg> {
    let mut cfg = crate::cluster::canopus_config_for(spec);
    cfg.record_log = true;
    cfg.max_linger = Dur::millis(1);
    cfg.max_pipeline_depth = depth.max(1);
    crate::cluster::build_canopus_with(
        spec,
        cfg,
        seed,
        history_clients(spec.node_count(), hcfg.clone()),
        chaos_obs(),
    )
}

/// A shard-parallel Canopus cluster driven by history clients: every
/// node hosts `shards` independent LOT pipelines behind a
/// [`ShardEngine`], and the verdict for it is [`chaos_verdict_sharded`].
pub fn chaos_sharded_canopus(
    spec: &crate::spec::DeploymentSpec,
    hcfg: &HistoryConfig,
    seed: u64,
    shards: u16,
) -> Cluster<ShardMsg> {
    let mut cfg = crate::cluster::canopus_config_for(spec);
    cfg.record_log = true;
    crate::cluster::build_sharded_canopus_with(
        spec,
        |_| cfg.clone(),
        shards,
        seed,
        history_clients(spec.node_count(), hcfg.clone()),
        chaos_obs(),
    )
}

/// An EPaxos cluster driven by history clients (2 ms batches, log on).
pub fn chaos_epaxos(
    spec: &crate::spec::DeploymentSpec,
    hcfg: &HistoryConfig,
    seed: u64,
) -> Cluster<EpaxosMsg> {
    let cfg = canopus_epaxos::EpaxosConfig {
        batch_duration: Dur::millis(2),
        record_log: true,
        ..canopus_epaxos::EpaxosConfig::default()
    };
    crate::cluster::build_epaxos_with(
        spec,
        cfg,
        seed,
        history_clients(spec.node_count(), hcfg.clone()),
        chaos_obs(),
    )
}

/// A ZooKeeper-model cluster driven by history clients (≤ 5 participants,
/// the rest observers).
pub fn chaos_zab(
    spec: &crate::spec::DeploymentSpec,
    hcfg: &HistoryConfig,
    seed: u64,
) -> Cluster<ZabMsg> {
    let cfg = canopus_zab::ZabConfig {
        participants: spec.node_count().min(5),
        ..canopus_zab::ZabConfig::default()
    };
    crate::cluster::build_zab_with(
        spec,
        cfg,
        seed,
        history_clients(spec.node_count(), hcfg.clone()),
        chaos_obs(),
    )
}

/// A Raft KV cluster driven by history clients.
pub fn chaos_raftkv(
    spec: &crate::spec::DeploymentSpec,
    hcfg: &HistoryConfig,
    seed: u64,
) -> Cluster<RaftKvMsg> {
    crate::cluster::build_raftkv_with(
        spec,
        crate::raftkv::RaftKvConfig::default(),
        seed,
        history_clients(spec.node_count(), hcfg.clone()),
        chaos_obs(),
    )
}
