//! Plain-text table and unit formatting for experiment output.

use canopus_sim::Dur;

/// Formats a rate as `12.3 k/s` / `4.56 M/s`.
pub fn fmt_rate(rate: f64) -> String {
    if rate >= 1e6 {
        format!("{:.2} M/s", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1} k/s", rate / 1e3)
    } else {
        format!("{rate:.0} /s")
    }
}

/// Formats an optional duration as milliseconds.
pub fn fmt_dur(d: Option<Dur>) -> String {
    match d {
        Some(d) => format!("{:.2} ms", d.as_millis_f64()),
        None => "-".to_string(),
    }
}

/// Renders an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!(" {h:<w$} |"));
    }
    out.push('\n');
    sep(&mut out);
    for row in rows {
        out.push('|');
        for (cell, w) in row.iter().zip(&widths) {
            out.push_str(&format!(" {cell:<w$} |"));
        }
        out.push('\n');
    }
    sep(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_format() {
        assert_eq!(fmt_rate(2_610_000.0), "2.61 M/s");
        assert_eq!(fmt_rate(45_300.0), "45.3 k/s");
        assert_eq!(fmt_rate(120.0), "120 /s");
    }

    #[test]
    fn durations_format() {
        assert_eq!(fmt_dur(Some(Dur::micros(2500))), "2.50 ms");
        assert_eq!(fmt_dur(None), "-");
    }

    #[test]
    fn tables_align() {
        let t = render_table(
            &["proto", "rate"],
            &[
                vec!["canopus".into(), "2.61 M/s".into()],
                vec!["epaxos".into(), "450 k/s".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 6);
        let width = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == width), "{t}");
        assert!(t.contains("| canopus | 2.61 M/s |"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_rejected() {
        render_table(&["a"], &[vec!["x".into(), "y".into()]]);
    }
}
