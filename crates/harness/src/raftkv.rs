//! A Raft-replicated key-value service: the fourth protocol the chaos
//! suite drives, built on the same [`RaftCore`] that powers Canopus's
//! super-leaf broadcast.
//!
//! One Raft group spans every node. Clients talk to their local node; the
//! node proposes locally when it leads and otherwise forwards to its
//! current leader hint. *Reads travel through the log like writes*, so the
//! service is linearizable — a read's result is computed at its own log
//! position when the origin node applies it.
//!
//! Crash-recovery models Raft's durability assumption: the nemesis restart
//! path recovers `(term, voted_for, log)` from the crashed process (see
//! [`RaftKvNode::recover`]) and volatile state — commit index, the applied
//! store — is rebuilt by re-delivering committed entries through the
//! normal commit path.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use bytes::{Bytes, BytesMut};
use canopus_kv::{ClientReply, ClientRequest, CostModel, Key, KvStore, Op, OpResult};
use canopus_net::wire::{Wire, WireError, WireRead};
use canopus_obs::{Counter, EventKind as ObsEvent, Gauge, NodeObs};
use canopus_raft::{Entry, GroupId, Outbox, RaftConfig, RaftCore, RaftMsg};
use canopus_sim::{impl_process_any, Context, Dur, NodeId, Payload, Process, Time, Timer};
use canopus_workload::ProtocolMsg;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const TICK: u64 = 1;

/// Messages of the Raft KV service.
#[derive(Clone, Debug, PartialEq)]
pub enum RaftKvMsg {
    /// Raft group traffic.
    Raft(RaftMsg),
    /// Client submits an operation to its local node.
    Request(ClientRequest),
    /// A non-leader forwards a request to the leader on behalf of `origin`
    /// (the node that owes the client its reply).
    Forward {
        /// Node that received the request from its client.
        origin: NodeId,
        /// The request.
        req: ClientRequest,
    },
    /// Node answers its client.
    Reply(ClientReply),
}

impl Payload for RaftKvMsg {
    fn wire_size(&self) -> usize {
        match self {
            RaftKvMsg::Raft(m) => 1 + m.wire_size(),
            RaftKvMsg::Request(r) => 1 + 13 + r.op.payload_bytes().min(64),
            RaftKvMsg::Forward { req, .. } => 1 + 17 + req.op.payload_bytes().min(64),
            RaftKvMsg::Reply(_) => 1 + 14,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            RaftKvMsg::Raft(_) => "raft",
            RaftKvMsg::Request(_) => "request",
            RaftKvMsg::Forward { .. } => "forward",
            RaftKvMsg::Reply(_) => "reply",
        }
    }
}

impl ProtocolMsg for RaftKvMsg {
    fn request(req: ClientRequest) -> Self {
        RaftKvMsg::Request(req)
    }
    fn reply(&self) -> Option<&ClientReply> {
        match self {
            RaftKvMsg::Reply(r) => Some(r),
            _ => None,
        }
    }
}

// Wire encoding so the service also runs over the real TCP transport
// (the live chaos suite drives it across loopback sockets).
impl Wire for RaftKvMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            RaftKvMsg::Raft(m) => {
                0u8.encode(buf);
                m.encode(buf);
            }
            RaftKvMsg::Request(r) => {
                1u8.encode(buf);
                r.encode(buf);
            }
            RaftKvMsg::Forward { origin, req } => {
                2u8.encode(buf);
                origin.encode(buf);
                req.encode(buf);
            }
            RaftKvMsg::Reply(r) => {
                3u8.encode(buf);
                r.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(match buf.read_u8()? {
            0 => RaftKvMsg::Raft(Wire::decode(buf)?),
            1 => RaftKvMsg::Request(Wire::decode(buf)?),
            2 => RaftKvMsg::Forward {
                origin: Wire::decode(buf)?,
                req: Wire::decode(buf)?,
            },
            3 => RaftKvMsg::Reply(Wire::decode(buf)?),
            _ => return Err(WireError::Invalid("RaftKvMsg tag")),
        })
    }
}

/// Raft KV configuration.
#[derive(Clone, Debug)]
pub struct RaftKvConfig {
    /// Raft timing parameters.
    pub raft: RaftConfig,
    /// Housekeeping tick (drives heartbeats and election timeouts).
    pub tick_interval: Dur,
    /// CPU cost model (shared with the other protocols).
    pub costs: CostModel,
}

impl Default for RaftKvConfig {
    fn default() -> Self {
        RaftKvConfig {
            raft: RaftConfig::default(),
            tick_interval: Dur::millis(1),
            costs: CostModel::default(),
        }
    }
}

/// Counters exposed by every node.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RaftKvStats {
    /// Entries applied to the store (weighted).
    pub applied_weight: u64,
    /// Requests from this node's own clients completed (weighted).
    pub own_completed: u64,
    /// Requests forwarded to a leader.
    pub forwards: u64,
}

/// How a node boots: fresh, or recovering durable Raft state after a crash.
enum Boot {
    Fresh {
        initial_leader: bool,
    },
    Recovered {
        term: u64,
        voted_for: Option<NodeId>,
        log: Vec<Entry>,
    },
}

/// One node of the Raft KV service.
pub struct RaftKvNode {
    cfg: RaftKvConfig,
    me: NodeId,
    members: Vec<NodeId>,
    rng: SmallRng,
    boot: Option<Boot>,
    core: Option<RaftCore>,
    leader_hint: Option<NodeId>,
    /// Own-client requests parked while no leader is known.
    queued: VecDeque<ClientRequest>,
    store: KvStore,
    /// Full applied order `(client, op_id)`, for agreement checks.
    applied: Vec<(NodeId, u64)>,
    /// Per-key applied write order with local apply times.
    write_log: BTreeMap<Key, Vec<(NodeId, u64, Time)>>,
    /// Own-client requests that were already in the log before a crash:
    /// re-delivering them after recovery rebuilds the store but must not
    /// re-send client replies or re-count completions. Keyed on request
    /// identity, not log index — conflict truncation recycles indices, so
    /// an index bound would also swallow replies for fresh post-crash
    /// requests. (At-most-once on the ambiguity window: a pre-crash entry
    /// whose reply never went out is also suppressed — the client's
    /// timeout covers it.)
    replayed: BTreeSet<(NodeId, u64)>,
    stats: RaftKvStats,
    obs: RaftKvObs,
    /// Highest Raft term this node has observed (election detection).
    obs_last_term: u64,
    /// Last leader this node recorded a `LeaderChange` for.
    obs_last_leader: Option<NodeId>,
}

/// Pre-registered observability handles (all no-ops unless
/// [`RaftKvNode::with_obs`] installed an enabled hub).
struct RaftKvObs {
    hub: NodeObs,
    elections: Counter,
    leader_changes: Counter,
    commit_lag: Gauge,
}

impl RaftKvObs {
    fn from_hub(hub: NodeObs) -> Self {
        RaftKvObs {
            elections: hub.metrics.counter("raftkv.elections"),
            leader_changes: hub.metrics.counter("raftkv.leader_changes"),
            commit_lag: hub.metrics.gauge("raftkv.commit_lag"),
            hub,
        }
    }
}

impl RaftKvNode {
    /// Creates a node; `members[0]` boots as the initial leader. The list
    /// must be identical at every member.
    pub fn new(me: NodeId, members: Vec<NodeId>, cfg: RaftKvConfig, seed: u64) -> Self {
        assert!(members.contains(&me));
        let initial_leader = members[0] == me;
        RaftKvNode {
            rng: SmallRng::seed_from_u64(seed ^ ((me.0 as u64) << 24) ^ 0x4b56),
            cfg,
            me,
            leader_hint: Some(members[0]),
            members,
            boot: Some(Boot::Fresh { initial_leader }),
            core: None,
            queued: VecDeque::new(),
            store: KvStore::new(),
            applied: Vec::new(),
            write_log: BTreeMap::new(),
            replayed: BTreeSet::new(),
            stats: RaftKvStats::default(),
            obs: RaftKvObs::from_hub(NodeObs::disabled()),
            obs_last_term: 0,
            obs_last_leader: None,
        }
    }

    /// Installs an observability hub (metrics + flight recorder). Builder
    /// style so existing `new`/`recover` call sites stay unchanged.
    pub fn with_obs(mut self, hub: NodeObs) -> Self {
        self.obs = RaftKvObs::from_hub(hub);
        self
    }

    /// This node's observability hub (disabled unless installed).
    pub fn obs(&self) -> &NodeObs {
        &self.obs.hub
    }

    /// Records election / leader-change flight events and refreshes the
    /// commit-lag gauge from the core's current state. One branch per
    /// call when observability is disabled.
    fn observe_core(&mut self, now: Time) {
        if !self.obs.hub.is_enabled() {
            return;
        }
        let Some(core) = self.core.as_ref() else {
            return;
        };
        let term = core.term();
        if term > self.obs_last_term {
            self.obs_last_term = term;
            self.obs.elections.inc();
            self.obs
                .hub
                .event(now.as_nanos(), ObsEvent::Election { term });
        }
        let leader = if core.is_leader() {
            Some(self.me)
        } else {
            self.leader_hint
        };
        if leader != self.obs_last_leader {
            self.obs_last_leader = leader;
            if let Some(l) = leader {
                self.obs.leader_changes.inc();
                self.obs
                    .hub
                    .event(now.as_nanos(), ObsEvent::LeaderChange { term, leader: l.0 });
            }
        }
        self.obs
            .commit_lag
            .set(core.log_len().saturating_sub(core.commit_index()) as i64);
    }

    /// Builds a replacement node from a crashed one, recovering the state
    /// Raft requires to be durable (term, vote, log). Everything else —
    /// commit index, the store — is volatile and is rebuilt when committed
    /// entries re-deliver.
    pub fn recover(old: &RaftKvNode, seed: u64) -> Self {
        let mut node = RaftKvNode::new(old.me, old.members.clone(), old.cfg.clone(), seed);
        if let Some(core) = old.core.as_ref() {
            let (term, voted_for, log) = core.persistent_state();
            for entry in log.iter().filter(|e| !e.data.is_empty()) {
                if let Some((origin, req)) = Self::decode_entry(entry.data.clone()) {
                    if origin == old.me {
                        node.replayed.insert((req.client, req.op_id));
                    }
                }
            }
            node.boot = Some(Boot::Recovered {
                term,
                voted_for,
                log,
            });
        }
        node
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// Counters.
    pub fn stats(&self) -> RaftKvStats {
        self.stats
    }

    /// The replicated store.
    pub fn store(&self) -> &KvStore {
        &self.store
    }

    /// Whether this node currently leads the group.
    pub fn is_leader(&self) -> bool {
        self.core.as_ref().is_some_and(|c| c.is_leader())
    }

    /// The applied order as `(client, op_id)`, for agreement checks.
    pub fn applied_log(&self) -> &[(NodeId, u64)] {
        &self.applied
    }

    /// Per-key applied write order with this node's apply times.
    pub fn write_log_timed(&self) -> &BTreeMap<Key, Vec<(NodeId, u64, Time)>> {
        &self.write_log
    }

    fn encode_entry(origin: NodeId, req: &ClientRequest) -> bytes::Bytes {
        let mut buf = BytesMut::new();
        origin.encode(&mut buf);
        req.encode(&mut buf);
        buf.freeze()
    }

    fn decode_entry(data: bytes::Bytes) -> Option<(NodeId, ClientRequest)> {
        let mut buf = data;
        let origin = NodeId::decode(&mut buf).ok()?;
        let req = ClientRequest::decode(&mut buf).ok()?;
        Some((origin, req))
    }

    fn flush_raft(&mut self, out: Outbox, ctx: &mut Context<'_, RaftKvMsg>) {
        for (to, msg) in out {
            ctx.send(to, RaftKvMsg::Raft(msg));
        }
    }

    /// Proposes (leader) or forwards a request owed to `origin`.
    fn submit(&mut self, origin: NodeId, req: ClientRequest, ctx: &mut Context<'_, RaftKvMsg>) {
        let core = self.core.as_mut().expect("started");
        if core.is_leader() {
            let data = Self::encode_entry(origin, &req);
            let mut out = Outbox::new();
            // Cannot fail: propose only rejects non-leaders, checked above.
            core.propose(data, ctx.now(), &mut out);
            self.flush_raft(out, ctx);
            self.deliver_committed(ctx);
            return;
        }
        match self.leader_hint {
            Some(leader) if leader != self.me => {
                self.stats.forwards += 1;
                ctx.send(leader, RaftKvMsg::Forward { origin, req });
            }
            _ => {
                if origin == self.me {
                    self.queued.push_back(req);
                }
                // A forward with no better hint is dropped; the client's
                // timeout covers it.
            }
        }
    }

    fn deliver_committed(&mut self, ctx: &mut Context<'_, RaftKvMsg>) {
        let delivered = self.core.as_mut().expect("started").take_delivered();
        for (_index, data) in delivered {
            let Some((origin, req)) = Self::decode_entry(data) else {
                continue;
            };
            let weight = req.op.weight();
            ctx.charge(Dur::nanos(
                self.cfg.costs.per_commit.as_nanos() * weight.min(4096) as u64,
            ));
            self.stats.applied_weight += weight as u64;
            self.applied.push((req.client, req.op_id));
            let result = match &req.op {
                Op::Put { key, value } => {
                    self.store.put(*key, value.clone());
                    self.write_log.entry(*key).or_default().push((
                        req.client,
                        req.op_id,
                        ctx.now(),
                    ));
                    OpResult::Written
                }
                Op::Get { key } => OpResult::Value(self.store.get_value(*key)),
                Op::SyntheticWrite { .. } | Op::SyntheticRead { .. } => OpResult::Batch,
                Op::MultiPut { puts } => {
                    for (key, value) in puts {
                        self.store.put(*key, value.clone());
                        self.write_log.entry(*key).or_default().push((
                            req.client,
                            req.op_id,
                            ctx.now(),
                        ));
                    }
                    OpResult::Written
                }
            };
            if origin == self.me && !self.replayed.contains(&(req.client, req.op_id)) {
                self.stats.own_completed += weight as u64;
                ctx.send(
                    req.client,
                    RaftKvMsg::Reply(ClientReply {
                        op_id: req.op_id,
                        weight,
                        result,
                    }),
                );
            }
        }
    }
}

impl Process<RaftKvMsg> for RaftKvNode {
    fn on_start(&mut self, ctx: &mut Context<'_, RaftKvMsg>) {
        let now = ctx.now();
        let core = match self.boot.take().expect("boot config present") {
            Boot::Fresh { initial_leader } => RaftCore::new(
                GroupId(0),
                self.me,
                self.members.clone(),
                self.cfg.raft,
                initial_leader,
                now,
                &mut self.rng,
            ),
            Boot::Recovered {
                term,
                voted_for,
                log,
            } => RaftCore::restore(
                GroupId(0),
                self.me,
                self.members.clone(),
                self.cfg.raft,
                now,
                &mut self.rng,
                term,
                voted_for,
                log,
            ),
        };
        self.core = Some(core);
        ctx.set_timer(self.cfg.tick_interval, TICK);
    }

    fn on_message(&mut self, from: NodeId, msg: RaftKvMsg, ctx: &mut Context<'_, RaftKvMsg>) {
        ctx.charge(self.cfg.costs.per_protocol_msg);
        match msg {
            RaftKvMsg::Raft(m) => {
                // Only an acting leader sends AppendEntries; remember it.
                if matches!(m, RaftMsg::AppendEntries { .. }) {
                    self.leader_hint = Some(from);
                }
                let mut out = Outbox::new();
                {
                    let core = self.core.as_mut().expect("started");
                    core.handle(from, m, ctx.now(), &mut self.rng, &mut out);
                }
                self.flush_raft(out, ctx);
                self.deliver_committed(ctx);
                self.observe_core(ctx.now());
            }
            RaftKvMsg::Request(req) => {
                ctx.charge(Dur::nanos(
                    self.cfg.costs.per_request.as_nanos() * req.op.weight().min(4096) as u64,
                ));
                self.submit(self.me, req, ctx);
            }
            RaftKvMsg::Forward { origin, req } => self.submit(origin, req, ctx),
            RaftKvMsg::Reply(_) => {}
        }
    }

    fn on_timer(&mut self, timer: Timer, ctx: &mut Context<'_, RaftKvMsg>) {
        if timer.token != TICK {
            return;
        }
        let mut out = Outbox::new();
        {
            let core = self.core.as_mut().expect("started");
            core.tick(ctx.now(), &mut self.rng, &mut out);
            if core.is_leader() {
                self.leader_hint = Some(self.me);
            }
        }
        self.flush_raft(out, ctx);
        self.deliver_committed(ctx);
        // Retry parked requests once a leader is known (or we became one).
        if !self.queued.is_empty()
            && (self.core.as_ref().expect("started").is_leader()
                || self.leader_hint.is_some_and(|l| l != self.me))
        {
            let queued: Vec<ClientRequest> = self.queued.drain(..).collect();
            for req in queued {
                self.submit(self.me, req, ctx);
            }
        }
        self.observe_core(ctx.now());
        ctx.set_timer(self.cfg.tick_interval, TICK);
    }

    impl_process_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use canopus_sim::{Simulation, UniformFabric};

    fn build(n: u32, seed: u64) -> (Simulation<RaftKvMsg, UniformFabric>, Vec<NodeId>) {
        let mut sim = Simulation::new(UniformFabric::new(Dur::micros(80)), seed);
        let members: Vec<NodeId> = (0..n).map(NodeId).collect();
        for &id in &members {
            sim.add_node(Box::new(RaftKvNode::new(
                id,
                members.clone(),
                RaftKvConfig::default(),
                seed,
            )));
        }
        (sim, members)
    }

    struct TestClient {
        target: NodeId,
        ops: Vec<(Dur, Op)>,
        cursor: usize,
        replies: Vec<(u64, OpResult, Time)>,
    }

    impl TestClient {
        fn arm(&self, ctx: &mut Context<'_, RaftKvMsg>) {
            if let Some((when, _)) = self.ops.get(self.cursor) {
                let at = Time::ZERO + *when;
                ctx.set_timer(at.saturating_since(ctx.now()), 0);
            }
        }
    }

    impl Process<RaftKvMsg> for TestClient {
        fn on_start(&mut self, ctx: &mut Context<'_, RaftKvMsg>) {
            self.arm(ctx);
        }
        fn on_timer(&mut self, _t: Timer, ctx: &mut Context<'_, RaftKvMsg>) {
            let (_, op) = self.ops[self.cursor].clone();
            let op_id = self.cursor as u64;
            self.cursor += 1;
            ctx.send(
                self.target,
                RaftKvMsg::Request(ClientRequest {
                    client: ctx.id(),
                    op_id,
                    op,
                }),
            );
            self.arm(ctx);
        }
        fn on_message(&mut self, _f: NodeId, msg: RaftKvMsg, ctx: &mut Context<'_, RaftKvMsg>) {
            if let RaftKvMsg::Reply(r) = msg {
                self.replies.push((r.op_id, r.result, ctx.now()));
            }
        }
        impl_process_any!();
    }

    fn put(key: u64, tag: u8) -> Op {
        Op::Put {
            key,
            value: Bytes::from(vec![tag; 8]),
        }
    }

    #[test]
    fn writes_replicate_and_reads_see_them() {
        let (mut sim, _) = build(5, 1);
        // Client on a follower: write then read the same key.
        let client = sim.add_node(Box::new(TestClient {
            target: NodeId(3),
            ops: vec![
                (Dur::millis(5), put(7, 9)),
                (Dur::millis(40), Op::Get { key: 7 }),
            ],
            cursor: 0,
            replies: Vec::new(),
        }));
        sim.run_for(Dur::millis(120));
        let replies = &sim.node::<TestClient>(client).replies;
        assert_eq!(replies.len(), 2);
        assert_eq!(replies[0].1, OpResult::Written);
        match &replies[1].1 {
            OpResult::Value(Some(v)) => assert_eq!(v[0], 9),
            other => panic!("unexpected read result {other:?}"),
        }
        // Every replica applied the write in the same order.
        let reference = sim.node::<RaftKvNode>(NodeId(0)).applied_log().to_vec();
        assert_eq!(reference.len(), 2);
        for i in 1..5u32 {
            let log = sim.node::<RaftKvNode>(NodeId(i)).applied_log();
            assert!(reference.starts_with(log) || log.starts_with(&reference));
        }
    }

    #[test]
    fn leader_crash_elects_and_recovered_node_rejoins() {
        let (mut sim, members) = build(5, 2);
        let client = sim.add_node(Box::new(TestClient {
            target: NodeId(2),
            ops: (0..30)
                .map(|k| (Dur::millis(4 * k + 1), put(k, (k + 1) as u8)))
                .collect(),
            cursor: 0,
            replies: Vec::new(),
        }));
        sim.run_for(Dur::millis(10));
        sim.crash(NodeId(0));
        sim.run_for(Dur::millis(90));
        // A new leader exists among the survivors and writes flow again.
        let leaders: Vec<NodeId> = members[1..]
            .iter()
            .copied()
            .filter(|&n| sim.node::<RaftKvNode>(n).is_leader())
            .collect();
        assert_eq!(leaders.len(), 1, "exactly one live leader");
        // Restart node 0 with recovered durable state; it must rejoin as a
        // follower and catch up.
        let old = sim.take_crashed(NodeId(0)).expect("crashed process");
        let old = old.into_any().downcast::<RaftKvNode>().expect("type");
        sim.restart(NodeId(0), Box::new(RaftKvNode::recover(&old, 2)));
        sim.run_for(Dur::millis(300));
        assert!(
            !sim.node::<RaftKvNode>(NodeId(0)).is_leader() || {
                // It may legitimately win a later election once caught up; in
                // either case its log must match the reference.
                true
            }
        );
        let replies = sim.node::<TestClient>(client).replies.len();
        assert!(replies >= 25, "most writes completed: {replies}/30");
        let reference = sim.node::<RaftKvNode>(NodeId(1)).applied_log().to_vec();
        let recovered = sim.node::<RaftKvNode>(NodeId(0)).applied_log();
        assert!(
            reference.starts_with(recovered) || recovered.starts_with(&reference),
            "recovered log diverged"
        );
    }

    #[test]
    fn entry_codec_round_trips() {
        let req = ClientRequest {
            client: NodeId(11),
            op_id: 42,
            op: put(3, 1),
        };
        let data = RaftKvNode::encode_entry(NodeId(4), &req);
        let (origin, back) = RaftKvNode::decode_entry(data).expect("decode");
        assert_eq!(origin, NodeId(4));
        assert_eq!(back, req);
    }
}
