//! Deployment and load specifications shared by all experiments.

use canopus_net::{LinkParams, Topology, WanMatrix};
use canopus_sim::Dur;

/// Where nodes are placed.
#[derive(Clone, Debug)]
pub enum TopoSpec {
    /// The paper's single-datacenter testbed (§8.1): `racks` racks with
    /// `nodes_per_rack` protocol nodes each.
    SingleDc {
        /// Number of racks (the paper uses 3).
        racks: usize,
        /// Canopus nodes per rack (3, 5, 7, 9 in Figure 4).
        nodes_per_rack: usize,
    },
    /// The paper's multi-datacenter deployment (§8.2): the first `sites`
    /// datacenters of Table 1 with `nodes_per_dc` nodes each.
    MultiDc {
        /// Number of datacenters (3, 5, or 7 in Figure 6).
        sites: usize,
        /// Nodes per datacenter (3 in the paper).
        nodes_per_dc: usize,
    },
}

/// A full deployment: placement plus link parameters.
#[derive(Clone, Debug)]
pub struct DeploymentSpec {
    /// Node placement.
    pub topo: TopoSpec,
    /// Fabric rates and latencies.
    pub link: LinkParams,
}

impl DeploymentSpec {
    /// The paper's single-DC testbed with `nodes_per_rack` Canopus nodes
    /// per rack (10 Gbps NICs, 2×10 Gbps uplinks).
    pub fn paper_single_dc(nodes_per_rack: usize) -> Self {
        DeploymentSpec {
            topo: TopoSpec::SingleDc {
                racks: 3,
                nodes_per_rack,
            },
            link: LinkParams::default(),
        }
    }

    /// The paper's multi-DC deployment over the first `sites` Table-1
    /// datacenters, three nodes each.
    pub fn paper_multi_dc(sites: usize) -> Self {
        DeploymentSpec {
            topo: TopoSpec::MultiDc {
                sites,
                nodes_per_dc: 3,
            },
            link: LinkParams::default(),
        }
    }

    /// Number of protocol nodes.
    pub fn node_count(&self) -> usize {
        match self.topo {
            TopoSpec::SingleDc {
                racks,
                nodes_per_rack,
            } => racks * nodes_per_rack,
            TopoSpec::MultiDc {
                sites,
                nodes_per_dc,
            } => sites * nodes_per_dc,
        }
    }

    /// Number of super-leaves / racks.
    pub fn group_count(&self) -> usize {
        match self.topo {
            TopoSpec::SingleDc { racks, .. } => racks,
            TopoSpec::MultiDc { sites, .. } => sites,
        }
    }

    /// Nodes per super-leaf.
    pub fn per_group(&self) -> usize {
        match self.topo {
            TopoSpec::SingleDc { nodes_per_rack, .. } => nodes_per_rack,
            TopoSpec::MultiDc { nodes_per_dc, .. } => nodes_per_dc,
        }
    }

    /// Builds the topology with the protocol nodes placed; client
    /// processes are added afterwards by the cluster builders.
    pub fn build_topology(&self) -> Topology {
        match self.topo {
            TopoSpec::SingleDc {
                racks,
                nodes_per_rack,
            } => Topology::single_dc(racks, nodes_per_rack, self.link),
            TopoSpec::MultiDc {
                sites,
                nodes_per_dc,
            } => Topology::multi_dc(WanMatrix::paper_sites(sites), nodes_per_dc, self.link),
        }
    }

    /// The largest round-trip time between any two groups — bounds cycle
    /// completion time (§7.1) and is the Figure 6 "base latency" marker.
    pub fn max_rtt(&self) -> Dur {
        match self.topo {
            TopoSpec::SingleDc { .. } => self.link.cross_rack_one_way * 2,
            TopoSpec::MultiDc { sites, .. } => WanMatrix::paper_sites(sites).max_rtt(),
        }
    }
}

/// Offered load.
#[derive(Clone, Debug)]
pub struct LoadSpec {
    /// Total offered rate across the whole deployment, requests/second.
    pub total_rate: f64,
    /// Write fraction (0.0–1.0).
    pub write_ratio: f64,
    /// Warmup discarded from measurements.
    pub warmup: Dur,
    /// Measured period after warmup.
    pub duration: Dur,
    /// Per-request cap for the open-loop clients
    /// ([`canopus_workload::OpenLoopConfig::max_batch`]): 0 aggregates a
    /// whole arrival tick per request, 1 models fully unbatched clients.
    pub client_max_batch: u32,
    /// Key-space shards the traffic is routed across (1 = unsharded; the
    /// single-shard path is byte-identical to pre-sharding clients).
    pub shards: u16,
    /// Zipf exponent for the per-shard traffic split: `None` spreads the
    /// offered rate uniformly across shards, `Some(theta)` sends shard
    /// `s` a share ∝ 1/(s+1)^theta (hot shard 0).
    pub shard_theta: Option<f64>,
}

impl LoadSpec {
    /// A load spec at `total_rate` with the paper's default 20 % writes.
    pub fn new(total_rate: f64) -> Self {
        LoadSpec {
            total_rate,
            write_ratio: 0.2,
            warmup: Dur::millis(300),
            duration: Dur::millis(700),
            client_max_batch: 0,
            shards: 1,
            shard_theta: None,
        }
    }

    /// Same load with a different write ratio.
    pub fn with_writes(mut self, ratio: f64) -> Self {
        self.write_ratio = ratio;
        self
    }

    /// Same load with a different client batch cap.
    pub fn with_client_batch(mut self, max_batch: u32) -> Self {
        self.client_max_batch = max_batch;
        self
    }

    /// Same load routed across `shards` key-space shards (uniform split).
    pub fn with_shards(mut self, shards: u16) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Same load with a Zipf-skewed per-shard split (requires sharding).
    pub fn with_shard_skew(mut self, theta: f64) -> Self {
        self.shard_theta = Some(theta);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_single_dc_counts() {
        for (per_rack, n) in [(3, 9), (5, 15), (7, 21), (9, 27)] {
            let d = DeploymentSpec::paper_single_dc(per_rack);
            assert_eq!(d.node_count(), n);
            assert_eq!(d.group_count(), 3);
            let topo = d.build_topology();
            assert_eq!(topo.node_count(), n);
        }
    }

    #[test]
    fn paper_multi_dc_counts() {
        for (sites, n) in [(3, 9), (5, 15), (7, 21)] {
            let d = DeploymentSpec::paper_multi_dc(sites);
            assert_eq!(d.node_count(), n);
            let topo = d.build_topology();
            assert_eq!(topo.node_count(), n);
        }
    }

    #[test]
    fn max_rtt_tracks_wan() {
        let d3 = DeploymentSpec::paper_multi_dc(3);
        assert_eq!(d3.max_rtt(), Dur::millis(133));
        let d7 = DeploymentSpec::paper_multi_dc(7);
        assert_eq!(d7.max_rtt(), Dur::millis(322));
    }
}
