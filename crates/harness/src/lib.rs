//! # canopus-harness — experiment orchestration
//!
//! Builds full protocol deployments (Canopus, EPaxos, the ZooKeeper model)
//! on the topology-aware simulator, drives them with the paper's client
//! model, and implements the evaluation methodology of §8.1: geometric
//! load ladders to the 10 ms latency knee for maximum throughput, and
//! representative latency at 70 % of that maximum. The `canopus-bench`
//! binaries regenerate every table and figure from these pieces.

#![warn(missing_docs)]

pub mod cluster;
pub mod history;
pub mod live;
pub mod mux;
pub mod raftkv;
pub mod run;
pub mod scenarios;
pub mod spec;
pub mod table;

pub use cluster::{
    build_canopus, build_canopus_obs, build_canopus_with, build_custom, build_custom_cfg,
    build_epaxos, build_epaxos_with, build_raftkv, build_raftkv_with, build_sharded_canopus,
    build_sharded_canopus_obs, build_sharded_canopus_with, build_zab, build_zab_with,
    canopus_config_for, emulation_table_for, ChaosFabric, Cluster, ClusterObs, RestartFactory,
    SilentNode,
};
pub use history::{
    chaos_canopus, chaos_canopus_batched, chaos_canopus_with_obs, chaos_epaxos, chaos_raftkv,
    chaos_sharded_canopus, chaos_verdict, chaos_verdict_parts, chaos_verdict_sharded, chaos_zab,
    decode_tag, encode_tag, ChaosProtocol, ChaosReport, ClientHistory, HistoryClient,
    HistoryConfig, HistoryOp, CHAOS_FLIGHT_CAP,
};
pub use live::{
    live_canopus_config, live_chaos_canopus, live_chaos_canopus_batched, live_chaos_raftkv,
    live_chaos_zab, live_history_config, live_raft_config, live_raftkv_config, live_time_unit,
    live_timeline, live_topology, live_zab_config, AttachObs, LiveCluster, LiveOutcome,
    LIVE_FLIGHT_CAP, LIVE_TIME_UNIT,
};
pub use mux::{session_op_base, ClientMux};
pub use raftkv::{RaftKvConfig, RaftKvMsg, RaftKvNode, RaftKvStats};
pub use run::{
    deterministic_check, find_max_throughput, latency_at_70pct, run_canopus, run_epaxos, run_zab,
    RunResult, SearchResult, SearchSpec,
};
pub use scenarios::{
    all_scenarios, catalog_fingerprint, cross_shard_atomicity_partition, hot_shard_skew,
    partition_then_crash_restart, sharded_scenarios, ChaosScenario, ChaosTimeline, ChaosTopology,
    CATALOG_VERSION,
};
pub use spec::{DeploymentSpec, LoadSpec, TopoSpec};
pub use table::{fmt_dur, fmt_rate, render_table};
