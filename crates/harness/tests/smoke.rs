//! Fast end-to-end smoke test: one Canopus deployment on the paper's
//! single-DC topology, driven by the real client model, committing real
//! writes — the whole sim → net → raft → core → workload → harness stack
//! in well under a second. CI runs this on every push, so a change that
//! compiles but breaks the consensus cycle fails here rather than only in
//! the long-running bench binaries (`crates/harness/examples/smoke.rs` is
//! the full, slower sweep of the same pipeline).

use canopus_harness::{
    canopus_config_for, deterministic_check, run_canopus, DeploymentSpec, LoadSpec,
};
use canopus_sim::Dur;

fn quick_load(rate: f64) -> LoadSpec {
    let mut load = LoadSpec::new(rate);
    load.warmup = Dur::millis(50);
    load.duration = Dur::millis(200);
    load
}

#[test]
fn canopus_cycle_end_to_end_quick() {
    let spec = DeploymentSpec::paper_single_dc(3);
    let load = quick_load(100_000.0);
    let cfg = canopus_config_for(&spec);
    let r = run_canopus(&spec, &load, cfg, 1);
    assert!(r.healthy, "cluster diverged or lost commits: {r:?}");
    assert!(
        r.achieved > load.total_rate * 0.5,
        "achieved only {} of offered {}",
        r.achieved,
        load.total_rate
    );
    let median = r.median.expect("no latency samples collected");
    assert!(
        median < Dur::millis(10),
        "median latency {median:?} above the paper's 10 ms health bound"
    );
}

#[test]
fn canopus_run_is_deterministic_quick() {
    let spec = DeploymentSpec::paper_single_dc(3);
    let load = quick_load(50_000.0);
    let cfg = canopus_config_for(&spec);
    assert!(
        deterministic_check(&spec, &load, cfg, 7),
        "identical seeds must reproduce identical commit digests"
    );
}
