//! # canopus-workload — the paper's client model
//!
//! Load generation and latency accounting for the evaluation (§8): open-
//! loop Poisson clients with configurable write ratios (the paper's 180
//! single-DC clients / 100 clients per datacenter), closed-loop blocking
//! clients for precise latency curves and the §7.2 lease optimization,
//! Poisson/uniform/Zipf samplers, and mergeable latency recorders with
//! reservoir-sampled percentiles.
//!
//! Clients are generic over the protocol through [`ProtocolMsg`], which is
//! implemented here for Canopus, EPaxos, and the Zab/ZooKeeper model — so
//! every figure drives all protocols with byte-identical workloads.

#![warn(missing_docs)]

pub mod client;
pub mod dist;
pub mod latency;
pub mod sessions;

pub use client::{
    ClosedLoopClient, ClosedLoopConfig, OpenLoopClient, OpenLoopConfig, PressurePolicy,
    PressureProbe, ProtocolMsg,
};
pub use dist::{poisson, KeyDist};
pub use latency::LatencyRecorder;
pub use sessions::{SessionMux, SessionMuxConfig};
