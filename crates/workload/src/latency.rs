//! Latency accounting: weighted counters plus reservoir sampling for
//! percentiles.
//!
//! The paper reports *median request completion time* and throughput at
//! the knee of the latency curve (§8.1). Recorders are cheap enough to
//! update per reply at millions of represented requests per second, keep a
//! bounded reservoir for percentile estimates, and merge across clients.

use canopus_sim::{Dur, Time};
use rand::rngs::SmallRng;
use rand::Rng;

/// Default reservoir capacity.
pub const DEFAULT_RESERVOIR: usize = 4096;

/// Online latency statistics with reservoir-sampled percentiles.
#[derive(Clone, Debug)]
pub struct LatencyRecorder {
    completed: u64,
    sum_ns: u128,
    max_ns: u64,
    reservoir: Vec<u64>,
    cap: usize,
    seen: u64,
    first: Option<Time>,
    last: Option<Time>,
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        LatencyRecorder::new(DEFAULT_RESERVOIR)
    }
}

impl LatencyRecorder {
    /// Creates a recorder with the given reservoir capacity.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0);
        LatencyRecorder {
            completed: 0,
            sum_ns: 0,
            max_ns: 0,
            reservoir: Vec::with_capacity(cap.min(1024)),
            cap,
            seen: 0,
            first: None,
            last: None,
        }
    }

    /// Records one reply standing for `weight` client requests completing
    /// with latency `lat` at time `at`.
    ///
    /// The reservoir must be weighted per *request*, not per reply —
    /// synthetic read and write batches carry different weights, and an
    /// unweighted reservoir would skew the combined median towards the
    /// rarer class. Each represented request is one algorithm-R insertion,
    /// capped to bound per-reply cost (weights within one workload stay in
    /// proportion far below the cap).
    pub fn record(&mut self, lat: Dur, weight: u32, at: Time, rng: &mut SmallRng) {
        self.completed += weight as u64;
        self.sum_ns += lat.as_nanos() as u128 * weight as u128;
        self.max_ns = self.max_ns.max(lat.as_nanos());
        if self.first.is_none() {
            self.first = Some(at);
        }
        self.last = Some(at);
        let insertions = weight.clamp(1, 256);
        for _ in 0..insertions {
            self.seen += 1;
            if self.reservoir.len() < self.cap {
                self.reservoir.push(lat.as_nanos());
            } else {
                let j = rng.gen_range(0..self.seen);
                if (j as usize) < self.cap {
                    self.reservoir[j as usize] = lat.as_nanos();
                }
            }
        }
    }

    /// Total client requests completed (weighted).
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Mean latency, if anything was recorded.
    pub fn mean(&self) -> Option<Dur> {
        if self.completed == 0 {
            return None;
        }
        Some(Dur::nanos((self.sum_ns / self.completed as u128) as u64))
    }

    /// Maximum observed latency.
    pub fn max(&self) -> Option<Dur> {
        if self.completed == 0 {
            None
        } else {
            Some(Dur::nanos(self.max_ns))
        }
    }

    /// Estimated `p`-th percentile (0 < p ≤ 100) from the reservoir.
    pub fn percentile(&self, p: f64) -> Option<Dur> {
        if self.reservoir.is_empty() {
            return None;
        }
        let mut sorted = self.reservoir.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        Some(Dur::nanos(sorted[rank.min(sorted.len() - 1)]))
    }

    /// Median latency (the paper's headline metric).
    pub fn median(&self) -> Option<Dur> {
        self.percentile(50.0)
    }

    /// The first/last record timestamps (the measurement window).
    pub fn window(&self) -> Option<(Time, Time)> {
        Some((self.first?, self.last?))
    }

    /// Achieved completion rate over the measurement window, in requests
    /// per second.
    pub fn rate_per_sec(&self) -> Option<f64> {
        let (first, last) = self.window()?;
        let span = last.saturating_since(first);
        if span.is_zero() {
            return None;
        }
        Some(self.completed as f64 / span.as_secs_f64())
    }

    /// Merges another recorder into this one.
    ///
    /// When the combined reservoir overflows, the merged sample set is
    /// rebuilt by sampling each slot from the two sides with probability
    /// proportional to how many insertions each has *seen* — naive
    /// concatenate-and-truncate would bias chains of merges towards the
    /// most recently merged recorder (observed as a wrong combined median
    /// when one datacenter's clients are merged last).
    pub fn merge(&mut self, other: &LatencyRecorder, rng: &mut SmallRng) {
        self.completed += other.completed;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        self.first = match (self.first, other.first) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.last = match (self.last, other.last) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        if other.reservoir.is_empty() {
            self.seen += other.seen;
            return;
        }
        if self.reservoir.len() + other.reservoir.len() <= self.cap {
            self.reservoir.extend_from_slice(&other.reservoir);
            self.seen += other.seen;
            return;
        }
        let w_self = self.seen.max(1) as f64;
        let w_other = other.seen.max(1) as f64;
        let p_self = w_self / (w_self + w_other);
        let mut merged = Vec::with_capacity(self.cap);
        for _ in 0..self.cap {
            let source = if rng.gen::<f64>() < p_self {
                &self.reservoir
            } else {
                &other.reservoir
            };
            merged.push(source[rng.gen_range(0..source.len())]);
        }
        self.reservoir = merged;
        self.seen += other.seen;
    }

    /// Discards all samples (used to drop warmup).
    pub fn reset(&mut self) {
        *self = LatencyRecorder::new(self.cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    fn t(ms: u64) -> Time {
        Time::ZERO + Dur::millis(ms)
    }

    #[test]
    fn counts_and_mean() {
        let mut r = LatencyRecorder::default();
        let mut g = rng();
        r.record(Dur::millis(2), 1, t(1), &mut g);
        r.record(Dur::millis(4), 3, t(2), &mut g);
        assert_eq!(r.completed(), 4);
        assert_eq!(r.mean(), Some(Dur::from_millis_f64(3.5)));
        assert_eq!(r.max(), Some(Dur::millis(4)));
    }

    #[test]
    fn median_of_uniform_samples() {
        let mut r = LatencyRecorder::default();
        let mut g = rng();
        for i in 1..=101u64 {
            r.record(Dur::millis(i), 1, t(i), &mut g);
        }
        let median = r.median().unwrap();
        assert_eq!(median, Dur::millis(51));
        assert_eq!(r.percentile(100.0), Some(Dur::millis(101)));
    }

    #[test]
    fn reservoir_bounds_memory() {
        let mut r = LatencyRecorder::new(64);
        let mut g = rng();
        for i in 0..10_000u64 {
            r.record(Dur::micros(i), 1, t(i), &mut g);
        }
        assert_eq!(r.reservoir.len(), 64);
        assert_eq!(r.completed(), 10_000);
        // Percentiles still roughly track the distribution.
        let p50 = r.median().unwrap().as_micros();
        assert!((2_000..8_000).contains(&p50), "p50 ~ 5000, got {p50}");
    }

    #[test]
    fn rate_over_window() {
        let mut r = LatencyRecorder::default();
        let mut g = rng();
        for i in 0..=1000u64 {
            r.record(Dur::millis(1), 1, t(i), &mut g);
        }
        // 1001 requests over 1 second.
        let rate = r.rate_per_sec().unwrap();
        assert!((rate - 1001.0).abs() < 2.0, "rate={rate}");
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyRecorder::new(128);
        let mut b = LatencyRecorder::new(128);
        let mut g = rng();
        for i in 0..100u64 {
            a.record(Dur::millis(1), 1, t(i), &mut g);
            b.record(Dur::millis(3), 1, t(i + 50), &mut g);
        }
        a.merge(&b, &mut g);
        assert_eq!(a.completed(), 200);
        assert_eq!(a.mean(), Some(Dur::millis(2)));
        let (first, last) = a.window().unwrap();
        assert_eq!(first, t(0));
        assert_eq!(last, t(149));
    }

    #[test]
    fn empty_recorder_yields_none() {
        let r = LatencyRecorder::default();
        assert!(r.mean().is_none());
        assert!(r.median().is_none());
        assert!(r.rate_per_sec().is_none());
    }
}
