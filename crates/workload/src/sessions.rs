//! Massive client-session multiplexing for live-scale runs.
//!
//! The paper's evaluation talks about *clients* in the hundreds; a live
//! 100+ node cluster on one machine wants *hundreds of thousands* of
//! concurrent sessions, which rules out any thread-per-client or
//! process-per-client model. [`SessionMux`] hosts an arbitrary number of
//! closed-loop sessions inside one [`Process`]: each session is ~32 bytes
//! of state, ops are scheduled on a coarse tick wheel (a `BTreeMap`
//! bucketed by tick, so an idle mux does no per-session work), and every
//! reply is routed back by op id alone — session `s` issues ops
//! `((s + 1) << 32) | seq`, so the wire carries no extra routing state.
//!
//! Backpressure-awareness matches [`crate::client::OpenLoopClient`]: an
//! installed [`PressureProbe`] defers due issues tick by tick while the
//! transport is saturated, so a slow consensus core degrades session
//! latency instead of growing an unbounded send queue.

use bytes::Bytes;
use canopus_kv::{ClientRequest, Op, ShardRouter};
use canopus_sim::{impl_process_any, Context, Dur, NodeId, Process, Time, Timer};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

use crate::client::{PressureProbe, ProtocolMsg};
use crate::latency::LatencyRecorder;

/// Bits of op id reserved for a session's own op counter.
const SEQ_BITS: u32 = 32;

/// Parameters for a [`SessionMux`].
#[derive(Clone, Debug)]
pub struct SessionMuxConfig {
    /// Number of concurrent closed-loop sessions hosted.
    pub sessions: usize,
    /// Targets, assigned round-robin: session `s` talks to
    /// `targets[s % targets.len()]` for its whole life.
    pub targets: Vec<NodeId>,
    /// Pause between a session completing (or timing out) an op and
    /// issuing its next one.
    pub think_time: Dur,
    /// Give up on an op after this long and issue the next one.
    pub op_timeout: Dur,
    /// Scheduling granularity: due ops are batched per tick.
    pub tick: Dur,
    /// Fraction of ops that are writes.
    pub write_ratio: f64,
    /// Value size for writes.
    pub value_bytes: usize,
    /// Distinct keys each session cycles through.
    pub keys_per_session: u64,
    /// First key this mux uses — give co-hosted muxes disjoint bases.
    pub key_base: u64,
    /// Sessions issue their first op spread uniformly over this window,
    /// so a hundred thousand sessions do not arrive as one burst.
    pub ramp: Dur,
    /// Stop issuing at this instant (sessions quiesce; replies still
    /// complete). The default never stops.
    pub stop_at: Time,
    /// Latency samples before this time are discarded.
    pub warmup: Dur,
    /// Key-space shards the deployment runs (1 = unsharded). Used only
    /// for per-shard accounting — routing itself is the engine's job —
    /// so the mux can report committed throughput per shard.
    pub shards: u16,
}

impl Default for SessionMuxConfig {
    fn default() -> Self {
        SessionMuxConfig {
            sessions: 1000,
            targets: vec![NodeId(0)],
            think_time: Dur::millis(50),
            op_timeout: Dur::secs(2),
            tick: Dur::millis(5),
            write_ratio: 0.5,
            value_bytes: 8,
            keys_per_session: 1,
            key_base: 1,
            ramp: Dur::millis(500),
            stop_at: Time::from_nanos(u64::MAX),
            warmup: Dur::ZERO,
            shards: 1,
        }
    }
}

/// One hosted session: closed loop, at most one op outstanding.
#[derive(Clone, Copy, Default)]
struct Session {
    /// Ops issued so far; the current outstanding op (if any) is `seq`.
    seq: u32,
    outstanding: bool,
    issued_at: Time,
    is_write: bool,
    completed: u32,
    /// Shard owning the outstanding op's key.
    shard: u16,
}

/// A due event on the tick wheel.
enum Due {
    /// Session may issue its next op.
    Issue(u32),
    /// The session's op `seq` times out if still outstanding.
    Expire(u32, u32),
}

/// Hundreds of thousands of closed-loop client sessions in one process.
pub struct SessionMux<M: ProtocolMsg> {
    cfg: SessionMuxConfig,
    rng: SmallRng,
    sessions: Vec<Session>,
    wheel: BTreeMap<u64, Vec<Due>>,
    probe: Option<PressureProbe>,
    /// Ops issued across all sessions.
    pub issued: u64,
    /// Ops completed (a reply arrived before the timeout).
    pub completed: u64,
    /// Ops abandoned at the timeout.
    pub timeouts: u64,
    /// Issue opportunities pushed back a tick because the transport was
    /// saturated.
    pub deferred: u64,
    /// Replies that arrived after their op had already timed out.
    pub late: u64,
    /// Completion latency across all sessions (post-warmup).
    pub latency: LatencyRecorder,
    outstanding_now: u64,
    peak_outstanding: u64,
    router: ShardRouter,
    /// `(issued, completed)` per shard, indexed by shard id.
    per_shard: Vec<(u64, u64)>,
    _marker: std::marker::PhantomData<fn() -> M>,
}

impl<M: ProtocolMsg> SessionMux<M> {
    /// Creates the mux; sessions are inert until the process starts.
    pub fn new(cfg: SessionMuxConfig, seed: u64) -> Self {
        assert!(!cfg.targets.is_empty(), "at least one target");
        assert!(
            cfg.sessions < (1usize << 31),
            "session index must fit the op-id namespace"
        );
        let sessions = vec![Session::default(); cfg.sessions];
        let shards = cfg.shards.max(1);
        SessionMux {
            router: ShardRouter::new(shards),
            per_shard: vec![(0, 0); shards as usize],
            cfg,
            rng: SmallRng::seed_from_u64(seed),
            sessions,
            wheel: BTreeMap::new(),
            probe: None,
            issued: 0,
            completed: 0,
            timeouts: 0,
            deferred: 0,
            late: 0,
            latency: LatencyRecorder::default(),
            outstanding_now: 0,
            peak_outstanding: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Installs a backpressure probe (see [`PressureProbe`]): while it
    /// reports saturation, due issues are deferred one tick at a time.
    pub fn with_pressure(mut self, probe: PressureProbe) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Sessions hosted.
    pub fn sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Ops currently outstanding.
    pub fn outstanding(&self) -> u64 {
        self.outstanding_now
    }

    /// High-water mark of concurrently outstanding ops.
    pub fn peak_outstanding(&self) -> u64 {
        self.peak_outstanding
    }

    /// Sessions that completed at least one op — the "sustained" count a
    /// scale run reports.
    pub fn sessions_served(&self) -> u64 {
        self.sessions.iter().filter(|s| s.completed > 0).count() as u64
    }

    /// `(issued, completed)` per key-space shard, indexed by shard id.
    /// With `shards == 1` this is the aggregate.
    pub fn per_shard_counts(&self) -> &[(u64, u64)] {
        &self.per_shard
    }

    fn tick_index(&self, at: Time) -> u64 {
        at.as_nanos() / self.cfg.tick.as_nanos().max(1)
    }

    fn schedule(&mut self, at: Time, due: Due) {
        let idx = self.tick_index(at);
        self.wheel.entry(idx).or_default().push(due);
    }

    fn issue(&mut self, s: u32, ctx: &mut Context<'_, M>) {
        let now = ctx.now();
        let cfg_keys = self.cfg.keys_per_session.max(1);
        let is_write = self.rng.gen::<f64>() < self.cfg.write_ratio;
        let sess = &mut self.sessions[s as usize];
        sess.seq += 1;
        sess.outstanding = true;
        sess.issued_at = now;
        sess.is_write = is_write;
        let seq = sess.seq;
        let op_id = ((s as u64 + 1) << SEQ_BITS) | seq as u64;
        let key = self.cfg.key_base + s as u64 * cfg_keys + (seq as u64 % cfg_keys);
        let shard = self.router.shard_of_key(key);
        sess.shard = shard;
        self.per_shard[shard as usize].0 += 1;
        let op = if is_write {
            Op::Put {
                key,
                value: Bytes::from(op_id.to_le_bytes().to_vec()),
            }
        } else {
            Op::Get { key }
        };
        let target = self.cfg.targets[s as usize % self.cfg.targets.len()];
        ctx.send(
            target,
            M::request(ClientRequest {
                client: ctx.id(),
                op_id,
                op,
            }),
        );
        self.issued += 1;
        self.outstanding_now += 1;
        self.peak_outstanding = self.peak_outstanding.max(self.outstanding_now);
        // `max(tick)` keeps a degenerate zero timeout from expiring in the
        // bucket currently being drained.
        let expire_at = now + self.cfg.op_timeout.max(self.cfg.tick);
        self.schedule(expire_at, Due::Expire(s, seq));
    }
}

impl<M: ProtocolMsg + 'static> Process<M> for SessionMux<M> {
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        let n = self.sessions.len().max(1) as u64;
        let ramp = self.cfg.ramp.as_nanos();
        for s in 0..self.sessions.len() as u32 {
            let phase = Dur::nanos(ramp * s as u64 / n);
            let at = ctx.now() + phase;
            self.schedule(at, Due::Issue(s));
        }
        ctx.set_timer(self.cfg.tick, 0);
    }

    fn on_timer(&mut self, _t: Timer, ctx: &mut Context<'_, M>) {
        let now = ctx.now();
        let horizon = self.tick_index(now);
        let saturated = self.probe.as_ref().is_some_and(|p| p());
        while let Some(entry) = self.wheel.first_entry() {
            if *entry.key() > horizon {
                break;
            }
            let batch = entry.remove();
            for due in batch {
                match due {
                    Due::Issue(s) => {
                        if now >= self.cfg.stop_at {
                            continue; // session quiesces
                        }
                        if saturated {
                            self.deferred += 1;
                            let at = now + self.cfg.tick;
                            self.schedule(at, Due::Issue(s));
                        } else {
                            self.issue(s, ctx);
                        }
                    }
                    Due::Expire(s, seq) => {
                        let sess = &mut self.sessions[s as usize];
                        if sess.outstanding && sess.seq == seq {
                            sess.outstanding = false;
                            self.timeouts += 1;
                            self.outstanding_now -= 1;
                            let at = now + self.cfg.think_time;
                            self.schedule(at, Due::Issue(s));
                        }
                    }
                }
            }
        }
        ctx.set_timer(self.cfg.tick, 0);
    }

    fn on_message(&mut self, _from: NodeId, msg: M, ctx: &mut Context<'_, M>) {
        let Some(reply) = msg.reply() else { return };
        let Some(s) = (reply.op_id >> SEQ_BITS)
            .checked_sub(1)
            .filter(|&s| (s as usize) < self.sessions.len())
        else {
            return;
        };
        let seq = (reply.op_id & ((1u64 << SEQ_BITS) - 1)) as u32;
        let weight = reply.weight;
        let now = ctx.now();
        let sess = &mut self.sessions[s as usize];
        if !sess.outstanding || sess.seq != seq {
            self.late += 1;
            return;
        }
        sess.outstanding = false;
        sess.completed += 1;
        self.completed += 1;
        self.per_shard[sess.shard as usize].1 += 1;
        self.outstanding_now -= 1;
        let lat = now.saturating_since(sess.issued_at);
        if now >= Time::ZERO + self.cfg.warmup {
            self.latency.record(lat, weight, now, &mut self.rng);
        }
        let at = now + self.cfg.think_time;
        self.schedule(at, Due::Issue(s as u32));
    }

    impl_process_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use canopus::{CanopusConfig, CanopusMsg, CanopusNode, EmulationTable, LotShape};
    use canopus_sim::{Simulation, UniformFabric};

    fn canopus_trio(seed: u64) -> Simulation<CanopusMsg, UniformFabric> {
        let table = EmulationTable::new(
            LotShape::flat(1),
            vec![vec![NodeId(0), NodeId(1), NodeId(2)]],
        );
        let mut sim = Simulation::new(UniformFabric::new(Dur::micros(50)), seed);
        for i in 0..3u32 {
            sim.add_node(Box::new(CanopusNode::new(
                NodeId(i),
                table.clone(),
                CanopusConfig::default(),
                seed,
            )));
        }
        sim
    }

    #[test]
    fn thousands_of_sessions_complete_on_one_process() {
        let mut sim = canopus_trio(11);
        let cfg = SessionMuxConfig {
            sessions: 2000,
            targets: vec![NodeId(0), NodeId(1), NodeId(2)],
            think_time: Dur::millis(20),
            op_timeout: Dur::millis(500),
            tick: Dur::millis(2),
            ramp: Dur::millis(100),
            ..SessionMuxConfig::default()
        };
        let c = sim.add_node(Box::new(SessionMux::<CanopusMsg>::new(cfg, 5)));
        sim.run_for(Dur::millis(400));
        let mux = sim.node::<SessionMux<CanopusMsg>>(c);
        assert!(mux.completed > 4000, "ops completed: {}", mux.completed);
        assert_eq!(
            mux.sessions_served(),
            2000,
            "every session completed at least one op"
        );
        assert_eq!(
            mux.issued,
            mux.completed + mux.timeouts + mux.outstanding(),
            "op accounting balances"
        );
        assert!(mux.latency.median().is_some());
    }

    #[test]
    fn pressure_defers_issues_until_release() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let mut sim = canopus_trio(12);
        let pressed = Arc::new(AtomicBool::new(true));
        let flag = Arc::clone(&pressed);
        let cfg = SessionMuxConfig {
            sessions: 500,
            targets: vec![NodeId(0)],
            think_time: Dur::millis(10),
            ramp: Dur::millis(10),
            ..SessionMuxConfig::default()
        };
        let c = sim.add_node(Box::new(
            SessionMux::<CanopusMsg>::new(cfg, 5)
                .with_pressure(Arc::new(move || flag.load(Ordering::Relaxed))),
        ));
        sim.run_for(Dur::millis(100));
        {
            let mux = sim.node::<SessionMux<CanopusMsg>>(c);
            assert_eq!(mux.issued, 0, "saturated mux issues nothing");
            assert!(mux.deferred > 0, "issues deferred: {}", mux.deferred);
        }
        pressed.store(false, Ordering::Relaxed);
        sim.run_for(Dur::millis(200));
        let mux = sim.node::<SessionMux<CanopusMsg>>(c);
        assert!(mux.completed > 500, "sessions drained: {}", mux.completed);
        assert_eq!(mux.sessions_served(), 500);
    }

    #[test]
    fn sessions_quiesce_at_stop() {
        let mut sim = canopus_trio(13);
        let cfg = SessionMuxConfig {
            sessions: 100,
            targets: vec![NodeId(0)],
            think_time: Dur::millis(5),
            ramp: Dur::millis(10),
            stop_at: Time::ZERO + Dur::millis(100),
            ..SessionMuxConfig::default()
        };
        let c = sim.add_node(Box::new(SessionMux::<CanopusMsg>::new(cfg, 5)));
        sim.run_for(Dur::millis(150));
        let issued_at_stop = sim.node::<SessionMux<CanopusMsg>>(c).issued;
        sim.run_for(Dur::millis(200));
        let mux = sim.node::<SessionMux<CanopusMsg>>(c);
        assert_eq!(mux.issued, issued_at_stop, "no issues after stop_at");
        assert_eq!(mux.outstanding(), 0, "everything drained");
    }
}
