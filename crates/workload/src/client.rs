//! Client processes reproducing the paper's workload model (§8.1/§8.2).
//!
//! * [`OpenLoopClient`] — Poisson arrivals at a fixed offered rate,
//!   independent of response times (the paper's load-generation model:
//!   "clients send requests to nodes according to a Poisson process at a
//!   given inter-arrival rate"). One process stands for all clients
//!   attached to one protocol node; arrivals within each 1 ms tick are
//!   aggregated into synthetic batches so multi-million-request-per-second
//!   sweeps stay tractable (see `canopus-kv`'s synthetic ops).
//! * [`ClosedLoopClient`] — one-outstanding-request clients issuing real
//!   `Put`/`Get` operations; used for precise latency curves and for the
//!   lease optimization, which requires blocking clients (§7.2).
//!
//! Both are generic over the protocol via [`ProtocolMsg`].

use bytes::Bytes;
use canopus::CanopusMsg;
use canopus_epaxos::EpaxosMsg;
use canopus_kv::{ClientReply, ClientRequest, Op};
use canopus_sim::{impl_process_any, Context, Dur, NodeId, Payload, Process, Time, Timer};
use canopus_zab::ZabMsg;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;

use crate::dist::{poisson, KeyDist};
use crate::latency::LatencyRecorder;

/// Bridges the shared client API into each protocol's message enum.
pub trait ProtocolMsg: Payload + Sized {
    /// Wraps a client request.
    fn request(req: ClientRequest) -> Self;
    /// Unwraps a reply, if this message is one.
    fn reply(&self) -> Option<&ClientReply>;
}

impl ProtocolMsg for CanopusMsg {
    fn request(req: ClientRequest) -> Self {
        CanopusMsg::Request(req)
    }
    fn reply(&self) -> Option<&ClientReply> {
        match self {
            CanopusMsg::Reply(r) => Some(r),
            _ => None,
        }
    }
}

impl ProtocolMsg for canopus::ShardMsg {
    fn request(req: ClientRequest) -> Self {
        canopus::ShardMsg::Client(req)
    }
    fn reply(&self) -> Option<&ClientReply> {
        match self {
            canopus::ShardMsg::Reply(r) => Some(r),
            _ => None,
        }
    }
}

impl ProtocolMsg for EpaxosMsg {
    fn request(req: ClientRequest) -> Self {
        EpaxosMsg::Request(req)
    }
    fn reply(&self) -> Option<&ClientReply> {
        match self {
            EpaxosMsg::Reply(r) => Some(r),
            _ => None,
        }
    }
}

impl ProtocolMsg for ZabMsg {
    fn request(req: ClientRequest) -> Self {
        ZabMsg::Request(req)
    }
    fn reply(&self) -> Option<&ClientReply> {
        match self {
            ZabMsg::Reply(r) => Some(r),
            _ => None,
        }
    }
}

/// A cheap, callable check for transport saturation, polled by clients
/// once per tick. A live deployment wires this to the TCP transport's
/// `SendGate` (`canopus_net::SendGate::is_saturated`); simulated runs
/// leave it unset. The indirection keeps this crate free of any
/// transport dependency.
pub type PressureProbe = Arc<dyn Fn() -> bool + Send + Sync>;

/// What an open-loop client does with a tick's arrivals while the
/// transport reports backpressure.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PressurePolicy {
    /// Drop the arrivals (counted in `shed`). This preserves the open-loop
    /// contract — offered load is independent of the system — and models
    /// clients whose requests die in a full kernel buffer.
    Shed,
    /// Carry the arrivals forward and issue them once pressure clears
    /// (counted in `deferred`). Offered totals are preserved; the burst on
    /// release models queued-up clients draining.
    Defer,
}

/// Open-loop workload parameters.
#[derive(Clone, Debug)]
pub struct OpenLoopConfig {
    /// Offered load in requests per second (for this client process).
    pub rate_per_sec: f64,
    /// Fraction of requests that are writes (the paper sweeps 1–100 %).
    pub write_ratio: f64,
    /// Arrival aggregation tick.
    pub tick: Dur,
    /// Bytes per represented request (16-byte kv pairs in the paper).
    pub op_bytes: u16,
    /// Samples recorded before this time are discarded (warmup).
    pub warmup: Dur,
    /// Largest number of requests folded into one synthetic op. Zero (the
    /// default) aggregates a whole tick's arrivals into a single op — the
    /// seed behavior. A positive value splits each tick's draws into chunks
    /// of at most this many requests, each tracked (and latency-recorded)
    /// as its own wire-level request; `1` disables aggregation entirely and
    /// models one request per client op, the unbatched baseline the
    /// `throughput_knee` bench measures against.
    pub max_batch: u32,
    /// Reaction to transport backpressure, consulted only when a
    /// [`PressureProbe`] is installed ([`OpenLoopClient::with_pressure`]).
    pub on_pressure: PressurePolicy,
    /// Key-space shards the synthetic stream is spread across. With the
    /// default `1` the client behaves exactly as before sharding existed
    /// (same RNG stream, same wire traffic). Above 1, each tick's
    /// arrivals are split across `shards` sub-streams, each issued under
    /// a distinct *pseudo* client identity chosen so the sharded engine's
    /// client-hash router lands it on the intended shard; only meaningful
    /// against a shard-parallel engine (which routes replies back to the
    /// real sender).
    pub shards: u16,
    /// Zipf exponent for the per-shard split: `None` spreads arrivals
    /// uniformly, `Some(theta)` gives shard `s` a share ∝ 1/(s+1)^theta
    /// (shard 0 hottest) — the hot-shard-skew workload.
    pub shard_theta: Option<f64>,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            rate_per_sec: 10_000.0,
            write_ratio: 0.2,
            tick: Dur::millis(1),
            op_bytes: 16,
            warmup: Dur::millis(200),
            max_batch: 0,
            on_pressure: PressurePolicy::Shed,
            shards: 1,
            shard_theta: None,
        }
    }
}

/// Aggregated open-loop Poisson client bound to one protocol node.
pub struct OpenLoopClient<M: ProtocolMsg> {
    cfg: OpenLoopConfig,
    target: NodeId,
    rng: SmallRng,
    next_op_id: u64,
    outstanding: BTreeMap<u64, (Time, bool)>,
    /// Completion stats for writes.
    pub writes: LatencyRecorder,
    /// Completion stats for reads.
    pub reads: LatencyRecorder,
    /// Requests issued (weighted), including warmup.
    pub offered: u64,
    /// Requests dropped because the transport was saturated
    /// ([`PressurePolicy::Shed`]).
    pub shed: u64,
    /// Requests carried across at least one saturated tick
    /// ([`PressurePolicy::Defer`]).
    pub deferred: u64,
    probe: Option<PressureProbe>,
    carry_writes: u64,
    carry_reads: u64,
    /// Pseudo client id per shard (empty when `cfg.shards <= 1`),
    /// resolved lazily on start from the process's real id.
    shard_ids: Vec<NodeId>,
    /// Cumulative per-shard traffic share (uniform or Zipf-skewed).
    shard_cdf: Vec<f64>,
    _marker: std::marker::PhantomData<fn() -> M>,
}

impl<M: ProtocolMsg> OpenLoopClient<M> {
    /// Creates a client targeting `target`.
    pub fn new(target: NodeId, cfg: OpenLoopConfig, seed: u64) -> Self {
        OpenLoopClient {
            cfg,
            target,
            rng: SmallRng::seed_from_u64(seed),
            next_op_id: 0,
            outstanding: BTreeMap::new(),
            writes: LatencyRecorder::default(),
            reads: LatencyRecorder::default(),
            offered: 0,
            shed: 0,
            deferred: 0,
            probe: None,
            carry_writes: 0,
            carry_reads: 0,
            shard_ids: Vec::new(),
            shard_cdf: Vec::new(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Installs a backpressure probe: each tick whose probe reports
    /// saturation has its arrivals shed or deferred per
    /// [`OpenLoopConfig::on_pressure`] instead of being queued blindly
    /// into a transport that cannot drain them. The Poisson draws still
    /// happen on saturated ticks, so installing a probe never perturbs
    /// the RNG stream of an unsaturated run.
    pub fn with_pressure(mut self, probe: PressureProbe) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Write + read recorders merged (total completion view).
    pub fn total(&self) -> LatencyRecorder {
        let mut merged = self.writes.clone();
        let mut rng = SmallRng::seed_from_u64(0);
        merged.merge(&self.reads, &mut rng);
        merged
    }

    /// Resolves the per-shard pseudo identities and traffic shares. The
    /// pseudo id for shard `s` is the first id in this client's private
    /// block (`(real_id + 1) << 16`) that the router's client hash maps
    /// to `s` — a pure function of `(real_id, shards)`, so it survives
    /// restarts and is identical on every run.
    fn resolve_shards(&mut self, me: NodeId) {
        if self.cfg.shards <= 1 {
            return;
        }
        let shards = self.cfg.shards;
        let router = canopus_kv::ShardRouter::new(shards);
        let base = (me.0 + 1) << 16;
        self.shard_ids = (0..shards)
            .map(|s| {
                (0..1u32 << 16)
                    .map(|k| NodeId(base + k))
                    .find(|&c| router.shard_of_client(c) == s)
                    .expect("client hash covers every shard well before 2^16 probes")
            })
            .collect();
        let weights: Vec<f64> = (0..shards)
            .map(|s| match self.cfg.shard_theta {
                None => 1.0,
                Some(theta) => 1.0 / f64::from(s + 1).powf(theta),
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        self.shard_cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        if let Some(last) = self.shard_cdf.last_mut() {
            *last = 1.0;
        }
    }

    /// Splits `count` arrivals across shards by largest-cumulative-share
    /// rounding: deterministic, exact (`sum == count`), no RNG draws.
    fn split_across_shards(&self, count: u64) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.shard_cdf.len());
        let mut prev = 0u64;
        for &cdf in &self.shard_cdf {
            let upto = ((count as f64) * cdf).round() as u64;
            out.push(upto.saturating_sub(prev));
            prev = upto.max(prev);
        }
        out
    }

    fn issue_tick(&mut self, writes: u64, reads: u64, ctx: &mut Context<'_, M>) {
        if self.shard_ids.is_empty() {
            self.send_batch(writes, true, ctx.id(), ctx);
            self.send_batch(reads, false, ctx.id(), ctx);
            return;
        }
        let w_split = self.split_across_shards(writes);
        let r_split = self.split_across_shards(reads);
        for s in 0..self.shard_ids.len() {
            let as_client = self.shard_ids[s];
            self.send_batch(w_split[s], true, as_client, ctx);
            self.send_batch(r_split[s], false, as_client, ctx);
        }
    }

    fn send_batch(
        &mut self,
        count: u64,
        is_write: bool,
        as_client: NodeId,
        ctx: &mut Context<'_, M>,
    ) {
        if count == 0 {
            return;
        }
        if self.cfg.max_batch > 0 {
            let chunk = u64::from(self.cfg.max_batch);
            let mut left = count;
            while left > 0 {
                let n = left.min(chunk);
                left -= n;
                self.send_one(n, is_write, as_client, ctx);
            }
        } else {
            self.send_one(count, is_write, as_client, ctx);
        }
    }

    fn send_one(
        &mut self,
        count: u64,
        is_write: bool,
        as_client: NodeId,
        ctx: &mut Context<'_, M>,
    ) {
        self.next_op_id += 1;
        let op_id = self.next_op_id;
        let op = if is_write {
            Op::SyntheticWrite {
                count: count as u32,
                op_bytes: self.cfg.op_bytes,
            }
        } else {
            Op::SyntheticRead {
                count: count as u32,
            }
        };
        self.offered += count;
        self.outstanding.insert(op_id, (ctx.now(), is_write));
        ctx.send(
            self.target,
            M::request(ClientRequest {
                client: as_client,
                op_id,
                op,
            }),
        );
    }
}

impl<M: ProtocolMsg + 'static> Process<M> for OpenLoopClient<M> {
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        self.resolve_shards(ctx.id());
        // Stagger tick phase across clients to avoid lockstep arrivals.
        let phase = Dur::nanos(self.rng.gen_range(0..self.cfg.tick.as_nanos().max(1)));
        ctx.set_timer(phase, 0);
    }

    fn on_timer(&mut self, _t: Timer, ctx: &mut Context<'_, M>) {
        let dt = self.cfg.tick.as_secs_f64();
        let write_mean = self.cfg.rate_per_sec * self.cfg.write_ratio * dt;
        let read_mean = self.cfg.rate_per_sec * (1.0 - self.cfg.write_ratio) * dt;
        let nw = poisson(&mut self.rng, write_mean);
        let nr = poisson(&mut self.rng, read_mean);
        let saturated = self.probe.as_ref().is_some_and(|p| p());
        if saturated {
            match self.cfg.on_pressure {
                PressurePolicy::Shed => self.shed += nw + nr,
                PressurePolicy::Defer => {
                    self.deferred += nw + nr;
                    self.carry_writes += nw;
                    self.carry_reads += nr;
                }
            }
        } else {
            let nw = nw + std::mem::take(&mut self.carry_writes);
            let nr = nr + std::mem::take(&mut self.carry_reads);
            self.issue_tick(nw, nr, ctx);
        }
        ctx.set_timer(self.cfg.tick, 0);
    }

    fn on_message(&mut self, _from: NodeId, msg: M, ctx: &mut Context<'_, M>) {
        let Some(reply) = msg.reply() else { return };
        let Some((sent, is_write)) = self.outstanding.remove(&reply.op_id) else {
            return;
        };
        if ctx.now() < Time::ZERO + self.cfg.warmup {
            return;
        }
        let lat = ctx.now().saturating_since(sent);
        let recorder = if is_write {
            &mut self.writes
        } else {
            &mut self.reads
        };
        recorder.record(lat, reply.weight, ctx.now(), &mut self.rng);
    }

    impl_process_any!();
}

/// Closed-loop workload parameters.
#[derive(Clone, Debug)]
pub struct ClosedLoopConfig {
    /// Fraction of operations that are writes.
    pub write_ratio: f64,
    /// Key popularity.
    pub keys: KeyDist,
    /// Value size for writes.
    pub value_bytes: usize,
    /// Pause between receiving a reply and issuing the next op.
    pub think_time: Dur,
    /// Samples before this time are discarded.
    pub warmup: Dur,
    /// Stop after this many operations (0 = unbounded).
    pub max_ops: u64,
    /// Requests kept in flight at once. 1 (the default) is the strict
    /// blocking client the §7.2 lease optimization assumes; larger values
    /// model a client that pipelines several independent operations, which
    /// pairs with the node-side batching knobs to fill larger proposals.
    pub pipeline: usize,
}

impl Default for ClosedLoopConfig {
    fn default() -> Self {
        ClosedLoopConfig {
            write_ratio: 0.2,
            keys: KeyDist::uniform(1_000_000),
            value_bytes: 8,
            think_time: Dur::ZERO,
            warmup: Dur::millis(100),
            max_ops: 0,
            pipeline: 1,
        }
    }
}

/// A blocking client: one outstanding request at a time (the client model
/// required by the paper's §7.2 lease optimization).
pub struct ClosedLoopClient<M: ProtocolMsg> {
    cfg: ClosedLoopConfig,
    target: NodeId,
    rng: SmallRng,
    next_op_id: u64,
    inflight: BTreeMap<u64, (Time, bool)>,
    /// Completion stats for writes.
    pub writes: LatencyRecorder,
    /// Completion stats for reads.
    pub reads: LatencyRecorder,
    /// All replies in arrival order: `(op_id, at)` — for FIFO checks.
    pub reply_order: Vec<(u64, Time)>,
    _marker: std::marker::PhantomData<fn() -> M>,
}

impl<M: ProtocolMsg> ClosedLoopClient<M> {
    /// Creates a client targeting `target`.
    pub fn new(target: NodeId, cfg: ClosedLoopConfig, seed: u64) -> Self {
        ClosedLoopClient {
            cfg,
            target,
            rng: SmallRng::seed_from_u64(seed),
            next_op_id: 0,
            inflight: BTreeMap::new(),
            writes: LatencyRecorder::default(),
            reads: LatencyRecorder::default(),
            reply_order: Vec::new(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Operations completed (reads + writes).
    pub fn completed(&self) -> u64 {
        self.writes.completed() + self.reads.completed()
    }

    /// Issues operations until the pipeline window is full (or the op cap
    /// is reached). With `pipeline == 1` this is the classic blocking
    /// client: exactly one issue per call.
    fn fill(&mut self, ctx: &mut Context<'_, M>) {
        while self.inflight.len() < self.cfg.pipeline.max(1) {
            if self.cfg.max_ops > 0 && self.next_op_id >= self.cfg.max_ops {
                return;
            }
            self.next_op_id += 1;
            let op_id = self.next_op_id;
            let is_write = self.rng.gen::<f64>() < self.cfg.write_ratio;
            let key = self.cfg.keys.sample(&mut self.rng);
            let op = if is_write {
                Op::Put {
                    key,
                    value: Bytes::from(vec![(op_id % 251) as u8; self.cfg.value_bytes]),
                }
            } else {
                Op::Get { key }
            };
            self.inflight.insert(op_id, (ctx.now(), is_write));
            ctx.send(
                self.target,
                M::request(ClientRequest {
                    client: ctx.id(),
                    op_id,
                    op,
                }),
            );
        }
    }
}

impl<M: ProtocolMsg + 'static> Process<M> for ClosedLoopClient<M> {
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        let phase = Dur::micros(self.rng.gen_range(0..500));
        ctx.set_timer(phase, 0);
    }

    fn on_timer(&mut self, _t: Timer, ctx: &mut Context<'_, M>) {
        self.fill(ctx);
    }

    fn on_message(&mut self, _from: NodeId, msg: M, ctx: &mut Context<'_, M>) {
        let Some(reply) = msg.reply() else { return };
        let Some((sent, is_write)) = self.inflight.remove(&reply.op_id) else {
            return; // stale duplicate
        };
        self.reply_order.push((reply.op_id, ctx.now()));
        if ctx.now() >= Time::ZERO + self.cfg.warmup {
            let lat = ctx.now().saturating_since(sent);
            let recorder = if is_write {
                &mut self.writes
            } else {
                &mut self.reads
            };
            recorder.record(lat, reply.weight, ctx.now(), &mut self.rng);
        }
        if self.cfg.think_time.is_zero() {
            self.fill(ctx);
        } else {
            ctx.set_timer(self.cfg.think_time, 0);
        }
    }

    impl_process_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use canopus::{CanopusConfig, CanopusNode, EmulationTable, LotShape};
    use canopus_sim::{Simulation, UniformFabric};

    fn canopus_pair(seed: u64) -> (Simulation<CanopusMsg, UniformFabric>, Vec<NodeId>) {
        let table = EmulationTable::new(
            LotShape::flat(1),
            vec![vec![NodeId(0), NodeId(1), NodeId(2)]],
        );
        let mut sim = Simulation::new(UniformFabric::new(Dur::micros(50)), seed);
        for i in 0..3u32 {
            sim.add_node(Box::new(CanopusNode::new(
                NodeId(i),
                table.clone(),
                CanopusConfig::default(),
                seed,
            )));
        }
        (sim, vec![NodeId(0), NodeId(1), NodeId(2)])
    }

    #[test]
    fn open_loop_drives_canopus_and_measures() {
        let (mut sim, _) = canopus_pair(1);
        let cfg = OpenLoopConfig {
            rate_per_sec: 20_000.0,
            write_ratio: 0.5,
            warmup: Dur::millis(50),
            ..Default::default()
        };
        let c = sim.add_node(Box::new(OpenLoopClient::<CanopusMsg>::new(
            NodeId(0),
            cfg,
            99,
        )));
        sim.run_for(Dur::millis(400));
        let client = sim.node::<OpenLoopClient<CanopusMsg>>(c);
        assert!(client.writes.completed() > 1000, "writes flowed");
        assert!(client.reads.completed() > 1000, "reads flowed");
        // Offered load ~20k/s over 0.4s = ~8000 requests.
        assert!(
            (6000..10_000).contains(&client.offered),
            "{}",
            client.offered
        );
        assert!(client.writes.median().is_some());
    }

    #[test]
    fn closed_loop_completes_ops_in_order() {
        let (mut sim, _) = canopus_pair(2);
        let cfg = ClosedLoopConfig {
            write_ratio: 0.5,
            keys: KeyDist::uniform(100),
            warmup: Dur::ZERO,
            max_ops: 50,
            ..Default::default()
        };
        let c = sim.add_node(Box::new(ClosedLoopClient::<CanopusMsg>::new(
            NodeId(1),
            cfg,
            7,
        )));
        sim.run_for(Dur::secs(2));
        let client = sim.node::<ClosedLoopClient<CanopusMsg>>(c);
        assert_eq!(client.completed(), 50, "all ops completed");
        // Strictly increasing op ids = FIFO at the client.
        for pair in client.reply_order.windows(2) {
            assert!(pair[0].0 < pair[1].0);
        }
    }

    #[test]
    fn open_loop_max_batch_splits_ticks() {
        let (mut sim, _) = canopus_pair(3);
        let cfg = OpenLoopConfig {
            rate_per_sec: 20_000.0,
            write_ratio: 0.5,
            warmup: Dur::millis(50),
            max_batch: 4,
            ..Default::default()
        };
        let c = sim.add_node(Box::new(OpenLoopClient::<CanopusMsg>::new(
            NodeId(0),
            cfg,
            99,
        )));
        sim.run_for(Dur::millis(300));
        let client = sim.node::<OpenLoopClient<CanopusMsg>>(c);
        // At 20k/s a 1 ms tick draws ~20 arrivals; chunks of ≤4 mean many
        // more distinct tracked requests than ticks, and none heavier than
        // the cap.
        let total = client.total();
        assert!(total.completed() > 1000, "ops flowed");
        // Every wire-level request carries at most `max_batch` arrivals, so
        // the distinct-request count is at least offered/4.
        assert!(
            client.next_op_id >= client.offered / 4,
            "chunking bounded per-request weight: {} ops for {} offered",
            client.next_op_id,
            client.offered
        );
    }

    #[test]
    fn closed_loop_pipeline_keeps_window_full() {
        let (mut sim, _) = canopus_pair(4);
        let cfg = ClosedLoopConfig {
            write_ratio: 0.5,
            keys: KeyDist::uniform(100),
            warmup: Dur::ZERO,
            max_ops: 60,
            pipeline: 4,
            ..Default::default()
        };
        let c = sim.add_node(Box::new(ClosedLoopClient::<CanopusMsg>::new(
            NodeId(1),
            cfg,
            7,
        )));
        sim.run_for(Dur::secs(2));
        let client = sim.node::<ClosedLoopClient<CanopusMsg>>(c);
        assert_eq!(client.completed(), 60, "all ops completed");
        // Replies arrive in op order: Canopus preserves per-client FIFO
        // even with four requests in flight.
        for pair in client.reply_order.windows(2) {
            assert!(pair[0].0 < pair[1].0);
        }
    }

    #[test]
    fn open_loop_sheds_while_saturated() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let (mut sim, _) = canopus_pair(5);
        let pressed = Arc::new(AtomicBool::new(true));
        let flag = Arc::clone(&pressed);
        let cfg = OpenLoopConfig {
            rate_per_sec: 20_000.0,
            warmup: Dur::ZERO,
            ..Default::default()
        };
        let client = OpenLoopClient::<CanopusMsg>::new(NodeId(0), cfg, 9)
            .with_pressure(Arc::new(move || flag.load(Ordering::Relaxed)));
        let c = sim.add_node(Box::new(client));
        sim.run_for(Dur::millis(100));
        {
            let client = sim.node::<OpenLoopClient<CanopusMsg>>(c);
            assert_eq!(client.offered, 0, "saturated ticks issue nothing");
            assert!(client.shed > 1000, "arrivals were shed: {}", client.shed);
        }
        pressed.store(false, Ordering::Relaxed);
        sim.run_for(Dur::millis(200));
        let client = sim.node::<OpenLoopClient<CanopusMsg>>(c);
        // Shed arrivals are gone for good; fresh ticks flow normally.
        assert!(client.offered > 1000, "load resumed: {}", client.offered);
        assert!(client.total().completed() > 0);
    }

    #[test]
    fn open_loop_defers_and_drains_on_release() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let (mut sim, _) = canopus_pair(6);
        let pressed = Arc::new(AtomicBool::new(true));
        let flag = Arc::clone(&pressed);
        let cfg = OpenLoopConfig {
            rate_per_sec: 20_000.0,
            warmup: Dur::ZERO,
            on_pressure: PressurePolicy::Defer,
            ..Default::default()
        };
        let client = OpenLoopClient::<CanopusMsg>::new(NodeId(0), cfg, 9)
            .with_pressure(Arc::new(move || flag.load(Ordering::Relaxed)));
        let c = sim.add_node(Box::new(client));
        sim.run_for(Dur::millis(100));
        let held = {
            let client = sim.node::<OpenLoopClient<CanopusMsg>>(c);
            assert_eq!(client.offered, 0, "saturated ticks issue nothing");
            assert!(
                client.deferred > 1000,
                "arrivals carried: {}",
                client.deferred
            );
            client.deferred
        };
        pressed.store(false, Ordering::Relaxed);
        sim.run_for(Dur::millis(200));
        let client = sim.node::<OpenLoopClient<CanopusMsg>>(c);
        // Everything carried through the saturated window was issued.
        assert!(
            client.offered >= held,
            "carried arrivals drained: {} offered vs {} deferred",
            client.offered,
            client.deferred
        );
        assert!(client.total().completed() > 0);
    }

    #[test]
    fn protocol_msg_bridges() {
        let req = ClientRequest {
            client: NodeId(1),
            op_id: 2,
            op: Op::Get { key: 3 },
        };
        assert!(CanopusMsg::request(req.clone()).reply().is_none());
        assert!(EpaxosMsg::request(req.clone()).reply().is_none());
        assert!(ZabMsg::request(req).reply().is_none());
        let reply = ClientReply {
            op_id: 2,
            weight: 1,
            result: canopus_kv::OpResult::Batch,
        };
        assert!(CanopusMsg::Reply(reply.clone()).reply().is_some());
        assert!(EpaxosMsg::Reply(reply.clone()).reply().is_some());
        assert!(ZabMsg::Reply(reply).reply().is_some());
    }
}
