//! Random samplers: Poisson arrivals and key-popularity distributions.
//!
//! The paper's clients "send requests to nodes according to a Poisson
//! process at a given inter-arrival rate" with keys "randomly selected
//! from 1 million keys" (§8.1) — i.e. uniform popularity, the regime the
//! paper argues PQL-style lease protocols handle poorly. A Zipf sampler is
//! included for skewed-popularity extensions (e.g. lease-mode ablations).

use rand::rngs::SmallRng;
use rand::Rng;

/// Draws a Poisson-distributed count with the given mean.
///
/// Uses Knuth's product method for small means and a normal approximation
/// (rounded, clamped at zero) for large ones — the standard approach when
/// exactness beyond the fourth moment is irrelevant, as in open-loop
/// arrival generation.
pub fn poisson(rng: &mut SmallRng, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if mean < 30.0 {
        let limit = (-mean).exp();
        let mut product: f64 = rng.gen();
        let mut count = 0u64;
        while product > limit {
            product *= rng.gen::<f64>();
            count += 1;
        }
        count
    } else {
        // Box-Muller normal approximation N(mean, mean).
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let sample = mean + z * mean.sqrt();
        sample.round().max(0.0) as u64
    }
}

/// Key popularity distributions.
#[derive(Clone, Debug)]
pub enum KeyDist {
    /// Uniform over `[0, keys)` — the paper's workload.
    Uniform {
        /// Key-space size (the paper uses 1 million).
        keys: u64,
    },
    /// Zipf with exponent `theta` over `[0, keys)`.
    Zipf {
        /// Key-space size.
        keys: u64,
        /// Skew exponent (≈0.99 for typical YCSB-skewed workloads).
        theta: f64,
        /// Precomputed normalization.
        zeta: f64,
    },
}

impl KeyDist {
    /// Uniform keys, as in the paper.
    pub fn uniform(keys: u64) -> KeyDist {
        assert!(keys > 0);
        KeyDist::Uniform { keys }
    }

    /// Zipf-distributed keys (popularity ∝ 1/rank^theta).
    pub fn zipf(keys: u64, theta: f64) -> KeyDist {
        assert!(keys > 0 && theta > 0.0);
        // Harmonic normalization; exact for small spaces, sampled-tail
        // approximation for large ones to keep construction cheap.
        let n = keys.min(1_000_000);
        let mut zeta = 0.0;
        for i in 1..=n {
            zeta += 1.0 / (i as f64).powf(theta);
        }
        KeyDist::Zipf { keys, theta, zeta }
    }

    /// Samples one key.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        match self {
            KeyDist::Uniform { keys } => rng.gen_range(0..*keys),
            KeyDist::Zipf { keys, theta, zeta } => {
                // Inverse-CDF by sequential scan is too slow; use the
                // rejection-free approximation of Gray et al. (1994).
                let n = (*keys).min(1_000_000) as f64;
                let alpha = 1.0 / (1.0 - theta).max(1e-9);
                let eta = (1.0 - (2.0 / n).powf(1.0 - theta))
                    / (1.0 - (1.0f64 / zeta) * (1.0 + 0.5f64.powf(*theta)));
                let u: f64 = rng.gen();
                let uz = u * zeta;
                if uz < 1.0 {
                    return 0;
                }
                if uz < 1.0 + 0.5f64.powf(*theta) {
                    return 1;
                }
                ((n * (eta * u - eta + 1.0).powf(alpha)) as u64).min(keys - 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(3)
    }

    #[test]
    fn poisson_mean_small() {
        let mut g = rng();
        let n = 20_000;
        let total: u64 = (0..n).map(|_| poisson(&mut g, 3.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn poisson_mean_large() {
        let mut g = rng();
        let n = 5_000;
        let total: u64 = (0..n).map(|_| poisson(&mut g, 500.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 500.0).abs() < 5.0, "mean={mean}");
    }

    #[test]
    fn poisson_zero_and_negative() {
        let mut g = rng();
        assert_eq!(poisson(&mut g, 0.0), 0);
        assert_eq!(poisson(&mut g, -5.0), 0);
    }

    #[test]
    fn uniform_covers_space() {
        let d = KeyDist::uniform(10);
        let mut g = rng();
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[d.sample(&mut g) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zipf_skews_towards_low_keys() {
        let d = KeyDist::zipf(1000, 0.99);
        let mut g = rng();
        let mut low = 0;
        let n = 10_000;
        for _ in 0..n {
            if d.sample(&mut g) < 10 {
                low += 1;
            }
        }
        // With theta≈1, the top-10 keys should absorb a large share.
        assert!(
            low > n / 10,
            "zipf skew too weak: {low}/{n} samples in the top 10 keys"
        );
    }

    #[test]
    fn zipf_is_deterministic_per_seed() {
        // Shard routing feeds Zipf-skewed keys into per-shard accounting;
        // the whole pipeline is reproducible only if the sampler is a
        // pure function of (distribution, seed).
        let d = KeyDist::zipf(1_000_000, 0.99);
        let draw = |seed: u64| {
            let mut g = SmallRng::seed_from_u64(seed);
            (0..256).map(|_| d.sample(&mut g)).collect::<Vec<u64>>()
        };
        assert_eq!(draw(7), draw(7), "same seed, same stream");
        assert_ne!(draw(7), draw(8), "streams differ across seeds");
        // Golden prefix: catches silent sampler/rng drift.
        assert_eq!(&draw(7)[..4], &[0, 6, 19737, 295]);
    }

    #[test]
    fn zipf_stays_in_range() {
        let d = KeyDist::zipf(100, 0.8);
        let mut g = rng();
        for _ in 0..10_000 {
            assert!(d.sample(&mut g) < 100);
        }
    }
}
