//! Workspace umbrella for the Canopus reproduction.
//!
//! This root package owns the end-to-end `examples/` and the
//! cross-protocol integration suites in `tests/`; the protocol itself
//! lives in the `crates/` members. The umbrella re-exports every member
//! so scratch programs can depend on one crate:
//!
//! ```
//! use canopus_repro::canopus::LotShape;
//! assert_eq!(LotShape::flat(4).num_superleaves(), 4);
//! ```

#![warn(missing_docs)]

pub use canopus;
pub use canopus_bench;
pub use canopus_epaxos;
pub use canopus_harness;
pub use canopus_kv;
pub use canopus_net;
pub use canopus_raft;
pub use canopus_sim;
pub use canopus_workload;
pub use canopus_zab;
