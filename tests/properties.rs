//! Property-based tests over the protocol invariants (paper §6).
//!
//! Random LOT shapes, workloads, and seeds; the invariants checked are the
//! paper's agreement, FIFO, and nontriviality properties plus emulation-
//! table convergence and whole-stack determinism. The randomized cases are
//! driven by a seeded deterministic generator (proptest is unavailable in
//! this offline build), so every CI run explores the identical corpus.

use bytes::Bytes;
use canopus::{
    CanopusConfig, CanopusMsg, CanopusNode, CommittedOp, CycleTrigger, EmulationTable, LotShape,
};
use canopus_kv::{check_agreement, ClientRequest, Op};
use canopus_sim::{
    impl_process_any, Context, Dur, NodeId, Process, Simulation, Timer, UniformFabric,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic scripted writer used inside property tests.
struct Writer {
    target: NodeId,
    writes: Vec<(u64, u64)>, // (delay_us, key)
    cursor: usize,
    acked: usize,
}

impl Process<CanopusMsg> for Writer {
    fn on_start(&mut self, ctx: &mut Context<'_, CanopusMsg>) {
        if !self.writes.is_empty() {
            ctx.set_timer(Dur::micros(self.writes[0].0), 0);
        }
    }
    fn on_timer(&mut self, _t: Timer, ctx: &mut Context<'_, CanopusMsg>) {
        let (_, key) = self.writes[self.cursor];
        let op_id = self.cursor as u64;
        self.cursor += 1;
        ctx.send(
            self.target,
            CanopusMsg::Request(ClientRequest {
                client: ctx.id(),
                op_id,
                op: Op::Put {
                    key,
                    value: Bytes::from_static(b"pppppppp"),
                },
            }),
        );
        if let Some(&(delay, _)) = self.writes.get(self.cursor) {
            ctx.set_timer(Dur::micros(delay), 0);
        }
    }
    fn on_message(&mut self, _f: NodeId, msg: CanopusMsg, _c: &mut Context<'_, CanopusMsg>) {
        if matches!(msg, CanopusMsg::Reply(_)) {
            self.acked += 1;
        }
    }
    impl_process_any!();
}

/// Builds a cluster from a shape spec, runs the scripted writers, and
/// returns each node's committed (client, op_id) history.
fn run_cluster(
    superleaves: usize,
    per_leaf: usize,
    pipelined: bool,
    writes: Vec<Vec<(u64, u64)>>, // per target node index
    seed: u64,
    run_ms: u64,
) -> (Vec<Vec<(u32, u64)>>, Vec<u64>, usize) {
    let shape = LotShape::flat(superleaves as u16);
    let membership: Vec<Vec<NodeId>> = (0..superleaves)
        .map(|g| {
            (0..per_leaf)
                .map(|i| NodeId((g * per_leaf + i) as u32))
                .collect()
        })
        .collect();
    let table = EmulationTable::new(shape, membership);
    let mut cfg = CanopusConfig::default();
    if pipelined {
        cfg.trigger = CycleTrigger::Pipelined;
        cfg.max_pipeline_depth = 64;
        cfg.cycle_interval = Dur::millis(2);
    }
    let mut sim = Simulation::new(UniformFabric::new(Dur::micros(40)), seed);
    let n = superleaves * per_leaf;
    for i in 0..n as u32 {
        sim.add_node(Box::new(CanopusNode::new(
            NodeId(i),
            table.clone(),
            cfg.clone(),
            seed,
        )));
    }
    let mut total_writes = 0;
    for (i, script) in writes.into_iter().enumerate() {
        total_writes += script.len();
        sim.add_node(Box::new(Writer {
            target: NodeId((i % n) as u32),
            writes: script,
            cursor: 0,
            acked: 0,
        }));
    }
    sim.run_for(Dur::millis(run_ms));

    let mut histories = Vec::new();
    let mut digests = Vec::new();
    for i in 0..n as u32 {
        let node = sim.node::<CanopusNode>(NodeId(i));
        digests.push(node.stats().commit_digest);
        histories.push(
            node.committed_log()
                .iter()
                .flat_map(|cc| {
                    cc.sets.iter().flat_map(|s| {
                        s.ops.iter().map(|op| match *op {
                            CommittedOp::Put { client, op_id, .. } => (client.0, op_id),
                            CommittedOp::Synthetic { client, op_id, .. } => (client.0, op_id),
                            CommittedOp::MultiPut { client, op_id, .. } => (client.0, op_id),
                        })
                    })
                })
                .collect::<Vec<_>>(),
        );
    }
    (histories, digests, total_writes)
}

/// Random per-writer scripts: 1..4 writers, each 0..8 writes of
/// (delay 100..3000 µs, key 0..50).
fn arb_scripts(rng: &mut SmallRng) -> Vec<Vec<(u64, u64)>> {
    let writers = rng.gen_range(1usize..4);
    (0..writers)
        .map(|_| {
            let n = rng.gen_range(0usize..8);
            (0..n)
                .map(|_| (rng.gen_range(100u64..3000), rng.gen_range(0u64..50)))
                .collect()
        })
        .collect()
}

/// Agreement: every node commits the identical sequence, for random
/// shapes, write schedules, and seeds (paper §6, Theorem 1).
#[test]
fn prop_agreement_across_shapes() {
    let mut rng = SmallRng::seed_from_u64(0xCA_0001);
    for case in 0..12 {
        // each case runs a full cluster simulation
        let superleaves = rng.gen_range(1usize..4);
        let per_leaf = rng.gen_range(1usize..4);
        let pipelined = rng.gen::<bool>();
        let seed = rng.gen::<u64>();
        let scripts = arb_scripts(&mut rng);
        let (histories, _, total) =
            run_cluster(superleaves, per_leaf, pipelined, scripts, seed, 400);
        assert!(
            check_agreement(&histories).is_ok(),
            "case {case}: divergence detected"
        );
        // Nontriviality + liveness: every write eventually committed at
        // node 0 (uniform fabric, no failures).
        assert_eq!(histories[0].len(), total, "case {case}: missing commits");
    }
}

/// FIFO per client: one client's ops commit in issue order (§6).
#[test]
fn prop_client_fifo_in_commit_order() {
    let mut rng = SmallRng::seed_from_u64(0xCA_0002);
    for case in 0..12 {
        let per_leaf = rng.gen_range(2usize..4);
        let seed = rng.gen::<u64>();
        let n_writes = rng.gen_range(1usize..12);
        let script: Vec<(u64, u64)> = (0..n_writes).map(|k| (200, k as u64)).collect();
        let (histories, _, _) = run_cluster(2, per_leaf, false, vec![script], seed, 400);
        let h = &histories[0];
        let mut last = None;
        for &(client, op_id) in h {
            if client == (2 * per_leaf) as u32 {
                if let Some(prev) = last {
                    assert!(op_id > prev, "case {case}: client ops reordered");
                }
                last = Some(op_id);
            }
        }
        assert_eq!(h.len(), n_writes, "case {case}");
    }
}

/// Determinism: identical seeds produce identical digests.
#[test]
fn prop_deterministic_replay() {
    let mut rng = SmallRng::seed_from_u64(0xCA_0003);
    for case in 0..6 {
        let seed = rng.gen::<u64>();
        let script = vec![vec![(500, 1), (700, 2), (900, 3)]];
        let a = run_cluster(2, 3, true, script.clone(), seed, 300);
        let b = run_cluster(2, 3, true, script, seed, 300);
        assert_eq!(
            a.1, b.1,
            "case {case}: digests differ across identical runs"
        );
        assert_eq!(
            a.0, b.0,
            "case {case}: histories differ across identical runs"
        );
    }
}

/// The merge operator is order-insensitive and weight-preserving for
/// arbitrary proposal numbers (determinism of the total order).
#[test]
fn prop_merge_insensitive_to_input_order() {
    use canopus::{CycleId, RequestSet, VnodeId, VnodeState};
    let mut rng = SmallRng::seed_from_u64(0xCA_0004);
    for _case in 0..24 {
        let numbers: Vec<u64> = (0..rng.gen_range(2usize..9)).map(|_| rng.gen()).collect();
        let perm_seed = rng.gen::<u64>();
        let children: Vec<VnodeState> = numbers
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                VnodeState::round1(
                    NodeId(i as u32),
                    VnodeId(vec![0]),
                    CycleId(1),
                    n,
                    RequestSet::empty(NodeId(i as u32)),
                    vec![],
                )
            })
            .collect();
        let merged_fwd = VnodeState::merge(VnodeId(vec![0]), children.clone());
        let mut shuffled = children;
        // Deterministic Fisher-Yates from the seed.
        let mut state = perm_seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let merged_rev = VnodeState::merge(VnodeId(vec![0]), shuffled);
        assert_eq!(merged_fwd, merged_rev);
    }
}
