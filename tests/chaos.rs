//! Seed-swept chaos and linearizability suite: every fault scenario runs
//! against all four protocols (Canopus, Raft KV, EPaxos, the ZooKeeper
//! model) across a seed sweep, asserting the §6 safety properties always
//! hold — agreement, client FIFO, linearizability where the read path
//! promises it — and that the cluster converges (commits fresh writes)
//! after the nemesis heals the network.
//!
//! Timeline of every run (virtual time):
//!
//! ```text
//! 0ms ── warm ── 200ms ── faults ── 900ms ── heal ── 1100ms ── probes on
//!        fresh keys ── 1800ms ── clients stop ── 2100ms ── verdict
//! ```
//!
//! Seed count: 20 by default (the acceptance sweep), `CHAOS_SEEDS=ci` for
//! a quick fixed set in CI, `CHAOS_SEEDS=extended` for a deep local sweep.

use canopus_harness::scenarios::{
    asymmetric_loss as asymmetric_loss_in, crash_restart_churn as crash_restart_churn_in,
    leader_crash_mid_round as leader_crash_mid_round_in, link_flapping as link_flapping_in,
    majority_minority_split as majority_minority_split_in, node_isolated as node_isolated_in,
    partition_then_crash_restart as partition_then_crash_restart_in,
    superleaf_partition as superleaf_partition_in,
};
use canopus_harness::{
    chaos_canopus, chaos_canopus_batched, chaos_canopus_with_obs, chaos_epaxos, chaos_raftkv,
    chaos_verdict, chaos_zab, ChaosProtocol, ChaosReport, ChaosScenario, ChaosTimeline,
    ChaosTopology, Cluster, ClusterObs, DeploymentSpec, HistoryConfig,
};

// ---------------------------------------------------------------------
// Deployment and timeline
// ---------------------------------------------------------------------

/// 3 super-leaves (racks) × 3 nodes — the smallest deployment where every
/// protocol tolerates the catalog faults (Canopus leaf majority, Raft/Zab
/// quorum, EPaxos fast quorum).
fn spec() -> DeploymentSpec {
    DeploymentSpec::paper_single_dc(3)
}

/// The scenario catalog lives in `canopus_harness::scenarios` (shared
/// with the live-TCP suite); these wrappers pin the simulator topology
/// and PR 2's virtual-time schedule.
fn topo() -> ChaosTopology {
    ChaosTopology::sim_default()
}

fn timeline() -> ChaosTimeline {
    ChaosTimeline::sim_default()
}

fn superleaf_partition() -> ChaosScenario {
    superleaf_partition_in(&topo(), &timeline())
}
fn majority_minority_split() -> ChaosScenario {
    majority_minority_split_in(&topo(), &timeline())
}
fn leader_crash_mid_round() -> ChaosScenario {
    leader_crash_mid_round_in(&topo(), &timeline())
}
fn crash_restart_churn() -> ChaosScenario {
    crash_restart_churn_in(&topo(), &timeline())
}
fn asymmetric_loss() -> ChaosScenario {
    asymmetric_loss_in(&topo(), &timeline())
}
fn link_flapping() -> ChaosScenario {
    link_flapping_in(&topo(), &timeline())
}
fn node_isolated() -> ChaosScenario {
    node_isolated_in(&topo(), &timeline())
}
fn partition_then_crash_restart() -> ChaosScenario {
    partition_then_crash_restart_in(&topo(), &timeline())
}

/// Canopus with the throughput knobs on: 1 ms super-leaf batching windows
/// and 4 cycles in flight. The batched sweeps assert the same verdict as
/// the defaults — the knobs must not trade safety for throughput.
fn chaos_canopus_batched4(
    spec: &DeploymentSpec,
    hcfg: &HistoryConfig,
    seed: u64,
) -> Cluster<canopus::CanopusMsg> {
    chaos_canopus_batched(spec, hcfg, seed, 4)
}

fn seeds() -> Vec<u64> {
    let n = match std::env::var("CHAOS_SEEDS").as_deref() {
        Ok("ci") => 4,
        Ok("extended") => 60,
        Ok(other) => other.parse().unwrap_or(20),
        // Debug builds (plain `cargo test --workspace`) get a spot check;
        // the acceptance sweep is `cargo test --release --test chaos`.
        _ if cfg!(debug_assertions) => 2,
        _ => 20,
    };
    (1..=n).map(|i| 0xC0DE + i).collect()
}

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

fn history_config() -> HistoryConfig {
    HistoryConfig {
        probe_at: timeline().converge_after(),
        ..HistoryConfig::default()
    }
}

fn run_one<M: ChaosProtocol>(
    build: fn(&DeploymentSpec, &HistoryConfig, u64) -> Cluster<M>,
    scenario: &ChaosScenario,
    seed: u64,
) -> (ChaosReport, Cluster<M>) {
    let mut cluster = build(&spec(), &history_config(), seed);
    cluster.apply_plan(&scenario.plan, timeline().run_for);
    let report = chaos_verdict(
        &cluster,
        timeline().converge_after(),
        &(scenario.exempt)(M::NAME),
    );
    (report, cluster)
}

/// Events per node in the failure dump — the forensic tail, not the
/// whole ring.
const DUMP_EVENTS: usize = 40;

fn sweep<M: ChaosProtocol>(
    build: fn(&DeploymentSpec, &HistoryConfig, u64) -> Cluster<M>,
    scenario: ChaosScenario,
) {
    for seed in seeds() {
        let (report, cluster) = run_one(build, &scenario, seed);
        assert!(
            report.ok(),
            "{} / {} / seed {:#x}: {} ok, {} timed out, violations: {:#?}
{}",
            M::NAME,
            scenario.name,
            seed,
            report.ops_ok,
            report.ops_timed_out,
            report.violations,
            cluster.flight_dump(DUMP_EVENTS)
        );
        assert!(
            report.ops_ok > 50,
            "{} / {} / seed {:#x}: suspiciously little progress ({} ops)
{}",
            M::NAME,
            scenario.name,
            seed,
            report.ops_ok,
            cluster.flight_dump(DUMP_EVENTS)
        );
    }
}

/// A deliberately failing verdict bar, demonstrating the failure artifact:
/// the panic message carries every node's flight-recorder tail, so chaos
/// forensics start from structured consensus events instead of a bare
/// assert. The `expected` string is `canopus_obs::DUMP_HEADER`.
#[test]
#[should_panic(expected = "flight recorder dump")]
fn broken_verdict_dumps_flight_recorders() {
    let scenario = superleaf_partition();
    let (report, cluster) = run_one(chaos_canopus, &scenario, 0xBAD5EED);
    assert!(
        report.ops_ok == 0, // deliberately impossible: healthy runs commit ops
        "deliberately broken bar ({} ops committed)
{}",
        report.ops_ok,
        cluster.flight_dump(DUMP_EVENTS)
    );
}

macro_rules! chaos_matrix {
    ($($test:ident: $builder:ident / $msg:ty => $scenario:ident;)*) => {
        $(
            #[test]
            fn $test() {
                sweep::<$msg>($builder, $scenario());
            }
        )*
    };
}

use canopus::CanopusMsg;
use canopus_epaxos::EpaxosMsg;
use canopus_harness::RaftKvMsg;
use canopus_zab::ZabMsg;

chaos_matrix! {
    canopus_superleaf_partition: chaos_canopus / CanopusMsg => superleaf_partition;
    canopus_majority_minority:   chaos_canopus / CanopusMsg => majority_minority_split;
    canopus_leader_crash:        chaos_canopus / CanopusMsg => leader_crash_mid_round;
    canopus_churn:               chaos_canopus / CanopusMsg => crash_restart_churn;
    canopus_asymmetric_loss:     chaos_canopus / CanopusMsg => asymmetric_loss;
    canopus_link_flapping:       chaos_canopus / CanopusMsg => link_flapping;
    canopus_node_isolated:       chaos_canopus / CanopusMsg => node_isolated;
    canopus_partition_crash_restart: chaos_canopus / CanopusMsg => partition_then_crash_restart;

    canopus_batched_superleaf_partition:     chaos_canopus_batched4 / CanopusMsg => superleaf_partition;
    canopus_batched_churn:                   chaos_canopus_batched4 / CanopusMsg => crash_restart_churn;
    canopus_batched_partition_crash_restart: chaos_canopus_batched4 / CanopusMsg => partition_then_crash_restart;

    raftkv_superleaf_partition:  chaos_raftkv / RaftKvMsg => superleaf_partition;
    raftkv_majority_minority:    chaos_raftkv / RaftKvMsg => majority_minority_split;
    raftkv_leader_crash:         chaos_raftkv / RaftKvMsg => leader_crash_mid_round;
    raftkv_churn:                chaos_raftkv / RaftKvMsg => crash_restart_churn;
    raftkv_asymmetric_loss:      chaos_raftkv / RaftKvMsg => asymmetric_loss;
    raftkv_link_flapping:        chaos_raftkv / RaftKvMsg => link_flapping;
    raftkv_node_isolated:        chaos_raftkv / RaftKvMsg => node_isolated;

    epaxos_superleaf_partition:  chaos_epaxos / EpaxosMsg => superleaf_partition;
    epaxos_majority_minority:    chaos_epaxos / EpaxosMsg => majority_minority_split;
    epaxos_leader_crash:         chaos_epaxos / EpaxosMsg => leader_crash_mid_round;
    epaxos_churn:                chaos_epaxos / EpaxosMsg => crash_restart_churn;
    epaxos_asymmetric_loss:      chaos_epaxos / EpaxosMsg => asymmetric_loss;
    epaxos_link_flapping:        chaos_epaxos / EpaxosMsg => link_flapping;
    epaxos_node_isolated:        chaos_epaxos / EpaxosMsg => node_isolated;

    zab_superleaf_partition:     chaos_zab / ZabMsg => superleaf_partition;
    zab_majority_minority:       chaos_zab / ZabMsg => majority_minority_split;
    zab_leader_crash:            chaos_zab / ZabMsg => leader_crash_mid_round;
    zab_churn:                   chaos_zab / ZabMsg => crash_restart_churn;
    zab_asymmetric_loss:         chaos_zab / ZabMsg => asymmetric_loss;
    zab_link_flapping:           chaos_zab / ZabMsg => link_flapping;
    zab_node_isolated:           chaos_zab / ZabMsg => node_isolated;
}

// ---------------------------------------------------------------------
// Determinism regression
// ---------------------------------------------------------------------

/// Two runs of the same plan + seed must be byte-identical: same kernel
/// trace hash, same applied fault timeline, same client histories.
#[test]
fn determinism_same_plan_same_seed_identical_traces() {
    let run = |seed: u64| {
        let scenario = superleaf_partition();
        let mut cluster = chaos_canopus(&spec(), &history_config(), seed);
        cluster.sim.enable_trace_hash();
        let applied = cluster.apply_plan(&scenario.plan, timeline().run_for);
        let histories: Vec<Vec<String>> = cluster
            .clients
            .iter()
            .map(|&c| {
                cluster
                    .sim
                    .node::<canopus_harness::HistoryClient<CanopusMsg>>(c)
                    .ops()
                    .iter()
                    .map(|op| format!("{op:?}"))
                    .collect()
            })
            .collect();
        (
            cluster.sim.trace_hash().expect("enabled"),
            format!("{applied:?}"),
            histories,
            cluster.sim.events_processed(),
            cluster.sim.stats(),
        )
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a.0, b.0, "trace hashes diverged");
    assert_eq!(a.1, b.1, "applied fault timelines diverged");
    assert_eq!(a.2, b.2, "client histories diverged");
    assert_eq!(a.3, b.3);
    assert_eq!(a.4, b.4);
    // A different seed must explore a different schedule.
    let c = run(8);
    assert_ne!(a.0, c.0, "different seeds should differ");
}

/// Observability is observation-only: a run with registries and flight
/// recorders enabled must produce byte-identical executions (same kernel
/// trace hash, same event count) as one with them disabled. This is the
/// regression gate for the "one branch when disabled, zero interference
/// when enabled" contract.
#[test]
fn determinism_obs_enabled_matches_disabled() {
    let run = |obs: ClusterObs| {
        let scenario = superleaf_partition();
        let mut cluster = chaos_canopus_with_obs(&spec(), &history_config(), 11, obs);
        cluster.sim.enable_trace_hash();
        let applied = cluster.apply_plan(&scenario.plan, timeline().run_for);
        (
            cluster.sim.trace_hash().expect("enabled"),
            format!("{applied:?}"),
            cluster.sim.events_processed(),
        )
    };
    let observed = run(ClusterObs::on(256));
    let bare = run(ClusterObs::off());
    assert_eq!(
        observed, bare,
        "enabling the obs layer changed the execution"
    );
}

/// The same determinism bar holds for a crash/restart plan on the Raft KV
/// service (restart factories must be deterministic too).
#[test]
fn determinism_crash_restart_raftkv() {
    let run = || {
        let scenario = crash_restart_churn();
        let mut cluster = chaos_raftkv(&spec(), &history_config(), 11);
        cluster.sim.enable_trace_hash();
        cluster.apply_plan(&scenario.plan, timeline().run_for);
        (
            cluster.sim.trace_hash().expect("enabled"),
            cluster.sim.events_processed(),
        )
    };
    assert_eq!(run(), run());
}
